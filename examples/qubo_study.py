#!/usr/bin/env python3
"""Problem-layer study: reduce -> optimize -> transfer beyond MaxCut.

Runs the Red-QAOA pipeline on two non-MaxCut workloads from
:mod:`repro.problems`:

- an SK spin glass (field-free, all-to-all random couplings), and
- a Max-Independent-Set penalty encoding (linear fields, so the reducer's
  field-aware node strength and the dense engine are both exercised),

reporting the reduction achieved on each problem's coupling graph, the
transferred-parameter expectation, and the best sampled solution against
the classical optimum.

Usage::

    python examples/qubo_study.py [--nodes 16] [--p 1] [--seed 7]
"""

import argparse

import networkx as nx

from repro import RedQAOA
from repro.problems import max_independent_set_problem, sk_problem


def run_problem(label: str, problem, args):
    print(f"\n=== {label} ===")
    print(
        f"instance: {problem.num_qubits} qubits, {problem.num_couplings} couplings, "
        f"{len(problem.fields)} linear fields"
        + ("" if problem.is_field_free else " (field-aware reduction)")
    )
    pipeline = RedQAOA(
        p=args.p, restarts=args.restarts, maxiter=args.maxiter,
        finetune_maxiter=0, seed=args.seed,
    )
    result = pipeline.run(problem=problem)
    reduction = result.reduction
    print(
        f"reduced coupling graph: {reduction.subproblem.num_qubits} qubits "
        f"({reduction.node_reduction:.0%} node reduction, "
        f"AND ratio {reduction.and_ratio:.2f})"
    )
    print(
        f"optimization: {result.num_reduced_evaluations} evaluations, all on the "
        f"distilled problem (pure parameter transfer)"
    )
    print(f"transferred expectation: {result.expectation:.4f}")
    best = problem.best_value()
    print(f"best sampled value: {result.cut_value:.4f} (classical best {best:.4f})")
    if best > 0:
        print(f"sampled approximation ratio: {result.cut_value / best:.3f}")
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=16, help="problem size (<= 20)")
    parser.add_argument("--edge-prob", type=float, default=0.3,
                        help="G(n, p) density of the MIS instance")
    parser.add_argument("--p", type=int, default=1, help="QAOA depth")
    parser.add_argument("--restarts", type=int, default=3)
    parser.add_argument("--maxiter", type=int, default=40)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    run_problem("SK spin glass", sk_problem(args.nodes, seed=args.seed), args)

    graph = nx.erdos_renyi_graph(args.nodes, args.edge_prob, seed=args.seed)
    while not (graph.number_of_edges() and nx.is_connected(graph)):
        args.seed += 1
        graph = nx.erdos_renyi_graph(args.nodes, args.edge_prob, seed=args.seed)
    mis = max_independent_set_problem(graph)
    result = run_problem("Max-Independent-Set", mis, args)
    bits = [result.assignment[q] for q in range(mis.num_qubits)]
    independent = all(not (bits[u] and bits[v]) for u, v in graph.edges())
    print(f"sampled MIS assignment feasible: {independent} (set size {sum(bits)})")


if __name__ == "__main__":
    main()
