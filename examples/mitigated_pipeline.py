#!/usr/bin/env python3
"""Error-mitigated solution finding, as in the paper's Fig. 4.

Red-QAOA runs the original (large, noisy) circuit only for the final
optimal parameters, so error mitigation is cheap to apply at that step.
This example runs the full pipeline under a device noise model, then
compares the final expectation computed four ways: ideal, raw noisy, with
readout mitigation, and with zero-noise extrapolation on top.

Usage::

    python examples/mitigated_pipeline.py [--nodes 10] [--device toronto]
"""

import argparse

import numpy as np

from repro.core.pipeline import RedQAOA
from repro.datasets import random_connected_gnp
from repro.mitigation import ReadoutMitigator, zne_maxcut_expectation
from repro.qaoa.expectation import maxcut_expectation, noisy_maxcut_expectation
from repro.qaoa.fast_sim import FastNoiseSpec, noisy_qaoa_probabilities
from repro.qaoa.hamiltonian import MaxCutHamiltonian
from repro.quantum import get_backend, list_backends
from repro.utils.graphs import relabel_to_range


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=10)
    parser.add_argument("--device", choices=list_backends(), default="kolkata")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    backend = get_backend(args.device)
    graph = relabel_to_range(random_connected_gnp(args.nodes, 0.4, seed=args.seed))
    noise = FastNoiseSpec.for_graph(backend, graph)

    # Optimize on the distilled graph under its (smaller) noise.
    red = RedQAOA(seed=args.seed, restarts=3, maxiter=40, finetune_maxiter=0)
    result = red.run(graph)
    gammas, betas = list(result.gammas), list(result.betas)
    print(f"Graph: {args.nodes} nodes; device: {backend.name}; "
          f"distilled to {result.reduction.reduced_graph.number_of_nodes()} nodes")
    print(f"Final parameters: gamma={np.round(gammas, 3)}, beta={np.round(betas, 3)}")

    ideal = maxcut_expectation(graph, gammas, betas)
    raw = noisy_maxcut_expectation(
        graph, gammas, betas, noise, trajectories=60, seed=args.seed
    )

    ham = MaxCutHamiltonian(graph)
    observed = noisy_qaoa_probabilities(
        ham, gammas, betas, noise, trajectories=60, seed=args.seed
    )
    mitigator = ReadoutMitigator.symmetric(noise.readout_error, ham.num_qubits)
    readout_corrected = mitigator.expectation_diagonal(observed, ham.diagonal)

    zne_value, per_scale = zne_maxcut_expectation(
        graph, gammas, betas, noise, scales=(1.0, 1.5, 2.0),
        trajectories=60, seed=args.seed,
    )

    print(f"\n{'method':<24} {'expectation':>12} {'error':>9}")
    for label, value in (
        ("ideal", ideal),
        ("noisy (raw)", raw),
        ("readout-mitigated", readout_corrected),
        ("zero-noise extrapolated", zne_value),
    ):
        print(f"{label:<24} {value:>12.4f} {abs(value - ideal):>9.4f}")
    print(f"\nZNE per-scale values: {[round(v, 3) for v in per_scale]}")


if __name__ == "__main__":
    main()
