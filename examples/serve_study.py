#!/usr/bin/env python3
"""Serving study: a live daemon, async submission, and crash tolerance.

Walks the ``repro.serve`` stack end to end, in one process:

1. start a :class:`ServeDaemon` (unix socket, persistent store, a
   process worker pool) on a background thread;
2. submit a manifest asynchronously and stream results as shards finish;
3. resubmit the same manifest -- every job is served from the store,
   nothing executes;
4. kill one worker process mid-manifest and show that nothing is lost
   and nothing duplicates: the crashed shard requeues, the pool
   respawns, and the final results are bit-identical to the clean pass;
5. drain and shut the daemon down cleanly.

Usage::

    python examples/serve_study.py [--nodes 10] [--count 8] [--workers 2]
"""

import argparse
import os
import signal
import tempfile
import threading
import time
from pathlib import Path

from repro.datasets import suite_manifest
from repro.serve import ServeClient, ServeDaemon, wait_for_socket


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=10)
    parser.add_argument("--count", type=int, default=8)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    manifest = suite_manifest(
        "maxcut",
        count=args.count,
        num_qubits=args.nodes,
        seed=args.seed,
        restarts=2,
        maxiter=20,
    )

    with tempfile.TemporaryDirectory() as tmp:
        socket_path = Path(tmp) / "serve.sock"
        daemon = ServeDaemon(
            socket_path=socket_path,
            store_path=Path(tmp) / "results.jsonl",
            workers=args.workers,
            pool="process",  # real subprocesses, so a kill below is honest
        )
        thread = threading.Thread(
            target=daemon.serve_forever,
            kwargs={"install_signal_handlers": False},
            daemon=True,
        )
        thread.start()
        wait_for_socket(socket_path)
        client = ServeClient(socket_path)

        print(f"=== daemon up: {args.workers} workers, "
              f"pids {client.status()['workers']['pids']} ===")

        print("\n=== submit + stream ===")
        start = time.perf_counter()
        ticket = client.submit(manifest)["ticket"]
        print(f"ticket {ticket} (submit returned in "
              f"{(time.perf_counter() - start) * 1e3:.1f} ms)")
        first_pass = {}
        for event in client.stream(ticket):
            if event["event"] == "result":
                first_pass[event["fingerprint"]] = event["result"]
                print(f"  {event['label']}: "
                      f"expectation={event['result']['expectation']:.4f}")
            else:
                print(f"  {event['event']}: {event.get('counts')}")

        print("\n=== resubmit: served from the store ===")
        again = client.submit(manifest)
        statuses = [job["status"] for job in again["jobs"]]
        print(f"statuses: {sorted(set(statuses))} (nothing queued)")

        print("\n=== kill one worker mid-manifest ===")
        fresh = suite_manifest(
            "maxcut",
            count=args.count,
            num_qubits=args.nodes,
            seed=args.seed + 1000,  # unseen instances: real work to interrupt
            restarts=2,
            maxiter=20,
        )
        ticket = client.submit(fresh)["ticket"]
        victim = client.status()["workers"]["pids"][0]
        os.kill(victim, signal.SIGKILL)
        print(f"killed worker pid {victim}")
        final = client.wait(ticket, timeout=600)
        status = client.status()
        print(f"counts={final['counts']} crashes={status['queue']['crashes']} "
              f"respawns={status['workers']['respawns']}")
        labels = [job["label"] for job in final["jobs"]]
        assert len(labels) == len(set(labels)) == args.count, "lost or duplicated jobs"

        print("\n=== drain + shutdown ===")
        client.shutdown()
        thread.join(timeout=60)
        print(f"daemon stopped, socket removed: {not socket_path.exists()}")


if __name__ == "__main__":
    main()
