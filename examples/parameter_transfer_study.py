#!/usr/bin/env python3
"""Parameter transfer vs Red-QAOA on irregular graphs (Fig. 21 protocol).

Prior work transfers optimal QAOA parameters between random regular graphs
of matching degree parity.  Real-world graphs are rarely regular, and this
script shows where that breaks: starting from a random regular graph, it
perturbs an increasing fraction of edges and compares the landscape MSE of
(a) a regular donor graph and (b) the Red-QAOA distilled graph.

Usage::

    python examples/parameter_transfer_study.py [--nodes 24] [--degree 3]
"""

import argparse

from repro.core.reduction import GraphReducer
from repro.transfer import perturb_graph, random_regular_donor, transfer_landscape_mse

import networkx as nx


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=24)
    parser.add_argument("--degree", type=int, default=3)
    parser.add_argument("--width", type=int, default=16, help="landscape grid width")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    base = nx.random_regular_graph(args.degree, args.nodes, seed=args.seed)
    print(f"Base graph: {args.degree}-regular, {args.nodes} nodes")
    print(f"{'perturbed':>10} {'transfer MSE':>13} {'red-qaoa MSE':>13}")

    for fraction in (0.0, 0.05, 0.1, 0.2, 0.3):
        graph = perturb_graph(base, fraction, seed=args.seed)
        reduction = GraphReducer(seed=args.seed).reduce(graph)
        donor = random_regular_donor(
            args.degree, reduction.reduced_graph.number_of_nodes(), seed=args.seed
        )
        transfer_mse = transfer_landscape_mse(graph, donor, width=args.width)
        red_mse = transfer_landscape_mse(graph, reduction.reduced_graph, width=args.width)
        print(f"{fraction:>10.0%} {transfer_mse:>13.4f} {red_mse:>13.4f}")

    print("\nAs irregularity grows, regular-donor transfer degrades while "
          "Red-QAOA tracks the actual graph (paper Sec. 6.6).")


if __name__ == "__main__":
    main()
