#!/usr/bin/env python3
"""Noisy optimization: Red-QAOA vs baseline under a device noise model.

The scenario the paper's introduction motivates: on NISQ hardware, every
optimizer iteration runs a noisy circuit, and large circuits mislead the
search.  This example optimizes the same graph two ways under a fake
device's noise -- directly (baseline) and through the distilled graph
(Red-QAOA) -- then re-evaluates both parameter choices on an ideal
simulator, reproducing the Fig. 20 protocol.

Usage::

    python examples/noisy_optimization.py [--nodes 10] [--device toronto]
"""

import argparse

import numpy as np

from repro.core.reduction import GraphReducer
from repro.datasets import random_connected_gnp
from repro.qaoa.expectation import maxcut_expectation, noisy_maxcut_expectation
from repro.qaoa.fast_sim import FastNoiseSpec
from repro.qaoa.maxcut import brute_force_maxcut
from repro.qaoa.optimizer import multi_restart_optimize
from repro.quantum import get_backend, list_backends
from repro.utils.graphs import relabel_to_range


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=10)
    parser.add_argument("--device", choices=list_backends(), default="toronto")
    parser.add_argument("--restarts", type=int, default=5)
    parser.add_argument("--maxiter", type=int, default=40)
    parser.add_argument("--shots", type=int, default=2048)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    backend = get_backend(args.device)
    graph = random_connected_gnp(args.nodes, 0.4, seed=args.seed)
    relabeled = relabel_to_range(graph)
    optimum, _ = brute_force_maxcut(relabeled)
    print(f"Graph: {args.nodes} nodes, {graph.number_of_edges()} edges; "
          f"device model: {backend.name} ({backend.description})")

    reduction = GraphReducer(seed=args.seed).reduce(graph)
    reduced = reduction.reduced_graph
    print(f"Distilled graph: {reduced.number_of_nodes()} nodes "
          f"({reduction.node_reduction:.0%} reduction)")

    ideal_eval = lambda g, b: maxcut_expectation(relabeled, g, b)
    results = {}
    for label, target in (("baseline", relabeled), ("red-qaoa", reduced)):
        rng = np.random.default_rng(args.seed)
        noise = FastNoiseSpec.for_graph(backend, target)
        noisy_fn = lambda g, b: noisy_maxcut_expectation(
            target, g, b, noise, trajectories=4, shots=args.shots, seed=rng
        )
        traces = multi_restart_optimize(
            noisy_fn, p=1, restarts=args.restarts, maxiter=args.maxiter, seed=args.seed
        )
        # Re-evaluate every visited point ideally, on the ORIGINAL graph.
        finals = []
        for trace in traces:
            ideal_curve = trace.reevaluate(ideal_eval)
            finals.append(float(np.max(ideal_curve)))
        results[label] = finals
        print(f"{label:>9}: per-restart best (ideal re-eval) = "
              f"{[round(v, 2) for v in finals]}  "
              f"mean ratio {np.mean(finals) / optimum:.2%}")

    gain = np.mean(results["red-qaoa"]) - np.mean(results["baseline"])
    print(f"\nRed-QAOA mean advantage: {gain:+.3f} "
          f"({gain / optimum:+.1%} of the optimum {optimum:.0f})")


if __name__ == "__main__":
    main()
