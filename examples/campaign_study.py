#!/usr/bin/env python3
"""Batch-serving study: a deduplicated campaign against the result store.

Builds a duplicate-heavy manifest (the traffic pattern the service layer
amortizes: repeated submissions, isomorphic relabelings, and config scans
over shared instances), then runs it three ways:

1. a first campaign against a fresh store -- only the unique jobs execute,
   duplicates and isomorphic relabelings are served by fingerprint dedup;
2. a resumed campaign against the same store, as a restarted process would
   see it -- zero jobs recompute, everything is a store hit, and per-job
   results are bit-identical to the first pass;
3. the same unique work as independent ``RedQAOA.run`` calls, for the
   wall-clock comparison.

Usage::

    python examples/campaign_study.py [--nodes 12] [--count 4] [--seed 0]
"""

import argparse
import tempfile
import time
from pathlib import Path

from repro.datasets import suite_manifest
from repro.service import Campaign, manifest_specs, run_job


def build_manifest(args) -> dict:
    manifest = suite_manifest(
        "maxcut",
        count=args.count,
        num_qubits=args.nodes,
        seed=args.seed,
        generator={"edge_probability": 0.35, "weight_dist": "uniform"},
        restarts=2,
        maxiter=20,
    )
    # Duplicate traffic: resubmit the first instance three more times and
    # scan a second optimizer budget over the second instance.
    manifest["jobs"][0]["repeat"] = 4
    deeper = dict(manifest["jobs"][1])
    deeper["maxiter"] = 30
    deeper["label"] = "deeper-budget"
    manifest["jobs"].append(deeper)
    return manifest


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=12)
    parser.add_argument("--count", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    manifest = build_manifest(args)
    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "results.jsonl"

        print("=== first campaign (fresh store) ===")
        start = time.perf_counter()
        report = Campaign.from_manifest(manifest, store_path=store_path).run()
        first_seconds = time.perf_counter() - start
        batch = report.batch
        print(f"jobs={batch.num_jobs} unique={batch.num_unique} "
              f"deduped={batch.deduped} computed={batch.computed} "
              f"shared reductions={batch.reduction_reuses}")
        for label, agg in sorted(report.aggregates.items()):
            print(f"  {label:<24} count={agg['count']} "
                  f"expectation={agg['mean_expectation']:.4f}")

        print("\n=== resumed campaign (same store, fresh process state) ===")
        resumed = Campaign.from_manifest(manifest, store_path=store_path).run()
        print(f"computed={resumed.batch.computed} "
              f"store_hits={resumed.batch.store_hits} "
              f"(of {resumed.batch.num_unique} unique)")
        identical = all(
            (a.result.gammas, a.result.expectation, a.result.best_value)
            == (b.result.gammas, b.result.expectation, b.result.best_value)
            for a, b in zip(report.batch.results, resumed.batch.results)
        )
        print(f"per-job results bit-identical to the first pass: {identical}")

        print("\n=== N independent RedQAOA.run calls (no sharing) ===")
        start = time.perf_counter()
        for spec in manifest_specs(manifest):
            run_job(spec)
        sequential_seconds = time.perf_counter() - start
        print(f"sequential {sequential_seconds:.2f} s vs campaign "
              f"{first_seconds:.2f} s "
              f"({sequential_seconds / max(first_seconds, 1e-9):.2f}x)")


if __name__ == "__main__":
    main()
