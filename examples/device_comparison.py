#!/usr/bin/env python3
"""Device comparison: noisy landscape MSE across hardware noise models.

Reproduces the Fig. 24 protocol as a script: one random graph, p=1, and a
sweep over fake-device noise models from the lowest-error (kolkata) to
retired high-error hardware (toronto, melbourne).  For each device it
reports the baseline noisy MSE and Red-QAOA's, plus the modeled throughput
gain on that device (Fig. 25's metric for a single graph).

Usage::

    python examples/device_comparison.py [--nodes 10] [--devices kolkata toronto]
"""

import argparse

from repro.analysis.throughput import relative_throughput
from repro.core.reduction import GraphReducer
from repro.datasets import random_connected_gnp
from repro.qaoa.fast_sim import FastNoiseSpec
from repro.qaoa.landscape import (
    compute_landscape,
    compute_noisy_landscape,
    landscape_mse,
)
from repro.quantum import get_backend, list_backends


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=10)
    parser.add_argument(
        "--devices", nargs="+", choices=list_backends(),
        default=["kolkata", "auckland", "cairo", "mumbai", "guadalupe", "melbourne", "toronto"],
    )
    parser.add_argument("--width", type=int, default=12, help="landscape grid width")
    parser.add_argument("--shots", type=int, default=2048)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    graph = random_connected_gnp(args.nodes, 0.4, seed=args.seed)
    reduction = GraphReducer(seed=args.seed).reduce(graph)
    reduced = reduction.reduced_graph
    print(f"Graph: {args.nodes} nodes -> distilled {reduced.number_of_nodes()} nodes "
          f"({reduction.node_reduction:.0%} reduction)")

    ideal = compute_landscape(graph, width=args.width).values
    print(f"{'device':<12} {'2q error':>9} {'baseline MSE':>13} {'red-qaoa MSE':>13} {'throughput':>11}")
    for device in args.devices:
        backend = get_backend(device)
        noisy_base = compute_noisy_landscape(
            graph, FastNoiseSpec.for_graph(backend, graph),
            width=args.width, trajectories=4, shots=args.shots, seed=args.seed,
        ).values
        noisy_red = compute_noisy_landscape(
            reduced, FastNoiseSpec.for_graph(backend, reduced),
            width=args.width, trajectories=4, shots=args.shots, seed=args.seed,
        ).values
        mse_base = landscape_mse(ideal, noisy_base)
        mse_red = landscape_mse(ideal, noisy_red)
        gain = relative_throughput(backend, [(graph, reduced)]).relative
        print(f"{device:<12} {backend.error_2q:>9.4f} {mse_base:>13.4f} "
              f"{mse_red:>13.4f} {gain:>10.2f}x")

    print("\nLower MSE = landscape closer to the noise-free one; Red-QAOA's "
          "distilled circuit should win on every device (paper Fig. 24).")


if __name__ == "__main__":
    main()
