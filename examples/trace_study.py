#!/usr/bin/env python3
"""Observability study: tracing and metrics across the serving stack.

Walks the ``repro.obs`` side channel end to end, in one process:

1. start a traced :class:`ServeDaemon` (``trace_path=``) with structured
   JSON logs and run a small campaign through it;
2. scrape the daemon's ``metrics`` protocol verb mid-flight -- the same
   snapshot a Prometheus scraper would pull;
3. shut down, then read the trace back: validate that every submitted
   job produced exactly one closed span tree, print the per-stage
   breakdown, and show where the wall-clock actually went;
4. prove the purity contract: rerun the same manifest untraced and
   assert the results are bit-identical.

Usage::

    python examples/trace_study.py [--nodes 10] [--count 8] [--workers 2]
"""

import argparse
import sys
import tempfile
import threading
from pathlib import Path

from repro.datasets import suite_manifest
from repro.obs.log import EventLog
from repro.obs.trace import (
    format_summary,
    load_trace,
    span_trees,
    summarize_trace,
    validate_trace,
)
from repro.serve import ServeClient, ServeDaemon, wait_for_socket


def run_manifest(tmp: Path, manifest: dict, trace_path: Path | None, workers: int = 2) -> dict:
    """One daemon lifetime: submit, wait, shut down; returns results by fp."""
    socket_path = tmp / "serve.sock"
    daemon = ServeDaemon(
        socket_path=socket_path,
        store_path=tmp / "results.jsonl",
        workers=workers,
        pool="process",
        trace_path=trace_path,
        log=EventLog(level="info", json_mode=True, stream=sys.stderr)
        if trace_path
        else None,
    )
    thread = threading.Thread(
        target=daemon.serve_forever,
        kwargs={"install_signal_handlers": False},
        daemon=True,
    )
    thread.start()
    wait_for_socket(socket_path)
    client = ServeClient(socket_path)

    ticket = client.submit(manifest)["ticket"]
    final = client.wait(ticket, timeout=600)

    if trace_path is not None:
        print("\n=== live metrics scrape (the `metrics` protocol verb) ===")
        scrape = client.metrics()
        counters = scrape["metrics"]["counters"]
        for name in sorted(counters):
            if counters[name]:
                print(f"  {name} = {counters[name]:g}")

    client.shutdown()
    thread.join(timeout=60)
    return {job["fingerprint"]: job["result"] for job in final["jobs"]}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=10)
    parser.add_argument("--count", type=int, default=8)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    manifest = suite_manifest(
        "maxcut",
        count=args.count,
        num_qubits=args.nodes,
        seed=args.seed,
        restarts=2,
        maxiter=20,
    )

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        trace_path = tmp / "trace.jsonl"

        print(f"=== traced campaign: {args.count} jobs, {args.workers} workers ===")
        (tmp / "a").mkdir()
        traced = run_manifest(tmp / "a", manifest, trace_path, workers=args.workers)

        print("\n=== span-tree validation ===")
        spans, metrics = load_trace(trace_path)
        problems = validate_trace(spans)
        trees = span_trees(spans)
        print(f"jobs traced: {len(trees)}  spans: {len(spans)}  "
              f"problems: {len(problems)}")
        assert not problems, problems
        assert len(trees) == args.count, "one tree per submitted job"

        print("\n=== per-stage breakdown ===")
        print(format_summary(summarize_trace(trace_path)), end="")

        print("=== purity: rerun untraced, compare byte-for-byte ===")
        (tmp / "b").mkdir()
        untraced = run_manifest(tmp / "b", manifest, None, workers=args.workers)
        assert traced == untraced, "tracing changed a result!"
        print("bit-identical: True")


if __name__ == "__main__":
    main()
