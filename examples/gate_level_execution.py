#!/usr/bin/env python3
"""Gate-level tour of the simulation substrate.

Shows the layers underneath the fast QAOA engines: build the QAOA circuit
as gates, draw it, transpile it onto a heavy-hex device with SABRE, and
simulate it exactly with the density-matrix engine under the device's
calibrated noise model -- the faithful (slow) path the paper's Qiskit
experiments take.

Usage::

    python examples/gate_level_execution.py [--nodes 5] [--device guadalupe]
"""

import argparse

import networkx as nx

from repro.qaoa.circuit_builder import build_qaoa_circuit
from repro.qaoa.expectation import maxcut_expectation
from repro.quantum import DeviceExecutor, draw, get_backend, list_backends, transpile


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=5)
    parser.add_argument("--device", choices=list_backends(), default="guadalupe")
    parser.add_argument("--gamma", type=float, default=0.9)
    parser.add_argument("--beta", type=float, default=0.45)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    graph = nx.cycle_graph(args.nodes)
    circuit = build_qaoa_circuit(graph, [args.gamma], [args.beta])
    print(f"Logical QAOA circuit (p=1, C{args.nodes}):")
    print(draw(circuit))

    backend = get_backend(args.device)
    result = transpile(circuit, backend, trials=8, seed=args.seed)
    print(f"\nTranspiled to {backend.name} ({backend.num_qubits} qubits, "
          f"basis {backend.basis_gates}):")
    print(f"  depth {result.depth}, {result.swap_count} SWAPs, "
          f"{result.circuit.two_qubit_gate_count()} two-qubit gates")

    ideal = maxcut_expectation(graph, [args.gamma], [args.beta])
    for noisy in (False, True):
        executor = DeviceExecutor(backend, noisy=noisy, seed=args.seed)
        value = executor.maxcut_expectation(graph, [args.gamma], [args.beta])
        label = "noisy " if noisy else "ideal "
        print(f"  {label}execution: <H_c> = {value:.4f}"
              + ("" if noisy else f"  (reference {ideal:.4f})"))

    executor = DeviceExecutor(backend, noisy=True, seed=args.seed)
    counts = executor.sample_cuts(graph, [args.gamma], [args.beta], shots=512)
    top = sorted(counts.items(), key=lambda kv: -kv[1])[:4]
    print("\nTop sampled bitstrings (logical order):")
    for index, count in top:
        bits = format(index, f"0{args.nodes}b")[::-1]
        print(f"  |{bits}>  x{count}")


if __name__ == "__main__":
    main()
