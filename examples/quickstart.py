#!/usr/bin/env python3
"""Quickstart: solve MaxCut with Red-QAOA on a random graph.

Runs the full pipeline of the paper's Fig. 4 -- distill the graph with
simulated annealing, search QAOA parameters on the small circuit, transfer
them back, fine-tune, and sample a cut -- then compares against the exact
optimum.

Usage::

    python examples/quickstart.py [--nodes 12] [--seed 7]
"""

import argparse

import networkx as nx

from repro import RedQAOA, approximation_ratio, brute_force_maxcut


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=12, help="graph size (<= 20)")
    parser.add_argument("--edge-prob", type=float, default=0.4, help="G(n, p) edge probability")
    parser.add_argument("--seed", type=int, default=7, help="random seed")
    parser.add_argument("--p", type=int, default=1, help="QAOA depth")
    args = parser.parse_args()

    graph = nx.erdos_renyi_graph(args.nodes, args.edge_prob, seed=args.seed)
    while not (graph.number_of_edges() and nx.is_connected(graph)):
        args.seed += 1
        graph = nx.erdos_renyi_graph(args.nodes, args.edge_prob, seed=args.seed)

    print(f"Input graph: {graph.number_of_nodes()} nodes, {graph.number_of_edges()} edges")

    red = RedQAOA(p=args.p, seed=args.seed)
    result = red.run(graph)

    reduction = result.reduction
    print(
        f"Distilled graph: {reduction.reduced_graph.number_of_nodes()} nodes "
        f"({reduction.node_reduction:.0%} node / {reduction.edge_reduction:.0%} edge reduction, "
        f"AND ratio {reduction.and_ratio:.2f})"
    )
    print(
        f"Optimization: {result.num_reduced_evaluations} evaluations on the distilled "
        f"circuit, {result.num_original_evaluations} on the full circuit"
    )
    print(f"Final parameters: gamma={result.gammas.round(3)}, beta={result.betas.round(3)}")
    print(f"QAOA expectation on the original graph: {result.expectation:.3f}")

    optimum, _ = brute_force_maxcut(graph)
    ratio = approximation_ratio(result.cut_value, optimum)
    print(f"Best sampled cut: {result.cut_value:.0f} / optimum {optimum:.0f} "
          f"(approximation ratio {ratio:.2%})")


if __name__ == "__main__":
    main()
