#!/usr/bin/env python3
"""Dashboards & health study: flight recorder, watchdog, top, bench gate.

Walks layer two of ``repro.obs`` end to end, in one process:

1. start a :class:`ServeDaemon` with a flight recorder
   (``history_path=``) and an aggressive stuck-shard watchdog, and run a
   small campaign through it;
2. poll the new ``health`` protocol verb while work is in flight and
   print the verdict with its per-check detail;
3. SIGKILL a worker mid-run and watch the verdict flip ``ok`` ->
   ``degraded`` -> back to ``ok`` once the pool respawns -- while every
   result stays bit-identical to the sequential oracle;
4. render one ``red-qaoa top`` frame against the live daemon;
5. shut down, then read the flight-recorder ring back into time series
   (throughput from counter deltas, queue-depth curve);
6. feed the recorded history plus a synthetic "regressed" benchmark
   through the noise-aware ``bench compare`` gate.

Usage::

    python examples/health_study.py [--nodes 10] [--count 8] [--workers 2]
"""

import argparse
import contextlib
import os
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.datasets import suite_manifest
from repro.obs.history import HistorySeries
from repro.obs.regress import compare, metrics_from_history
from repro.obs.top import Top
from repro.serve import ServeClient, ServeDaemon, wait_for_socket
from repro.service.campaign import manifest_specs
from repro.service.jobs import run_job


def wait_for(predicate, timeout: float = 30.0, poll: float = 0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(poll)
    raise TimeoutError("condition not met in time")


def run_live_study(client, daemon, manifest: dict, args) -> None:
    """Everything that needs the daemon up: health, kill, top, purity."""
    print(f"=== campaign: {args.count} jobs, {args.workers} workers ===")
    ticket = client.submit(manifest)["ticket"]

    report = client.health()["health"]
    print(f"health while busy: {report['status']}")
    for name, status in sorted(report["checks"].items()):
        print(f"  {name}: {status}")

    print("\n=== SIGKILL a worker mid-run ===")
    victim = client.status()["workers"]["pids"][0]
    os.kill(victim, signal.SIGKILL)
    print(f"killed worker pid {victim}")
    degraded = wait_for(
        lambda: (r := client.health()["health"])["status"] != "ok" and r
    )
    tripped = [n for n, s in degraded["checks"].items() if s != "ok"]
    print(f"verdict: {degraded['status']}  tripped: {', '.join(tripped)}")
    for reason in degraded["reasons"]:
        print(f"  ! {reason['detail']}")

    final = client.wait(ticket, timeout=600)
    assert final["counts"] == {"done": args.count}, final["counts"]
    recovered = wait_for(
        lambda: (r := client.health()["health"])["status"] == "ok" and r
    )
    print(f"after respawn + drain: {recovered['status']}")

    print("\n=== one `red-qaoa top` frame against the live daemon ===")
    top = Top(daemon.socket_path, color=sys.stdout.isatty())
    top.frame()  # prime the rate window
    time.sleep(0.3)
    print(top.frame(), end="")

    print("\n=== purity: every result equals the sequential oracle ===")
    results = {job["fingerprint"]: job["result"] for job in final["jobs"]}
    for spec in manifest_specs(manifest):
        oracle = run_job(spec)
        got = results[spec.fingerprint]
        assert got["gammas"] == oracle.gammas, spec.label
        assert got["expectation"] == oracle.expectation, spec.label
    print("bit-identical: True")


def post_mortem(history_path: Path) -> None:
    """Read the flight-recorder ring back and run the bench gate on it."""
    print("\n=== flight-recorder ring -> time series ===")
    series = HistorySeries.load(history_path)
    print(f"snapshots: {len(series.records)}  restarts: {series.restarts}")
    rates = series.counter_rate("redqaoa_jobs_completed_total")
    if rates:
        peak = max(rate for _, rate in rates)
        print(f"peak throughput: {peak:.2f} jobs/s over {len(rates)} intervals")
    depth = series.gauge_series("redqaoa_queue_depth")
    if depth:
        print(f"queue depth curve: {[int(v) for _, v in depth[:12]]} ...")

    print("\n=== bench gate: recorded history vs a synthetic regression ===")
    baseline = {
        "label": "recorded",
        "metrics": metrics_from_history(series.records),
    }
    jobs_per_sec = baseline["metrics"]["serve_jobs_per_sec"]["value"]
    regressed = {
        "label": "regressed",
        "metrics": {
            "serve_jobs_per_sec": {
                "value": jobs_per_sec * 0.3,
                "kind": "rate",
                "direction": "higher",
            }
        },
    }
    outcome = compare([baseline, regressed])
    for row in outcome["rows"]:
        flag = "REGRESSED" if row["regressed"] else "ok"
        print(
            f"  {row['metric']}: {row['baseline']:.2f} -> {row['value']:.2f} "
            f"({row['change'] * 100:+.1f}% vs floor {row['floor'] * 100:.0f}%) {flag}"
        )
    assert not outcome["ok"], "a -70% throughput drop must trip the gate"
    print("gate verdict: regression caught")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=10)
    parser.add_argument("--count", type=int, default=8)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    manifest = suite_manifest(
        "maxcut",
        count=args.count,
        num_qubits=args.nodes,
        seed=args.seed,
        restarts=2,
        maxiter=20,
    )

    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        history_path = tmp / "history.jsonl"
        daemon = ServeDaemon(
            socket_path=tmp / "serve.sock",
            store_path=tmp / "results.jsonl",
            workers=args.workers,
            pool="process",
            history_path=history_path,
            history_interval=0.2,
            stuck_after=30.0,
            health_window=5.0,
        )
        thread = threading.Thread(
            target=daemon.serve_forever,
            kwargs={"install_signal_handlers": False},
            daemon=True,
        )
        thread.start()
        wait_for_socket(daemon.socket_path)
        client = ServeClient(daemon.socket_path, timeout=600)

        try:
            run_live_study(client, daemon, manifest, args)
        finally:
            with contextlib.suppress(Exception):
                client.shutdown()
            thread.join(timeout=60)

        post_mortem(history_path)


if __name__ == "__main__":
    main()
