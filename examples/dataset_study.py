#!/usr/bin/env python3
"""Dataset study: graph reduction quality on AIDS / Linux / IMDb.

Mirrors the paper artifact's ``mse_ideal.py``: load a benchmark dataset,
distill each graph with Red-QAOA's reducer, and report node/edge reduction
ratios and the landscape MSE between the distilled and original graphs
(Secs. 6.2-6.3, Figs. 13-16).

Usage::

    python examples/dataset_study.py --graph-set aids --num-graphs 10 --p 1
    python examples/dataset_study.py --graph-set imdb --min-nodes 10 --max-nodes 20
"""

import argparse

import numpy as np

from repro.core.reduction import GraphReducer
from repro.datasets import DATASET_NAMES, load_dataset
from repro.qaoa.landscape import (
    evaluate_parameter_sets,
    landscape_mse,
    sample_parameter_sets,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--graph-set", choices=DATASET_NAMES, default="aids")
    parser.add_argument("--num-graphs", type=int, default=10)
    parser.add_argument("--p", type=int, default=1, help="QAOA layers")
    parser.add_argument("--num-points", type=int, default=512,
                        help="random parameter sets for the MSE estimate")
    parser.add_argument("--min-nodes", type=int, default=5)
    parser.add_argument("--max-nodes", type=int, default=10)
    parser.add_argument("--and-threshold", type=float, default=0.7)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    graphs = load_dataset(
        args.graph_set, count=args.num_graphs,
        min_nodes=args.min_nodes, max_nodes=args.max_nodes, seed=args.seed,
    )
    reducer = GraphReducer(and_ratio_threshold=args.and_threshold, seed=args.seed)
    gammas, betas = sample_parameter_sets(args.p, args.num_points, seed=args.seed)

    print(f"Dataset {args.graph_set}: {len(graphs)} graphs, "
          f"{args.min_nodes}-{args.max_nodes} nodes, p={args.p}")
    print(f"{'graph':>6} {'nodes':>6} {'kept':>5} {'node_red':>9} {'edge_red':>9} {'mse':>8}")

    node_reds, edge_reds, mses = [], [], []
    for index, graph in enumerate(graphs):
        reduction = reducer.reduce(graph)
        reference = evaluate_parameter_sets(graph, gammas, betas)
        candidate = evaluate_parameter_sets(reduction.reduced_graph, gammas, betas)
        mse = landscape_mse(reference, candidate)
        node_reds.append(reduction.node_reduction)
        edge_reds.append(reduction.edge_reduction)
        mses.append(mse)
        print(f"{index:>6} {graph.number_of_nodes():>6} "
              f"{reduction.reduced_graph.number_of_nodes():>5} "
              f"{reduction.node_reduction:>9.0%} {reduction.edge_reduction:>9.0%} "
              f"{mse:>8.4f}")

    print("-" * 48)
    print(f"average node reduction: {np.mean(node_reds):.1%}   "
          f"edge reduction: {np.mean(edge_reds):.1%}   "
          f"MSE: {np.mean(mses):.4f}")
    print("(paper, all three datasets <= 10 nodes: 28% nodes, 37% edges, MSE ~0.02)")


if __name__ == "__main__":
    main()
