"""Tests for repro.qaoa.fast_sim: the specialized QAOA engine."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qaoa.circuit_builder import build_qaoa_circuit
from repro.qaoa.fast_sim import (
    FastNoiseSpec,
    noisy_qaoa_expectation_fast,
    noisy_qaoa_probabilities,
    qaoa_expectation_batch,
    qaoa_expectation_fast,
    qaoa_probabilities,
    qaoa_statevector,
)
from repro.qaoa.hamiltonian import MaxCutHamiltonian
from repro.quantum.statevector import StatevectorSimulator


def _connected_er(n, p, seed):
    offset = 0
    while True:
        g = nx.erdos_renyi_graph(n, p, seed=seed + offset)
        if g.number_of_edges() and nx.is_connected(g):
            return g
        offset += 100


class TestIdealEngine:
    def test_matches_gate_level_simulator(self):
        g = _connected_er(6, 0.5, 0)
        ham = MaxCutHamiltonian(g)
        gammas, betas = [0.8, 1.7], [0.3, 0.9]
        fast = qaoa_expectation_fast(ham, gammas, betas)
        circuit = build_qaoa_circuit(g, gammas, betas)
        gate = StatevectorSimulator().expectation_diagonal(circuit, ham.diagonal)
        assert fast == pytest.approx(gate, abs=1e-10)

    def test_statevector_normalized(self):
        ham = MaxCutHamiltonian(nx.cycle_graph(5))
        state = qaoa_statevector(ham, [0.5], [0.4])
        assert np.linalg.norm(state) == pytest.approx(1.0)

    def test_zero_parameters_give_uniform_state(self):
        ham = MaxCutHamiltonian(nx.cycle_graph(4))
        probs = qaoa_probabilities(ham, [0.0], [0.0])
        assert np.allclose(probs, 1 / 16)

    def test_zero_parameters_expectation_is_half_edges(self):
        g = _connected_er(7, 0.4, 3)
        ham = MaxCutHamiltonian(g)
        value = qaoa_expectation_fast(ham, [0.0], [0.0])
        assert value == pytest.approx(g.number_of_edges() / 2)

    def test_expectation_bounded(self):
        g = _connected_er(6, 0.6, 5)
        ham = MaxCutHamiltonian(g)
        for seed in range(5):
            rng = np.random.default_rng(seed)
            value = qaoa_expectation_fast(
                ham, [rng.uniform(0, 2 * np.pi)], [rng.uniform(0, np.pi)]
            )
            assert 0 <= value <= g.number_of_edges()

    def test_parameter_validation(self):
        ham = MaxCutHamiltonian(nx.path_graph(3))
        with pytest.raises(ValueError):
            qaoa_statevector(ham, [0.1, 0.2], [0.3])
        with pytest.raises(ValueError):
            qaoa_statevector(ham, [], [])

    def test_gamma_periodicity_unweighted(self):
        """Integer cut values make the cost layer 2*pi-periodic in gamma."""
        ham = MaxCutHamiltonian(_connected_er(6, 0.5, 9))
        a = qaoa_expectation_fast(ham, [0.7], [0.4])
        b = qaoa_expectation_fast(ham, [0.7 + 2 * np.pi], [0.4])
        assert a == pytest.approx(b)


class TestBatchEngine:
    def test_matches_scalar(self):
        ham = MaxCutHamiltonian(_connected_er(6, 0.5, 1))
        rng = np.random.default_rng(0)
        gammas = rng.uniform(0, 2 * np.pi, size=(17, 2))
        betas = rng.uniform(0, np.pi, size=(17, 2))
        batch = qaoa_expectation_batch(ham, gammas, betas, chunk_size=5)
        scalar = np.array(
            [qaoa_expectation_fast(ham, g, b) for g, b in zip(gammas, betas)]
        )
        assert np.allclose(batch, scalar, atol=1e-10)

    def test_chunking_boundary(self):
        ham = MaxCutHamiltonian(nx.cycle_graph(4))
        gammas = np.full((8, 1), 0.3)
        betas = np.full((8, 1), 0.2)
        out_small = qaoa_expectation_batch(ham, gammas, betas, chunk_size=3)
        out_large = qaoa_expectation_batch(ham, gammas, betas, chunk_size=100)
        assert np.allclose(out_small, out_large)

    def test_shape_mismatch(self):
        ham = MaxCutHamiltonian(nx.path_graph(3))
        with pytest.raises(ValueError):
            qaoa_expectation_batch(ham, np.zeros((3, 1)), np.zeros((4, 1)))

    def test_custom_observable(self):
        """Measuring one edge's cut indicator matches summing probabilities."""
        from repro.qaoa.fast_sim import qaoa_probabilities

        g = _connected_er(6, 0.5, 2)
        ham = MaxCutHamiltonian(g)
        z = np.arange(2**ham.num_qubits, dtype=np.uint64)
        u, v = ham.edges[0]
        cut = (((z >> np.uint64(u)) ^ (z >> np.uint64(v))) & np.uint64(1)).astype(float)
        rng = np.random.default_rng(3)
        gammas = rng.uniform(0, 2 * np.pi, size=(9, 2))
        betas = rng.uniform(0, np.pi, size=(9, 2))
        batch = qaoa_expectation_batch(ham, gammas, betas, observable=cut)
        for i in (0, 4, 8):
            probs = qaoa_probabilities(ham, list(gammas[i]), list(betas[i]))
            assert batch[i] == pytest.approx(float(probs @ cut), abs=1e-12)

    def test_observable_shape_rejected(self):
        ham = MaxCutHamiltonian(nx.path_graph(3))
        with pytest.raises(ValueError):
            qaoa_expectation_batch(
                ham, np.zeros((2, 1)), np.zeros((2, 1)), observable=np.zeros(3)
            )

    def test_weighted_diagonal_phase_table_fallback(self):
        """Weighted graphs with many distinct cut values skip the phase
        table; results must not change."""
        g = _connected_er(7, 0.5, 4)
        rng = np.random.default_rng(5)
        for a, b in g.edges():
            g[a][b]["weight"] = float(rng.uniform(0.5, 1.5))
        ham = MaxCutHamiltonian(g)
        gammas = rng.uniform(0, 2 * np.pi, size=(5, 2))
        betas = rng.uniform(0, np.pi, size=(5, 2))
        batch = qaoa_expectation_batch(ham, gammas, betas)
        scalar = np.array(
            [qaoa_expectation_fast(ham, gg, bb) for gg, bb in zip(gammas, betas)]
        )
        assert np.allclose(batch, scalar, atol=1e-10)


class TestFastNoiseSpec:
    def test_trivial(self):
        assert FastNoiseSpec().is_trivial
        assert not FastNoiseSpec(edge_error=0.01).is_trivial

    def test_bounds(self):
        with pytest.raises(ValueError):
            FastNoiseSpec(edge_error=1.5)
        with pytest.raises(ValueError):
            FastNoiseSpec(node_error=-0.1)

    def test_non_finite_biases_rejected(self):
        with pytest.raises(ValueError, match="edge_phase_bias"):
            FastNoiseSpec(edge_phase_bias=(0.01, float("nan")))
        with pytest.raises(ValueError, match="node_mixer_bias"):
            FastNoiseSpec(node_mixer_bias=(float("inf"),))
        with pytest.raises(ValueError, match=r"\[0\]"):
            FastNoiseSpec(edge_phase_bias=(float("-inf"), 0.02))

    def test_finite_biases_accepted(self):
        spec = FastNoiseSpec(edge_phase_bias=(0.01, -0.02), node_mixer_bias=(0.0,))
        assert spec.edge_phase_bias == (0.01, -0.02)

    def test_from_backend(self):
        from repro.quantum.backends import get_backend

        spec = FastNoiseSpec.from_backend(get_backend("kolkata"))
        assert 0 < spec.edge_error < 0.1
        assert spec.readout_error == get_backend("kolkata").error_readout


class TestNoisyEngine:
    def test_trivial_noise_matches_ideal(self):
        ham = MaxCutHamiltonian(_connected_er(5, 0.6, 2))
        probs = noisy_qaoa_probabilities(ham, [0.5], [0.3], FastNoiseSpec(), seed=0)
        ideal = qaoa_probabilities(ham, [0.5], [0.3])
        assert np.allclose(probs, ideal)

    def test_noise_damps_expectation_at_optimum(self):
        g = _connected_er(8, 0.4, 7)
        ham = MaxCutHamiltonian(g)
        # Find a good parameter point first.
        best = None
        for gamma in np.linspace(0.1, 2, 8):
            for beta in np.linspace(0.1, 1.4, 8):
                val = qaoa_expectation_fast(ham, [gamma], [beta])
                if best is None or val > best[0]:
                    best = (val, gamma, beta)
        ideal, gamma, beta = best
        noise = FastNoiseSpec(edge_error=0.05, node_error=0.005, readout_error=0.02)
        noisy = noisy_qaoa_expectation_fast(
            ham, [gamma], [beta], noise, trajectories=40, seed=1
        )
        assert noisy < ideal

    def test_heavy_noise_approaches_random_guessing(self):
        g = _connected_er(6, 0.5, 4)
        ham = MaxCutHamiltonian(g)
        noise = FastNoiseSpec(edge_error=0.9, node_error=0.5, readout_error=0.4)
        noisy = noisy_qaoa_expectation_fast(
            ham, [0.9], [0.6], noise, trajectories=60, seed=2
        )
        assert noisy == pytest.approx(g.number_of_edges() / 2, rel=0.15)

    def test_probabilities_normalized(self):
        ham = MaxCutHamiltonian(_connected_er(6, 0.5, 8))
        noise = FastNoiseSpec(edge_error=0.1, node_error=0.02, readout_error=0.05)
        probs = noisy_qaoa_probabilities(ham, [1.0], [0.5], noise, trajectories=5, seed=3)
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= 0).all()

    def test_seeded_reproducibility(self):
        ham = MaxCutHamiltonian(_connected_er(6, 0.5, 8))
        noise = FastNoiseSpec(edge_error=0.1, node_error=0.02)
        a = noisy_qaoa_expectation_fast(ham, [1.0], [0.5], noise, trajectories=6, seed=11)
        b = noisy_qaoa_expectation_fast(ham, [1.0], [0.5], noise, trajectories=6, seed=11)
        assert a == b

    def test_shot_noise_varies(self):
        ham = MaxCutHamiltonian(_connected_er(6, 0.5, 8))
        values = {
            noisy_qaoa_expectation_fast(
                ham, [1.0], [0.5], FastNoiseSpec(), shots=64, seed=s
            )
            for s in range(5)
        }
        assert len(values) > 1

    def test_invalid_trajectories(self):
        ham = MaxCutHamiltonian(nx.path_graph(3))
        with pytest.raises(ValueError):
            noisy_qaoa_probabilities(ham, [0.1], [0.1], FastNoiseSpec(), trajectories=0)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    gamma=st.floats(min_value=0.0, max_value=2 * np.pi),
    beta=st.floats(min_value=0.0, max_value=np.pi),
)
def test_property_expectation_within_cut_bounds(seed, gamma, beta):
    """For any graph and parameters, 0 <= <H_c> <= |E|."""
    g = _connected_er(5 + seed % 3, 0.5, seed)
    ham = MaxCutHamiltonian(g)
    value = qaoa_expectation_fast(ham, [gamma], [beta])
    assert -1e-9 <= value <= g.number_of_edges() + 1e-9
