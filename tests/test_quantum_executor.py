"""Tests for repro.quantum.executor (the gate-level device pipeline)."""

import networkx as nx
import numpy as np
import pytest

from repro.qaoa.expectation import maxcut_expectation
from repro.qaoa.maxcut import cut_size
from repro.quantum.backends import get_backend
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.executor import DeviceExecutor


def _connected_er(n, p, seed):
    offset = 0
    while True:
        g = nx.erdos_renyi_graph(n, p, seed=seed + offset)
        if g.number_of_edges() and nx.is_connected(g):
            return g
        offset += 100


class TestRun:
    def test_probabilities_normalized(self):
        executor = DeviceExecutor(get_backend("guadalupe"), seed=0)
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.cx(1, 2)
        result = executor.run(qc)
        assert result.probabilities.sum() == pytest.approx(1.0)
        assert result.depth > 0

    def test_simulator_selection_small(self):
        executor = DeviceExecutor(get_backend("guadalupe"), seed=0)
        qc = QuantumCircuit(3)
        qc.h(0)
        result = executor.run(qc)
        assert result.simulator == "density_matrix"

    def test_simulator_selection_large(self):
        executor = DeviceExecutor(get_backend("kolkata"), trajectories=2, seed=0)
        qc = QuantumCircuit(12)
        for q in range(12):
            qc.h(q)
        for q in range(11):
            qc.cx(q, q + 1)
        result = executor.run(qc)
        assert result.simulator == "trajectories"

    def test_trial_validation(self):
        with pytest.raises(ValueError):
            DeviceExecutor(get_backend("kolkata"), transpile_trials=0)


class TestMaxCutExpectation:
    def test_ideal_executor_matches_reference(self):
        graph = _connected_er(5, 0.6, 0)
        executor = DeviceExecutor(get_backend("kolkata"), noisy=False, seed=0)
        value = executor.maxcut_expectation(graph, [0.8], [0.4])
        reference = maxcut_expectation(graph, [0.8], [0.4])
        assert value == pytest.approx(reference, abs=1e-8)

    def test_noisy_executor_damps_at_optimum(self):
        graph = nx.cycle_graph(4)
        gammas, betas = [1.1], [0.39]  # near-optimal for C4
        ideal = maxcut_expectation(graph, gammas, betas)
        executor = DeviceExecutor(get_backend("toronto"), noisy=True, seed=0)
        noisy = executor.maxcut_expectation(graph, gammas, betas)
        assert noisy < ideal

    def test_better_device_less_damping(self):
        graph = _connected_er(5, 0.6, 2)
        gammas, betas = [0.9], [0.5]
        ideal = maxcut_expectation(graph, gammas, betas)
        values = {}
        for device in ("kolkata", "melbourne"):
            executor = DeviceExecutor(get_backend(device), noisy=True, seed=0)
            values[device] = executor.maxcut_expectation(graph, gammas, betas)
        # Only meaningful when the point is above random guessing.
        if ideal > graph.number_of_edges() / 2:
            assert abs(values["kolkata"] - ideal) <= abs(values["melbourne"] - ideal) + 0.05

    def test_weighted_graph_supported(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=2.0)
        graph.add_edge(1, 2, weight=0.5)
        executor = DeviceExecutor(get_backend("kolkata"), noisy=False, seed=0)
        value = executor.maxcut_expectation(graph, [0.6], [0.3])
        reference = maxcut_expectation(graph, [0.6], [0.3])
        assert value == pytest.approx(reference, abs=1e-8)


class TestSampleCuts:
    def test_counts_total_and_logical_support(self):
        graph = nx.cycle_graph(4)
        executor = DeviceExecutor(get_backend("kolkata"), noisy=False, seed=0)
        counts = executor.sample_cuts(graph, [1.1], [0.39], shots=300)
        assert sum(counts.values()) == 300
        assert all(0 <= k < 16 for k in counts)

    def test_logical_mapping_consistent(self):
        """At near-optimal parameters on C4 the dominant ideal samples cut
        all four edges -- verify after mapping back through the layout."""
        graph = nx.cycle_graph(4)
        executor = DeviceExecutor(get_backend("kolkata"), noisy=False, seed=1)
        counts = executor.sample_cuts(graph, [1.1], [0.39], shots=400)
        best = max(counts, key=counts.get)
        assignment = {q: (best >> q) & 1 for q in range(4)}
        assert cut_size(graph, assignment) == 4

    def test_shots_validated(self):
        executor = DeviceExecutor(get_backend("kolkata"), seed=0)
        with pytest.raises(ValueError):
            executor.sample_cuts(nx.path_graph(3), [0.1], [0.1], shots=0)
