"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = as_generator(42).integers(0, 1000, size=10)
        b = as_generator(42).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 10**9, size=10)
        b = as_generator(2).integers(0, 10**9, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough_is_identity(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_shared_generator_advances_state(self):
        gen = as_generator(7)
        first = as_generator(gen).random()
        second = as_generator(gen).random()
        assert first != second


class TestSpawn:
    def test_spawn_count(self):
        children = spawn(as_generator(0), 5)
        assert len(children) == 5

    def test_spawn_zero(self):
        assert spawn(as_generator(0), 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(as_generator(0), -1)

    def test_children_are_independent(self):
        children = spawn(as_generator(0), 2)
        a = children[0].integers(0, 10**9, size=20)
        b = children[1].integers(0, 10**9, size=20)
        assert not np.array_equal(a, b)

    def test_spawn_is_reproducible(self):
        a = spawn(as_generator(3), 2)[0].random(5)
        b = spawn(as_generator(3), 2)[0].random(5)
        assert np.array_equal(a, b)
