"""Tests for repro.serve daemon + protocol + client over a real unix socket."""

import contextlib
import threading

import pytest

from repro.serve.client import Backpressure, ServeClient, ServeError, wait_for_socket
from repro.serve.daemon import ServeDaemon
from repro.serve.protocol import ProtocolError, decode_line, encode
from repro.service.campaign import manifest_specs
from repro.service.jobs import run_job
from repro.service.store import ResultStore


def _manifest(count: int = 3, nodes: int = 8, seed: int = 0) -> dict:
    return {
        "schema": 1,
        "defaults": {"restarts": 1, "maxiter": 6},
        "jobs": [
            {"kind": "maxcut", "nodes": nodes, "seed": seed + index}
            for index in range(count)
        ],
    }


_POISON_MANIFEST = {
    "schema": 1,
    "jobs": [{"kind": "mis", "nodes": 27, "seed": 0, "restarts": 1, "maxiter": 4}],
}


@contextlib.contextmanager
def _daemon(tmp_path, **kwargs):
    kwargs.setdefault("store_path", tmp_path / "store.jsonl")
    daemon = ServeDaemon(socket_path=tmp_path / "serve.sock", **kwargs)
    thread = threading.Thread(
        target=daemon.serve_forever,
        kwargs={"install_signal_handlers": False},
        daemon=True,
    )
    thread.start()
    wait_for_socket(daemon.socket_path)
    client = ServeClient(daemon.socket_path)
    try:
        yield daemon, client
    finally:
        if not daemon._stopped:
            with contextlib.suppress(OSError, ServeError):
                client.shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive(), "daemon failed to stop"


class TestProtocol:
    def test_encode_decode_round_trip(self):
        line = encode({"op": "status"})
        assert line.endswith(b"\n")
        assert decode_line(line) == {"op": "status"}

    def test_rejects_garbage_and_unknown_ops(self):
        with pytest.raises(ProtocolError):
            decode_line(b"not json\n")
        with pytest.raises(ProtocolError):
            decode_line(b'{"op": "explode"}\n')
        with pytest.raises(ProtocolError):
            decode_line(b'{"op": "submit"}\n')  # missing manifest
        with pytest.raises(ProtocolError):
            decode_line(b'{"op": "poll"}\n')  # missing ticket


class TestLifecycle:
    def test_submit_poll_and_results_match_sequential(self, tmp_path):
        manifest = _manifest(count=3)
        specs = manifest_specs(manifest)
        with _daemon(tmp_path, workers=1) as (daemon, client):
            reply = client.submit(manifest)
            assert [job["status"] for job in reply["jobs"]] == ["queued"] * 3
            final = client.wait(reply["ticket"], timeout=120)
            assert final["done"] and final["counts"] == {"done": 3}
            by_fp = {job["fingerprint"]: job["result"] for job in final["jobs"]}
            for spec in specs:
                expected = run_job(spec)
                got = by_fp[spec.fingerprint]
                assert got["gammas"] == expected.gammas
                assert got["betas"] == expected.betas
                assert got["expectation"] == expected.expectation
        # completed results survived the daemon in the store
        survivor = ResultStore(tmp_path / "store.jsonl")
        assert len(survivor) == 3

    def test_four_workers_bit_identical_to_one(self, tmp_path):
        manifest = _manifest(count=8)

        def run_with(workers, directory):
            directory.mkdir()
            with _daemon(directory, workers=workers) as (daemon, client):
                ticket = client.submit(manifest)["ticket"]
                final = client.wait(ticket, timeout=300)
                assert final["counts"] == {"done": 8}
                return {job["fingerprint"]: job["result"] for job in final["jobs"]}

        assert run_with(1, tmp_path / "w1") == run_with(4, tmp_path / "w4")

    def test_resubmission_is_served_from_cache(self, tmp_path):
        manifest = _manifest(count=2)
        with _daemon(tmp_path) as (daemon, client):
            first = client.submit(manifest)
            client.wait(first["ticket"], timeout=120)
            again = client.submit(manifest)
            assert [job["status"] for job in again["jobs"]] == ["cached"] * 2
            final = client.poll(again["ticket"])
            assert final["done"] and final["counts"] == {"done": 2}

    def test_store_survives_restart(self, tmp_path):
        manifest = _manifest(count=2)
        with _daemon(tmp_path) as (daemon, client):
            client.wait(client.submit(manifest)["ticket"], timeout=120)
        # a fresh daemon on the same store recomputes nothing
        with _daemon(tmp_path) as (daemon, client):
            reply = client.submit(manifest)
            assert [job["status"] for job in reply["jobs"]] == ["cached"] * 2
            assert daemon.queue.stats()["completed"] == 0  # nothing executed

    def test_stream_pushes_every_result_then_done(self, tmp_path):
        manifest = _manifest(count=3)
        with _daemon(tmp_path) as (daemon, client):
            ticket = client.submit(manifest)["ticket"]
            events = list(client.stream(ticket))
            assert [e["event"] for e in events[:-1]] == ["result"] * 3
            assert events[-1] == {
                "event": "done",
                "ticket": ticket,
                "counts": {"done": 3},
            }

    def test_status_reports_queue_workers_and_store(self, tmp_path):
        with _daemon(tmp_path, workers=1) as (daemon, client):
            status = client.status()
            assert status["ok"]
            assert status["workers"]["count"] == 1
            assert status["workers"]["pids"]
            assert status["queue"]["high_water"] == daemon.queue.high_water
            assert status["store"]["results"] == 0


class TestRefusals:
    def test_backpressure_surfaces_as_retry_after(self, tmp_path):
        # high_water=1 and a 3-job manifest: atomic admission rejects it
        with _daemon(tmp_path, high_water=1) as (daemon, client):
            with pytest.raises(Backpressure) as excinfo:
                client.submit(_manifest(count=3))
            assert excinfo.value.retry_after >= 1.0
            assert daemon.queue.depth == 0  # all-or-nothing: nothing admitted
            # a manifest that fits still goes through
            reply = client.submit(_manifest(count=1))
            client.wait(reply["ticket"], timeout=120)

    def test_bad_manifest_and_unknown_ticket(self, tmp_path):
        with _daemon(tmp_path) as (daemon, client):
            with pytest.raises(ServeError, match="bad manifest"):
                client.submit({"jobs": []})
            with pytest.raises(ServeError, match="unknown ticket"):
                client.poll("t-999999")

    def test_drain_refuses_new_submissions(self, tmp_path):
        with _daemon(tmp_path) as (daemon, client):
            ticket = client.submit(_manifest(count=2))["ticket"]
            assert client.drain()["draining"]
            with pytest.raises(ServeError, match="draining"):
                client.submit(_manifest(count=1, seed=50))
            # already-admitted work still finishes and remains pollable
            final = client.wait(ticket, timeout=120)
            assert final["counts"] == {"done": 2}

    def test_poison_job_reports_dead_with_error(self, tmp_path):
        with _daemon(tmp_path, max_attempts=2) as (daemon, client):
            ticket = client.submit(_POISON_MANIFEST)["ticket"]
            final = client.wait(ticket, timeout=120)
            assert final["counts"] == {"dead": 1}
            entry = final["jobs"][0]
            assert entry["status"] == "dead"
            assert "EngineLimitError" in entry["error"]
            assert entry["attempts"] == 2
        # parked durably: a fresh store shows the dead letter
        survivor = ResultStore(tmp_path / "store.jsonl")
        assert len(survivor.dead_letters()) == 1


class TestShutdown:
    def test_shutdown_drains_then_exits_and_removes_socket(self, tmp_path):
        manifest = _manifest(count=2)
        daemon = ServeDaemon(
            socket_path=tmp_path / "serve.sock", store_path=tmp_path / "store.jsonl"
        )
        thread = threading.Thread(
            target=daemon.serve_forever,
            kwargs={"install_signal_handlers": False},
            daemon=True,
        )
        thread.start()
        wait_for_socket(daemon.socket_path)
        client = ServeClient(daemon.socket_path)
        ticket = client.submit(manifest)["ticket"]
        reply = client.shutdown()
        assert reply["shutting_down"]
        thread.join(timeout=60)
        assert not thread.is_alive()
        assert not daemon.socket_path.exists()
        # everything admitted before shutdown completed and is durable
        survivor = ResultStore(tmp_path / "store.jsonl")
        assert len(survivor) == 2
        for spec in manifest_specs(manifest):
            assert survivor.get(spec.fingerprint) is not None
