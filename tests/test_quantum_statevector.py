"""Tests for repro.quantum.statevector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.statevector import StatevectorSimulator


@pytest.fixture
def sim():
    return StatevectorSimulator()


class TestBasics:
    def test_empty_circuit_is_zero_state(self, sim):
        state = sim.run(QuantumCircuit(2))
        assert np.allclose(state, [1, 0, 0, 0])

    def test_x_gate(self, sim):
        qc = QuantumCircuit(1)
        qc.x(0)
        assert np.allclose(sim.run(qc), [0, 1])

    def test_h_gate(self, sim):
        qc = QuantumCircuit(1)
        qc.h(0)
        assert np.allclose(sim.run(qc), np.array([1, 1]) / np.sqrt(2))

    def test_little_endian_ordering(self, sim):
        # X on qubit 1 of 2 -> basis index 2 (bit 1 set).
        qc = QuantumCircuit(2)
        qc.x(1)
        state = sim.run(qc)
        assert np.allclose(state, [0, 0, 1, 0])

    def test_bell_state(self, sim):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        state = sim.run(qc)
        expected = np.zeros(4)
        expected[0] = expected[3] = 1 / np.sqrt(2)
        assert np.allclose(state, expected)

    def test_ghz_state(self, sim):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.cx(1, 2)
        probs = np.abs(sim.run(qc)) ** 2
        assert probs[0] == pytest.approx(0.5)
        assert probs[7] == pytest.approx(0.5)

    def test_swap_gate(self, sim):
        qc = QuantumCircuit(2)
        qc.x(0)
        qc.swap(0, 1)
        assert np.allclose(sim.run(qc), [0, 0, 1, 0])

    def test_cx_direction_matters(self, sim):
        qc = QuantumCircuit(2)
        qc.x(1)
        qc.cx(1, 0)  # control qubit 1 (set) -> target flips
        assert np.allclose(sim.run(qc), [0, 0, 0, 1])

    def test_normalization_preserved(self, sim):
        qc = QuantumCircuit(3)
        for q in range(3):
            qc.h(q)
            qc.rx(0.7, q)
        qc.cx(0, 2)
        qc.rzz(1.1, 1, 2)
        state = sim.run(qc)
        assert np.linalg.norm(state) == pytest.approx(1.0)

    def test_initial_state_used(self, sim):
        qc = QuantumCircuit(1)
        qc.x(0)
        state = sim.run(qc, initial_state=np.array([0, 1], dtype=complex))
        assert np.allclose(state, [1, 0])

    def test_initial_state_shape_checked(self, sim):
        with pytest.raises(ValueError):
            sim.run(QuantumCircuit(2), initial_state=np.array([1, 0], dtype=complex))

    def test_max_qubits_guard(self):
        sim = StatevectorSimulator(max_qubits=3)
        with pytest.raises(ValueError):
            sim.run(QuantumCircuit(4))


class TestMeasurement:
    def test_probabilities_sum_to_one(self, sim):
        qc = QuantumCircuit(3)
        for q in range(3):
            qc.h(q)
        assert sim.probabilities(qc).sum() == pytest.approx(1.0)

    def test_expectation_diagonal(self, sim):
        qc = QuantumCircuit(1)
        qc.h(0)
        diag = np.array([0.0, 1.0])
        assert sim.expectation_diagonal(qc, diag) == pytest.approx(0.5)

    def test_expectation_shape_mismatch(self, sim):
        with pytest.raises(ValueError):
            sim.expectation_diagonal(QuantumCircuit(2), np.array([1.0, 2.0]))

    def test_sample_counts_total(self, sim):
        qc = QuantumCircuit(2)
        qc.h(0)
        counts = sim.sample_counts(qc, shots=100, seed=0)
        assert sum(counts.values()) == 100

    def test_sample_counts_support(self, sim):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        counts = sim.sample_counts(qc, shots=200, seed=1)
        assert set(counts).issubset({0, 3})

    def test_sample_counts_deterministic_state(self, sim):
        qc = QuantumCircuit(2)
        qc.x(0)
        counts = sim.sample_counts(qc, shots=50, seed=2)
        assert counts == {1: 50}

    def test_invalid_shots(self, sim):
        with pytest.raises(ValueError):
            sim.sample_counts(QuantumCircuit(1), shots=0)


class TestAgainstDenseMatrices:
    """Cross-check gate application against explicit kron products."""

    def _dense_unitary(self, circuit: QuantumCircuit) -> np.ndarray:
        from repro.quantum.gates import gate_matrix

        n = circuit.num_qubits
        total = np.eye(2**n, dtype=complex)
        for inst in circuit:
            matrix = gate_matrix(inst.name, inst.params)
            full = self._embed(matrix, inst.qubits, n)
            total = full @ total
        return total

    @staticmethod
    def _embed(matrix: np.ndarray, qubits: tuple, n: int) -> np.ndarray:
        from repro.quantum._kernels import apply_matrix

        dim = 2**n
        full = np.zeros((dim, dim), dtype=complex)
        for col in range(dim):
            basis = np.zeros(dim, dtype=complex)
            basis[col] = 1.0
            full[:, col] = apply_matrix(basis, matrix, qubits, n)
        return full

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_random_circuits_match_dense(self, seed):
        rng = np.random.default_rng(seed)
        n = 3
        qc = QuantumCircuit(n)
        gates_1q = ["h", "x", "rx", "ry", "rz"]
        for _ in range(8):
            if rng.random() < 0.6:
                name = gates_1q[rng.integers(len(gates_1q))]
                q = int(rng.integers(n))
                params = [float(rng.uniform(0, 2 * np.pi))] if name.startswith("r") else []
                qc.append(name, (q,), params)
            else:
                a, b = rng.choice(n, size=2, replace=False)
                qc.append("cx", (int(a), int(b)))
        sim = StatevectorSimulator()
        state = sim.run(qc)
        dense = self._dense_unitary(qc)
        expected = dense @ np.eye(2**n, dtype=complex)[:, 0]
        assert np.allclose(state, expected, atol=1e-10)
