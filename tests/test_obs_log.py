"""Tests for the EventLog file sink, rotation, and recent-events ring."""

import io
import json

import pytest

from repro.obs.log import EventLog, NullLog


class TestFileSink:
    def test_file_sink_writes_ndjson(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(level="info", path=path)
        log.info("daemon_started", workers=2)
        log.warning("dead_letter", job="abc")
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["event"] for l in lines] == ["daemon_started", "dead_letter"]
        assert lines[0]["workers"] == 2
        assert all("uptime" in l for l in lines)

    def test_threshold_still_filters_file_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(level="warning", path=path)
        log.info("quiet")
        log.warning("loud")
        lines = path.read_text().splitlines()
        assert len(lines) == 1 and "loud" in lines[0]

    def test_rotation_bounds_the_live_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(level="info", path=path, max_bytes=600, backups=1)
        for index in range(40):
            log.info("tick", index=index)
        assert path.stat().st_size <= 600
        backup = tmp_path / "events.jsonl.1"
        assert backup.exists() and backup.stat().st_size <= 600
        # nothing shifted past the backup count
        assert not (tmp_path / "events.jsonl.2").exists()
        # the live tail is intact NDJSON carrying the newest events
        last = json.loads(path.read_text().splitlines()[-1])
        assert last["index"] == 39

    def test_backups_shift_oldest_off_the_end(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(level="info", path=path, max_bytes=300, backups=2)
        for index in range(60):
            log.info("tick", index=index)
        assert (tmp_path / "events.jsonl.1").exists()
        assert (tmp_path / "events.jsonl.2").exists()
        assert not (tmp_path / "events.jsonl.3").exists()
        # ordering: .2 is older than .1 is older than the live file
        def first_index(p):
            return json.loads(p.read_text().splitlines()[0])["index"]
        assert (
            first_index(tmp_path / "events.jsonl.2")
            < first_index(tmp_path / "events.jsonl.1")
            < first_index(path)
        )

    def test_zero_backups_truncates_instead_of_rotating(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(level="info", path=path, max_bytes=300, backups=0)
        for index in range(40):
            log.info("tick", index=index)
        assert path.stat().st_size <= 300
        assert not (tmp_path / "events.jsonl.1").exists()

    def test_validates_parameters(self, tmp_path):
        with pytest.raises(ValueError):
            EventLog(path=tmp_path / "x", max_bytes=0)
        with pytest.raises(ValueError):
            EventLog(path=tmp_path / "x", backups=-1)
        with pytest.raises(ValueError):
            EventLog(level="noisy")


class TestRecentRing:
    def test_ring_keeps_info_events_below_emit_threshold(self):
        log = EventLog(level="error", stream=io.StringIO())
        log.info("worker_respawned", worker=1)
        log.debug("invisible")
        [event] = log.recent()
        assert event["event"] == "worker_respawned" and event["worker"] == 1

    def test_recent_returns_newest_oldest_first(self):
        log = EventLog(level="error", stream=io.StringIO(), ring=8)
        for index in range(12):
            log.info("tick", index=index)
        events = log.recent(3)
        assert [e["index"] for e in events] == [9, 10, 11]

    def test_ring_capacity_drops_oldest(self):
        log = EventLog(level="error", stream=io.StringIO(), ring=4)
        for index in range(10):
            log.info("tick", index=index)
        assert [e["index"] for e in log.recent(100)] == [6, 7, 8, 9]

    def test_null_log_recent_is_empty(self):
        log = NullLog()
        log.error("ignored")
        assert log.recent() == []
