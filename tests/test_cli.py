"""Tests for the repro.cli artifact-style entry points."""

import json

import pytest

from repro.cli import main


class TestMseNoisy:
    def test_runs_and_reports(self, capsys):
        code = main([
            "mse-noisy", "-n", "7", "--width", "6", "--shots", "256",
            "--trajectories", "2", "--seed", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "MSE noisy baseline" in out
        assert "MSE noisy Red-QAOA" in out

    def test_device_selection(self, capsys):
        code = main([
            "mse-noisy", "-n", "6", "--width", "5", "--shots", "128",
            "--trajectories", "2", "--device", "kolkata",
        ])
        assert code == 0
        assert "kolkata" in capsys.readouterr().out


class TestMseIdeal:
    def test_aids(self, capsys):
        code = main([
            "mse-ideal", "--graph-set", "aids", "--num-graphs", "3",
            "--p", "1", "--num-points", "64",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "node reduction" in out
        assert "mean MSE" in out

    def test_p2(self, capsys):
        code = main([
            "mse-ideal", "--graph-set", "linux", "--num-graphs", "2",
            "--p", "2", "--num-points", "32", "--min-nodes", "6",
        ])
        assert code == 0


class TestEndToEnd:
    def test_reports_ratios(self, capsys):
        code = main([
            "end-to-end", "--p", "1", "--num-graphs", "2", "--num-nodes", "8",
            "--restarts", "2", "--maxiter", "15",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "best result" in out
        assert "average result" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])


class TestVersion:
    def test_version_prints_package_version(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestJsonOutput:
    def test_solve_json_is_machine_readable(self, capsys):
        code = main([
            "solve", "--problem", "mis", "-n", "10",
            "--restarts", "1", "--maxiter", "8", "--seed", "0", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["problem"]["name"] == "mis"
        assert payload["reduction"]["qubits"] <= 10
        assert isinstance(payload["expectation"], float)
        assert payload["sampled_best"] is not None

    def test_sweep_json_is_machine_readable(self, capsys):
        code = main([
            "sweep", "-n", "24", "--p", "2", "--num-points", "16", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["plan"]["edges"] == 36
        assert payload["num_points"] == 16
        assert payload["energy"]["min"] <= payload["energy"]["max"]


class TestBatch:
    def test_requires_manifest_or_suite(self):
        with pytest.raises(SystemExit):
            main(["batch"])
        with pytest.raises(SystemExit):
            main(["batch", "manifest.json", "--suite", "mis"])

    def test_suite_end_to_end_with_store_resume(self, tmp_path, capsys):
        store = str(tmp_path / "store.jsonl")
        args = [
            "batch", "--suite", "maxcut", "--count", "2", "-n", "8",
            "--restarts", "1", "--maxiter", "8",
            "--store", store, "--json",
        ]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert first["computed"] == first["unique_jobs"] == 2
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["computed"] == 0
        assert second["store_hits"] == 2
        assert [job["expectation"] for job in first["per_job"]] == [
            job["expectation"] for job in second["per_job"]
        ]

    def test_manifest_file_with_report(self, tmp_path, capsys):
        manifest = {
            "schema": 1,
            "defaults": {"restarts": 1, "maxiter": 8},
            "jobs": [{"kind": "mis", "nodes": 8, "seed": 0, "repeat": 2}],
        }
        manifest_path = tmp_path / "jobs.json"
        manifest_path.write_text(json.dumps(manifest))
        report_path = tmp_path / "report.json"
        code = main(["batch", str(manifest_path), "--report", str(report_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "1 unique" in out
        report = json.loads(report_path.read_text())
        assert report["jobs"] == 2
        assert report["deduped"] == 1

    def test_bad_manifest_is_a_clean_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{\"jobs\": []}")
        with pytest.raises(SystemExit, match="campaign|jobs"):
            main(["batch", str(path)])

    def test_workers_flag_is_result_neutral(self, capsys):
        args = [
            "batch", "--suite", "maxcut", "--count", "3", "-n", "8",
            "--restarts", "1", "--maxiter", "8", "--json",
        ]
        assert main(args) == 0
        solo = json.loads(capsys.readouterr().out)
        assert main(args + ["--workers", "2"]) == 0
        pooled = json.loads(capsys.readouterr().out)
        solo.pop("seconds"), pooled.pop("seconds")
        for job in solo["per_job"] + pooled["per_job"]:
            job.pop("source", None)  # timing-dependent labels only
        assert solo == pooled


class TestServeSubmit:
    def test_serve_submit_round_trip(self, tmp_path, capsys):
        import threading

        from repro.serve import ServeClient, wait_for_socket

        sock = str(tmp_path / "serve.sock")
        store = str(tmp_path / "store.jsonl")
        server = threading.Thread(
            target=main,
            args=(["serve", "--socket", sock, "--store", store],),
            daemon=True,
        )
        server.start()
        wait_for_socket(sock)
        submit = [
            "submit", "--socket", sock, "--suite", "maxcut",
            "--count", "2", "-n", "8", "--restarts", "1", "--maxiter", "6",
        ]
        code = main(submit + ["--json"])
        out = capsys.readouterr().out  # the serve banner precedes the JSON
        payload = json.loads(out[out.index("{"):])
        assert code == 0
        assert payload["done"] and payload["counts"] == {"done": 2}
        # second submission: everything cached, text output says so
        assert main(submit) == 0
        out = capsys.readouterr().out
        assert "2 already cached" in out
        assert "2 done, 0 dead" in out
        ServeClient(sock).shutdown()
        server.join(timeout=30)
        assert not server.is_alive()

    def test_submit_refuses_dead_socket(self, tmp_path):
        with pytest.raises(SystemExit, match="submit failed"):
            main([
                "submit", "--socket", str(tmp_path / "nope.sock"),
                "--suite", "maxcut", "--count", "1",
            ])


class TestWeightedFlags:
    def test_mse_noisy_weighted(self, capsys):
        code = main([
            "mse-noisy", "-n", "7", "--width", "5", "--shots", "128",
            "--trajectories", "2", "--seed", "0", "--weighted",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "uniform-weighted" in out

    def test_mse_ideal_spinglass_dataset(self, capsys):
        code = main([
            "mse-ideal", "--graph-set", "spinglass", "--num-graphs", "2",
            "--p", "1", "--num-points", "32", "--min-nodes", "5",
            "--max-nodes", "8",
        ])
        assert code == 0
        assert "mean MSE" in capsys.readouterr().out

    def test_end_to_end_weighted(self, capsys):
        code = main([
            "end-to-end", "--p", "1", "--num-graphs", "1", "--num-nodes", "7",
            "--restarts", "2", "--maxiter", "10",
            "--weighted", "--weight-dist", "gaussian",
        ])
        assert code == 0
        assert "best result" in capsys.readouterr().out

    def test_weight_dist_validated(self):
        with pytest.raises(SystemExit):
            main(["end-to-end", "--weighted", "--weight-dist", "exponential"])
