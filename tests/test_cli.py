"""Tests for the repro.cli artifact-style entry points."""

import pytest

from repro.cli import main


class TestMseNoisy:
    def test_runs_and_reports(self, capsys):
        code = main([
            "mse-noisy", "-n", "7", "--width", "6", "--shots", "256",
            "--trajectories", "2", "--seed", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "MSE noisy baseline" in out
        assert "MSE noisy Red-QAOA" in out

    def test_device_selection(self, capsys):
        code = main([
            "mse-noisy", "-n", "6", "--width", "5", "--shots", "128",
            "--trajectories", "2", "--device", "kolkata",
        ])
        assert code == 0
        assert "kolkata" in capsys.readouterr().out


class TestMseIdeal:
    def test_aids(self, capsys):
        code = main([
            "mse-ideal", "--graph-set", "aids", "--num-graphs", "3",
            "--p", "1", "--num-points", "64",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "node reduction" in out
        assert "mean MSE" in out

    def test_p2(self, capsys):
        code = main([
            "mse-ideal", "--graph-set", "linux", "--num-graphs", "2",
            "--p", "2", "--num-points", "32", "--min-nodes", "6",
        ])
        assert code == 0


class TestEndToEnd:
    def test_reports_ratios(self, capsys):
        code = main([
            "end-to-end", "--p", "1", "--num-graphs", "2", "--num-nodes", "8",
            "--restarts", "2", "--maxiter", "15",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "best result" in out
        assert "average result" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["not-a-command"])


class TestWeightedFlags:
    def test_mse_noisy_weighted(self, capsys):
        code = main([
            "mse-noisy", "-n", "7", "--width", "5", "--shots", "128",
            "--trajectories", "2", "--seed", "0", "--weighted",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "uniform-weighted" in out

    def test_mse_ideal_spinglass_dataset(self, capsys):
        code = main([
            "mse-ideal", "--graph-set", "spinglass", "--num-graphs", "2",
            "--p", "1", "--num-points", "32", "--min-nodes", "5",
            "--max-nodes", "8",
        ])
        assert code == 0
        assert "mean MSE" in capsys.readouterr().out

    def test_end_to_end_weighted(self, capsys):
        code = main([
            "end-to-end", "--p", "1", "--num-graphs", "1", "--num-nodes", "7",
            "--restarts", "2", "--maxiter", "10",
            "--weighted", "--weight-dist", "gaussian",
        ])
        assert code == 0
        assert "best result" in capsys.readouterr().out

    def test_weight_dist_validated(self):
        with pytest.raises(SystemExit):
            main(["end-to-end", "--weighted", "--weight-dist", "exponential"])
