"""Tests for repro.quantum.visualization."""

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.visualization import draw


class TestDraw:
    def test_empty_circuit(self):
        out = draw(QuantumCircuit(2))
        assert out.splitlines() == ["q0: -", "q1: -"]

    def test_single_gate(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        assert "[H]" in draw(qc)

    def test_row_per_qubit(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        lines = draw(qc).splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("q0:")
        assert lines[2].startswith("q2:")

    def test_cx_symbols(self):
        qc = QuantumCircuit(2)
        qc.cx(0, 1)
        lines = draw(qc).splitlines()
        assert "*" in lines[0]
        assert "[X]" in lines[1]

    def test_parametrized_gate_shows_angle(self):
        qc = QuantumCircuit(1)
        qc.rx(0.5, 0)
        assert "RX(0.50)" in draw(qc)

    def test_rzz_label(self):
        qc = QuantumCircuit(2)
        qc.rzz(1.25, 0, 1)
        assert "ZZ(1.25)" in draw(qc)

    def test_parallel_gates_share_column(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.h(1)
        lines = draw(qc).splitlines()
        # Both rows have one gate column -> equal lengths.
        assert len(lines[0]) == len(lines[1])

    def test_dependent_gates_get_new_column(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        qc.x(0)
        line = draw(qc).splitlines()[0]
        assert line.index("[H]") < line.index("[X]")

    def test_all_rows_equal_length(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.rzz(0.7, 1, 2)
        qc.rx(1.0, 2)
        lines = draw(qc).splitlines()
        assert len({len(line) for line in lines}) == 1

    def test_wide_circuit_wraps(self):
        qc = QuantumCircuit(2)
        for _ in range(30):
            qc.rx(1.2345, 0)
            qc.cx(0, 1)
        out = draw(qc, max_columns=60)
        assert "\n\n" in out  # wrapped into banks
        for line in out.splitlines():
            assert len(line) <= 60
