"""Tests for repro.core.annealer (Algorithm 1)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annealer import simulated_annealing
from repro.core.cooling import AdaptiveCooling, ConstantCooling
from repro.utils.graphs import average_node_degree


def _connected_er(n, p, seed):
    offset = 0
    while True:
        g = nx.erdos_renyi_graph(n, p, seed=seed + offset)
        if g.number_of_edges() and nx.is_connected(g):
            return g
        offset += 100


class TestBasicBehaviour:
    def test_returns_requested_size(self):
        g = _connected_er(12, 0.4, 0)
        result = simulated_annealing(g, 7, seed=0)
        assert len(result.nodes) == 7
        assert result.subgraph.number_of_nodes() == 7

    def test_subgraph_connected(self):
        g = _connected_er(14, 0.3, 1)
        result = simulated_annealing(g, 8, seed=1)
        assert nx.is_connected(result.subgraph)

    def test_subgraph_is_induced(self):
        g = _connected_er(10, 0.5, 2)
        result = simulated_annealing(g, 6, seed=2)
        expected = g.subgraph(result.nodes)
        assert set(result.subgraph.edges()) == set(expected.edges())

    def test_objective_matches_reported_subgraph(self):
        g = _connected_er(12, 0.4, 3)
        result = simulated_annealing(g, 7, seed=3)
        expected = abs(average_node_degree(result.subgraph) - average_node_degree(g))
        assert result.objective == pytest.approx(expected)

    def test_history_is_monotone_nonincreasing(self):
        g = _connected_er(14, 0.4, 4)
        result = simulated_annealing(g, 8, seed=4)
        history = result.history
        assert all(a >= b for a, b in zip(history, history[1:]))

    def test_full_size_objective_zero(self):
        g = _connected_er(9, 0.4, 5)
        result = simulated_annealing(g, 9, seed=5)
        assert result.objective == 0.0


class TestQuality:
    def test_beats_random_subgraph_on_average(self):
        """SA should find lower objectives than uniform random sampling."""
        from repro.utils.graphs import connected_random_subgraph
        from repro.core.objective import and_difference_objective

        g = _connected_er(15, 0.35, 6)
        rng = np.random.default_rng(0)
        random_objs = [
            and_difference_objective(g, connected_random_subgraph(g, 9, rng))
            for _ in range(30)
        ]
        sa_objs = [simulated_annealing(g, 9, seed=s).objective for s in range(5)]
        assert np.mean(sa_objs) <= np.mean(random_objs)

    def test_regular_graph_perfect_match_exists(self):
        """On a cycle every connected subgraph is a path: best |AND diff| is
        2/k, and SA must find exactly that."""
        g = nx.cycle_graph(12)
        result = simulated_annealing(g, 6, seed=0)
        assert result.objective == pytest.approx(2 / 6)

    def test_cooling_schedules_both_work(self):
        g = _connected_er(12, 0.4, 7)
        for cooling in ("adaptive", "constant", AdaptiveCooling(), ConstantCooling()):
            result = simulated_annealing(g, 7, cooling=cooling, seed=0)
            assert len(result.nodes) == 7

    def test_early_exit_on_perfect_match(self):
        """K6 -> any K4 subgraph can't match AND, but the full K6 does; a
        k = n run exits immediately with objective 0."""
        g = nx.complete_graph(6)
        result = simulated_annealing(g, 6, seed=0)
        assert result.objective == 0.0
        assert result.steps <= 1


class TestValidation:
    def test_k_out_of_range(self):
        g = nx.path_graph(5)
        with pytest.raises(ValueError):
            simulated_annealing(g, 0)
        with pytest.raises(ValueError):
            simulated_annealing(g, 6)

    def test_temperature_ordering(self):
        g = nx.path_graph(5)
        with pytest.raises(ValueError):
            simulated_annealing(g, 3, initial_temperature=0.1, final_temperature=0.5)

    def test_final_temperature_positive(self):
        g = nx.path_graph(5)
        with pytest.raises(ValueError):
            simulated_annealing(g, 3, final_temperature=0.0)

    def test_unknown_cooling(self):
        g = nx.path_graph(5)
        with pytest.raises(ValueError):
            simulated_annealing(g, 3, cooling="linear")

    def test_max_steps_respected(self):
        g = _connected_er(12, 0.4, 8)
        result = simulated_annealing(g, 6, max_steps=10, seed=0)
        assert result.steps <= 10

    def test_seed_reproducibility(self):
        g = _connected_er(12, 0.4, 9)
        a = simulated_annealing(g, 7, seed=42)
        b = simulated_annealing(g, 7, seed=42)
        assert a.nodes == b.nodes


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n=st.integers(min_value=6, max_value=14),
)
def test_property_annealer_invariants(seed, n):
    """Size, connectivity, and objective consistency hold for any input."""
    g = _connected_er(n, 0.45, seed)
    k = max(3, n // 2)
    result = simulated_annealing(g, k, seed=seed)
    assert len(result.nodes) == k
    assert nx.is_connected(result.subgraph)
    assert result.objective >= 0
    assert result.nodes <= set(g.nodes())
