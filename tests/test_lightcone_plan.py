"""LightconePlan equivalence with the retained per-call lightcone engine.

The plan's compiled kernels (batched statevector, core density matrix with
exact frontier dephasing) must reproduce
:func:`~repro.qaoa.lightcone.lightcone_expectation_reference` to 1e-12 --
including the cache ``stats`` -- on weighted and unweighted graphs, at
every depth, through both kernel paths.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qaoa.landscape import (
    compute_landscape,
    evaluate_parameter_sets,
    sample_parameter_sets,
)
from repro.qaoa.lightcone import (
    LightconePlan,
    LightconeTooLargeError,
    _CoreDensityClass,
    _StatevectorClass,
    lightcone_expectation,
    lightcone_expectation_reference,
)


def _params(p, seed):
    rng = np.random.default_rng(seed)
    return list(rng.uniform(0, 2 * np.pi, p)), list(rng.uniform(0, np.pi, p))


def _weighted_cycle(n, seed):
    g = nx.cycle_graph(n)
    rng = np.random.default_rng(seed)
    for u, v in g.edges():
        g[u][v]["weight"] = float(rng.uniform(-1.5, 1.5))
    return g


class TestPlanMatchesReference:
    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_regular_graph(self, p):
        g = nx.random_regular_graph(3, 14, seed=1)
        gammas, betas = _params(p, p)
        plan_value = lightcone_expectation(g, gammas, betas)
        reference = lightcone_expectation_reference(g, gammas, betas)
        assert plan_value == pytest.approx(reference, abs=1e-12)

    @pytest.mark.parametrize("p", [1, 2])
    def test_weighted_graphs(self, p):
        for g in (_weighted_cycle(12, 4), _weighted_cycle(9, 7)):
            gammas, betas = _params(p, 10 * p)
            plan_value = lightcone_expectation(g, gammas, betas)
            reference = lightcone_expectation_reference(g, gammas, betas)
            assert plan_value == pytest.approx(reference, abs=1e-12)

    def test_stats_match_reference(self):
        g = nx.random_regular_graph(3, 40, seed=3)
        plan_stats, reference_stats = {}, {}
        gammas, betas = _params(2, 5)
        lightcone_expectation(g, gammas, betas, stats=plan_stats)
        lightcone_expectation_reference(g, gammas, betas, stats=reference_stats)
        assert plan_stats == reference_stats
        assert plan_stats["edges"] == 60
        assert plan_stats["hits"] > 0

    def test_both_kernels_are_exercised_and_agree(self):
        """A 3-regular graph at p=2 compiles mostly core-density classes; a
        star graph's lightcone has no frontier, forcing the statevector
        kernel.  Both must match the reference."""
        regular = nx.random_regular_graph(3, 24, seed=0)
        star = nx.star_graph(8)
        plan_r = LightconePlan.build(regular, 2)
        plan_s = LightconePlan.build(star, 2)
        kinds_r = {type(c) for c in plan_r.classes}
        kinds_s = {type(c) for c in plan_s.classes}
        assert _CoreDensityClass in kinds_r
        assert _StatevectorClass in kinds_s
        for graph, plan in ((regular, plan_r), (star, plan_s)):
            gammas, betas = _params(2, 8)
            assert plan.evaluate(gammas, betas) == pytest.approx(
                lightcone_expectation_reference(graph, gammas, betas), abs=1e-12
            )

    def test_batch_matches_per_point(self):
        g = nx.random_regular_graph(3, 30, seed=2)
        plan = LightconePlan.build(g, 2)
        gammas, betas = sample_parameter_sets(2, 24, seed=6)
        batch = plan.evaluate_batch(gammas, betas)
        for i in range(0, 24, 7):
            reference = lightcone_expectation_reference(
                g, list(gammas[i]), list(betas[i])
            )
            assert batch[i] == pytest.approx(reference, abs=1e-12)
        single = plan.evaluate(list(gammas[3]), list(betas[3]))
        assert single == pytest.approx(batch[3], abs=0.0)


class TestPlanValidation:
    def test_wrong_depth_rejected(self):
        plan = LightconePlan.build(nx.cycle_graph(8), 2)
        with pytest.raises(ValueError):
            plan.evaluate([0.1], [0.2])
        with pytest.raises(ValueError):
            plan.evaluate_batch(np.zeros((4, 3)), np.zeros((4, 3)))

    def test_shape_mismatch_rejected(self):
        plan = LightconePlan.build(nx.cycle_graph(8), 1)
        with pytest.raises(ValueError):
            plan.evaluate_batch(np.zeros((4, 1)), np.zeros((5, 1)))

    def test_too_dense_raises_at_build(self):
        with pytest.raises(LightconeTooLargeError):
            LightconePlan.build(nx.complete_graph(25), 2, max_qubits=10)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            LightconePlan.build(nx.cycle_graph(6), 0)


class TestLandscapeWiring:
    def test_parameter_sets_route_through_plan(self):
        """Above the statevector limit the default evaluator must equal the
        per-point reference engine."""
        g = nx.random_regular_graph(3, 26, seed=4)
        gammas, betas = sample_parameter_sets(2, 6, seed=1)
        batched = evaluate_parameter_sets(g, gammas, betas)
        reference = np.array(
            [
                lightcone_expectation_reference(g, list(gg), list(bb))
                for gg, bb in zip(gammas, betas)
            ]
        )
        np.testing.assert_allclose(batched, reference, atol=1e-12)

    def test_large_graph_landscape_grid(self):
        """compute_landscape beyond 20 nodes builds the plan once and still
        matches the scalar dispatcher."""
        g = nx.random_regular_graph(3, 24, seed=9)
        scape = compute_landscape(g, width=4)
        from repro.qaoa.expectation import maxcut_expectation

        expected = maxcut_expectation(g, [scape.gammas[1]], [scape.betas[2]])
        assert scape.values[1, 2] == pytest.approx(expected, abs=1e-9)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**5),
    p=st.integers(min_value=1, max_value=2),
    weighted=st.booleans(),
)
def test_property_plan_matches_reference(seed, p, weighted):
    """Random sparse graphs: plan and per-call reference agree to 1e-12."""
    rng = np.random.default_rng(seed)
    g = nx.random_regular_graph(3, 2 * int(rng.integers(5, 9)), seed=seed)
    if weighted:
        for u, v in g.edges():
            g[u][v]["weight"] = float(rng.normal(0.0, 1.0))
    gammas = list(rng.uniform(0, 2 * np.pi, p))
    betas = list(rng.uniform(0, np.pi, p))
    plan_stats, reference_stats = {}, {}
    plan_value = lightcone_expectation(g, gammas, betas, stats=plan_stats)
    reference = lightcone_expectation_reference(g, gammas, betas, stats=reference_stats)
    assert plan_value == pytest.approx(reference, abs=1e-12)
    assert plan_stats == reference_stats
