"""Tests for repro.qaoa.lightcone."""

import networkx as nx
import numpy as np
import pytest

from repro.qaoa.fast_sim import qaoa_expectation_fast
from repro.qaoa.hamiltonian import MaxCutHamiltonian
from repro.qaoa.lightcone import (
    LightconeTooLargeError,
    edge_lightcone,
    lightcone_expectation,
)


def _connected_er(n, p, seed):
    offset = 0
    while True:
        g = nx.erdos_renyi_graph(n, p, seed=seed + offset)
        if g.number_of_edges() and nx.is_connected(g):
            return g
        offset += 100


class TestEdgeLightcone:
    def test_p1_is_closed_neighborhood(self):
        g = nx.path_graph(7)
        nodes = edge_lightcone(g, (2, 3), 1)
        assert nodes == {1, 2, 3, 4}

    def test_grows_with_p(self):
        g = nx.path_graph(9)
        assert edge_lightcone(g, (4, 5), 1) < edge_lightcone(g, (4, 5), 2)

    def test_saturates_at_graph(self):
        g = nx.cycle_graph(5)
        assert edge_lightcone(g, (0, 1), 10) == set(range(5))


class TestLightconeExpectation:
    @pytest.mark.parametrize("p", [1, 2])
    def test_matches_exact_on_sparse_graph(self, p):
        g = _connected_er(9, 0.25, 3)
        ham = MaxCutHamiltonian(g)
        rng = np.random.default_rng(p)
        gammas = list(rng.uniform(0, 2 * np.pi, size=p))
        betas = list(rng.uniform(0, np.pi, size=p))
        exact = qaoa_expectation_fast(ham, gammas, betas)
        cone = lightcone_expectation(g, gammas, betas)
        assert cone == pytest.approx(exact, abs=1e-9)

    def test_matches_exact_on_tree(self):
        g = nx.random_labeled_tree(12, seed=4) if hasattr(nx, "random_labeled_tree") else nx.random_tree(12, seed=4)
        ham = MaxCutHamiltonian(g)
        exact = qaoa_expectation_fast(ham, [0.8, 1.2], [0.3, 0.7])
        cone = lightcone_expectation(g, [0.8, 1.2], [0.3, 0.7])
        assert cone == pytest.approx(exact, abs=1e-9)

    def test_regular_graph_cache_reuse(self):
        """On a cycle all lightcones are isomorphic: one evaluation reused."""
        g = nx.cycle_graph(30)
        value = lightcone_expectation(g, [0.5], [0.3])
        # Compare against a smaller cycle scaled by edge count: each edge of
        # any long-enough cycle contributes identically at p=1.
        small = nx.cycle_graph(10)
        small_value = lightcone_expectation(small, [0.5], [0.3])
        assert value / 30 == pytest.approx(small_value / 10, abs=1e-9)

    def test_too_dense_raises(self):
        g = nx.complete_graph(25)
        with pytest.raises(LightconeTooLargeError):
            lightcone_expectation(g, [0.1, 0.2], [0.1, 0.2], max_qubits=10)

    def test_parameter_validation(self):
        g = nx.path_graph(4)
        with pytest.raises(ValueError):
            lightcone_expectation(g, [0.1], [0.1, 0.2])

    def test_large_sparse_graph_feasible(self):
        """60-node 3-regular graph at p=2: full statevector impossible,
        lightcones small."""
        g = nx.random_regular_graph(3, 60, seed=0)
        value = lightcone_expectation(g, [0.4, 0.9], [0.2, 0.6])
        assert 0 <= value <= g.number_of_edges()


class TestSignatureCache:
    def test_cycle_single_evaluation(self):
        """Every lightcone of a long cycle is isomorphic: one simulation."""
        stats = {}
        lightcone_expectation(nx.cycle_graph(30), [0.5], [0.3], stats=stats)
        assert stats == {"edges": 30, "evaluations": 1, "hits": 29}

    def test_regular_graph_hit_rate(self):
        """On a 3-regular graph most p=2 lightcones repeat; the canonical
        signature must merge them (>50% hit rate)."""
        stats = {}
        lightcone_expectation(
            nx.random_regular_graph(3, 60, seed=0), [0.4, 0.9], [0.2, 0.6], stats=stats
        )
        assert stats["edges"] == 90
        assert stats["hits"] / stats["edges"] > 0.5

    def test_signature_is_label_independent(self):
        """Relabeling the graph must not change value or evaluation count."""
        g = nx.random_regular_graph(3, 40, seed=3)
        perm = list(range(40))
        np.random.default_rng(9).shuffle(perm)
        h = nx.relabel_nodes(g, dict(zip(g.nodes(), perm)))
        s_g, s_h = {}, {}
        v_g = lightcone_expectation(g, [0.4, 0.9], [0.2, 0.6], stats=s_g)
        v_h = lightcone_expectation(h, [0.4, 0.9], [0.2, 0.6], stats=s_h)
        assert v_g == pytest.approx(v_h, abs=1e-12)
        assert s_g["evaluations"] == s_h["evaluations"]

    def test_weighted_lightcones_not_merged(self):
        """Identical topology with different weights must evaluate separately."""
        g = nx.cycle_graph(12)
        rng = np.random.default_rng(4)
        for u, v in g.edges():
            g[u][v]["weight"] = float(rng.uniform(0.5, 1.5))
        stats = {}
        lightcone_expectation(g, [0.5], [0.3], stats=stats)
        # All 12 lightcones share a topology but carry distinct weights.
        assert stats["evaluations"] == 12
