"""Tests for repro.core.pipeline (RedQAOA end-to-end)."""

import networkx as nx
import numpy as np
import pytest

from repro.core.pipeline import RedQAOA
from repro.core.reduction import GraphReducer
from repro.qaoa.fast_sim import FastNoiseSpec
from repro.qaoa.maxcut import brute_force_maxcut, cut_size


def _connected_er(n, p, seed):
    offset = 0
    while True:
        g = nx.erdos_renyi_graph(n, p, seed=seed + offset)
        if g.number_of_edges() and nx.is_connected(g):
            return g
        offset += 100


@pytest.fixture(scope="module")
def ideal_result():
    g = _connected_er(10, 0.4, 0)
    red = RedQAOA(seed=0, restarts=3, maxiter=40, finetune_maxiter=10)
    return g, red.run(g)


class TestIdealRun:
    def test_reduction_occurred(self, ideal_result):
        g, result = ideal_result
        assert result.reduction.reduced_graph.number_of_nodes() < g.number_of_nodes()

    def test_assignment_is_valid_cut(self, ideal_result):
        g, result = ideal_result
        assert set(result.assignment) == set(g.nodes())
        assert cut_size(g, result.assignment) <= g.number_of_edges()

    def test_cut_value_consistent(self, ideal_result):
        g, result = ideal_result
        assert result.cut_value == cut_size(g, result.assignment)

    def test_near_optimal_solution(self, ideal_result):
        g, result = ideal_result
        optimum, _ = brute_force_maxcut(g)
        assert result.cut_value >= 0.85 * optimum

    def test_expectation_reasonable(self, ideal_result):
        g, result = ideal_result
        # QAOA expectation beats random guessing (half the edges).
        assert result.expectation > g.number_of_edges() / 2

    def test_evaluation_accounting(self, ideal_result):
        _, result = ideal_result
        assert result.num_reduced_evaluations > 0
        assert result.num_original_evaluations > 0
        # Most evaluations happen on the cheap reduced graph.
        assert result.num_reduced_evaluations > result.num_original_evaluations


class TestConfigurations:
    def test_pure_transfer_mode(self):
        g = _connected_er(9, 0.45, 1)
        red = RedQAOA(seed=1, restarts=2, maxiter=25, finetune_maxiter=0)
        result = red.run(g)
        assert result.finetune_trace is None
        assert result.num_original_evaluations == 0

    def test_noisy_mode_runs(self):
        g = _connected_er(8, 0.45, 2)
        noise = FastNoiseSpec(edge_error=0.05, node_error=0.01, readout_error=0.02)
        red = RedQAOA(
            seed=2, noise=noise, restarts=2, maxiter=20,
            finetune_maxiter=5, trajectories=3,
        )
        result = red.run(g)
        assert result.expectation > 0

    def test_custom_reducer_honored(self):
        g = _connected_er(10, 0.45, 3)
        reducer = GraphReducer(min_keep_fraction=0.9, seed=3)
        red = RedQAOA(seed=3, reducer=reducer, restarts=2, maxiter=15, finetune_maxiter=0)
        result = red.run(g)
        assert len(result.reduction.nodes) >= 9

    def test_p2_pipeline(self):
        g = _connected_er(8, 0.45, 4)
        red = RedQAOA(p=2, seed=4, restarts=2, maxiter=30, finetune_maxiter=5)
        result = red.run(g)
        assert result.gammas.shape == (2,)
        assert result.betas.shape == (2,)

    def test_seed_reproducibility(self):
        g = _connected_er(8, 0.45, 5)
        a = RedQAOA(seed=7, restarts=2, maxiter=15, finetune_maxiter=0).run(g)
        b = RedQAOA(seed=7, restarts=2, maxiter=15, finetune_maxiter=0).run(g)
        assert a.expectation == b.expectation
        assert np.array_equal(a.gammas, b.gammas)


class TestValidation:
    def test_p_validated(self):
        with pytest.raises(ValueError):
            RedQAOA(p=0)

    def test_restarts_validated(self):
        with pytest.raises(ValueError):
            RedQAOA(restarts=0)

    def test_finetune_validated(self):
        with pytest.raises(ValueError):
            RedQAOA(finetune_maxiter=-1)


class TestTransferQuality:
    def test_transferred_params_beat_random(self):
        """Parameters optimized on the distilled graph should evaluate well
        on the original graph -- the paper's central claim."""
        from repro.qaoa.expectation import maxcut_expectation
        from repro.qaoa.landscape import sample_parameter_sets
        from repro.utils.graphs import relabel_to_range

        g = _connected_er(11, 0.4, 6)
        red = RedQAOA(seed=6, restarts=3, maxiter=40, finetune_maxiter=0)
        result = red.run(g)
        relabeled = relabel_to_range(g)
        transferred = maxcut_expectation(relabeled, result.gammas, result.betas)
        gammas, betas = sample_parameter_sets(1, 64, seed=0)
        random_values = [
            maxcut_expectation(relabeled, gs, bs) for gs, bs in zip(gammas, betas)
        ]
        assert transferred > np.percentile(random_values, 85)


class TestWarmStartIntegration:
    def test_warm_start_produces_same_restart_count(self):
        g = _connected_er(9, 0.45, 8)
        red = RedQAOA(seed=0, restarts=3, maxiter=15, finetune_maxiter=0, warm_start=True)
        result = red.run(g)
        assert len(result.reduced_traces) == 3

    def test_warm_start_first_trace_starts_strong(self):
        """The warm-started restart's first evaluation beats the random
        restarts' first evaluations."""
        g = _connected_er(10, 0.4, 9)
        red = RedQAOA(seed=1, restarts=3, maxiter=12, finetune_maxiter=0, warm_start=True)
        result = red.run(g)
        warm_first = result.reduced_traces[0].values[0]
        random_firsts = [t.values[0] for t in result.reduced_traces[1:]]
        assert warm_first >= min(random_firsts)

    def test_warm_start_single_restart(self):
        g = _connected_er(8, 0.45, 10)
        red = RedQAOA(seed=2, restarts=1, maxiter=12, finetune_maxiter=0, warm_start=True)
        result = red.run(g)
        assert len(result.reduced_traces) == 1

    def test_warm_start_quality_not_worse(self):
        g = _connected_er(9, 0.45, 11)
        cold = RedQAOA(seed=3, restarts=3, maxiter=20, finetune_maxiter=0).run(g)
        warm = RedQAOA(seed=3, restarts=3, maxiter=20, finetune_maxiter=0,
                       warm_start=True).run(g)
        assert warm.expectation >= cold.expectation - 0.5


class TestWeightedPipeline:
    def _weighted_er(self, n, p, seed):
        from repro.datasets import attach_weights

        return attach_weights(_connected_er(n, p, seed), "uniform",
                              low=0.3, high=2.0, seed=seed)

    def test_weighted_run_end_to_end(self):
        g = self._weighted_er(10, 0.4, 8)
        red = RedQAOA(seed=8, restarts=2, maxiter=30, finetune_maxiter=5)
        result = red.run(g)
        # Cut value is the weighted cut of the returned assignment.
        assert result.cut_value == pytest.approx(cut_size(g, result.assignment))
        optimum, _ = brute_force_maxcut(g)
        assert result.cut_value <= optimum + 1e-9
        assert result.cut_value >= 0.8 * optimum
        # The ideal expectation is computed on the weighted instance.
        total_weight = sum(d["weight"] for _, _, d in g.edges(data=True))
        assert 0 < result.expectation <= total_weight

    def test_weighted_reduction_keeps_weights(self):
        g = self._weighted_er(12, 0.4, 9)
        red = RedQAOA(seed=9, restarts=2, maxiter=20, finetune_maxiter=0)
        reduction = red.reduce(g)
        assert all(
            "weight" in d for _, _, d in reduction.reduced_graph.edges(data=True)
        )
