"""Tests for repro.mitigation (ZNE and readout mitigation)."""

import networkx as nx
import numpy as np
import pytest

from repro.mitigation import (
    ReadoutMitigator,
    richardson_extrapolate,
    scale_noise,
    zne_maxcut_expectation,
)
from repro.qaoa.expectation import maxcut_expectation, noisy_maxcut_expectation
from repro.qaoa.fast_sim import FastNoiseSpec
from repro.quantum.noise import NoiseModel, ReadoutError
from repro.utils.graphs import relabel_to_range


def _connected_er(n, p, seed):
    offset = 0
    while True:
        g = nx.erdos_renyi_graph(n, p, seed=seed + offset)
        if g.number_of_edges() and nx.is_connected(g):
            return g
        offset += 100


class TestScaleNoise:
    def test_scales_rates(self):
        noise = FastNoiseSpec(edge_error=0.05, node_error=0.01, readout_error=0.03)
        scaled = scale_noise(noise, 2.0)
        assert scaled.edge_error == pytest.approx(0.10)
        assert scaled.node_error == pytest.approx(0.02)

    def test_readout_not_scaled(self):
        noise = FastNoiseSpec(readout_error=0.03)
        assert scale_noise(noise, 3.0).readout_error == 0.03

    def test_scales_coherent_biases(self):
        noise = FastNoiseSpec(edge_phase_bias=(0.01, -0.02), node_mixer_bias=(0.03,))
        scaled = scale_noise(noise, 2.0)
        assert scaled.edge_phase_bias == (0.02, -0.04)
        assert scaled.node_mixer_bias == (0.06,)

    def test_probabilities_clipped(self):
        noise = FastNoiseSpec(edge_error=0.6)
        assert scale_noise(noise, 3.0).edge_error == 1.0

    def test_factor_validated(self):
        with pytest.raises(ValueError):
            scale_noise(FastNoiseSpec(), 0.5)


class TestRichardson:
    def test_linear_data_exact(self):
        # E(s) = 5 - 0.4 s -> E(0) = 5.
        scales = [1.0, 2.0]
        values = [4.6, 4.2]
        assert richardson_extrapolate(scales, values) == pytest.approx(5.0)

    def test_quadratic_data_exact(self):
        f = lambda s: 3.0 - 0.5 * s + 0.1 * s**2
        scales = [1.0, 2.0, 3.0]
        assert richardson_extrapolate(scales, [f(s) for s in scales]) == pytest.approx(3.0)

    def test_requires_two_scales(self):
        with pytest.raises(ValueError):
            richardson_extrapolate([1.0], [2.0])

    def test_rejects_duplicate_scales(self):
        with pytest.raises(ValueError):
            richardson_extrapolate([1.0, 1.0], [2.0, 2.1])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            richardson_extrapolate([1.0, 2.0], [1.0])


class TestZneEndToEnd:
    @pytest.mark.parametrize("graph_seed", [0, 1, 2])
    def test_zne_corrects_coherent_noise(self, graph_seed):
        """Coherent-only noise is deterministic: Richardson must shrink the
        error by a large factor."""
        graph = relabel_to_range(_connected_er(8, 0.4, graph_seed))
        gammas, betas = [1.0], [0.45]
        ideal = maxcut_expectation(graph, gammas, betas)
        rng = np.random.default_rng(graph_seed)
        noise = FastNoiseSpec(
            edge_phase_bias=tuple(rng.normal(0, 0.06, graph.number_of_edges())),
            node_mixer_bias=tuple(rng.normal(0, 0.06, graph.number_of_nodes())),
        )
        raw = noisy_maxcut_expectation(graph, gammas, betas, noise, trajectories=1, seed=0)
        mitigated, per_scale = zne_maxcut_expectation(
            graph, gammas, betas, noise, scales=(1.0, 1.5, 2.0), trajectories=1, seed=0
        )
        assert len(per_scale) == 3
        assert abs(mitigated - ideal) < 0.3 * abs(raw - ideal)

    def test_zne_helps_on_average_with_stochastic_noise(self):
        """With Pauli noise the extrapolation is statistical; it should win
        on average across repetitions."""
        graph = relabel_to_range(_connected_er(8, 0.4, 3))
        gammas, betas = [1.0], [0.45]
        ideal = maxcut_expectation(graph, gammas, betas)
        rng = np.random.default_rng(0)
        noise = FastNoiseSpec(
            edge_error=0.04,
            edge_phase_bias=tuple(rng.normal(0, 0.05, graph.number_of_edges())),
            node_mixer_bias=tuple(rng.normal(0, 0.05, graph.number_of_nodes())),
        )
        raw_errs, zne_errs = [], []
        for seed in range(4):
            raw = noisy_maxcut_expectation(
                graph, gammas, betas, noise, trajectories=200, seed=seed
            )
            mitigated, _ = zne_maxcut_expectation(
                graph, gammas, betas, noise, scales=(1.0, 1.5, 2.0),
                trajectories=200, seed=seed,
            )
            raw_errs.append(abs(raw - ideal))
            zne_errs.append(abs(mitigated - ideal))
        assert np.mean(zne_errs) < np.mean(raw_errs)

    def test_zero_noise_is_fixed_point(self):
        graph = relabel_to_range(_connected_er(6, 0.5, 4))
        gammas, betas = [0.7], [0.3]
        ideal = maxcut_expectation(graph, gammas, betas)
        mitigated, _ = zne_maxcut_expectation(
            graph, gammas, betas, FastNoiseSpec(), scales=(1.0, 2.0), seed=0
        )
        assert mitigated == pytest.approx(ideal, abs=1e-9)


class TestReadoutMitigator:
    def test_exact_inversion(self):
        rng = np.random.default_rng(0)
        true = rng.random(8)
        true /= true.sum()
        model = NoiseModel()
        errors = [ReadoutError(0.03, 0.08), ReadoutError(0.02, 0.05), ReadoutError(0.01, 0.01)]
        for q, e in enumerate(errors):
            model.add_readout_error(e, q)
        observed = model.apply_readout_to_probs(true, 3)
        mitigator = ReadoutMitigator(errors)
        recovered = mitigator.apply(observed)
        assert np.allclose(recovered, true, atol=1e-10)

    def test_from_noise_model(self):
        model = NoiseModel()
        model.add_readout_error(ReadoutError(0.05, 0.05), 0)
        mitigator = ReadoutMitigator.from_noise_model(model, 2)
        true = np.array([0.7, 0.1, 0.15, 0.05])
        observed = model.apply_readout_to_probs(true, 2)
        assert np.allclose(mitigator.apply(observed), true, atol=1e-10)

    def test_symmetric_constructor(self):
        mitigator = ReadoutMitigator.symmetric(0.04, 2)
        true = np.array([0.5, 0.2, 0.2, 0.1])
        observed = NoiseModel().apply_readout_to_probs(true, 2)  # no-op
        # Applying mitigation to clean data then its forward map is identity
        # only approximately; here just check simplex properties.
        out = mitigator.apply(true)
        assert out.sum() == pytest.approx(1.0)
        assert (out >= 0).all()

    def test_singular_confusion_rejected(self):
        with pytest.raises(ValueError):
            ReadoutMitigator([ReadoutError(0.5, 0.5)])

    def test_shape_checked(self):
        mitigator = ReadoutMitigator.symmetric(0.01, 2)
        with pytest.raises(ValueError):
            mitigator.apply(np.array([1.0, 0.0]))

    def test_expectation_diagonal(self):
        mitigator = ReadoutMitigator.symmetric(0.1, 1)
        # Observed distribution from true |1> under 10% symmetric flips.
        observed = np.array([0.1, 0.9])
        diag = np.array([0.0, 1.0])
        value = mitigator.expectation_diagonal(observed, diag)
        assert value == pytest.approx(1.0, abs=1e-9)

    def test_none_entries_skipped(self):
        mitigator = ReadoutMitigator([None, ReadoutError(0.05, 0.05)])
        probs = np.array([0.4, 0.3, 0.2, 0.1])
        out = mitigator.apply(probs)
        assert out.sum() == pytest.approx(1.0)
