"""Tests for repro.qaoa.optimizer."""

import networkx as nx
import numpy as np
import pytest

from repro.qaoa.expectation import maxcut_expectation
from repro.qaoa.maxcut import brute_force_maxcut
from repro.qaoa.optimizer import (
    OptimizationTrace,
    cobyla_optimize,
    grid_search,
    multi_restart_optimize,
    random_initial_point,
)


def _energy_fn(graph):
    return lambda gammas, betas: maxcut_expectation(graph, gammas, betas)


class TestTrace:
    def test_record_and_best(self):
        trace = OptimizationTrace()
        trace.record(np.array([0.1]), np.array([0.2]), 1.0)
        trace.record(np.array([0.3]), np.array([0.4]), 3.0)
        trace.record(np.array([0.5]), np.array([0.6]), 2.0)
        assert trace.best_value == 3.0
        gammas, betas = trace.best_parameters
        assert gammas[0] == 0.3 and betas[0] == 0.4

    def test_empty_trace_raises(self):
        with pytest.raises(ValueError):
            OptimizationTrace().best_value

    def test_recorded_arrays_are_copies(self):
        trace = OptimizationTrace()
        point = np.array([0.1])
        trace.record(point, point, 1.0)
        point[0] = 99.0
        assert trace.parameters[0][0][0] == 0.1

    def test_reevaluate(self):
        trace = OptimizationTrace()
        trace.record(np.array([0.1]), np.array([0.2]), 1.0)
        trace.record(np.array([0.3]), np.array([0.4]), 2.0)
        values = trace.reevaluate(lambda g, b: float(g[0] + b[0]))
        assert np.allclose(values, [0.3, 0.7])


class TestCobyla:
    def test_improves_over_start(self):
        g = nx.erdos_renyi_graph(7, 0.5, seed=3)
        fn = _energy_fn(g)
        trace = cobyla_optimize(fn, p=1, maxiter=60, seed=0)
        assert trace.best_value >= trace.values[0]

    def test_finds_good_p1_solution(self):
        g = nx.erdos_renyi_graph(8, 0.4, seed=1)
        fn = _energy_fn(g)
        best = max(
            cobyla_optimize(fn, p=1, maxiter=80, seed=s).best_value for s in range(3)
        )
        optimum, _ = brute_force_maxcut(g)
        # p=1 QAOA on small ER graphs reliably clears ~60% of the optimum.
        assert best >= 0.6 * optimum

    def test_respects_maxiter_budget(self):
        g = nx.path_graph(5)
        trace = cobyla_optimize(_energy_fn(g), p=1, maxiter=10, seed=0)
        # COBYLA may use a couple of extra evaluations for its final simplex.
        assert trace.num_evaluations <= 15

    def test_initial_point_used(self):
        g = nx.path_graph(5)
        initial = np.array([1.0, 0.5])
        trace = cobyla_optimize(_energy_fn(g), p=1, initial=initial, maxiter=5, seed=0)
        gammas, betas = trace.parameters[0]
        assert gammas[0] == pytest.approx(1.0)
        assert betas[0] == pytest.approx(0.5)

    def test_initial_shape_validated(self):
        with pytest.raises(ValueError):
            cobyla_optimize(lambda g, b: 0.0, p=2, initial=np.array([1.0]), seed=0)

    def test_p_validated(self):
        with pytest.raises(ValueError):
            cobyla_optimize(lambda g, b: 0.0, p=0)

    def test_seeded_runs_identical(self):
        g = nx.cycle_graph(5)
        a = cobyla_optimize(_energy_fn(g), p=1, maxiter=20, seed=9)
        b = cobyla_optimize(_energy_fn(g), p=1, maxiter=20, seed=9)
        assert a.values == b.values


class TestMultiRestart:
    def test_number_of_runs(self):
        g = nx.path_graph(4)
        traces = multi_restart_optimize(_energy_fn(g), p=1, restarts=4, maxiter=10, seed=0)
        assert len(traces) == 4

    def test_restarts_differ(self):
        g = nx.cycle_graph(5)
        traces = multi_restart_optimize(_energy_fn(g), p=1, restarts=3, maxiter=10, seed=1)
        starts = {tuple(t.parameters[0][0]) for t in traces}
        assert len(starts) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            multi_restart_optimize(lambda g, b: 0.0, p=1, restarts=0)


class TestGridSearch:
    def test_grid_beats_most_points(self):
        g = nx.erdos_renyi_graph(6, 0.5, seed=2)
        (gamma, beta), best, values = grid_search(_energy_fn(g), width=10)
        assert best == values.max()
        assert values.shape == (10, 10)

    def test_best_parameters_on_grid(self):
        g = nx.cycle_graph(4)
        (gamma, beta), best, _ = grid_search(_energy_fn(g), width=8)
        assert 0 <= gamma < 2 * np.pi
        assert 0 <= beta < np.pi


class TestRandomInitialPoint:
    def test_shape_and_ranges(self):
        rng = np.random.default_rng(0)
        x = random_initial_point(3, rng)
        assert x.shape == (6,)
        assert (x[:3] <= 2 * np.pi).all()
        assert (x[3:] <= np.pi).all()
