"""Tests for repro.core.equivalence."""

import networkx as nx
import numpy as np
import pytest

from repro.core.equivalence import (
    and_ratio,
    fit_polynomial,
    subgraph_and_mse_study,
    AndMseSample,
)


class TestAndRatio:
    def test_identity(self):
        g = nx.cycle_graph(6)
        assert and_ratio(g, g) == 1.0

    def test_subgraph_lower(self):
        g = nx.complete_graph(6)
        sub = nx.complete_graph(3)
        assert and_ratio(g, sub) == pytest.approx(2 / 5)

    def test_edgeless_original_rejected(self):
        g = nx.Graph()
        g.add_nodes_from(range(3))
        with pytest.raises(ValueError):
            and_ratio(g, nx.path_graph(2))


class TestStudy:
    def test_samples_have_valid_fields(self):
        g = nx.erdos_renyi_graph(7, 0.5, seed=1)
        while not (g.number_of_edges() and nx.is_connected(g)):
            g = nx.erdos_renyi_graph(7, 0.5, seed=2)
        samples = subgraph_and_mse_study(g, min_size=3, max_subgraphs_per_size=5, width=8)
        assert samples
        for s in samples:
            assert 0 < s.and_ratio <= 1.5
            assert 0 <= s.mse <= 1.0
            assert 3 <= s.num_nodes < 7

    def test_correlation_direction(self):
        """Fig. 5's claim: AND ratios near 1 give lower MSE on average."""
        g = nx.erdos_renyi_graph(8, 0.5, seed=3)
        while not (g.number_of_edges() and nx.is_connected(g)):
            g = nx.erdos_renyi_graph(8, 0.5, seed=4)
        samples = subgraph_and_mse_study(g, min_size=3, max_subgraphs_per_size=10, width=8)
        close = [s.mse for s in samples if s.and_ratio >= 0.8]
        far = [s.mse for s in samples if s.and_ratio < 0.6]
        if close and far:
            assert np.mean(close) <= np.mean(far)


class TestFit:
    def test_polynomial_fit_degree(self):
        rng = np.random.default_rng(0)
        samples = [
            AndMseSample(5, 6, x, 0.1 * (1 - x) ** 2 + 0.001 * rng.random())
            for x in rng.uniform(0.2, 1.0, size=40)
        ]
        coeffs = fit_polynomial(samples, degree=6)
        assert len(coeffs) == 7
        # The fit should reproduce the underlying trend decently.
        predicted = np.polyval(coeffs, 0.5)
        assert predicted == pytest.approx(0.1 * 0.25, abs=0.02)

    def test_insufficient_samples(self):
        samples = [AndMseSample(3, 3, 0.5, 0.1)] * 3
        with pytest.raises(ValueError):
            fit_polynomial(samples, degree=6)
