"""Tests for repro.service.jobs: canonical fingerprints and job execution.

The property pinned by the hypothesis tests is the service's cornerstone:
isomorphic relabelings and node-order permutations of the same weighted
instance produce identical :class:`JobSpec` fingerprints (and distinct
weights produce distinct ones).  With all-distinct edge weights this is a
theorem, not a heuristic -- every node's incident-weight multiset is
unique, so the refined structural keys separate all non-automorphic nodes
and the canonical numbering cannot depend on labels.
"""

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.problems import DiagonalProblem
from repro.service.jobs import (
    JobResult,
    JobSpec,
    canonical_graph_form,
    run_job,
)


def _distinct_weighted_graph(n: int, extra_edges: int, seed: int) -> nx.Graph:
    """Connected graph on ``n`` nodes whose edge weights are all distinct."""
    rng = np.random.default_rng(seed)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    order = list(rng.permutation(n))
    for a, b in zip(order, order[1:]):  # random spanning tree
        graph.add_edge(int(a), int(b))
    for _ in range(extra_edges):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            graph.add_edge(int(u), int(v))
    for index, (u, v) in enumerate(sorted((min(u, v), max(u, v)) for u, v in graph.edges())):
        graph[u][v]["weight"] = 0.25 * (index + 1)
    return graph


def _permuted(graph: nx.Graph, seed: int) -> nx.Graph:
    rng = np.random.default_rng(seed)
    nodes = sorted(graph.nodes())
    shuffled = list(rng.permutation(nodes))
    return nx.relabel_nodes(graph, {a: int(b) for a, b in zip(nodes, shuffled)})


class TestGraphFingerprints:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=9),
        extra=st.integers(min_value=0, max_value=8),
        seed=st.integers(min_value=0, max_value=10**6),
        perm_seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_property_isomorphic_relabelings_share_fingerprint(
        self, n, extra, seed, perm_seed
    ):
        graph = _distinct_weighted_graph(n, extra, seed)
        relabeled = _permuted(graph, perm_seed)
        assert JobSpec(graph=graph).fingerprint == JobSpec(graph=relabeled).fingerprint
        assert (
            JobSpec(graph=graph).instance_fingerprint
            == JobSpec(graph=relabeled).instance_fingerprint
        )

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=9),
        extra=st.integers(min_value=0, max_value=8),
        seed=st.integers(min_value=0, max_value=10**6),
        bump=st.integers(min_value=1, max_value=100),
    )
    def test_property_distinct_weights_distinct_fingerprints(self, n, extra, seed, bump):
        graph = _distinct_weighted_graph(n, extra, seed)
        modified = nx.Graph(graph)
        u, v = sorted(modified.edges())[0]
        modified[u][v]["weight"] += 0.125 * bump
        assert JobSpec(graph=graph).fingerprint != JobSpec(graph=modified).fingerprint

    @pytest.mark.parametrize(
        "graph",
        [
            nx.cycle_graph(7),
            nx.path_graph(6),
            nx.complete_graph(5),
            nx.petersen_graph(),
            nx.erdos_renyi_graph(9, 0.4, seed=3),
        ],
        ids=["cycle", "path", "complete", "petersen", "er"],
    )
    def test_unweighted_permutation_invariance(self, graph):
        base = JobSpec(graph=graph).fingerprint
        for perm_seed in range(4):
            relabeled = _permuted(graph, perm_seed)
            assert JobSpec(graph=relabeled).fingerprint == base

    def test_canonical_form_is_a_permutation_and_idempotent(self):
        graph = _distinct_weighted_graph(8, 5, 0)
        ordering, edges = canonical_graph_form(graph)
        assert sorted(ordering) == sorted(graph.nodes())
        # Edges live in canonical labels and reproduce the weights exactly.
        assert all(0 <= u <= v < 8 for u, v, _ in edges)
        assert sorted(w for _, _, w in edges) == sorted(
            data["weight"] for _, _, data in graph.edges(data=True)
        )
        # Canonicalizing the canonical graph is the identity.
        canonical = nx.Graph()
        canonical.add_nodes_from(range(8))
        canonical.add_weighted_edges_from(edges)
        ordering2, edges2 = canonical_graph_form(canonical)
        assert edges2 == edges
        assert ordering2 == list(range(8))

    def test_disconnected_graph_fingerprints(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=0.5)
        graph.add_edge(2, 3, weight=1.5)
        graph.add_node(4)
        relabeled = _permuted(graph, 11)
        assert JobSpec(graph=graph).fingerprint == JobSpec(graph=relabeled).fingerprint


class TestProblemFingerprints:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=9),
        seed=st.integers(min_value=0, max_value=10**6),
        perm_seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_property_permuted_problems_share_fingerprint(self, n, seed, perm_seed):
        rng = np.random.default_rng(seed)
        couplings = {}
        scale = 1
        for u in range(n):
            for v in range(u + 1, n):
                if rng.random() < 0.5:
                    couplings[(u, v)] = 0.125 * scale  # all-distinct magnitudes
                    scale += 1
        fields = {u: 0.0625 * (scale + u) for u in range(n) if rng.random() < 0.5}
        problem = DiagonalProblem(n, couplings, fields, constant=0.75, name="ising")
        perm = list(np.random.default_rng(perm_seed).permutation(n))
        permuted = DiagonalProblem(
            n,
            {(int(perm[u]), int(perm[v])): j for (u, v), j in couplings.items()},
            {int(perm[u]): h for u, h in fields.items()},
            constant=0.75,
            name="ising",
        )
        assert JobSpec(problem=problem).fingerprint == JobSpec(problem=permuted).fingerprint

    def test_constant_and_field_changes_change_fingerprint(self):
        problem = DiagonalProblem(4, {(0, 1): -0.5, (1, 2): 0.25}, {0: 0.5})
        base = JobSpec(problem=problem).fingerprint
        shifted = DiagonalProblem(4, {(0, 1): -0.5, (1, 2): 0.25}, {0: 0.5}, constant=1.0)
        refielded = DiagonalProblem(4, {(0, 1): -0.5, (1, 2): 0.25}, {0: 0.75})
        assert JobSpec(problem=shifted).fingerprint != base
        assert JobSpec(problem=refielded).fingerprint != base

    def test_name_is_reporting_only(self):
        a = DiagonalProblem(3, {(0, 1): -0.5}, name="alpha")
        b = DiagonalProblem(3, {(0, 1): -0.5}, name="beta")
        assert JobSpec(problem=a).fingerprint == JobSpec(problem=b).fingerprint


class TestConfigFingerprints:
    def test_config_changes_job_but_not_instance_fingerprint(self):
        graph = _distinct_weighted_graph(8, 4, 1)
        base = JobSpec(graph=graph, maxiter=20)
        other = JobSpec(graph=graph, maxiter=30)
        assert base.instance_fingerprint == other.instance_fingerprint
        assert base.fingerprint != other.fingerprint

    def test_seed_and_threshold_change_instance_fingerprint(self):
        graph = _distinct_weighted_graph(8, 4, 2)
        base = JobSpec(graph=graph)
        assert JobSpec(graph=graph, seed=1).instance_fingerprint != base.instance_fingerprint
        assert (
            JobSpec(graph=graph, and_ratio_threshold=0.8).instance_fingerprint
            != base.instance_fingerprint
        )

    def test_label_never_enters_the_fingerprint(self):
        graph = _distinct_weighted_graph(7, 3, 3)
        assert (
            JobSpec(graph=graph, label="a").fingerprint
            == JobSpec(graph=graph, label="b").fingerprint
        )

    def test_exactly_one_workload_required(self):
        problem = DiagonalProblem(3, {(0, 1): -0.5})
        with pytest.raises(ValueError):
            JobSpec()
        with pytest.raises(ValueError):
            JobSpec(graph=nx.path_graph(3), problem=problem)


class TestRunJob:
    def test_same_spec_runs_bit_identically(self):
        graph = _distinct_weighted_graph(9, 6, 4)
        spec = JobSpec(graph=graph, restarts=2, maxiter=8)
        assert run_job(spec) == run_job(spec)

    def test_isomorphic_specs_share_everything_but_labels(self):
        graph = _distinct_weighted_graph(9, 6, 5)
        relabeled = _permuted(graph, 6)
        spec_a = JobSpec(graph=graph, restarts=2, maxiter=8)
        spec_b = JobSpec(graph=relabeled, restarts=2, maxiter=8)
        result_a, result_b = run_job(spec_a), run_job(spec_b)
        assert result_a == result_b  # canonical results are identical
        assignment_a = result_a.assignment_for(spec_a)
        assignment_b = result_b.assignment_for(spec_b)
        assert sorted(assignment_a) == sorted(graph.nodes())
        assert sorted(assignment_b) == sorted(relabeled.nodes())
        # The two assignments induce the same cut value on their own graphs.
        def cut(graph, bits):
            return sum(
                data.get("weight", 1.0)
                for u, v, data in graph.edges(data=True)
                if bits[u] != bits[v]
            )
        assert math.isclose(cut(graph, assignment_a), cut(relabeled, assignment_b))

    def test_problem_job_runs_and_maps_assignment(self):
        problem = DiagonalProblem(
            6, {(0, 1): -0.5, (1, 2): -0.75, (2, 3): -0.25, (3, 4): -1.0, (4, 5): -0.125},
            {0: 0.5},
            name="chain",
        )
        spec = JobSpec(problem=problem, restarts=1, maxiter=8)
        result = run_job(spec)
        assert len(result.bits) == 6
        assignment = result.assignment_for(spec)
        assert sorted(assignment) == list(range(6))
        assert math.isclose(
            result.best_value, problem.value([assignment[u] for u in range(6)])
        )

    def test_store_payload_round_trip_is_exact(self):
        graph = _distinct_weighted_graph(8, 5, 7)
        spec = JobSpec(graph=graph, restarts=1, maxiter=8)
        result = run_job(spec)
        rebuilt = JobResult.from_payload(
            result.fingerprint, result.instance_fingerprint, result.to_payload()
        )
        rebuilt.source = "computed"
        assert rebuilt == result
