"""Property tests (hypothesis) for the problem layer.

The contracts pinned here are the acceptance criteria of the subsystem:
every encoding's dense diagonal matches brute-force evaluation of its
textbook objective on <= 12-node instances, QUBO <-> Ising round-trips are
exact, penalty optima are feasible, and the fast-sim expectation of any
problem matches the dense-diagonal reference to 1e-10 -- with field-free
problems routed through the lightcone plan bit-compatibly with the
weighted-MaxCut engine.
"""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.problems import (
    DiagonalProblem,
    max_independent_set_problem,
    maxcut_problem,
    min_vertex_cover_problem,
    number_partitioning_problem,
    problem_expectation,
    problem_expectation_reference,
    problem_lightcone_plan,
    qubo_problem,
    sk_problem,
)
from repro.qaoa.expectation import maxcut_expectation


def _connected_er(n, p, seed):
    offset = 0
    while True:
        g = nx.erdos_renyi_graph(n, p, seed=seed + offset)
        if g.number_of_edges() and nx.is_connected(g):
            return g
        offset += 100


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_property_qubo_ising_round_trip(n, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.normal(size=(n, n))
    offset = float(rng.normal())
    problem = qubo_problem(matrix, offset=offset)
    # QUBO -> Ising matches brute-force x^T Q x + offset on every assignment.
    for z in range(2**n):
        x = np.array([(z >> u) & 1 for u in range(n)], dtype=float)
        assert abs(problem.diagonal[z] - (x @ matrix @ x + offset)) < 1e-9
    # Ising -> QUBO -> Ising reproduces the diagonal.
    rebuilt = DiagonalProblem.from_qubo(*problem.to_qubo())
    assert np.allclose(problem.diagonal, rebuilt.diagonal, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=12),
    p_edge=st.floats(min_value=0.2, max_value=0.6),
    penalty=st.floats(min_value=1.25, max_value=4.0),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_property_mis_encoding_correct_and_feasible(n, p_edge, penalty, seed):
    graph = _connected_er(n, p_edge, seed)
    problem = max_independent_set_problem(graph, penalty=penalty)
    edges = list(graph.edges())
    brute = np.empty(2**n)
    for z in range(2**n):
        bits = [(z >> u) & 1 for u in range(n)]
        brute[z] = sum(bits) - penalty * sum(bits[u] * bits[v] for u, v in edges)
    assert np.allclose(problem.diagonal, brute, atol=1e-10)
    value, bits = problem.brute_force()
    assert all(not (bits[u] and bits[v]) for u, v in edges)  # feasible optimum
    alpha = max(
        bin(z).count("1")
        for z in range(2**n)
        if all(not ((z >> u) & 1 and (z >> v) & 1) for u, v in edges)
    )
    assert abs(value - alpha) < 1e-9  # the optimum value is the independence number


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=12),
    p_edge=st.floats(min_value=0.2, max_value=0.6),
    penalty=st.floats(min_value=1.25, max_value=4.0),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_property_vertex_cover_encoding_correct_and_feasible(n, p_edge, penalty, seed):
    graph = _connected_er(n, p_edge, seed)
    problem = min_vertex_cover_problem(graph, penalty=penalty)
    edges = list(graph.edges())
    brute = np.empty(2**n)
    for z in range(2**n):
        bits = [(z >> u) & 1 for u in range(n)]
        brute[z] = -sum(bits) - penalty * sum(
            (1 - bits[u]) * (1 - bits[v]) for u, v in edges
        )
    assert np.allclose(problem.diagonal, brute, atol=1e-10)
    value, bits = problem.brute_force()
    assert all(bits[u] or bits[v] for u, v in edges)  # feasible optimum
    cover = min(
        bin(z).count("1")
        for z in range(2**n)
        if all((z >> u) & 1 or (z >> v) & 1 for u, v in edges)
    )
    assert abs(value + cover) < 1e-9


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_property_partition_and_sk_diagonals(n, seed):
    rng = np.random.default_rng(seed)
    numbers = rng.integers(1, 30, size=max(n, 2)).astype(float)
    part = number_partitioning_problem(numbers)
    sk = sk_problem(max(n, 2), seed=seed)
    for z in range(2 ** max(n, 2)):
        spins = [1.0 - 2.0 * ((z >> u) & 1) for u in range(max(n, 2))]
        residual = sum(a * s for a, s in zip(numbers, spins))
        assert abs(part.diagonal[z] + residual**2) < 1e-8
        energy = sum(j * spins[u] * spins[v] for (u, v), j in sk.couplings.items())
        assert abs(sk.diagonal[z] - energy) < 1e-10


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=10),
    p=st.integers(min_value=1, max_value=2),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_property_fastsim_matches_dense_reference_all_encodings(n, p, seed):
    """Engine parity: every encoding's expectation matches the dense oracle."""
    rng = np.random.default_rng(seed)
    graph = _connected_er(n, 0.4, seed)
    problems = [
        maxcut_problem(graph),
        max_independent_set_problem(graph),
        min_vertex_cover_problem(graph),
        number_partitioning_problem(rng.integers(1, 9, size=n).astype(float)),
        sk_problem(n, seed=seed),
        qubo_problem(rng.normal(size=(n, n))),
    ]
    gammas = rng.uniform(-np.pi, np.pi, size=p)
    betas = rng.uniform(-np.pi, np.pi, size=p)
    for problem in problems:
        reference = problem_expectation_reference(problem, gammas, betas)
        auto = problem_expectation(problem, gammas, betas, exact_limit=2)
        assert abs(auto - reference) < 1e-10, problem.name
        # The dense observable expectation is bounded by the diagonal range.
        low, high = problem.diagonal.min(), problem.diagonal.max()
        assert low - 1e-9 <= reference <= high + 1e-9


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=6, max_value=12),
    p=st.integers(min_value=1, max_value=2),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_property_field_free_lightcone_matches_maxcut_engine(n, p, seed):
    """Field-free problems price through LightconePlan, bit-compatible with
    the weighted-MaxCut engine on the coupling graph."""
    rng = np.random.default_rng(seed)
    graph = _connected_er(n, 0.35, seed)
    for u, v in graph.edges():
        graph[u][v]["weight"] = float(rng.normal() or 1.0)
    problem = maxcut_problem(graph)
    gammas = rng.uniform(-np.pi, np.pi, size=p)
    betas = rng.uniform(-np.pi, np.pi, size=p)
    plan, offset = problem_lightcone_plan(problem, p, max_qubits=n)
    via_plan = plan.evaluate(list(gammas), list(betas)) + offset
    via_graph = maxcut_expectation(
        graph, gammas, betas, method="lightcone", exact_limit=n
    )
    assert abs(via_plan - via_graph) < 1e-10
    assert abs(via_plan - problem_expectation_reference(problem, gammas, betas)) < 1e-10
