"""Problem layer threaded through reduction, the pipeline, and the CLI."""

import networkx as nx
import numpy as np
import pytest

from repro.cli import main
from repro.core.annealer import reference_simulated_annealing, simulated_annealing
from repro.core.pipeline import RedQAOA
from repro.core.reduction import GraphReducer, ProblemReductionResult
from repro.datasets import PROBLEM_KINDS, problem_instance, problem_suite
from repro.problems import (
    max_independent_set_problem,
    maxcut_problem,
    problem_expectation,
    sk_problem,
)
from repro.qaoa.expectation import EngineLimitError
from repro.qaoa.fast_sim import qaoa_expectation_batch
from repro.qaoa.hamiltonian import MaxCutHamiltonian


def _connected_er(n, p, seed):
    offset = 0
    while True:
        g = nx.erdos_renyi_graph(n, p, seed=seed + offset)
        if g.number_of_edges() and nx.is_connected(g):
            return g
        offset += 100


class TestAnnealerFieldAwareness:
    """Self-loop (field) edges keep the two annealing engines bit-identical."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_engines_bit_identical_on_field_graphs(self, seed):
        problem = problem_instance("mis", 14, seed=seed, edge_probability=0.3)
        graph = problem.coupling_graph(include_fields=True)
        assert nx.number_of_selfloops(graph) > 0
        fast = simulated_annealing(graph, 9, seed=seed, max_steps=400)
        slow = reference_simulated_annealing(graph, 9, seed=seed, max_steps=400)
        assert fast.nodes == slow.nodes
        assert fast.objective == slow.objective  # bit-equal, not approx
        assert fast.history == slow.history
        assert fast.steps == slow.steps

    def test_fields_count_toward_node_strength(self):
        # Two triangles joined by one edge; node 0 carries a huge field.  The
        # field-aware objective must treat node 0 as strongly connected.
        graph = nx.Graph()
        graph.add_edges_from([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)])
        problem_fields = {0: 50.0}
        from repro.problems import DiagonalProblem

        problem = DiagonalProblem(
            6, {(u, v): -0.5 for u, v in graph.edges()}, fields=problem_fields
        )
        weighted = problem.coupling_graph(include_fields=True)
        bare = problem.coupling_graph(include_fields=False)
        from repro.utils.graphs import average_node_strength

        assert average_node_strength(weighted) > average_node_strength(bare)


class TestReduceProblem:
    def test_reduce_problem_result_shape(self):
        problem = problem_instance("mis", 14, seed=3, edge_probability=0.3)
        result = GraphReducer(seed=0).reduce_problem(problem)
        assert isinstance(result, ProblemReductionResult)
        assert result.subproblem.num_qubits == len(result.nodes)
        assert result.nodes == sorted(result.nodes)
        assert set(result.node_mapping) == set(result.nodes)
        assert 0.0 <= result.node_reduction < 1.0
        assert result.and_ratio > 0.0
        # Restriction keeps only interior couplings and the kept fields.
        kept = set(result.nodes)
        expected = {
            (u, v) for (u, v) in problem.couplings if u in kept and v in kept
        }
        assert len(result.subproblem.couplings) == len(expected)

    def test_maxcut_problem_reduces_like_the_graph(self):
        graph = _connected_er(14, 0.35, seed=9)
        problem = maxcut_problem(graph)
        graph_result = GraphReducer(seed=7).reduce(graph)
        problem_result = GraphReducer(seed=7).reduce_problem(problem)
        assert set(problem_result.nodes) == set(graph_result.nodes)
        assert problem_result.and_ratio == graph_result.and_ratio

    def test_target_size(self):
        problem = sk_problem(12, seed=1)
        result = GraphReducer(seed=0).reduce_problem(problem, target_size=8)
        assert result.subproblem.num_qubits == 8


class TestPipelineProblems:
    def test_run_requires_exactly_one_input(self):
        pipeline = RedQAOA(seed=0)
        with pytest.raises(ValueError, match="exactly one"):
            pipeline.run()
        with pytest.raises(ValueError, match="exactly one"):
            pipeline.run(nx.path_graph(4), problem=sk_problem(4, seed=0))

    def test_shots_validated_at_construction(self):
        with pytest.raises(ValueError, match="shots"):
            RedQAOA(shots=0)

    def test_run_problem_mis_end_to_end(self):
        graph = _connected_er(12, 0.3, seed=4)
        problem = max_independent_set_problem(graph)
        result = RedQAOA(p=1, restarts=2, maxiter=25, finetune_maxiter=4,
                         seed=1).run(problem=problem)
        assert isinstance(result.reduction, ProblemReductionResult)
        assert result.reduction.subproblem.num_qubits < problem.num_qubits
        # The returned assignment is the sampled-best outcome: its value is
        # the reported cut_value and respects the optimum bound.  (Strict
        # feasibility is only guaranteed for the *true* optimum -- asserted
        # in the encoding tests -- not for every sampled state.)
        bits = [result.assignment[q] for q in range(problem.num_qubits)]
        assert problem.value(bits) == pytest.approx(result.cut_value)
        assert result.cut_value <= problem.best_value() + 1e-9
        if result.cut_value == pytest.approx(problem.best_value()):
            assert all(not (bits[u] and bits[v]) for u, v in graph.edges())
        assert result.expectation == pytest.approx(
            problem_expectation(problem, result.gammas, result.betas)
        )

    def test_run_problem_sk_pure_transfer(self):
        problem = sk_problem(12, seed=5)
        result = RedQAOA(p=2, restarts=2, maxiter=20, finetune_maxiter=0,
                         seed=2).run(problem=problem)
        assert result.finetune_trace is None
        assert result.num_original_evaluations == 0
        assert np.isfinite(result.expectation)
        assert result.cut_value <= problem.best_value() + 1e-9

    def test_noise_not_supported_for_problems(self):
        from repro.qaoa.fast_sim import FastNoiseSpec

        pipeline = RedQAOA(noise=FastNoiseSpec(edge_error=0.01), seed=0)
        with pytest.raises(NotImplementedError, match="noise"):
            pipeline.run(problem=sk_problem(6, seed=0))

    def test_engine_limit_for_large_field_problems(self):
        from repro.problems import DiagonalProblem

        big = DiagonalProblem(30, {(0, 1): 1.0}, fields={5: 1.0})
        with pytest.raises(EngineLimitError, match="linear fields"):
            problem_expectation(big, [0.1], [0.2])

    def test_run_problem_fails_fast_on_unevaluable_instances(self):
        """Unsupported instances are rejected before any budget is spent."""
        from repro.problems import DiagonalProblem

        big = DiagonalProblem(
            30, {(u, u + 1): 1.0 for u in range(29)}, fields={0: 1.0}
        )
        pipeline = RedQAOA(seed=0)
        calls = {"count": 0}
        original = pipeline.reducer.reduce_problem

        def counting(problem, target_size=None):
            calls["count"] += 1
            return original(problem, target_size)

        pipeline.reducer.reduce_problem = counting
        with pytest.raises(EngineLimitError, match="linear fields"):
            pipeline.run(problem=big)
        assert calls["count"] == 0  # raised before reduction started

    def test_problem_evaluator_reused_and_matches_expectation(self):
        from repro.problems import problem_evaluator

        problem = maxcut_problem(
            nx.random_regular_graph(3, 26, seed=0)
        )  # field-free, above the exact limit -> lightcone plan path
        evaluate = problem_evaluator(problem, 2, exact_limit=4)
        for seed in (0, 1):
            rng = np.random.default_rng(seed)
            gammas = rng.uniform(-1, 1, size=2)
            betas = rng.uniform(-1, 1, size=2)
            assert evaluate(gammas, betas) == pytest.approx(
                problem_expectation(problem, gammas, betas, exact_limit=4),
                abs=1e-12,
            )


class TestProblemDatasets:
    def test_all_kinds_generate_deterministically(self):
        for kind in PROBLEM_KINDS:
            first = problem_instance(kind, 10, seed=42)
            second = problem_instance(kind, 10, seed=42)
            assert first.couplings == second.couplings, kind
            assert first.fields == second.fields, kind
            assert first.constant == second.constant, kind

    def test_problem_suite_counts_and_unknown_kind(self):
        suite = problem_suite("sk", count=3, num_qubits=8, seed=0)
        assert len(suite) == 3
        assert len({tuple(p.couplings.values()) for p in suite}) == 3
        with pytest.raises(ValueError, match="unknown problem kind"):
            problem_instance("bogus", 8)


class TestCliSolve:
    @pytest.mark.parametrize("kind", ["mis", "sk"])
    def test_solve_runs_end_to_end(self, kind, capsys):
        code = main(["solve", "--problem", kind, "-n", "12", "--restarts", "2",
                     "--maxiter", "15", "--seed", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert f"problem: {kind}" in out
        assert "reduced:" in out
        assert "expectation on the full problem:" in out
        assert "best sampled value" in out

    def test_solve_qubo_file(self, tmp_path, capsys):
        rng = np.random.default_rng(0)
        path = tmp_path / "qubo.txt"
        np.savetxt(path, rng.normal(size=(8, 8)))
        code = main(["solve", "--problem", "qubo", "--qubo-file", str(path),
                     "--restarts", "2", "--maxiter", "10", "--seed", "1"])
        assert code == 0
        assert "problem: qubo, 8 qubits" in capsys.readouterr().out

    def test_solve_qubo_file_requires_qubo_kind(self, tmp_path):
        path = tmp_path / "qubo.txt"
        np.savetxt(path, np.zeros((3, 3)))
        with pytest.raises(SystemExit):
            main(["solve", "--problem", "sk", "--qubo-file", str(path)])

    def test_solve_degenerate_qubo_exits_cleanly(self, tmp_path):
        # All-zero matrix: no couplings, no fields -- nothing to reduce.
        path = tmp_path / "zero.txt"
        np.savetxt(path, np.zeros((4, 4)))
        with pytest.raises(SystemExit, match="error"):
            main(["solve", "--problem", "qubo", "--qubo-file", str(path)])

    def test_solve_bad_shots_exits_cleanly(self):
        with pytest.raises(SystemExit, match="shots"):
            main(["solve", "--problem", "sk", "-n", "8", "--shots", "0"])


def test_observable_mismatch_error_names_the_qubit_count():
    hamiltonian = MaxCutHamiltonian(nx.cycle_graph(5))
    with pytest.raises(ValueError, match="5-qubit"):
        qaoa_expectation_batch(
            hamiltonian, np.array([[0.1]]), np.array([[0.2]]),
            observable=np.zeros(7),
        )
