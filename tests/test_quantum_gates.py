"""Tests for repro.quantum.gates."""

import numpy as np
import pytest

from repro.quantum.gates import GATE_ARITY, PARAM_COUNT, gate_matrix, is_diagonal_gate


def _is_unitary(m: np.ndarray) -> bool:
    return np.allclose(m.conj().T @ m, np.eye(m.shape[0]), atol=1e-12)


class TestFixedGates:
    @pytest.mark.parametrize("name", [n for n, k in PARAM_COUNT.items() if k == 0])
    def test_all_fixed_gates_unitary(self, name):
        assert _is_unitary(gate_matrix(name))

    def test_x_flips(self):
        x = gate_matrix("x")
        assert np.allclose(x @ np.array([1, 0]), np.array([0, 1]))
        assert np.allclose(x @ np.array([0, 1]), np.array([1, 0]))

    def test_h_creates_superposition(self):
        h = gate_matrix("h")
        plus = h @ np.array([1, 0])
        assert np.allclose(plus, np.array([1, 1]) / np.sqrt(2))

    def test_hh_is_identity(self):
        h = gate_matrix("h")
        assert np.allclose(h @ h, np.eye(2))

    def test_s_squared_is_z(self):
        s = gate_matrix("s")
        assert np.allclose(s @ s, gate_matrix("z"))

    def test_t_squared_is_s(self):
        t = gate_matrix("t")
        assert np.allclose(t @ t, gate_matrix("s"))

    def test_sdg_inverts_s(self):
        assert np.allclose(gate_matrix("s") @ gate_matrix("sdg"), np.eye(2))

    def test_sx_squared_is_x(self):
        sx = gate_matrix("sx")
        assert np.allclose(sx @ sx, gate_matrix("x"))

    def test_cx_truth_table(self):
        cx = gate_matrix("cx")
        # basis |q1 q0>, control = q0: |01> (q0=1, index 1) -> |11> (index 3)
        state = np.zeros(4)
        state[1] = 1.0
        assert np.allclose(cx @ state, np.eye(4)[3])
        # |00> unchanged
        assert np.allclose(cx @ np.eye(4)[0], np.eye(4)[0])

    def test_swap_exchanges(self):
        swap = gate_matrix("swap")
        assert np.allclose(swap @ np.eye(4)[1], np.eye(4)[2])

    def test_cz_phase(self):
        cz = gate_matrix("cz")
        assert cz[3, 3] == -1
        assert np.allclose(np.diag(cz)[:3], [1, 1, 1])


class TestRotationGates:
    def test_rx_zero_is_identity(self):
        assert np.allclose(gate_matrix("rx", [0.0]), np.eye(2))

    def test_rx_2pi_is_minus_identity(self):
        assert np.allclose(gate_matrix("rx", [2 * np.pi]), -np.eye(2))

    def test_rx_pi_is_minus_i_x(self):
        assert np.allclose(gate_matrix("rx", [np.pi]), -1j * gate_matrix("x"))

    def test_ry_pi_is_minus_i_y(self):
        assert np.allclose(gate_matrix("ry", [np.pi]), -1j * gate_matrix("y"))

    def test_rz_pi_is_minus_i_z(self):
        assert np.allclose(gate_matrix("rz", [np.pi]), -1j * gate_matrix("z"))

    @pytest.mark.parametrize("name", ["rx", "ry", "rz"])
    @pytest.mark.parametrize("theta", [0.1, 1.0, np.pi, 4.5])
    def test_rotations_unitary(self, name, theta):
        assert _is_unitary(gate_matrix(name, [theta]))

    @pytest.mark.parametrize("name", ["rx", "ry", "rz"])
    def test_rotation_composition(self, name):
        a = gate_matrix(name, [0.4])
        b = gate_matrix(name, [0.7])
        assert np.allclose(a @ b, gate_matrix(name, [1.1]))

    def test_u3_reduces_to_ry(self):
        assert np.allclose(gate_matrix("u3", [0.8, 0.0, 0.0]), gate_matrix("ry", [0.8]))

    def test_u3_unitary(self):
        assert _is_unitary(gate_matrix("u3", [0.3, 1.1, 2.2]))

    def test_rzz_diagonal_phases(self):
        theta = 0.6
        m = gate_matrix("rzz", [theta])
        expected = np.diag(
            np.exp(-0.5j * theta * np.array([1, -1, -1, 1]))
        )
        assert np.allclose(m, expected)

    def test_rzz_unitary(self):
        assert _is_unitary(gate_matrix("rzz", [1.3]))


class TestValidation:
    def test_unknown_gate_raises(self):
        with pytest.raises(KeyError):
            gate_matrix("nope")

    def test_wrong_param_count(self):
        with pytest.raises(ValueError):
            gate_matrix("rx", [])
        with pytest.raises(ValueError):
            gate_matrix("h", [0.1])
        with pytest.raises(ValueError):
            gate_matrix("u3", [0.1])

    def test_arity_table_consistent(self):
        for name in GATE_ARITY:
            params = [0.1] * PARAM_COUNT[name]
            matrix = gate_matrix(name, params)
            assert matrix.shape == (2 ** GATE_ARITY[name],) * 2


class TestDiagonalGates:
    @pytest.mark.parametrize("name", ["z", "s", "t", "rz", "cz", "rzz"])
    def test_diagonal_names(self, name):
        assert is_diagonal_gate(name)

    @pytest.mark.parametrize("name", ["x", "h", "cx", "swap", "rx", "ry"])
    def test_non_diagonal_names(self, name):
        assert not is_diagonal_gate(name)

    def test_diagonal_matrices_are_diagonal(self):
        for name in ["z", "s", "t", "cz"]:
            m = gate_matrix(name)
            assert np.allclose(m, np.diag(np.diag(m)))
