"""Tests for repro.service.scheduler and campaign: dedup, reuse, resume.

The acceptance contract under test: per-job results are bit-identical
between batched execution, N sequential :func:`run_job` calls, and a
store-resumed pass -- regardless of manifest order or grouping -- while the
scheduler provably skips duplicate, isomorphic, already-stored, and
shared-reduction work.
"""

import json

import networkx as nx
import numpy as np
import pytest

from repro.datasets import suite_manifest
from repro.service import (
    BatchScheduler,
    Campaign,
    JobSpec,
    ResultStore,
    load_manifest,
    manifest_specs,
    run_job,
)


def _weighted_graph(n, seed):
    rng = np.random.default_rng(seed)
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    order = list(rng.permutation(n))
    for a, b in zip(order, order[1:]):
        graph.add_edge(int(a), int(b))
    for _ in range(n):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            graph.add_edge(int(u), int(v))
    for index, (u, v) in enumerate(sorted((min(u, v), max(u, v)) for u, v in graph.edges())):
        graph[u][v]["weight"] = 0.25 * (index + 1)
    return graph


def _permuted(graph, seed):
    rng = np.random.default_rng(seed)
    nodes = sorted(graph.nodes())
    shuffled = list(rng.permutation(nodes))
    return nx.relabel_nodes(graph, {a: int(b) for a, b in zip(nodes, shuffled)})


def _specs_with_duplicates():
    """5 manifest entries, 3 unique jobs, 2 unique instances."""
    graph_a = _weighted_graph(9, 0)
    graph_b = _weighted_graph(9, 1)
    config = dict(restarts=1, maxiter=8)
    return [
        JobSpec(graph=graph_a, label="a", **config),
        JobSpec(graph=nx.Graph(graph_a), label="a-copy", **config),  # exact dup
        JobSpec(graph=_permuted(graph_a, 5), label="a-iso", **config),  # isomorphic dup
        JobSpec(graph=graph_b, label="b", **config),
        JobSpec(graph=graph_a, label="a-deeper", maxiter=14, restarts=1),  # shares instance
    ]


def _key(result):
    return (result.gammas, result.betas, result.expectation, result.best_value, result.bits)


class TestDedupAndBitIdentity:
    def test_batched_matches_sequential_run_job(self):
        specs = _specs_with_duplicates()
        report = BatchScheduler().run(specs)
        sequential = [run_job(spec) for spec in specs]
        assert report.num_jobs == 5
        assert report.num_unique == 3
        assert report.num_instances == 2
        assert report.computed == 3
        assert report.deduped == 2
        assert report.reduction_reuses == 1  # a-deeper reuses instance a's reduction
        for view, expected in zip(report.results, sequential):
            assert _key(view.result) == _key(expected)

    def test_views_follow_manifest_order_and_tag_sources(self):
        specs = _specs_with_duplicates()
        report = BatchScheduler().run(specs)
        assert [view.index for view in report.results] == [0, 1, 2, 3, 4]
        assert [view.source for view in report.results] == [
            "computed", "dedup", "dedup", "computed", "computed",
        ]
        # Isomorphic duplicates answer in their own labels.
        assert sorted(report.results[2].assignment) == sorted(specs[2].graph.nodes())

    def test_manifest_order_cannot_change_results(self):
        specs = _specs_with_duplicates()
        forward = BatchScheduler().run(specs)
        backward = BatchScheduler().run(list(reversed(specs)))
        by_fp_forward = {v.fingerprint: _key(v.result) for v in forward.results}
        by_fp_backward = {v.fingerprint: _key(v.result) for v in backward.results}
        assert by_fp_forward == by_fp_backward

    def test_on_result_streams_computed_jobs(self):
        specs = _specs_with_duplicates()
        seen = []
        BatchScheduler().run(specs, on_result=lambda spec, result: seen.append(spec.label))
        assert len(seen) == 3  # one callback per unique computed job


class TestStoreResume:
    def test_resume_recomputes_nothing(self, tmp_path):
        path = tmp_path / "store.jsonl"
        specs = _specs_with_duplicates()
        first = BatchScheduler(store=ResultStore(path)).run(specs)
        resumed_store = ResultStore(path)
        second = BatchScheduler(store=resumed_store).run(_specs_with_duplicates())
        assert first.computed == 3
        assert second.computed == 0
        assert second.store_hits == second.num_unique == 3
        assert resumed_store.hits == 3
        for before, after in zip(first.results, second.results):
            assert _key(before.result) == _key(after.result)

    def test_partial_store_runs_only_the_new_jobs(self, tmp_path):
        path = tmp_path / "store.jsonl"
        specs = _specs_with_duplicates()
        BatchScheduler(store=ResultStore(path)).run(specs[:2])
        report = BatchScheduler(store=ResultStore(path)).run(specs)
        assert report.store_hits == 1
        assert report.computed == 2


class TestCrossInstanceMode:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            BatchScheduler(reduction_reuse="sometimes")

    def test_cross_instance_is_deterministic_for_a_manifest_set(self):
        # A stream of similar unweighted instances: the AND-bucket bank can
        # serve later ones from earlier reductions (approximate mode), but
        # sorted-instance-fingerprint processing keeps the outcome a pure
        # function of the manifest *set*.
        def build(seed):
            graph = nx.erdos_renyi_graph(10, 0.45, seed=seed)
            while not (graph.number_of_edges() and nx.is_connected(graph)):
                seed += 100
                graph = nx.erdos_renyi_graph(10, 0.45, seed=seed)
            return JobSpec(graph=graph, restarts=1, maxiter=8, label=f"g{seed}")

        specs = [build(seed) for seed in range(4)]
        forward = BatchScheduler(reduction_reuse="cross-instance").run(specs)
        backward = BatchScheduler(reduction_reuse="cross-instance").run(
            list(reversed(specs))
        )
        assert forward.reduction_cross_hits == backward.reduction_cross_hits
        by_fp_forward = {v.fingerprint: _key(v.result) for v in forward.results}
        by_fp_backward = {v.fingerprint: _key(v.result) for v in backward.results}
        assert by_fp_forward == by_fp_backward

    def test_cross_instance_banks_and_hits(self):
        base = nx.erdos_renyi_graph(10, 0.45, seed=2)
        assert nx.is_connected(base)
        similar = nx.Graph(base)
        similar.add_edges_from([(10, 0), (10, 1), (10, 2), (10, 3), (10, 4)])
        scheduler = BatchScheduler(reduction_reuse="cross-instance")
        report = scheduler.run([
            JobSpec(graph=base, restarts=1, maxiter=8),
            JobSpec(graph=similar, restarts=1, maxiter=8),
        ])
        # The second instance's AND is close to the first's, so the banked
        # reduction serves it (the paper's 10-vs-11-node scenario).
        assert report.reduction_cross_hits == 1
        assert scheduler.reduction_cache.size == 1


class TestProblemJobs:
    def test_problem_suite_shares_plans_across_configs(self):
        # Two field-free SK-style jobs on one instance but different
        # optimizer budgets at n > 20 would be needed to force lightcones;
        # keep it dense-engine sized and just assert reduction sharing and
        # bit-identity through the problem path.
        from repro.datasets import problem_instance

        problem = problem_instance("mis", 10, seed=0, edge_probability=0.3)
        specs = [
            JobSpec(problem=problem, restarts=1, maxiter=8),
            JobSpec(problem=problem, restarts=1, maxiter=12),
        ]
        report = BatchScheduler().run(specs)
        assert report.num_instances == 1
        assert report.reduction_reuses == 1
        for view, expected in zip(report.results, [run_job(s) for s in specs]):
            assert _key(view.result) == _key(expected)


class TestCampaign:
    def test_manifest_expansion_defaults_overrides_and_repeat(self):
        manifest = {
            "schema": 1,
            "defaults": {"restarts": 1, "maxiter": 8, "p": 1},
            "jobs": [
                {"kind": "maxcut", "nodes": 8, "seed": 0, "repeat": 2},
                {"kind": "mis", "nodes": 8, "seed": 1, "maxiter": 10},
            ],
        }
        specs = manifest_specs(manifest)
        assert len(specs) == 3
        assert specs[0].fingerprint == specs[1].fingerprint
        assert specs[0].maxiter == 8
        assert specs[2].maxiter == 10
        assert specs[2].kind == "problem"

    def test_unknown_manifest_keys_are_rejected(self):
        with pytest.raises(ValueError, match="unknown manifest keys"):
            manifest_specs({"jobs": [{"kind": "maxcut", "nodes": 8, "wat": 1}]})
        with pytest.raises(ValueError, match="no jobs"):
            manifest_specs({"jobs": []})
        with pytest.raises(ValueError, match="schema"):
            manifest_specs({"schema": 99, "jobs": [{"kind": "maxcut"}]})

    def test_suite_manifest_round_trip(self):
        manifest = suite_manifest(
            "mis", count=3, num_qubits=8, seed=5,
            generator={"edge_probability": 0.3}, restarts=1, maxiter=8,
        )
        specs = manifest_specs(manifest)
        assert len(specs) == 3
        assert len({spec.fingerprint for spec in specs}) == 3
        assert all(spec.restarts == 1 for spec in specs)

    def test_campaign_run_and_aggregates(self, tmp_path):
        manifest = suite_manifest(
            "maxcut", count=2, num_qubits=8, seed=0, restarts=1, maxiter=8,
        )
        manifest["jobs"][0]["repeat"] = 3
        campaign = Campaign.from_manifest(manifest, store_path=tmp_path / "store.jsonl")
        report = campaign.run()
        payload = report.to_dict()
        assert payload["jobs"] == 4
        assert payload["unique_jobs"] == 2
        labels = sorted(payload["aggregates"])
        assert payload["aggregates"][labels[0]]["count"] == 3
        json.dumps(payload)  # the whole report is JSON-serializable
        # Resume through the campaign layer.
        second = Campaign.from_manifest(
            manifest, store_path=tmp_path / "store.jsonl"
        ).run()
        assert second.to_dict()["computed"] == 0

    def test_manifest_files_json_and_yaml(self, tmp_path):
        manifest = {
            "schema": 1,
            "jobs": [{"kind": "maxcut", "nodes": 8, "seed": 0}],
        }
        json_path = tmp_path / "manifest.json"
        json_path.write_text(json.dumps(manifest))
        assert load_manifest(json_path) == manifest
        yaml_path = tmp_path / "manifest.yaml"
        yaml_path.write_text(
            "schema: 1\njobs:\n  - kind: maxcut\n    nodes: 8\n    seed: 0\n"
        )
        try:
            import yaml  # noqa: F401
        except ImportError:
            pytest.skip("PyYAML not installed")
        assert load_manifest(yaml_path) == manifest

    def test_malformed_manifest_files_raise_value_error(self, tmp_path):
        bad_json = tmp_path / "bad.json"
        bad_json.write_text("{unclosed")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_manifest(bad_json)
        try:
            import yaml  # noqa: F401
        except ImportError:
            return
        bad_yaml = tmp_path / "bad.yaml"
        bad_yaml.write_text("{unclosed: [")
        with pytest.raises(ValueError, match="not valid YAML"):
            load_manifest(bad_yaml)

    def test_specs_are_frozen(self):
        spec = JobSpec(graph=_weighted_graph(6, 0))
        with pytest.raises(AttributeError):
            spec.maxiter = 99

    def test_empty_campaign_is_rejected(self):
        with pytest.raises(ValueError):
            Campaign([])
