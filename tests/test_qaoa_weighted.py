"""Tests for weighted MaxCut support across the QAOA stack."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qaoa.analytic import maxcut_p1_expectation, maxcut_p1_weighted_edge_zz
from repro.qaoa.circuit_builder import build_qaoa_circuit
from repro.qaoa.fast_sim import qaoa_expectation_fast
from repro.qaoa.hamiltonian import MaxCutHamiltonian, cut_values
from repro.qaoa.maxcut import brute_force_maxcut, cut_size, local_search_maxcut
from repro.quantum.statevector import StatevectorSimulator


def _weighted_er(n, p, seed, low=0.2, high=2.0):
    rng = np.random.default_rng(seed)
    offset = 0
    while True:
        g = nx.erdos_renyi_graph(n, p, seed=seed + offset)
        if g.number_of_edges() and nx.is_connected(g):
            break
        offset += 100
    for u, v in g.edges():
        g[u][v]["weight"] = float(rng.uniform(low, high))
    return g


class TestWeightedHamiltonian:
    def test_cut_values_scale_with_weight(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=2.5)
        assert np.allclose(cut_values(g), [0, 2.5, 2.5, 0])

    def test_is_weighted_flag(self):
        assert not MaxCutHamiltonian(nx.path_graph(3)).is_weighted
        assert MaxCutHamiltonian(_weighted_er(5, 0.6, 0)).is_weighted

    def test_weights_follow_sorted_edges(self):
        g = nx.Graph()
        g.add_edge(1, 2, weight=3.0)
        g.add_edge(0, 1, weight=5.0)
        ham = MaxCutHamiltonian(g)
        assert ham.edges == [(0, 1), (1, 2)]
        assert ham.weights == (5.0, 3.0)

    def test_max_value_weighted(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=1.0)
        g.add_edge(1, 2, weight=4.0)
        g.add_edge(0, 2, weight=1.0)
        # Best: separate node 1 (cuts 1+4 = 5) or node 2 (4+1 = 5).
        assert MaxCutHamiltonian(g).max_value() == 5.0


class TestWeightedSolvers:
    def test_cut_size_weighted(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=2.0)
        g.add_edge(1, 2, weight=3.0)
        assert cut_size(g, {0: 0, 1: 1, 2: 0}) == 5.0
        assert cut_size(g, {0: 0, 1: 0, 2: 1}) == 3.0

    def test_brute_force_weighted(self):
        g = _weighted_er(8, 0.5, 1)
        value, assignment = brute_force_maxcut(g)
        assert value == pytest.approx(cut_size(g, assignment))

    def test_local_search_matches_brute_force(self):
        for seed in range(3):
            g = _weighted_er(9, 0.45, seed)
            exact, _ = brute_force_maxcut(g)
            heuristic, assignment = local_search_maxcut(g, restarts=25, seed=seed)
            assert heuristic == pytest.approx(exact)
            assert cut_size(g, assignment) == pytest.approx(heuristic)


class TestWeightedCircuitsAndEngines:
    def test_circuit_matches_fast_engine(self):
        g = _weighted_er(6, 0.5, 2)
        ham = MaxCutHamiltonian(g)
        gamma, beta = 0.9, 0.4
        circuit = build_qaoa_circuit(g, [gamma], [beta])
        gate_level = StatevectorSimulator().expectation_diagonal(circuit, ham.diagonal)
        fast = qaoa_expectation_fast(ham, [gamma], [beta])
        assert gate_level == pytest.approx(fast, abs=1e-10)

    def test_weighted_edge_zz_bounds(self):
        zz = maxcut_p1_weighted_edge_zz(0.7, 0.3, 1.5, {2: 0.5}, {3: 1.1})
        assert -1.0 - 1e-9 <= zz <= 1.0 + 1e-9

    def test_analytic_matches_exact_weighted(self):
        for seed in range(4):
            g = _weighted_er(7, 0.5, seed)
            ham = MaxCutHamiltonian(g)
            rng = np.random.default_rng(seed)
            gamma = float(rng.uniform(0, 2 * np.pi))
            beta = float(rng.uniform(0, np.pi))
            exact = qaoa_expectation_fast(ham, [gamma], [beta])
            analytic = maxcut_p1_expectation(g, gamma, beta)
            assert analytic == pytest.approx(exact, abs=1e-9)

    def test_unit_weights_reduce_to_unweighted_formula(self):
        g = nx.erdos_renyi_graph(7, 0.5, seed=5)
        for u, v in g.edges():
            g[u][v]["weight"] = 1.0
        a = maxcut_p1_expectation(g, 0.8, 0.5)
        h = nx.erdos_renyi_graph(7, 0.5, seed=5)
        b = maxcut_p1_expectation(h, 0.8, 0.5)
        assert a == pytest.approx(b, abs=1e-12)

    def test_no_gamma_periodicity_with_irrational_weights(self):
        """Weighted cost layers are not 2*pi-periodic in gamma in general."""
        g = _weighted_er(6, 0.5, 7)
        ham = MaxCutHamiltonian(g)
        a = qaoa_expectation_fast(ham, [0.7], [0.4])
        b = qaoa_expectation_fast(ham, [0.7 + 2 * np.pi], [0.4])
        assert a != pytest.approx(b, abs=1e-6)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    gamma=st.floats(min_value=0.0, max_value=2 * np.pi),
    beta=st.floats(min_value=0.0, max_value=np.pi),
)
def test_property_weighted_analytic_equals_statevector(seed, gamma, beta):
    """Weighted closed form agrees with exact simulation on random graphs."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 8))
    g = _weighted_er(n, 0.5, seed)
    exact = qaoa_expectation_fast(MaxCutHamiltonian(g), [gamma], [beta])
    analytic = maxcut_p1_expectation(g, gamma, beta)
    assert analytic == pytest.approx(exact, abs=1e-8)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_weighted_expectation_bounded(seed):
    """0 <= <H_c> <= total weight for any weighted instance."""
    rng = np.random.default_rng(seed)
    g = _weighted_er(6, 0.5, seed)
    ham = MaxCutHamiltonian(g)
    total = sum(ham.weights)
    value = qaoa_expectation_fast(
        ham, [float(rng.uniform(0, 2 * np.pi))], [float(rng.uniform(0, np.pi))]
    )
    assert -1e-9 <= value <= total + 1e-9
