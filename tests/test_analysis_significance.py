"""Tests for repro.analysis.significance."""

import numpy as np
import pytest

from repro.analysis.significance import (
    BootstrapInterval,
    bootstrap_mean_ci,
    paired_bootstrap_test,
)


class TestBootstrapCi:
    def test_interval_brackets_mean(self):
        rng = np.random.default_rng(0)
        values = rng.normal(5.0, 1.0, size=100)
        interval = bootstrap_mean_ci(values, seed=0)
        assert interval.low <= interval.mean <= interval.high
        assert interval.contains(values.mean())

    def test_interval_covers_true_mean_usually(self):
        rng = np.random.default_rng(1)
        covered = 0
        for trial in range(20):
            values = rng.normal(2.0, 1.0, size=60)
            if bootstrap_mean_ci(values, seed=trial).contains(2.0):
                covered += 1
        assert covered >= 16  # ~95% nominal coverage

    def test_narrower_with_more_data(self):
        rng = np.random.default_rng(2)
        small = bootstrap_mean_ci(rng.normal(0, 1, 20), seed=0)
        large = bootstrap_mean_ci(rng.normal(0, 1, 2000), seed=0)
        assert (large.high - large.low) < (small.high - small.low)

    def test_constant_data_zero_width(self):
        interval = bootstrap_mean_ci([3.0] * 10, seed=0)
        assert interval.low == interval.high == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], resamples=10)


class TestPairedBootstrap:
    def test_clear_winner(self):
        rng = np.random.default_rng(0)
        baseline = rng.normal(0.0, 0.1, size=40)
        candidate = baseline + 1.0
        assert paired_bootstrap_test(candidate, baseline, seed=0) == 1.0

    def test_clear_loser(self):
        rng = np.random.default_rng(1)
        baseline = rng.normal(0.0, 0.1, size=40)
        assert paired_bootstrap_test(baseline - 1.0, baseline, seed=0) == 0.0

    def test_coin_flip_near_half(self):
        rng = np.random.default_rng(2)
        baseline = rng.normal(0.0, 1.0, size=200)
        candidate = baseline + rng.normal(0.0, 1.0, size=200) * 0.01
        p = paired_bootstrap_test(candidate, baseline, seed=0)
        assert 0.1 < p < 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_bootstrap_test([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            paired_bootstrap_test([], [])

    def test_red_qaoa_style_usage(self):
        """The intended use: per-instance MSE pairs from a Fig. 10 run."""
        baseline_mse = [0.031, 0.045, 0.038, 0.052, 0.047, 0.036, 0.049, 0.058]
        red_mse = [0.022, 0.038, 0.031, 0.035, 0.049, 0.028, 0.033, 0.041]
        p = paired_bootstrap_test(
            [-m for m in red_mse], [-m for m in baseline_mse], seed=0
        )
        assert p > 0.9  # lower MSE -> higher negated value -> candidate wins
