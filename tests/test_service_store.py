"""Tests for repro.service.store: the persistent JSONL result store."""

import json
import math

import pytest

from repro.service.jobs import JobResult
from repro.service.store import STORE_SCHEMA, ResultStore


def _result(tag: str, best: float = 3.5) -> JobResult:
    return JobResult(
        fingerprint=f"fp-{tag}",
        instance_fingerprint=f"inst-{tag}",
        gammas=[0.1234567890123456, -2.7182818284590451],
        betas=[0.3333333333333333, 1e-17],
        expectation=1.0000000000000002,
        best_value=best,
        bits=[0, 1, 1, 0],
        reduced_qubits=3,
        and_ratio=0.87,
        reduced_evaluations=42,
        original_evaluations=7,
    )


class TestRoundTrip:
    def test_put_get_exact(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        original = _result("a")
        store.put(original)
        found = store.get("fp-a")
        assert found is not None
        assert found.source == "store"
        found.source = "computed"
        assert found == original

    def test_floats_survive_bit_exactly_across_processes(self, tmp_path):
        path = tmp_path / "store.jsonl"
        ResultStore(path).put(_result("a"))
        reloaded = ResultStore(path).get("fp-a")
        assert reloaded.gammas == [0.1234567890123456, -2.7182818284590451]
        assert reloaded.betas[1] == 1e-17
        assert reloaded.expectation == 1.0000000000000002

    def test_nan_best_value_round_trips(self, tmp_path):
        path = tmp_path / "store.jsonl"
        ResultStore(path).put(_result("big", best=float("nan")))
        reloaded = ResultStore(path).get("fp-big")
        assert math.isnan(reloaded.best_value)

    def test_latest_record_wins(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.put(_result("a", best=1.0))
        store.put(_result("a", best=2.0))
        assert ResultStore(path).get("fp-a").best_value == 2.0
        assert len(ResultStore(path)) == 1


class TestCounters:
    def test_hits_and_misses(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        assert store.get("fp-a") is None
        store.put(_result("a"))
        assert store.get("fp-a") is not None
        assert (store.hits, store.misses) == (1, 1)
        assert "fp-a" in store
        assert "fp-b" not in store

    def test_contains_does_not_count(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.put(_result("a"))
        _ = "fp-a" in store
        assert (store.hits, store.misses) == (0, 0)


class TestDurabilityAndTolerance:
    def test_truncated_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.put(_result("a"))
        store.put(_result("b"))
        text = path.read_text()
        path.write_text(text[: len(text) - 25])  # kill mid-append
        survivor = ResultStore(path)
        assert survivor.corrupt_lines == 1
        assert "fp-a" in survivor
        assert "fp-b" not in survivor

    def test_unknown_schema_lines_are_skipped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        ResultStore(path).put(_result("a"))
        with path.open("a") as handle:
            handle.write(json.dumps({"schema": STORE_SCHEMA + 1, "fingerprint": "fp-x"}) + "\n")
        survivor = ResultStore(path)
        assert survivor.skipped_schema == 1
        assert "fp-x" not in survivor
        assert "fp-a" in survivor

    def test_garbage_lines_are_counted_not_fatal(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text('not json at all\n{"schema": 1}\n')
        store = ResultStore(path)
        assert store.corrupt_lines == 2  # undecodable + missing fingerprint
        assert len(store) == 0

    def test_missing_file_is_an_empty_store(self, tmp_path):
        store = ResultStore(tmp_path / "nested" / "store.jsonl")
        assert len(store) == 0
        store.put(_result("a"))  # creates parents
        assert (tmp_path / "nested" / "store.jsonl").exists()

    def test_fingerprints_listing(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        store.put(_result("a"))
        store.put(_result("b"))
        assert sorted(store.fingerprints()) == ["fp-a", "fp-b"]


class TestDeadLetters:
    def test_park_round_trips_across_processes(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.park("fp-bad", "inst-bad", "EngineLimitError: too big", attempts=3)
        assert store.dead_letters() == {
            "fp-bad": {
                "error": "EngineLimitError: too big",
                "attempts": 3,
                "instance": "inst-bad",
            }
        }
        reloaded = ResultStore(path)
        assert reloaded.dead_letters() == store.dead_letters()
        assert "fp-bad" not in reloaded  # a dead letter is not a result
        assert len(reloaded) == 0

    def test_result_retires_dead_letter_in_any_order(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        # park then succeed: the success wins live and on reload
        store.park("fp-a", "inst-a", "flaky", attempts=2)
        store.put(_result("a"))
        assert store.dead_letters() == {}
        assert "fp-a" in store
        reloaded = ResultStore(path)
        assert reloaded.dead_letters() == {}
        assert reloaded.get("fp-a") is not None
        # succeed then park (a later failed retry): the result still wins
        store.park("fp-a", "inst-a", "flaky again", attempts=3)
        assert store.dead_letters() == {}
        assert ResultStore(path).dead_letters() == {}

    def test_truncated_dead_letter_line_is_tolerated(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.put(_result("a"))
        store.park("fp-bad", "inst-bad", "boom", attempts=3)
        text = path.read_text()
        path.write_text(text[: len(text) - 10])  # kill mid-append
        survivor = ResultStore(path)
        assert survivor.corrupt_lines == 1
        assert "fp-a" in survivor
        assert survivor.dead_letters() == {}


class TestConcurrentAppend:
    def test_flock_serializes_multi_process_appends(self, tmp_path):
        """N processes hammering one store leave only whole JSONL lines."""
        import multiprocessing

        path = tmp_path / "store.jsonl"
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_append_many, args=(str(path), worker, 25))
            for worker in range(4)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60)
            assert proc.exitcode == 0
        merged = ResultStore(path)
        assert merged.corrupt_lines == 0
        assert merged.skipped_schema == 0
        assert len(merged) == 4 * 25
        for worker in range(4):
            found = merged.get(f"fp-w{worker}-0")
            assert found is not None and found.best_value == float(worker)


def _append_many(path: str, worker: int, count: int) -> None:
    store = ResultStore(path, fsync=False)
    for index in range(count):
        store.put(_result(f"w{worker}-{index}", best=float(worker)))


@pytest.mark.parametrize("fsync", [True, False])
def test_fsync_flag_smoke(tmp_path, fsync):
    store = ResultStore(tmp_path / "store.jsonl", fsync=fsync)
    store.put(_result("a"))
    assert ResultStore(tmp_path / "store.jsonl").get("fp-a") is not None
