"""Tests for repro.qaoa.landscape."""

import networkx as nx
import numpy as np
import pytest

from repro.qaoa.fast_sim import FastNoiseSpec
from repro.qaoa.landscape import (
    Landscape,
    compute_landscape,
    compute_noisy_landscape,
    evaluate_parameter_sets,
    grid_axes,
    landscape_mse,
    normalize_landscape,
    optimal_point_distance,
    optimal_points,
    sample_parameter_sets,
)


class TestGrid:
    def test_axes_ranges(self):
        gammas, betas = grid_axes(16)
        assert gammas[0] == 0 and gammas[-1] < 2 * np.pi
        assert betas[0] == 0 and betas[-1] < np.pi
        assert len(gammas) == len(betas) == 16

    def test_width_validation(self):
        with pytest.raises(ValueError):
            grid_axes(1)


class TestComputeLandscape:
    def test_shape(self):
        scape = compute_landscape(nx.cycle_graph(5), width=8)
        assert scape.values.shape == (8, 8)
        assert scape.width == 8

    def test_values_bounded(self):
        g = nx.cycle_graph(6)
        scape = compute_landscape(g, width=8)
        assert scape.values.min() >= 0
        assert scape.values.max() <= g.number_of_edges()

    def test_cycle_landscape_concentration(self):
        """Paper Fig. 3: cycle graphs of different sizes share landscapes."""
        a = compute_landscape(nx.cycle_graph(7), width=12)
        b = compute_landscape(nx.cycle_graph(10), width=12)
        assert landscape_mse(a.values, b.values) < 1e-3

    def test_best_parameters_beat_random(self):
        g = nx.erdos_renyi_graph(7, 0.5, seed=2)
        scape = compute_landscape(g, width=12)
        gamma, beta = scape.best_parameters()
        from repro.qaoa.expectation import maxcut_expectation

        best = maxcut_expectation(g, [gamma], [beta])
        assert best >= scape.values.mean()

    def test_large_graph_falls_back_to_analytic(self):
        g = nx.random_regular_graph(3, 40, seed=0)
        scape = compute_landscape(g, width=6)
        assert scape.values.shape == (6, 6)

    def test_landscape_shape_validation(self):
        with pytest.raises(ValueError):
            Landscape(np.zeros(4), np.zeros(4), np.zeros((3, 4)))


class TestNormalizationAndMse:
    def test_normalize_range(self):
        values = np.array([[1.0, 3.0], [5.0, 2.0]])
        normed = normalize_landscape(values)
        assert normed.min() == 0.0
        assert normed.max() == 1.0

    def test_normalize_constant(self):
        assert (normalize_landscape(np.full((3, 3), 7.0)) == 0).all()

    def test_mse_identical_is_zero(self):
        values = np.random.default_rng(0).random((5, 5))
        assert landscape_mse(values, values) == 0.0

    def test_mse_scale_invariant(self):
        """Normalization makes MSE invariant to affine rescaling."""
        values = np.random.default_rng(1).random((6, 6))
        other = np.random.default_rng(2).random((6, 6))
        base = landscape_mse(values, other)
        scaled = landscape_mse(3.0 * values + 10.0, other)
        assert scaled == pytest.approx(base)

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            landscape_mse(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_mse_bounded_by_one(self):
        a = np.array([[0.0, 1.0]])
        b = np.array([[1.0, 0.0]])
        assert landscape_mse(a, b) <= 1.0


class TestParameterSets:
    def test_shapes(self):
        gammas, betas = sample_parameter_sets(3, 50, seed=0)
        assert gammas.shape == (50, 3)
        assert betas.shape == (50, 3)

    def test_ranges(self):
        gammas, betas = sample_parameter_sets(2, 100, seed=1)
        assert gammas.min() >= 0 and gammas.max() <= 2 * np.pi
        assert betas.min() >= 0 and betas.max() <= np.pi

    def test_seeding(self):
        a = sample_parameter_sets(1, 10, seed=5)
        b = sample_parameter_sets(1, 10, seed=5)
        assert np.array_equal(a[0], b[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_parameter_sets(0, 10)

    def test_evaluate_matches_batch(self):
        g = nx.erdos_renyi_graph(6, 0.5, seed=0)
        gammas, betas = sample_parameter_sets(2, 12, seed=2)
        energies = evaluate_parameter_sets(g, gammas, betas)
        assert energies.shape == (12,)
        assert (energies >= 0).all()

    def test_evaluate_custom_evaluator(self):
        g = nx.path_graph(4)
        gammas, betas = sample_parameter_sets(1, 5, seed=3)
        constant = evaluate_parameter_sets(g, gammas, betas, evaluator=lambda *_: 1.5)
        assert (constant == 1.5).all()


class TestNoisyLandscape:
    def test_noisy_landscape_differs_from_ideal(self):
        g = nx.erdos_renyi_graph(7, 0.5, seed=4)
        ideal = compute_landscape(g, width=6)
        noise = FastNoiseSpec(edge_error=0.15, node_error=0.02, readout_error=0.05)
        noisy = compute_noisy_landscape(g, noise, width=6, trajectories=3, seed=0)
        assert landscape_mse(ideal.values, noisy.values) > 0

    def test_zero_noise_matches_ideal(self):
        g = nx.cycle_graph(5)
        ideal = compute_landscape(g, width=6)
        noisy = compute_noisy_landscape(g, FastNoiseSpec(), width=6, seed=0)
        assert np.allclose(ideal.values, noisy.values, atol=1e-10)


class TestOptimalPoints:
    def test_single_maximum(self):
        values = np.zeros((4, 4))
        values[2, 3] = 1.0
        points = optimal_points(values)
        assert points.tolist() == [[2, 3]]

    def test_ties_found(self):
        values = np.zeros((4, 4))
        values[0, 0] = values[3, 3] = 1.0
        assert len(optimal_points(values)) == 2

    def test_distance_identical_landscapes_zero(self):
        g = nx.cycle_graph(5)
        scape = compute_landscape(g, width=10)
        assert optimal_point_distance(scape, scape) == pytest.approx(0.0)

    def test_distance_respects_torus_wraparound(self):
        gammas, betas = grid_axes(8)
        a = np.zeros((8, 8))
        b = np.zeros((8, 8))
        a[0, 0] = 1.0
        b[7, 0] = 1.0  # adjacent across the gamma wrap, not 7 steps away
        dist = optimal_point_distance(Landscape(gammas, betas, a), Landscape(gammas, betas, b))
        assert dist == pytest.approx(2 * np.pi / 8, abs=1e-9)
