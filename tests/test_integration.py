"""Cross-module integration tests.

These exercise the same paths the paper's experiments use: reduction feeding
QAOA optimization, landscapes under device noise models, transpiled circuits
through the noisy simulators, and the public package namespace.
"""

import networkx as nx
import numpy as np
import pytest

import repro
from repro.core import GraphReducer, RedQAOA
from repro.datasets import load_dataset
from repro.pooling import get_pooler
from repro.qaoa import (
    build_qaoa_circuit,
    compute_landscape,
    landscape_mse,
    maxcut_expectation,
)
from repro.qaoa.fast_sim import FastNoiseSpec
from repro.qaoa.landscape import compute_noisy_landscape
from repro.quantum import DensityMatrixSimulator, TrajectorySimulator, get_backend, transpile
from repro.qaoa.hamiltonian import MaxCutHamiltonian
from repro.utils.graphs import relabel_to_range


def _connected_er(n, p, seed):
    offset = 0
    while True:
        g = nx.erdos_renyi_graph(n, p, seed=seed + offset)
        if g.number_of_edges() and nx.is_connected(g):
            return g
        offset += 100


class TestPublicNamespace:
    def test_version(self):
        assert repro.__version__ == "1.5.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestReductionPreservesLandscape:
    """The paper's core claim, end to end: the distilled graph's landscape
    is close (MSE < ~0.05) to the original's."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_reduced_landscape_mse_small(self, seed):
        g = _connected_er(10, 0.45, seed)
        reducer = GraphReducer(seed=seed)
        result = reducer.reduce(g)
        original = compute_landscape(g, width=16)
        reduced = compute_landscape(result.reduced_graph, width=16)
        mse = landscape_mse(original.values, reduced.values)
        # The paper targets 0.02 on average with outliers near 0.05 (Fig. 14);
        # allow headroom for individual graphs.
        assert mse < 0.08

    def test_median_reduced_landscape_mse_meets_paper_target(self):
        mses = []
        for seed in range(5):
            g = _connected_er(10, 0.45, seed + 40)
            result = GraphReducer(seed=seed).reduce(g)
            original = compute_landscape(g, width=12).values
            reduced = compute_landscape(result.reduced_graph, width=12).values
            mses.append(landscape_mse(original, reduced))
        assert np.median(mses) < 0.05

    def test_reduction_beats_random_subgraph_landscape(self):
        from repro.utils.graphs import connected_random_subgraph

        g = _connected_er(11, 0.4, 3)
        reducer = GraphReducer(seed=3)
        result = reducer.reduce(g)
        k = len(result.nodes)
        original = compute_landscape(g, width=12).values
        red_mse = landscape_mse(
            original, compute_landscape(result.reduced_graph, width=12).values
        )
        rng = np.random.default_rng(0)
        random_mses = []
        for _ in range(8):
            nodes = connected_random_subgraph(g, k, rng)
            sub = relabel_to_range(nx.Graph(g.subgraph(nodes)))
            random_mses.append(
                landscape_mse(original, compute_landscape(sub, width=12).values)
            )
        assert red_mse <= np.median(random_mses) + 1e-9


class TestNoisyLandscapeRecovery:
    """Fig. 10's mechanism: reduced circuits suffer less noise distortion."""

    def test_reduced_noisy_landscape_closer_to_ideal(self):
        backend = get_backend("toronto")
        base_means, red_means = [], []
        for graph_seed in (5, 7, 8, 9):
            g = _connected_er(10, 0.4, graph_seed)
            reduction = GraphReducer(seed=graph_seed).reduce(g)
            ideal = compute_landscape(g, width=10).values
            noise_full = FastNoiseSpec.for_graph(backend, g)
            noise_reduced = FastNoiseSpec.for_graph(backend, reduction.reduced_graph)
            assert noise_reduced.edge_error < noise_full.edge_error
            mse_baseline, mse_red = [], []
            for seed in range(2):
                noisy_full = compute_noisy_landscape(
                    g, noise_full, width=10, trajectories=4, shots=1024, seed=seed
                ).values
                noisy_reduced = compute_noisy_landscape(
                    reduction.reduced_graph, noise_reduced, width=10,
                    trajectories=4, shots=1024, seed=seed,
                ).values
                mse_baseline.append(landscape_mse(ideal, noisy_full))
                mse_red.append(landscape_mse(ideal, noisy_reduced))
            base_means.append(np.mean(mse_baseline))
            red_means.append(np.mean(mse_red))
        # Red-QAOA wins on average over the graph sample (per-graph outcomes
        # vary; the paper's Fig. 10 also averages over instances).
        assert np.mean(red_means) < np.mean(base_means)
        assert np.mean([r < b for r, b in zip(red_means, base_means)]) >= 0.5


class TestTranspiledNoisySimulation:
    def test_qaoa_through_device_stack(self):
        """Build QAOA -> transpile to kolkata -> run with device noise."""
        g = _connected_er(5, 0.5, 9)
        ham = MaxCutHamiltonian(g)
        gammas, betas = [0.7], [0.4]
        circuit = build_qaoa_circuit(relabel_to_range(g), gammas, betas)
        backend = get_backend("kolkata")
        result = transpile(circuit, backend, trials=4, seed=0)
        assert result.circuit.num_qubits >= 5

        # Noiseless transpiled circuit must reproduce the ideal expectation
        # after undoing the routing permutation.
        traj = TrajectorySimulator(trajectories=6)
        probs = traj.probabilities(result.circuit, noise_model=None)
        n_t = result.circuit.num_qubits
        diag = np.zeros(2**n_t)
        z = np.arange(2**n_t, dtype=np.uint64)
        for u, v in ham.edges:
            pu, pv = result.final_layout[u], result.final_layout[v]
            diag += ((z >> np.uint64(pu)) ^ (z >> np.uint64(pv))) & np.uint64(1)
        ideal = maxcut_expectation(g, gammas, betas)
        assert probs @ diag == pytest.approx(ideal, abs=1e-8)

    def test_device_noise_damps_transpiled_expectation(self):
        g = nx.cycle_graph(4)
        gammas, betas = [1.1], [0.39]  # near-optimal for C4
        circuit = build_qaoa_circuit(g, gammas, betas)
        backend = get_backend("melbourne")
        result = transpile(circuit, backend, trials=4, seed=1)
        n_t = result.circuit.num_qubits
        diag = np.zeros(2**n_t)
        z = np.arange(2**n_t, dtype=np.uint64)
        for u, v in nx.cycle_graph(4).edges():
            pu, pv = result.final_layout[u], result.final_layout[v]
            diag += ((z >> np.uint64(pu)) ^ (z >> np.uint64(pv))) & np.uint64(1)
        ideal = maxcut_expectation(g, gammas, betas)
        if n_t <= 10:
            dm = DensityMatrixSimulator(max_qubits=n_t)
            noisy = dm.expectation_diagonal(
                result.circuit, diag, backend.build_noise_model()
            )
        else:
            traj = TrajectorySimulator(trajectories=20)
            noisy = traj.expectation_diagonal(
                result.circuit, diag, backend.build_noise_model(), seed=0
            )
        assert noisy < ideal


class TestPoolingComparison:
    def test_sa_beats_poolers_on_landscape_mse(self):
        """Fig. 8's headline: SA reduction attains lower MSE than pooling."""
        wins = 0
        trials = 4
        for seed in range(trials):
            g = _connected_er(10, 0.45, seed + 20)
            reducer = GraphReducer(seed=seed)
            result = reducer.reduce(g, target_size=7)
            original = compute_landscape(g, width=12).values
            sa_mse = landscape_mse(
                original, compute_landscape(result.reduced_graph, width=12).values
            )
            pool_mses = []
            for name in ("topk", "sag", "asa"):
                pooled = get_pooler(name, seed=seed).pool(g, 7)
                if pooled.number_of_edges() == 0:
                    pool_mses.append(1.0)
                    continue
                pool_mses.append(
                    landscape_mse(original, compute_landscape(pooled, width=12).values)
                )
            if sa_mse <= min(pool_mses) + 1e-12:
                wins += 1
        assert wins >= trials / 2


class TestDatasetPipeline:
    def test_reduce_dataset_graphs(self):
        graphs = load_dataset("aids", count=5, min_nodes=5, max_nodes=10, seed=0)
        reducer = GraphReducer(seed=0)
        for g in graphs:
            result = reducer.reduce(g)
            assert result.reduced_graph.number_of_nodes() >= 3

    def test_full_pipeline_on_linux_graph(self):
        g = load_dataset("linux", count=1, min_nodes=8, max_nodes=10, seed=1)[0]
        red = RedQAOA(seed=1, restarts=2, maxiter=25, finetune_maxiter=5)
        result = red.run(g)
        assert result.cut_value > 0
