"""Tests for repro.quantum.circuit."""

import pytest

from repro.quantum.circuit import Instruction, QuantumCircuit


class TestInstruction:
    def test_valid(self):
        inst = Instruction("rx", (0,), (0.5,))
        assert inst.name == "rx"

    def test_unknown_gate(self):
        with pytest.raises(KeyError):
            Instruction("foo", (0,))

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            Instruction("cx", (0,))

    def test_duplicate_qubits(self):
        with pytest.raises(ValueError):
            Instruction("cx", (1, 1))

    def test_wrong_params(self):
        with pytest.raises(ValueError):
            Instruction("h", (0,), (0.1,))

    def test_frozen(self):
        inst = Instruction("h", (0,))
        with pytest.raises(AttributeError):
            inst.name = "x"


class TestBuilding:
    def test_helper_methods(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.x(1)
        qc.rx(0.1, 2)
        qc.cx(0, 1)
        qc.rzz(0.5, 1, 2)
        assert len(qc) == 5

    def test_qubit_bounds_checked(self):
        qc = QuantumCircuit(2)
        with pytest.raises(ValueError):
            qc.h(2)
        with pytest.raises(ValueError):
            qc.cx(0, 5)

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)

    def test_extend(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(2)
        b.cx(0, 1)
        a.extend(b)
        assert len(a) == 2

    def test_extend_wider_raises(self):
        a = QuantumCircuit(2)
        b = QuantumCircuit(3)
        b.h(2)
        with pytest.raises(ValueError):
            a.extend(b)


class TestInspection:
    def test_depth_parallel_gates(self):
        qc = QuantumCircuit(4)
        qc.h(0)
        qc.h(1)
        qc.h(2)
        assert qc.depth() == 1

    def test_depth_serial_chain(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        qc.h(1)
        assert qc.depth() == 3

    def test_depth_empty(self):
        assert QuantumCircuit(3).depth() == 0

    def test_depth_two_qubit_sync(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.h(0)          # qubit 0 at level 2
        qc.cx(0, 1)      # level 3 on both
        qc.h(1)          # level 4
        assert qc.depth() == 4

    def test_count_ops(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.h(1)
        qc.cx(0, 1)
        assert qc.count_ops() == {"h": 2, "cx": 1}

    def test_two_qubit_gate_count(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.rzz(0.3, 1, 2)
        qc.swap(0, 2)
        assert qc.two_qubit_gate_count() == 3

    def test_used_qubits(self):
        qc = QuantumCircuit(5)
        qc.h(1)
        qc.cx(1, 3)
        assert qc.used_qubits() == {1, 3}

    def test_copy_is_independent(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        clone = qc.copy()
        clone.x(1)
        assert len(qc) == 1
        assert len(clone) == 2

    def test_iteration_order(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.x(1)
        names = [inst.name for inst in qc]
        assert names == ["h", "x"]
