"""Tests for repro.qaoa.expectation and repro.qaoa.maxcut."""

import networkx as nx
import numpy as np
import pytest

from repro.qaoa.expectation import (
    EngineLimitError,
    maxcut_expectation,
    noisy_maxcut_expectation,
)
from repro.qaoa.fast_sim import FastNoiseSpec
from repro.qaoa.maxcut import (
    approximation_ratio,
    brute_force_maxcut,
    cut_size,
    local_search_maxcut,
)


def _connected_er(n, p, seed):
    offset = 0
    while True:
        g = nx.erdos_renyi_graph(n, p, seed=seed + offset)
        if g.number_of_edges() and nx.is_connected(g):
            return g
        offset += 100


class TestDispatcher:
    def test_small_graph_uses_statevector(self):
        g = _connected_er(8, 0.4, 0)
        a = maxcut_expectation(g, [0.6], [0.4], method="statevector")
        b = maxcut_expectation(g, [0.6], [0.4], method="auto")
        assert a == pytest.approx(b)

    def test_engines_agree(self):
        g = _connected_er(10, 0.3, 1)
        sv = maxcut_expectation(g, [0.6], [0.4], method="statevector")
        an = maxcut_expectation(g, [0.6], [0.4], method="analytic")
        lc = maxcut_expectation(g, [0.6], [0.4], method="lightcone")
        assert sv == pytest.approx(an, abs=1e-9)
        assert sv == pytest.approx(lc, abs=1e-9)

    def test_large_graph_p1_analytic(self):
        g = nx.random_regular_graph(3, 100, seed=0)
        value = maxcut_expectation(g, [0.5], [0.3])
        assert 0 <= value <= g.number_of_edges()

    def test_large_graph_p2_lightcone(self):
        g = nx.random_regular_graph(3, 40, seed=1)
        value = maxcut_expectation(g, [0.5, 0.9], [0.3, 0.7])
        assert 0 <= value <= g.number_of_edges()

    def test_dense_large_graph_raises(self):
        g = nx.complete_graph(30)
        with pytest.raises(EngineLimitError):
            maxcut_expectation(g, [0.5, 0.9], [0.3, 0.7])

    def test_analytic_rejects_p2(self):
        g = nx.path_graph(5)
        with pytest.raises(ValueError):
            maxcut_expectation(g, [0.5, 0.9], [0.3, 0.7], method="analytic")

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            maxcut_expectation(nx.path_graph(3), [0.1], [0.1], method="quantum")

    def test_arbitrary_labels_accepted(self):
        g = nx.Graph([("x", "y"), ("y", "z")])
        value = maxcut_expectation(g, [0.5], [0.3])
        assert 0 <= value <= 2

    def test_noisy_wrapper(self):
        g = _connected_er(7, 0.4, 5)
        noise = FastNoiseSpec(edge_error=0.05)
        value = noisy_maxcut_expectation(g, [0.5], [0.3], noise, trajectories=4, seed=0)
        assert 0 <= value <= g.number_of_edges()


class TestBruteForce:
    def test_path(self):
        value, assignment = brute_force_maxcut(nx.path_graph(4))
        assert value == 3.0
        assert cut_size(nx.path_graph(4), assignment) == 3

    def test_odd_cycle(self):
        value, _ = brute_force_maxcut(nx.cycle_graph(5))
        assert value == 4.0

    def test_complete_bipartite(self):
        g = nx.complete_bipartite_graph(3, 4)
        value, assignment = brute_force_maxcut(g)
        assert value == 12.0
        assert cut_size(g, assignment) == 12

    def test_petersen(self):
        # Known MaxCut of the Petersen graph is 12.
        value, _ = brute_force_maxcut(nx.petersen_graph())
        assert value == 12.0

    def test_size_guard(self):
        with pytest.raises(ValueError):
            brute_force_maxcut(nx.path_graph(25))

    def test_assignment_uses_original_labels(self):
        g = nx.Graph([("a", "b")])
        _, assignment = brute_force_maxcut(g)
        assert set(assignment) == {"a", "b"}
        assert assignment["a"] != assignment["b"]


class TestLocalSearch:
    def test_reaches_optimum_on_small_graphs(self):
        for seed in range(4):
            g = _connected_er(10, 0.4, seed)
            exact, _ = brute_force_maxcut(g)
            heuristic, assignment = local_search_maxcut(g, restarts=20, seed=seed)
            assert heuristic == exact
            assert cut_size(g, assignment) == heuristic

    def test_large_graph_reasonable(self):
        g = nx.random_regular_graph(3, 60, seed=2)
        value, assignment = local_search_maxcut(g, restarts=10, seed=0)
        assert value >= g.number_of_edges() * 0.6
        assert cut_size(g, assignment) == value

    def test_restart_validation(self):
        with pytest.raises(ValueError):
            local_search_maxcut(nx.path_graph(3), restarts=0)


class TestMetrics:
    def test_cut_size_requires_full_assignment(self):
        with pytest.raises(ValueError):
            cut_size(nx.path_graph(3), {0: 0, 1: 1})

    def test_approximation_ratio(self):
        assert approximation_ratio(9.0, 10.0) == pytest.approx(0.9)

    def test_approximation_ratio_validates(self):
        with pytest.raises(ValueError):
            approximation_ratio(1.0, 0.0)
