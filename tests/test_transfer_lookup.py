"""Tests for repro.transfer.lookup (warm-start parameter library)."""

import networkx as nx
import numpy as np
import pytest

from repro.qaoa.expectation import maxcut_expectation
from repro.qaoa.landscape import sample_parameter_sets
from repro.transfer import ParameterLookup
from repro.utils.graphs import relabel_to_range


def _connected_er(n, p, seed):
    offset = 0
    while True:
        g = nx.erdos_renyi_graph(n, p, seed=seed + offset)
        if g.number_of_edges() and nx.is_connected(g):
            return g
        offset += 100


@pytest.fixture(scope="module")
def lookup():
    return ParameterLookup(donor_nodes=14, grid_width=12, polish_maxiter=25, seed=0)


class TestEntries:
    def test_entry_cached(self, lookup):
        a = lookup.entry(3)
        b = lookup.entry(3)
        assert a == b

    def test_entry_near_optimal_on_donor_class(self, lookup):
        """The degree-3 entry performs near-optimally on a fresh 3-regular graph."""
        gamma, beta = lookup.entry(3)
        graph = nx.random_regular_graph(3, 12, seed=99)
        value = maxcut_expectation(graph, [gamma], [beta])
        gammas, betas = sample_parameter_sets(1, 200, seed=1)
        sampled = [
            maxcut_expectation(graph, g, b) for g, b in zip(gammas, betas)
        ]
        assert value >= np.percentile(sampled, 95)

    def test_degree_bounds(self, lookup):
        with pytest.raises(ValueError):
            lookup.entry(0)
        with pytest.raises(ValueError):
            lookup.entry(50)

    def test_degree_one_supported(self, lookup):
        gamma, beta = lookup.entry(1)
        assert np.isfinite(gamma) and np.isfinite(beta)


class TestWarmStart:
    def test_warm_start_beats_random_on_average(self, lookup):
        wins = 0
        trials = 6
        for seed in range(trials):
            graph = relabel_to_range(_connected_er(10, 0.4, seed))
            gamma, beta = lookup.warm_start(graph)
            warm = maxcut_expectation(graph, [gamma], [beta])
            rng = np.random.default_rng(seed)
            random_value = maxcut_expectation(
                graph,
                [rng.uniform(0, 2 * np.pi)],
                [rng.uniform(0, np.pi)],
            )
            wins += warm >= random_value
        assert wins >= trials - 1

    def test_edgeless_rejected(self, lookup):
        g = nx.Graph()
        g.add_nodes_from(range(3))
        with pytest.raises(ValueError):
            lookup.warm_start(g)

    def test_vector_shape(self, lookup):
        graph = _connected_er(8, 0.5, 0)
        vec = lookup.warm_start_vector(graph, p=3)
        assert vec.shape == (6,)

    def test_vector_p1_matches_entry(self, lookup):
        graph = nx.random_regular_graph(4, 10, seed=0)
        gamma, beta = lookup.warm_start(graph)
        vec = lookup.warm_start_vector(graph, p=1)
        assert vec[0] == pytest.approx(gamma)
        assert vec[1] == pytest.approx(beta)

    def test_p_validated(self, lookup):
        with pytest.raises(ValueError):
            lookup.warm_start_vector(nx.path_graph(3), p=0)

    def test_warm_start_accelerates_cobyla(self, lookup):
        """Warm starts begin near a basin: the first evaluation is already
        strong and the run matches the typical cold restart with the same
        budget."""
        from repro.qaoa.optimizer import cobyla_optimize

        graph = relabel_to_range(_connected_er(10, 0.4, 11))
        fn = lambda g, b: maxcut_expectation(graph, g, b)
        warm = cobyla_optimize(
            fn, p=1, initial=lookup.warm_start_vector(graph, 1), maxiter=15, seed=0
        )
        cold = [
            cobyla_optimize(fn, p=1, maxiter=15, seed=s) for s in range(3)
        ]
        cold_first_values = [t.values[0] for t in cold]
        # The warm starting point alone beats every random starting point.
        assert warm.values[0] >= max(cold_first_values)
        # And the full warm run is at least as good as the median cold run.
        assert warm.best_value >= np.median([t.best_value for t in cold]) - 1e-6
