"""Tests for repro.qaoa.circuit_builder."""

import networkx as nx
import numpy as np
import pytest

from repro.qaoa.circuit_builder import build_qaoa_circuit
from repro.qaoa.fast_sim import qaoa_statevector
from repro.qaoa.hamiltonian import MaxCutHamiltonian
from repro.quantum.statevector import StatevectorSimulator


class TestStructure:
    def test_gate_counts_p1(self):
        g = nx.cycle_graph(5)
        qc = build_qaoa_circuit(g, [0.3], [0.2])
        ops = qc.count_ops()
        assert ops["h"] == 5
        assert ops["rzz"] == 5
        assert ops["rx"] == 5

    def test_gate_counts_p3(self):
        g = nx.path_graph(4)
        qc = build_qaoa_circuit(g, [0.1, 0.2, 0.3], [0.4, 0.5, 0.6])
        ops = qc.count_ops()
        assert ops["h"] == 4
        assert ops["rzz"] == 3 * 3
        assert ops["rx"] == 3 * 4

    def test_rzz_angle_convention(self):
        g = nx.Graph([(0, 1)])
        qc = build_qaoa_circuit(g, [0.7], [0.2])
        rzz = [i for i in qc if i.name == "rzz"][0]
        assert rzz.params[0] == pytest.approx(-0.7)

    def test_rx_angle_is_two_beta(self):
        g = nx.Graph([(0, 1)])
        qc = build_qaoa_circuit(g, [0.7], [0.2])
        rx = [i for i in qc if i.name == "rx"][0]
        assert rx.params[0] == pytest.approx(0.4)

    def test_weighted_edges_scale_rzz(self):
        g = nx.Graph()
        g.add_edge(0, 1, weight=2.5)
        qc = build_qaoa_circuit(g, [0.4], [0.2])
        rzz = [i for i in qc if i.name == "rzz"][0]
        assert rzz.params[0] == pytest.approx(-1.0)

    def test_requires_range_labels(self):
        g = nx.Graph([("a", "b")])
        with pytest.raises(ValueError):
            build_qaoa_circuit(g, [0.1], [0.1])

    def test_parameter_length_checked(self):
        g = nx.path_graph(3)
        with pytest.raises(ValueError):
            build_qaoa_circuit(g, [0.1, 0.2], [0.1])
        with pytest.raises(ValueError):
            build_qaoa_circuit(g, [], [])

    def test_edge_order_deterministic(self):
        g = nx.Graph([(2, 1), (0, 2), (1, 0)])
        a = build_qaoa_circuit(g, [0.3], [0.2])
        b = build_qaoa_circuit(g, [0.3], [0.2])
        assert a.instructions == b.instructions


class TestSemantics:
    @pytest.mark.parametrize("p", [1, 2, 3])
    def test_state_matches_fast_engine_up_to_phase(self, p):
        g = nx.erdos_renyi_graph(5, 0.6, seed=p)
        while not g.number_of_edges():
            g = nx.erdos_renyi_graph(5, 0.6, seed=p + 50)
        rng = np.random.default_rng(p)
        gammas = list(rng.uniform(0, 2 * np.pi, p))
        betas = list(rng.uniform(0, np.pi, p))
        circuit_state = StatevectorSimulator().run(build_qaoa_circuit(g, gammas, betas))
        fast_state = qaoa_statevector(MaxCutHamiltonian(g), gammas, betas)
        # Equal up to a global phase: |<a|b>| = 1.
        overlap = abs(np.vdot(circuit_state, fast_state))
        assert overlap == pytest.approx(1.0, abs=1e-10)

    def test_circuit_depth_scales_with_p(self):
        g = nx.cycle_graph(4)
        d1 = build_qaoa_circuit(g, [0.1], [0.1]).depth()
        d3 = build_qaoa_circuit(g, [0.1] * 3, [0.1] * 3).depth()
        assert d3 > d1
