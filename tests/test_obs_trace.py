"""Tests for repro.obs.trace: span trees, stitching, and the purity contract.

The load-bearing assertions: every job that goes through the serve stack
-- including jobs whose worker was SIGKILLed mid-flight and jobs that
dead-letter -- lands as exactly one closed span tree, and tracing never
changes a single result byte.
"""

import contextlib
import threading

import pytest

from repro.obs.trace import (
    Tracer,
    configure_tracing,
    disable_tracing,
    format_summary,
    load_trace,
    span,
    span_trees,
    summarize_trace,
    trace_job,
    using_tracer,
    validate_trace,
)
from repro.serve.client import ServeClient, ServeError, wait_for_socket
from repro.serve.daemon import ServeDaemon
from repro.serve.queue import ShardedJobQueue
from repro.serve.workers import CrashPoint, InlineWorkerPool, ProcessWorkerPool, drain
from repro.service.jobs import JobSpec, run_job


def _specs(count: int, nodes: int = 8) -> list[JobSpec]:
    from repro.datasets import random_connected_gnp

    return [
        JobSpec(
            graph=random_connected_gnp(nodes, 0.4, seed=seed),
            restarts=1,
            maxiter=6,
            label=f"g{nodes}-s{seed}",
        )
        for seed in range(count)
    ]


def _drain_traced(pool, specs, trace_path, max_attempts: int = 3):
    tracer = Tracer(trace_path)
    queue = ShardedJobQueue(max_attempts=max_attempts)
    for spec in specs:
        assert queue.submit(spec).accepted
    got, deads = {}, {}
    try:
        drain(
            queue,
            pool,
            on_result=lambda spec, r: got.__setitem__(r.fingerprint, r.to_payload()),
            on_dead=lambda spec, error: deads.__setitem__(spec.fingerprint, error),
            tracer=tracer,
        )
    finally:
        pool.close()
    return got, deads


class TestTracerPrimitives:
    def test_collector_buffers_and_drains_nested_spans(self):
        tracer = Tracer(None)
        with tracer.bind("job-1"):
            with tracer.span("outer", color="red"):
                with tracer.span("inner"):
                    pass
        records = tracer.drain()
        assert tracer.drain() == []  # drain clears
        by_name = {record["name"]: record for record in records}
        assert by_name["inner"]["parent"] == by_name["outer"]["span"]
        assert by_name["outer"]["parent"] is None
        assert all(record["job"] == "job-1" for record in records)
        assert by_name["outer"]["attrs"] == {"color": "red"}
        assert by_name["inner"]["t0"] >= by_name["outer"]["t0"]
        assert by_name["inner"]["t1"] <= by_name["outer"]["t1"]

    def test_file_mode_appends_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path)
        with tracer.bind("j"):
            with tracer.span("work"):
                pass
        tracer.write_metrics({"counters": {"redqaoa_store_hits_total": 1.0}})
        spans, metrics = load_trace(path)
        assert [s["name"] for s in spans] == ["work"]
        assert metrics[0]["snapshot"]["counters"]["redqaoa_store_hits_total"] == 1.0

    def test_span_ids_unique_across_tracers_in_one_process(self):
        # one file tracer + many per-job collectors coexist in the inline
        # topology; their ids must never collide or trees go recursive
        ids = set()
        for _ in range(3):
            tracer = Tracer(None)
            with tracer.span("execute"):
                pass
            ids.add(tracer.drain()[0]["span"])
        assert len(ids) == 3

    def test_global_span_is_noop_when_disabled(self):
        disable_tracing()
        with span("anything"):
            pass  # nothing to assert beyond "does not raise"
        with trace_job("fp"):
            pass

    def test_using_tracer_restores_previous(self, tmp_path):
        from repro.obs.trace import get_tracer

        outer = configure_tracing(tmp_path / "outer.jsonl")
        try:
            with using_tracer(None):
                assert get_tracer() is None
            assert get_tracer() is outer
        finally:
            disable_tracing()


class TestRecordJobStitching:
    def test_gap_spans_tile_the_root_exactly(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path)
        collector = Tracer(None)
        base = 1_000_000
        with collector.span("execute"):
            with collector.span("reduce"):
                pass
        worker_spans = collector.drain()
        # pin worker timestamps inside the synthetic job window
        root = next(s for s in worker_spans if s["name"] == "execute")
        child = next(s for s in worker_spans if s["name"] == "reduce")
        root["t0"], root["t1"] = base + 200, base + 700
        child["t0"], child["t1"] = base + 250, base + 600
        tracer.record_job(
            "fp-1",
            worker_spans,
            enqueued_ns=base,
            claimed_ns=base + 100,
            store_t0=base + 800,
            store_t1=base + 900,
            attempts=2,
        )
        spans, _ = load_trace(path)
        assert validate_trace(spans) == []
        tree = span_trees(spans)["fp-1"]
        job_root = tree["root"]
        assert job_root["name"] == "job"
        assert job_root["attrs"] == {"attempts": 2, "source": "computed"}
        children = tree["children"][job_root["span"]]
        assert [c["name"] for c in children] == [
            "queue_wait",
            "dispatch",
            "execute",
            "drain_wait",
            "store_append",
        ]
        # the children tile the root without holes
        assert children[0]["t0"] == job_root["t0"]
        for left, right in zip(children, children[1:]):
            assert left["t1"] == right["t0"]
        assert children[-1]["t1"] == job_root["t1"]
        # worker spans were re-parented and re-bound to the job
        assert next(s for s in spans if s["name"] == "execute")["job"] == "fp-1"
        assert next(s for s in spans if s["name"] == "reduce")["job"] == "fp-1"

    def test_store_hit_without_worker_spans_still_closes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path)
        tracer.record_job(
            "fp-hit",
            None,
            enqueued_ns=500,
            claimed_ns=None,
            store_t0=600,
            store_t1=700,
            source="dead",
        )
        spans, _ = load_trace(path)
        assert validate_trace(spans) == []
        tree = span_trees(spans)["fp-hit"]
        assert tree["root"]["attrs"]["source"] == "dead"

    def test_backwards_clock_gaps_clamp_to_zero(self, tmp_path):
        # claimed before enqueued (clock skew paranoia): no negative spans
        path = tmp_path / "trace.jsonl"
        Tracer(path).record_job(
            "fp-skew",
            None,
            enqueued_ns=1000,
            claimed_ns=900,
            store_t0=800,
            store_t1=1200,
        )
        spans, _ = load_trace(path)
        assert validate_trace(spans) == []
        assert all(s["t1"] >= s["t0"] for s in spans)


class TestDrainProducesCompleteTrees:
    @pytest.mark.parametrize("make", [
        lambda: InlineWorkerPool(trace=True),
        lambda: ProcessWorkerPool(workers=2, trace=True),
    ])
    def test_one_closed_tree_per_job(self, tmp_path, make):
        specs = _specs(4)
        path = tmp_path / "trace.jsonl"
        got, deads = _drain_traced(make(), specs, path)
        assert deads == {}
        spans, _ = load_trace(path)
        assert validate_trace(spans) == []
        trees = span_trees(spans)
        assert set(trees) == {spec.fingerprint for spec in specs}
        for fingerprint, tree in trees.items():
            stages = [c["name"] for c in tree["children"][tree["root"]["span"]]]
            assert stages[-1] == "store_append"
            assert "execute" in stages
            execute = next(
                s for s in tree["spans"] if s["name"] == "execute"
            )
            inner = {c["name"] for c in tree["children"].get(execute["span"], [])}
            assert "optimize" in inner  # worker pipeline spans came along

    def test_summary_coverage_meets_the_bar(self, tmp_path):
        specs = _specs(4)
        path = tmp_path / "trace.jsonl"
        _drain_traced(ProcessWorkerPool(workers=2, trace=True), specs, path)
        summary = summarize_trace(path)
        assert summary["problems"] == []
        assert summary["jobs"] == len(specs)
        assert summary["coverage"] >= 0.95  # the acceptance criterion
        assert summary["coverage"] == pytest.approx(1.0)  # by construction
        shares = sum(entry["share"] for entry in summary["stages"].values())
        assert shares == pytest.approx(summary["coverage"])
        text = format_summary(summary)
        assert "coverage: 100.0%" in text
        assert "store_append" in text

    def test_dead_letter_jobs_get_a_closed_tree_too(self, tmp_path):
        from repro.datasets import problem_instance

        pill = JobSpec(
            problem=problem_instance("mis", 27, seed=0),
            restarts=1,
            maxiter=4,
            label="poison",
        )
        specs = _specs(2)
        path = tmp_path / "trace.jsonl"
        got, deads = _drain_traced(
            InlineWorkerPool(trace=True), specs + [pill], path, max_attempts=2
        )
        assert list(deads) == [pill.fingerprint]
        spans, _ = load_trace(path)
        assert validate_trace(spans) == []
        trees = span_trees(spans)
        assert set(trees) == {s.fingerprint for s in specs} | {pill.fingerprint}
        dead_root = trees[pill.fingerprint]["root"]
        assert dead_root["attrs"]["source"] == "dead"
        assert dead_root["attrs"]["attempts"] == 2


class TestTracingIsPure:
    def test_traced_drain_bit_identical_to_untraced(self, tmp_path):
        specs = _specs(6)
        reference = {spec.fingerprint: run_job(spec).to_payload() for spec in specs}
        traced, deads = _drain_traced(
            ProcessWorkerPool(workers=2, trace=True), specs, tmp_path / "t.jsonl"
        )
        assert deads == {}
        assert traced == reference

    def test_traced_pipeline_bit_identical_to_untraced(self, tmp_path):
        spec = _specs(1)[0]
        untraced = run_job(spec).to_payload()
        tracer = configure_tracing(tmp_path / "pipe.jsonl")
        try:
            with trace_job(spec.fingerprint):
                traced = run_job(spec).to_payload()
        finally:
            disable_tracing()
        assert traced == untraced
        spans, _ = load_trace(tmp_path / "pipe.jsonl")
        assert validate_trace(spans) == []
        assert {"reduce", "optimize", "readout"} <= {s["name"] for s in spans}


@contextlib.contextmanager
def _daemon(tmp_path, **kwargs):
    kwargs.setdefault("store_path", tmp_path / "store.jsonl")
    kwargs.setdefault("trace_path", tmp_path / "trace.jsonl")
    daemon = ServeDaemon(socket_path=tmp_path / "serve.sock", **kwargs)
    thread = threading.Thread(
        target=daemon.serve_forever,
        kwargs={"install_signal_handlers": False},
        daemon=True,
    )
    thread.start()
    wait_for_socket(daemon.socket_path)
    client = ServeClient(daemon.socket_path)
    try:
        yield daemon, client
    finally:
        if not daemon._stopped:
            with contextlib.suppress(OSError, ServeError):
                client.shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive(), "daemon failed to stop"


def _manifest(count: int, nodes: int = 8) -> dict:
    return {
        "schema": 1,
        "defaults": {"restarts": 1, "maxiter": 6},
        "jobs": [
            {"kind": "maxcut", "nodes": nodes, "seed": seed} for seed in range(count)
        ],
    }


class TestDaemonTraces:
    def test_every_submitted_job_yields_exactly_one_closed_tree(self, tmp_path):
        manifest = _manifest(4)
        with _daemon(tmp_path, workers=2) as (daemon, client):
            reply = client.submit(manifest)
            final = client.wait(reply["ticket"], timeout=300)
            assert final["counts"] == {"done": 4}
            fingerprints = {job["fingerprint"] for job in final["jobs"]}
        spans, metrics = load_trace(tmp_path / "trace.jsonl")
        assert validate_trace(spans) == []
        assert set(span_trees(spans)) == fingerprints
        # the daemon flushed a final metrics snapshot on shutdown
        # (REGISTRY is process-global, so assert a floor, not equality)
        counters = metrics[-1]["snapshot"]["counters"]
        assert counters["redqaoa_jobs_completed_total"] >= 4.0

    def test_sigkilled_worker_requeues_and_still_one_tree_per_job(self, tmp_path):
        # satellite (c): a worker SIGKILLed mid-job costs an attempt, the
        # shard requeues, and the landing attempt ships the only tree
        manifest = _manifest(6)
        from repro.service.campaign import manifest_specs

        victim = sorted(s.fingerprint for s in manifest_specs(manifest))[2]
        token = tmp_path / "crash-token"
        token.touch()
        fault = CrashPoint(fingerprints=frozenset({victim}), token=str(token))
        with _daemon(tmp_path, workers=2, fault=fault) as (daemon, client):
            reply = client.submit(manifest)
            final = client.wait(reply["ticket"], timeout=300)
            assert final["counts"] == {"done": 6}
            assert daemon.queue.crashes == 1
            assert not token.exists()  # the SIGKILL actually happened
            fingerprints = {job["fingerprint"] for job in final["jobs"]}
        spans, _ = load_trace(tmp_path / "trace.jsonl")
        assert validate_trace(spans) == []
        trees = span_trees(spans)
        assert set(trees) == fingerprints
        roots = [tree["root"] for tree in trees.values()]
        assert all(root is not None for root in roots)  # exactly one root each
        by_fp = {root["job"]: root for root in roots}
        assert by_fp[victim]["attrs"]["attempts"] == 2  # crash cost one attempt
        # shard-mates of the victim may have been requeued along with it;
        # everyone else landed first try
        assert all(root["attrs"]["attempts"] in (1, 2) for root in roots)

    def test_daemon_results_bit_identical_to_untraced_daemon(self, tmp_path):
        manifest = _manifest(3)

        def run_with(directory, **kwargs):
            directory.mkdir()
            with _daemon(directory, workers=2, **kwargs) as (daemon, client):
                ticket = client.submit(manifest)["ticket"]
                final = client.wait(ticket, timeout=300)
                assert final["counts"] == {"done": 3}
                return {job["fingerprint"]: job["result"] for job in final["jobs"]}

        traced = run_with(tmp_path / "traced")
        untraced = run_with(tmp_path / "untraced", trace_path=None)
        assert traced == untraced
