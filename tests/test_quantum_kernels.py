"""Tests for the low-level tensor kernels in repro.quantum._kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum._kernels import apply_matrix, apply_matrix_rho
from repro.quantum.gates import gate_matrix


def _random_state(n, seed):
    rng = np.random.default_rng(seed)
    state = rng.normal(size=2**n) + 1j * rng.normal(size=2**n)
    return state / np.linalg.norm(state)


class TestApplyMatrix:
    def test_identity_is_noop(self):
        state = _random_state(3, 0)
        out = apply_matrix(state, np.eye(2, dtype=complex), (1,), 3)
        assert np.allclose(out, state)

    def test_input_not_mutated(self):
        state = _random_state(2, 1)
        snapshot = state.copy()
        apply_matrix(state, gate_matrix("x"), (0,), 2)
        assert np.array_equal(state, snapshot)

    def test_x_on_qubit0_swaps_pairs(self):
        state = np.array([1, 2, 3, 4], dtype=complex)
        out = apply_matrix(state, gate_matrix("x"), (0,), 2)
        assert np.allclose(out, [2, 1, 4, 3])

    def test_x_on_qubit1_swaps_blocks(self):
        state = np.array([1, 2, 3, 4], dtype=complex)
        out = apply_matrix(state, gate_matrix("x"), (1,), 2)
        assert np.allclose(out, [3, 4, 1, 2])

    def test_two_qubit_gate_ordering(self):
        # CX with control=q1, target=q0 on |10> (index 2) gives |11>.
        state = np.zeros(4, dtype=complex)
        state[2] = 1.0
        out = apply_matrix(state, gate_matrix("cx"), (1, 0), 2)
        assert np.allclose(np.abs(out) ** 2, [0, 0, 0, 1])

    def test_wrong_matrix_shape(self):
        with pytest.raises(ValueError):
            apply_matrix(_random_state(2, 2), np.eye(4, dtype=complex), (0,), 2)

    def test_norm_preserved_by_unitaries(self):
        state = _random_state(4, 3)
        out = apply_matrix(state, gate_matrix("rzz", [1.3]), (1, 3), 4)
        assert np.linalg.norm(out) == pytest.approx(1.0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_property_unitarity_preserved(self, seed):
        rng = np.random.default_rng(seed)
        n = 3
        state = _random_state(n, seed)
        for _ in range(5):
            name = ["h", "rx", "cx", "rzz"][rng.integers(4)]
            if name in ("h",):
                out = apply_matrix(state, gate_matrix(name), (int(rng.integers(n)),), n)
            elif name == "rx":
                out = apply_matrix(
                    state, gate_matrix("rx", [float(rng.uniform(0, 6))]),
                    (int(rng.integers(n)),), n,
                )
            else:
                a, b = rng.choice(n, size=2, replace=False)
                params = [float(rng.uniform(0, 6))] if name == "rzz" else []
                out = apply_matrix(state, gate_matrix(name, params), (int(a), int(b)), n)
            assert np.linalg.norm(out) == pytest.approx(1.0, abs=1e-10)
            state = out


class TestApplyMatrixRho:
    def test_pure_state_consistency(self):
        """U rho U^dag on |psi><psi| equals the statevector evolution."""
        state = _random_state(3, 4)
        rho = np.outer(state, state.conj())
        u = gate_matrix("rzz", [0.9])
        evolved_state = apply_matrix(state, u, (0, 2), 3)
        evolved_rho = apply_matrix_rho(rho, u, (0, 2), 3)
        assert np.allclose(evolved_rho, np.outer(evolved_state, evolved_state.conj()))

    def test_trace_preserved(self):
        state = _random_state(2, 5)
        rho = np.outer(state, state.conj())
        out = apply_matrix_rho(rho, gate_matrix("h"), (1,), 2)
        assert np.trace(out).real == pytest.approx(1.0)

    def test_hermiticity_preserved(self):
        state = _random_state(2, 6)
        rho = np.outer(state, state.conj())
        out = apply_matrix_rho(rho, gate_matrix("rx", [0.7]), (0,), 2)
        assert np.allclose(out, out.conj().T)

    def test_shape_checked(self):
        with pytest.raises(ValueError):
            apply_matrix_rho(np.eye(3, dtype=complex), gate_matrix("x"), (0,), 2)

    def test_nonunitary_kraus_supported(self):
        """The kernel applies K rho K^dag without requiring unitarity."""
        k1 = np.array([[0, 1], [0, 0]], dtype=complex)  # lowering operator
        rho = np.array([[0, 0], [0, 1]], dtype=complex)  # |1><1|
        out = apply_matrix_rho(rho, k1, (0,), 1)
        assert np.allclose(out, [[1, 0], [0, 0]])
