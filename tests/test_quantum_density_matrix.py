"""Tests for repro.quantum.density_matrix."""

import numpy as np
import pytest

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density_matrix import DensityMatrixSimulator
from repro.quantum.noise import (
    NoiseModel,
    ReadoutError,
    amplitude_damping_error,
    depolarizing_error,
    pauli_error,
)
from repro.quantum.statevector import StatevectorSimulator


@pytest.fixture
def dm():
    return DensityMatrixSimulator()


class TestIdealEvolution:
    def test_matches_statevector_on_bell_state(self, dm):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        rho = dm.run(qc)
        state = StatevectorSimulator().run(qc)
        assert np.allclose(rho, np.outer(state, state.conj()))

    def test_matches_statevector_random_circuit(self, dm, rng):
        qc = QuantumCircuit(3)
        for _ in range(10):
            if rng.random() < 0.5:
                qc.rx(float(rng.uniform(0, 6)), int(rng.integers(3)))
            else:
                a, b = rng.choice(3, size=2, replace=False)
                qc.cx(int(a), int(b))
        rho = dm.run(qc)
        state = StatevectorSimulator().run(qc)
        assert np.allclose(rho, np.outer(state, state.conj()), atol=1e-10)

    def test_trace_preserved(self, dm):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.rzz(0.7, 0, 1)
        rho = dm.run(qc)
        assert np.trace(rho).real == pytest.approx(1.0)

    def test_max_qubits_guard(self):
        sim = DensityMatrixSimulator(max_qubits=2)
        with pytest.raises(ValueError):
            sim.run(QuantumCircuit(3))


class TestNoisyEvolution:
    def test_full_depolarizing_gives_mixed_state(self, dm):
        model = NoiseModel()
        model.add_all_qubit_quantum_error(depolarizing_error(1.0, 1), "h")
        qc = QuantumCircuit(1)
        qc.h(0)
        rho = dm.run(qc, model)
        assert np.allclose(rho, np.eye(2) / 2)

    def test_bit_flip_channel(self, dm):
        model = NoiseModel()
        model.add_all_qubit_quantum_error(pauli_error({"I": 0.8, "X": 0.2}), "i")
        qc = QuantumCircuit(1)
        qc.append("i", (0,))
        probs = dm.probabilities(qc, model)
        assert probs[1] == pytest.approx(0.2)

    def test_amplitude_damping_after_x(self, dm):
        gamma = 0.4
        model = NoiseModel()
        model.add_all_qubit_quantum_error(amplitude_damping_error(gamma), "x")
        qc = QuantumCircuit(1)
        qc.x(0)
        probs = dm.probabilities(qc, model)
        assert probs[0] == pytest.approx(gamma)
        assert probs[1] == pytest.approx(1 - gamma)

    def test_one_qubit_channel_on_two_qubit_gate(self, dm):
        # A 1q channel attached to CX applies to both gate qubits.
        model = NoiseModel()
        model.add_all_qubit_quantum_error(pauli_error({"I": 0.0, "X": 1.0}), "cx")
        qc = QuantumCircuit(2)
        qc.cx(0, 1)  # state stays |00>, then X on both qubits -> |11>
        probs = dm.probabilities(qc, model)
        assert probs[3] == pytest.approx(1.0)

    def test_noise_reduces_purity(self, dm):
        model = NoiseModel()
        model.add_all_qubit_quantum_error(depolarizing_error(0.2, 1), "h")
        qc = QuantumCircuit(1)
        qc.h(0)
        rho = dm.run(qc, model)
        purity = np.trace(rho @ rho).real
        assert purity < 1.0 - 1e-6

    def test_trace_preserved_under_noise(self, dm):
        model = NoiseModel()
        model.add_all_qubit_quantum_error(depolarizing_error(0.15, 2), "cx")
        model.add_all_qubit_quantum_error(amplitude_damping_error(0.05), "h")
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.cx(1, 2)
        rho = dm.run(qc, model)
        assert np.trace(rho).real == pytest.approx(1.0)


class TestMeasurement:
    def test_readout_error_applied(self, dm):
        model = NoiseModel()
        model.add_readout_error(ReadoutError(1.0, 1.0), 0)
        qc = QuantumCircuit(1)
        qc.append("i", (0,))
        probs = dm.probabilities(qc, model)
        assert probs[1] == pytest.approx(1.0)

    def test_expectation_diagonal(self, dm):
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.cx(0, 1)
        diag = np.array([0.0, 1.0, 1.0, 2.0])
        assert dm.expectation_diagonal(qc, diag) == pytest.approx(1.0)

    def test_expectation_shape_mismatch(self, dm):
        with pytest.raises(ValueError):
            dm.expectation_diagonal(QuantumCircuit(2), np.array([1.0]))
