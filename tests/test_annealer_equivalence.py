"""Same-seed equivalence: incremental annealer vs the retained reference.

The incremental-state engine must be a drop-in replacement for the
per-call networkx implementation under the runtime determinism contract:
same seed, bit-identical :class:`~repro.core.annealer.AnnealResult` --
nodes, objective, steps, and the full best-so-far history -- on weighted
and unweighted graphs alike.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.annealer import reference_simulated_annealing, simulated_annealing
from repro.core.reduction import GraphReducer


def _connected_er(n, p, seed):
    offset = 0
    while True:
        g = nx.erdos_renyi_graph(n, p, seed=seed + offset)
        if g.number_of_edges() and nx.is_connected(g):
            return g
        offset += 100


def _weighted(graph, seed, dist):
    rng = np.random.default_rng(seed)
    for u, v in graph.edges():
        if dist == "uniform":
            graph[u][v]["weight"] = float(rng.uniform(0.25, 2.0))
        elif dist == "gaussian":
            graph[u][v]["weight"] = float(rng.normal(0.0, 1.0))
        else:  # spin
            graph[u][v]["weight"] = float(rng.choice([-1.0, 1.0]))
    return graph


def _assert_identical(a, b):
    assert a.nodes == b.nodes
    assert a.objective == b.objective  # bitwise, not approx
    assert a.steps == b.steps
    assert a.history == b.history
    assert set(a.subgraph.nodes()) == set(b.subgraph.nodes())
    assert set(a.subgraph.edges()) == set(b.subgraph.edges())


class TestSameSeedEquivalence:
    @pytest.mark.parametrize("dist", ["unweighted", "uniform", "gaussian", "spin"])
    def test_engines_bit_identical(self, dist):
        g = _connected_er(16, 0.3, 11)
        if dist != "unweighted":
            g = _weighted(g, 5, dist)
        for seed in (0, 1, 2):
            incremental = simulated_annealing(g, 9, seed=seed)
            reference = reference_simulated_annealing(g, 9, seed=seed)
            _assert_identical(incremental, reference)

    def test_constant_cooling_and_max_steps(self):
        g = _weighted(_connected_er(14, 0.35, 3), 9, "uniform")
        incremental = simulated_annealing(g, 8, cooling="constant", seed=4, max_steps=60)
        reference = reference_simulated_annealing(
            g, 8, cooling="constant", seed=4, max_steps=60
        )
        _assert_identical(incremental, reference)

    def test_full_size_subgraph(self):
        """k == n leaves no outside nodes: both engines idle identically."""
        g = _connected_er(9, 0.4, 6)
        incremental = simulated_annealing(g, 9, seed=0)
        reference = reference_simulated_annealing(g, 9, seed=0)
        _assert_identical(incremental, reference)
        assert incremental.objective == 0.0

    def test_star_graph_forced_fallback_swaps(self):
        """On a star most swaps disconnect the subgraph; the rejected-attempt
        paths of the two engines must consume the same RNG draws."""
        g = nx.star_graph(9)
        incremental = simulated_annealing(g, 4, seed=2)
        reference = reference_simulated_annealing(g, 4, seed=2)
        _assert_identical(incremental, reference)

    def test_pinned_regression(self):
        """The exact pre-refactor outcome for one seed (unweighted graphs are
        bit-stable across the objective reformulation)."""
        g = nx.erdos_renyi_graph(16, 0.35, seed=0)
        result = simulated_annealing(g, 9, seed=0)
        assert sorted(result.nodes) == [0, 3, 5, 8, 10, 11, 12, 13, 14]
        assert result.steps == 188
        assert result.objective == 0.4166666666666665
        assert len(result.history) == 189

    def test_reducer_engines_agree(self):
        g = _weighted(_connected_er(18, 0.3, 21), 13, "gaussian")
        fast = GraphReducer(seed=3, annealer="incremental").reduce(g)
        slow = GraphReducer(seed=3, annealer="reference").reduce(g)
        assert fast.nodes == slow.nodes
        assert fast.and_ratio == slow.and_ratio
        assert fast.anneal_result.objective == slow.anneal_result.objective

    def test_reducer_rejects_unknown_annealer(self):
        with pytest.raises(ValueError):
            GraphReducer(annealer="turbo")


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    n=st.integers(min_value=6, max_value=20),
    weighted=st.booleans(),
)
def test_property_same_seed_bit_identical(seed, n, weighted):
    """Any graph, any seed: the two engines produce the same AnnealResult."""
    g = _connected_er(n, 0.4, seed)
    if weighted:
        g = _weighted(g, seed, "gaussian")
    k = max(2, (2 * n) // 3)
    incremental = simulated_annealing(g, k, seed=seed)
    reference = reference_simulated_annealing(g, k, seed=seed)
    _assert_identical(incremental, reference)
