"""Tests for repro.analysis (metrics, runtime, throughput)."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.analysis.metrics import mean_squared_error, paired_summary, relative_improvement
from repro.analysis.runtime import (
    RuntimeModel,
    fit_nlogn,
    measure_preprocessing_times,
    per_circuit_execution_time,
)
from repro.analysis.throughput import (
    circuit_execution_time,
    device_capacity,
    relative_throughput,
)
from repro.quantum.backends import get_backend


class TestMetrics:
    def test_mse_zero_for_identical(self):
        a = np.arange(10.0)
        assert mean_squared_error(a, a) == 0.0

    def test_mse_value(self):
        assert mean_squared_error(np.zeros(4), np.full(4, 2.0)) == 4.0

    def test_mse_shape_mismatch(self):
        with pytest.raises(ValueError):
            mean_squared_error(np.zeros(3), np.zeros(4))

    def test_relative_improvement(self):
        assert relative_improvement(11.0, 10.0) == pytest.approx(0.1)
        assert relative_improvement(9.0, 10.0) == pytest.approx(-0.1)

    def test_relative_improvement_zero_baseline(self):
        with pytest.raises(ValueError):
            relative_improvement(1.0, 0.0)

    def test_paired_summary(self):
        summary = paired_summary([0.1, -0.05, 0.2, 0.15])
        assert summary.minimum == -0.05
        assert summary.maximum == 0.2
        assert summary.fraction_positive == 0.75
        assert summary.q1 <= summary.median <= summary.q3

    def test_paired_summary_empty(self):
        with pytest.raises(ValueError):
            paired_summary([])


class TestRuntime:
    def test_measurements_positive(self):
        times = measure_preprocessing_times([10, 20], seed=0)
        assert all(t > 0 for _, t in times)
        assert [n for n, _ in times] == [10, 20]

    def test_fit_recovers_synthetic_nlogn(self):
        a, b = 2e-5, 1e-3
        data = [(n, a * n * math.log(n) + b) for n in (10, 50, 100, 400, 1000)]
        model = fit_nlogn(data)
        assert model.a == pytest.approx(a, rel=1e-6)
        assert model.r_squared == pytest.approx(1.0)

    def test_fit_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_nlogn([(10, 0.1)])

    def test_model_prediction_monotone(self):
        model = RuntimeModel(a=1e-5, b=0.0, r_squared=1.0)
        assert model.predict(100) < model.predict(1000)

    def test_per_circuit_time_anchor(self):
        """The paper's anchor: 10-node 1-layer QAOA ~ 4.2 s on sherbrooke."""
        t = per_circuit_execution_time(10, p=1, shots=8192)
        assert 2.0 < t < 8.0

    def test_per_circuit_validation(self):
        with pytest.raises(ValueError):
            per_circuit_execution_time(0)


class TestThroughput:
    def test_capacity(self):
        backend = get_backend("eagle_127")
        assert device_capacity(backend, 10) == 12
        assert device_capacity(backend, 127) == 1
        assert device_capacity(backend, 200) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            device_capacity(get_backend("kolkata"), 0)

    def test_execution_time_grows_with_density(self):
        backend = get_backend("kolkata")
        sparse = nx.cycle_graph(10)
        dense = nx.complete_graph(10)
        assert circuit_execution_time(backend, dense) > circuit_execution_time(backend, sparse)

    def test_relative_throughput_reduced_wins(self):
        backend = get_backend("hummingbird_65")
        pairs = []
        for seed in range(5):
            g = nx.erdos_renyi_graph(10, 0.4, seed=seed)
            reduced = nx.erdos_renyi_graph(7, 0.4, seed=seed + 100)
            pairs.append((g, reduced))
        report = relative_throughput(backend, pairs, "test")
        assert report.relative > 1.0

    def test_relative_throughput_identity_pairs(self):
        backend = get_backend("kolkata")
        g = nx.cycle_graph(9)
        report = relative_throughput(backend, [(g, g)])
        assert report.relative == pytest.approx(1.0)

    def test_empty_pairs_rejected(self):
        with pytest.raises(ValueError):
            relative_throughput(get_backend("kolkata"), [])

    def test_too_wide_originals_rejected(self):
        backend = get_backend("melbourne")  # 14 qubits
        g = nx.cycle_graph(20)
        with pytest.raises(ValueError):
            relative_throughput(backend, [(g, nx.cycle_graph(5))])
