"""Tests for the flight recorder and its history reader (repro.obs.history)."""

import json

import pytest

from repro.obs.history import (
    FlightRecorder,
    HistorySeries,
    history_files,
    load_history,
)
from repro.obs.metrics import MetricsRegistry


def _registry() -> MetricsRegistry:
    return MetricsRegistry()


def _recorder(tmp_path, registry=None, **kwargs):
    kwargs.setdefault("interval", 0.001)
    return FlightRecorder(
        tmp_path / "history.jsonl",
        registry=registry if registry is not None else _registry(),
        **kwargs,
    )


class TestFlightRecorder:
    def test_records_carry_schema_identity_and_snapshot(self, tmp_path):
        registry = _registry()
        registry.counter("jobs_total").inc(3)
        rec = _recorder(tmp_path, registry, meta={"pid": 42, "started_unix": 7.0})
        record = rec.record({"queue": {"depth": 5}})
        assert record["schema"] == 1
        assert record["kind"] == "snapshot"
        assert record["seq"] == 1
        assert record["pid"] == 42 and record["started_unix"] == 7.0
        assert record["snapshot"]["counters"]["jobs_total"] == 3.0
        assert record["queue"] == {"depth": 5}
        # and the on-disk line round-trips to the same record
        line = (tmp_path / "history.jsonl").read_text().strip()
        assert json.loads(line) == json.loads(json.dumps(record))

    def test_maybe_record_honors_interval(self, tmp_path):
        rec = _recorder(tmp_path, interval=3600.0)
        assert rec.maybe_record() is True  # first append is always due
        assert rec.maybe_record() is False
        assert len(load_history(rec.path)) == 1

    def test_ring_rotates_and_bounds_total_size(self, tmp_path):
        registry = _registry()
        # Each record is a few hundred bytes; a tiny ring forces rotation.
        rec = _recorder(tmp_path, registry, max_bytes=3000, segments=3)
        for _ in range(60):
            rec.record()
        files = history_files(rec.path)
        assert [f.name for f in files][-1] == "history.jsonl"
        assert 2 <= len(files) <= 3
        total = sum(f.stat().st_size for f in files)
        assert total <= 3000 + 2000  # bounded: ring cap plus one segment of slack
        # oldest-first ordering: seq strictly increases across the ring
        seqs = [r["seq"] for r in load_history(rec.path)]
        assert seqs == sorted(seqs)
        assert seqs[0] > 1  # the oldest records actually fell off

    def test_reader_tolerates_truncated_final_line(self, tmp_path):
        rec = _recorder(tmp_path)
        for _ in range(3):
            rec.record()
        # chop the final line mid-JSON: the footprint of a kill -9 mid-append
        raw = rec.path.read_bytes()
        rec.path.write_bytes(raw[: len(raw) - 40])
        records = load_history(rec.path)
        assert len(records) == 2
        assert [r["seq"] for r in records] == [1, 2]
        # a restarted daemon's recorder heals the torn tail before its
        # first append, so the new record is not lost to concatenation
        rec2 = _recorder(tmp_path, meta={"pid": 99, "started_unix": 1.0})
        rec2.record()
        records = load_history(rec2.path)
        assert len(records) == 3
        assert records[-1]["pid"] == 99
        series = HistorySeries(records)
        assert series.restarts == 1  # torn tail + new identity = two lifetimes

    def test_reader_skips_foreign_and_blank_lines(self, tmp_path):
        rec = _recorder(tmp_path)
        rec.record()
        with rec.path.open("a") as handle:
            handle.write("\n")
            handle.write(json.dumps({"kind": "other", "schema": 1}) + "\n")
            handle.write(json.dumps({"kind": "snapshot", "schema": 999}) + "\n")
        assert len(load_history(rec.path)) == 1

    def test_validates_parameters(self, tmp_path):
        with pytest.raises(ValueError):
            _recorder(tmp_path, interval=0)
        with pytest.raises(ValueError):
            _recorder(tmp_path, segments=0)
        with pytest.raises(ValueError):
            _recorder(tmp_path, max_bytes=0)


def _snapshot_record(seq, unix, counters=None, gauges=None, histograms=None,
                     pid=1, started=100.0):
    return {
        "schema": 1,
        "kind": "snapshot",
        "seq": seq,
        "unix": unix,
        "pid": pid,
        "started_unix": started,
        "snapshot": {
            "counters": counters or {},
            "gauges": gauges or {},
            "histograms": histograms or {},
        },
    }


class TestHistorySeries:
    def test_counter_rate_from_deltas(self):
        series = HistorySeries([
            _snapshot_record(1, 10.0, counters={"jobs": 0}),
            _snapshot_record(2, 20.0, counters={"jobs": 50}),
            _snapshot_record(3, 30.0, counters={"jobs": 150}),
        ])
        assert series.counter_rate("jobs") == [(15.0, 5.0), (25.0, 10.0)]

    def test_restart_splits_lifetimes_and_never_yields_negative_rates(self):
        series = HistorySeries([
            _snapshot_record(1, 10.0, counters={"jobs": 100}, pid=1),
            _snapshot_record(2, 20.0, counters={"jobs": 200}, pid=1),
            # restart: new pid, counter reset to near zero
            _snapshot_record(1, 30.0, counters={"jobs": 5}, pid=2, started=130.0),
            _snapshot_record(2, 40.0, counters={"jobs": 45}, pid=2, started=130.0),
        ])
        assert series.restarts == 1
        rates = series.counter_rate("jobs")
        assert rates == [(15.0, 10.0), (35.0, 4.0)]
        assert all(rate >= 0 for _, rate in rates)

    def test_seq_reset_detects_restart_with_reused_identity(self):
        records = [
            _snapshot_record(1, 10.0),
            _snapshot_record(2, 20.0),
            _snapshot_record(1, 30.0),  # same pid/start, seq back to 1
        ]
        assert HistorySeries(records).restarts == 1

    def test_gauge_series_is_raw_curve(self):
        series = HistorySeries([
            _snapshot_record(1, 10.0, gauges={"depth": 3.0}),
            _snapshot_record(2, 20.0),
            _snapshot_record(3, 30.0, gauges={"depth": 1.0}),
        ])
        assert series.gauge_series("depth") == [(10.0, 3.0), (30.0, 1.0)]

    def test_histogram_quantile_per_snapshot(self):
        histogram = {"lat": {"buckets": [1.0, 2.0], "counts": [10, 10, 0],
                             "sum": 15.0, "count": 20}}
        series = HistorySeries([_snapshot_record(1, 10.0, histograms=histogram)])
        [(unix, p50)] = series.histogram_quantile("lat", 0.5)
        assert unix == 10.0
        assert p50 == pytest.approx(1.0)

    def test_live_registry_round_trip(self, tmp_path):
        registry = _registry()
        counter = registry.counter("work_total")
        rec = _recorder(tmp_path, registry)
        for total in (10, 30, 60):
            counter.inc(total - counter.value)
            rec.record()
        series = HistorySeries.load(rec.path)
        assert series.restarts == 0
        rates = series.counter_rate("work_total")
        assert len(rates) == 2
        assert all(rate > 0 for _, rate in rates)
