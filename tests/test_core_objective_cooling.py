"""Tests for repro.core.objective and repro.core.cooling."""

import networkx as nx
import pytest

from repro.core.cooling import AdaptiveCooling, ConstantCooling
from repro.core.objective import and_difference_objective, subgraph_and


class TestSubgraphAnd:
    def test_full_graph(self):
        g = nx.cycle_graph(6)
        assert subgraph_and(g, range(6)) == 2.0

    def test_subset(self):
        g = nx.cycle_graph(6)
        # Three consecutive nodes of a cycle: path of 2 edges, AND = 4/3.
        assert subgraph_and(g, {0, 1, 2}) == pytest.approx(4 / 3)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            subgraph_and(nx.path_graph(3), set())


class TestObjective:
    def test_perfect_match_is_zero(self):
        g = nx.cycle_graph(8)
        # Any sub-cycle... cycles have no proper sub-cycles; use whole graph.
        assert and_difference_objective(g, range(8)) == 0.0

    def test_deviation_positive(self):
        g = nx.complete_graph(6)
        assert and_difference_objective(g, {0, 1}) > 0

    def test_target_override(self):
        g = nx.path_graph(4)
        value = and_difference_objective(g, {0, 1}, target_and=1.0)
        assert value == pytest.approx(0.0)

    def test_symmetric_in_sign(self):
        g = nx.complete_graph(5)  # AND = 4
        # Subgraph K3 has AND 2 -> objective 2.
        assert and_difference_objective(g, {0, 1, 2}) == pytest.approx(2.0)


class TestConstantCooling:
    def test_geometric_decay(self):
        schedule = ConstantCooling(alpha=0.9)
        assert schedule.next_temperature(1.0, accepted=True) == pytest.approx(0.9)
        assert schedule.next_temperature(0.9, accepted=False) == pytest.approx(0.81)

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            ConstantCooling(alpha=1.0)
        with pytest.raises(ValueError):
            ConstantCooling(alpha=0.0)


class TestAdaptiveCooling:
    def test_accepting_cools_faster_than_rejecting(self):
        fast = AdaptiveCooling()
        slow = AdaptiveCooling()
        t_fast = 1.0
        t_slow = 1.0
        for _ in range(10):
            t_fast = fast.next_temperature(t_fast, accepted=True)
            t_slow = slow.next_temperature(t_slow, accepted=False)
        assert t_fast < t_slow

    def test_reset_clears_history(self):
        schedule = AdaptiveCooling(window=5)
        for _ in range(5):
            schedule.next_temperature(1.0, accepted=True)
        schedule.reset()
        # After reset, a single rejection gives the pure slow alpha.
        t = schedule.next_temperature(1.0, accepted=False)
        assert t == pytest.approx(schedule.slow_alpha)

    def test_window_limits_memory(self):
        schedule = AdaptiveCooling(window=2)
        schedule.next_temperature(1.0, accepted=True)
        schedule.next_temperature(1.0, accepted=True)
        # Window of 2: two rejections fully flush the accepts.
        schedule.next_temperature(1.0, accepted=False)
        t = schedule.next_temperature(1.0, accepted=False)
        assert t == pytest.approx(schedule.slow_alpha)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveCooling(slow_alpha=1.5)
        with pytest.raises(ValueError):
            AdaptiveCooling(slow_alpha=0.9, fast_alpha=0.95)
        with pytest.raises(ValueError):
            AdaptiveCooling(window=0)

    def test_temperature_always_decreases(self):
        schedule = AdaptiveCooling()
        t = 1.0
        for step in range(20):
            new_t = schedule.next_temperature(t, accepted=step % 3 == 0)
            assert new_t < t
            t = new_t


class TestWeightedObjective:
    def _weighted_star(self):
        g = nx.star_graph(4)  # edges (0,1)..(0,4)
        for index, (u, v) in enumerate(g.edges()):
            g[u][v]["weight"] = float(index + 1)
        return g

    def test_subgraph_and_uses_strength(self):
        g = self._weighted_star()
        # Induced subgraph {0, 1} keeps only edge (0, 1) of weight 1.
        assert subgraph_and(g, {0, 1}) == pytest.approx(1.0)
        # {0, 4} keeps edge (0, 4) of weight 4: strength AND = 2*4/2.
        assert subgraph_and(g, {0, 4}) == pytest.approx(4.0)

    def test_objective_zero_when_strength_matches(self):
        g = self._weighted_star()
        assert and_difference_objective(g, set(g.nodes())) == 0.0

    def test_unit_weights_bit_identical(self):
        g = nx.erdos_renyi_graph(9, 0.4, seed=2)
        h = nx.Graph(g)
        for u, v in h.edges():
            h[u][v]["weight"] = 1.0
        for nodes in ({0, 1, 2}, set(range(6)), set(g.nodes())):
            assert and_difference_objective(g, nodes) == and_difference_objective(h, nodes)
