"""Tests for repro.datasets."""

import networkx as nx
import numpy as np
import pytest

from repro.datasets import (
    DATASET_NAMES,
    aids_like_graph,
    attach_weights,
    dataset_stats,
    imdb_like_graph,
    linux_like_graph,
    load_dataset,
    random_connected_gnp,
    random_graph_suite,
    spin_glass_graph,
    weighted_graph_suite,
)
from repro.datasets.stats import is_regular, is_weighted_graph
from repro.utils.graphs import average_node_degree


class TestGenerators:
    @pytest.mark.parametrize("gen", [aids_like_graph, linux_like_graph])
    @pytest.mark.parametrize("n", [2, 5, 10])
    def test_sparse_generators_sizes(self, gen, n):
        g = gen(n, seed=0)
        assert g.number_of_nodes() == n
        assert nx.is_connected(g)

    @pytest.mark.parametrize("n", [3, 6, 15, 40])
    def test_imdb_sizes(self, n):
        g = imdb_like_graph(n, seed=0)
        assert g.number_of_nodes() == n
        assert nx.is_connected(g)

    def test_aids_is_sparse(self):
        ands = [average_node_degree(aids_like_graph(8, seed=s)) for s in range(30)]
        assert np.mean(ands) < 2.5

    def test_linux_is_sparse(self):
        ands = [average_node_degree(linux_like_graph(8, seed=s)) for s in range(30)]
        assert np.mean(ands) < 3.0

    def test_imdb_is_dense(self):
        ands = [average_node_degree(imdb_like_graph(8, seed=s)) for s in range(30)]
        assert np.mean(ands) > 4.0

    def test_imdb_regular_fraction_near_paper(self):
        """Sec. 7.1: ~54% of (small) IMDb graphs are regular."""
        rng = np.random.default_rng(0)
        graphs = [imdb_like_graph(int(rng.integers(5, 9)), seed=rng) for _ in range(200)]
        fraction = np.mean([is_regular(g) for g in graphs])
        assert 0.35 <= fraction <= 0.7

    def test_sparse_generators_rarely_regular(self):
        graphs = [linux_like_graph(8, seed=s) for s in range(50)]
        assert np.mean([is_regular(g) for g in graphs]) < 0.1

    def test_node_range_validation(self):
        with pytest.raises(ValueError):
            aids_like_graph(1)
        with pytest.raises(ValueError):
            imdb_like_graph(2)

    def test_seeded_reproducibility(self):
        a = aids_like_graph(8, seed=5)
        b = aids_like_graph(8, seed=5)
        assert set(a.edges()) == set(b.edges())


class TestRandomGraphs:
    def test_connected_gnp(self):
        g = random_connected_gnp(10, 0.3, seed=0)
        assert nx.is_connected(g)

    def test_suite_counts_and_sizes(self):
        graphs = random_graph_suite(count=10, min_nodes=7, max_nodes=20, seed=0)
        assert len(graphs) == 10
        for g in graphs:
            assert 7 <= g.number_of_nodes() <= 20
            assert nx.is_connected(g)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            random_connected_gnp(5, 0.0)

    def test_impossible_connectivity_raises(self):
        with pytest.raises(RuntimeError):
            random_connected_gnp(50, 0.001, seed=0, max_attempts=3)


class TestRegistry:
    @pytest.mark.parametrize("name", ["aids", "linux", "imdb"])
    def test_load_counts(self, name):
        graphs = load_dataset(name, count=20, seed=0)
        assert len(graphs) == 20

    def test_node_range_filter(self):
        graphs = load_dataset("imdb", count=30, min_nodes=10, max_nodes=20, seed=0)
        for g in graphs:
            assert 10 <= g.number_of_nodes() <= 20

    def test_random_dataset(self):
        graphs = load_dataset("random", count=5, seed=0)
        assert len(graphs) == 5

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("proteins")

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("aids", count=5, min_nodes=20, max_nodes=30)

    def test_table1_full_counts(self):
        """The registry defaults reproduce Table 1's dataset sizes."""
        assert len(load_dataset("aids", count=None, seed=0, max_nodes=4)) == 700

    def test_dataset_names_constant(self):
        assert set(DATASET_NAMES) == {
            "aids", "linux", "imdb", "random",
            "weighted-uniform", "weighted-gaussian", "spinglass",
        }

    def test_seeded_loading_reproducible(self):
        a = load_dataset("linux", count=5, seed=3)
        b = load_dataset("linux", count=5, seed=3)
        for ga, gb in zip(a, b):
            assert set(ga.edges()) == set(gb.edges())


class TestStats:
    def test_stats_fields(self):
        graphs = load_dataset("aids", count=25, seed=0)
        stats = dataset_stats("aids", graphs)
        assert stats.num_graphs == 25
        assert stats.min_nodes >= 2
        assert stats.max_nodes <= 10
        assert 0 <= stats.regular_fraction <= 1

    def test_as_row_formatting(self):
        graphs = load_dataset("linux", count=5, seed=0)
        row = dataset_stats("linux", graphs).as_row()
        assert "linux" in row and "graphs" in row

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dataset_stats("x", [])

    def test_is_regular(self):
        assert is_regular(nx.cycle_graph(5))
        assert is_regular(nx.complete_graph(4))
        assert not is_regular(nx.path_graph(4))


class TestWeightedGenerators:
    def test_attach_weights_uniform_range(self):
        g = attach_weights(nx.cycle_graph(8), "uniform", low=0.5, high=1.5, seed=0)
        weights = [d["weight"] for _, _, d in g.edges(data=True)]
        assert len(weights) == 8
        assert all(0.5 <= w < 1.5 for w in weights)

    def test_attach_weights_does_not_mutate_input(self):
        g = nx.cycle_graph(5)
        attach_weights(g, "uniform", seed=0)
        assert all("weight" not in d for _, _, d in g.edges(data=True))

    def test_attach_weights_reproducible(self):
        a = attach_weights(nx.path_graph(6), "gaussian", seed=3)
        b = attach_weights(nx.path_graph(6), "gaussian", seed=3)
        assert [d["weight"] for _, _, d in a.edges(data=True)] == [
            d["weight"] for _, _, d in b.edges(data=True)
        ]

    def test_spin_weights_are_rademacher(self):
        g = attach_weights(nx.complete_graph(7), "spin", seed=1)
        assert {d["weight"] for _, _, d in g.edges(data=True)} <= {-1.0, 1.0}

    def test_spin_glass_graph(self):
        g = spin_glass_graph(9, 0.5, seed=2)
        assert nx.is_connected(g)
        assert {d["weight"] for _, _, d in g.edges(data=True)} <= {-1.0, 1.0}

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            attach_weights(nx.path_graph(3), "lognormal")

    def test_weighted_suite_counts_and_weights(self):
        graphs = weighted_graph_suite(count=6, min_nodes=5, max_nodes=9, seed=0)
        assert len(graphs) == 6
        for g in graphs:
            assert 5 <= g.number_of_nodes() <= 9
            assert nx.is_connected(g)
            assert all("weight" in d for _, _, d in g.edges(data=True))

    def test_registry_weighted_datasets(self):
        for name in ("weighted-uniform", "weighted-gaussian", "spinglass"):
            graphs = load_dataset(name, count=4, min_nodes=5, max_nodes=8, seed=1)
            assert len(graphs) == 4
            assert all(is_weighted_graph(g) for g in graphs)

    def test_weighted_stats(self):
        graphs = load_dataset("weighted-uniform", count=5, min_nodes=5, max_nodes=8, seed=0)
        stats = dataset_stats("weighted-uniform", graphs)
        assert stats.weighted_fraction == 1.0
        assert stats.mean_strength != stats.mean_and
        assert "weighted" in stats.as_row()

    def test_spin_glass_strength_is_degree(self):
        """+/-1 couplings have unit magnitude: strength AND equals AND."""
        graphs = load_dataset("spinglass", count=5, min_nodes=5, max_nodes=8, seed=0)
        stats = dataset_stats("spinglass", graphs)
        assert stats.mean_strength == pytest.approx(stats.mean_and)

    def test_unweighted_stats_strength_equals_and(self):
        graphs = load_dataset("aids", count=5, seed=0)
        stats = dataset_stats("aids", graphs)
        assert stats.weighted_fraction == 0.0
        assert stats.mean_strength == stats.mean_and
