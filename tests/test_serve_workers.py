"""Tests for repro.serve.workers: pools, purity, crashes, dead letters.

The load-bearing assertions here are the bit-identity ones: any pool, any
worker count, and any crash/requeue schedule must produce byte-for-byte
the payloads of N sequential :func:`~repro.service.jobs.run_job` calls.
"""

import os

import pytest

from repro.serve.queue import ShardedJobQueue
from repro.serve.workers import (
    CrashPoint,
    InlineWorkerPool,
    ProcessWorkerPool,
    drain,
    make_pool,
)
from repro.service.jobs import JobSpec, run_job


def _specs(count: int, nodes: int = 8) -> list[JobSpec]:
    from repro.datasets import random_connected_gnp

    return [
        JobSpec(
            graph=random_connected_gnp(nodes, 0.4, seed=seed),
            restarts=1,
            maxiter=6,
            label=f"g{nodes}-s{seed}",
        )
        for seed in range(count)
    ]


def _poison_spec() -> JobSpec:
    """Fails fast and deterministically: 27 qubits with fields exceeds the
    exact-engine cap, so run_job raises EngineLimitError in milliseconds."""
    from repro.datasets import problem_instance

    return JobSpec(
        problem=problem_instance("mis", 27, seed=0),
        restarts=1,
        maxiter=4,
        label="poison",
    )


def _reference(specs) -> dict[str, dict]:
    return {spec.fingerprint: run_job(spec).to_payload() for spec in specs}


def _drain_with(pool, specs, max_attempts: int = 3) -> tuple[dict, dict, ShardedJobQueue]:
    queue = ShardedJobQueue(max_attempts=max_attempts)
    for spec in specs:
        assert queue.submit(spec).accepted
    got, deads = {}, {}
    try:
        drain(
            queue,
            pool,
            on_result=lambda spec, r: got.__setitem__(r.fingerprint, r.to_payload()),
            on_dead=lambda spec, error: deads.__setitem__(spec.fingerprint, error),
        )
    finally:
        pool.close()
    return got, deads, queue


class TestInlinePool:
    def test_drain_matches_sequential_run_job(self):
        specs = _specs(6)
        got, deads, queue = _drain_with(InlineWorkerPool(), specs)
        assert deads == {}
        assert got == _reference(specs)
        assert queue.is_idle()

    def test_duplicate_submissions_execute_once(self):
        specs = _specs(4)
        queue = ShardedJobQueue()
        for spec in specs + specs:  # every job submitted twice
            assert queue.submit(spec).accepted
        executed = []
        pool = InlineWorkerPool()
        drain(queue, pool, on_result=lambda spec, r: executed.append(r.fingerprint))
        pool.close()
        assert sorted(executed) == sorted(spec.fingerprint for spec in specs)

    def test_poison_pill_dead_letters_and_rest_completes(self):
        specs = _specs(3)
        pill = _poison_spec()
        got, deads, queue = _drain_with(InlineWorkerPool(), specs + [pill])
        assert set(got) == {spec.fingerprint for spec in specs}
        assert list(deads) == [pill.fingerprint]
        assert "EngineLimitError" in deads[pill.fingerprint]
        assert queue.dead[pill.fingerprint]["attempts"] == 3


class TestProcessPool:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_n_workers_bit_identical_to_sequential(self, workers):
        # The 32-job manifest of the acceptance bar: 1, 2, and 4 workers
        # must all merge byte-for-byte with sequential execution.
        specs = _specs(32)
        got, deads, _ = _drain_with(ProcessWorkerPool(workers=workers), specs)
        assert deads == {}
        assert got == _reference(specs)

    def test_killed_worker_loses_nothing_duplicates_nothing(self, tmp_path):
        specs = _specs(12)
        victim = sorted(spec.fingerprint for spec in specs)[5]
        token = tmp_path / "crash-token"
        token.touch()
        fault = CrashPoint(fingerprints=frozenset({victim}), token=str(token))
        landed = []
        queue = ShardedJobQueue(max_attempts=3)
        for spec in specs:
            queue.submit(spec)
        pool = ProcessWorkerPool(workers=2, fault=fault)
        try:
            drain(queue, pool, on_result=lambda spec, r: landed.append(r))
            assert queue.crashes == 1
            assert pool.respawns == 1
            assert not token.exists()  # the crash actually tripped
        finally:
            pool.close()
        # exactly once each, bit-identical to sequential
        fingerprints = [r.fingerprint for r in landed]
        assert sorted(fingerprints) == sorted(s.fingerprint for s in specs)
        assert {r.fingerprint: r.to_payload() for r in landed} == _reference(specs)

    def test_worker_killing_pill_dead_letters_after_attempts(self, tmp_path):
        # a job that kills its worker on *every* attempt: each crash costs
        # one attempt, so the queue parks it instead of crash-looping
        specs = _specs(2)
        pill = _poison_spec()
        tokens = []
        for attempt in range(2):
            token = tmp_path / f"token-{attempt}"
            token.touch()
            tokens.append(str(token))
        queue = ShardedJobQueue(max_attempts=2)
        for spec in specs + [pill]:
            queue.submit(spec)
        # crash-once per token; chain two faults by swapping after respawn
        # is overkill -- a single CrashPoint plus the pill's own failure
        # exercises the same budget, so use crashes for attempt 1 and the
        # EngineLimitError for attempt 2.
        fault = CrashPoint(fingerprints=frozenset({pill.fingerprint}), token=tokens[0])
        deads = {}
        pool = ProcessWorkerPool(workers=1, fault=fault)
        try:
            drain(
                queue,
                pool,
                on_dead=lambda spec, error: deads.__setitem__(spec.fingerprint, error),
            )
        finally:
            pool.close()
        assert queue.crashes == 1
        assert list(deads) == [pill.fingerprint]
        assert queue.dead[pill.fingerprint]["attempts"] == 2
        assert set(queue.completed) == {spec.fingerprint for spec in specs}

    def test_worker_killed_while_idle_is_replaced_on_dispatch(self):
        # SIGKILL between claims: the death is only observable when the
        # pool next talks to the worker -- dispatch must turn it into a
        # crash/requeue instead of raising through the pump.
        import signal

        specs = _specs(4)
        pool = ProcessWorkerPool(workers=1)
        try:
            os.kill(pool.worker_pids()[0], signal.SIGKILL)
            pool._pool[0].process.join(timeout=10)  # death is now observable
            queue = ShardedJobQueue(max_attempts=3)
            for spec in specs:
                queue.submit(spec)
            got = {}
            drain(queue, pool, on_result=lambda s, r: got.__setitem__(r.fingerprint, r.to_payload()))
            assert pool.respawns >= 1
            assert queue.crashes >= 1
        finally:
            pool.close()
        assert got == _reference(specs)

    def test_worker_pids_are_live_children(self):
        pool = ProcessWorkerPool(workers=2)
        try:
            pids = pool.worker_pids()
            assert len(pids) == 2
            assert all(pid and pid != os.getpid() for pid in pids)
        finally:
            pool.close()


class TestMakePool:
    def test_defaults(self):
        pool = make_pool(None, 1)
        assert isinstance(pool, InlineWorkerPool)
        pool.close()
        pool = make_pool(None, 2)
        assert isinstance(pool, ProcessWorkerPool)
        pool.close()

    def test_inline_is_single_worker(self):
        with pytest.raises(ValueError):
            make_pool("inline", 2)
        with pytest.raises(ValueError):
            make_pool("bogus", 1)
        with pytest.raises(ValueError):
            ProcessWorkerPool(workers=0)
