"""Tests for repro.pooling (features, GCN, and the three poolers)."""

import networkx as nx
import numpy as np
import pytest

from repro.pooling import ASAPooling, SAGPooling, TopKPooling, get_pooler
from repro.pooling.features import FEATURE_NAMES, node_feature_matrix
from repro.pooling.gnn import GCN, normalized_adjacency

ALL_POOLERS = [TopKPooling, SAGPooling, ASAPooling]


def _connected_er(n, p, seed):
    offset = 0
    while True:
        g = nx.erdos_renyi_graph(n, p, seed=seed + offset)
        if g.number_of_edges() and nx.is_connected(g):
            return g
        offset += 100


class TestFeatures:
    def test_shape(self):
        g = _connected_er(8, 0.4, 0)
        feats = node_feature_matrix(g)
        assert feats.shape == (8, len(FEATURE_NAMES))

    def test_normalized_columns(self):
        g = _connected_er(9, 0.4, 1)
        feats = node_feature_matrix(g)
        assert feats.min() >= 0.0
        assert feats.max() <= 1.0

    def test_hub_has_max_degree_feature(self):
        g = nx.star_graph(5)
        feats = node_feature_matrix(g)
        assert feats[0, 0] == 1.0  # hub degree normalized to 1
        assert (feats[1:, 0] == 0.0).all()

    def test_single_edge_graph_no_crash(self):
        feats = node_feature_matrix(nx.path_graph(2))
        assert feats.shape == (2, 5)


class TestGCN:
    def test_normalized_adjacency_row_stochastic_ish(self):
        g = nx.cycle_graph(4)
        a_hat = normalized_adjacency(g)
        # Symmetric normalization of a regular graph: rows sum to 1.
        assert np.allclose(a_hat.sum(axis=1), 1.0)

    def test_forward_shapes(self):
        g = _connected_er(7, 0.5, 2)
        gcn = GCN((5, 8, 1), seed=0)
        out = gcn.forward(normalized_adjacency(g), node_feature_matrix(g))
        assert out.shape == (7, 1)

    def test_seeded_weights_reproducible(self):
        a = GCN((5, 3), seed=1).weights[0]
        b = GCN((5, 3), seed=1).weights[0]
        assert np.array_equal(a, b)

    def test_dims_validated(self):
        with pytest.raises(ValueError):
            GCN((5,))

    def test_feature_dim_checked(self):
        gcn = GCN((5, 1), seed=0)
        with pytest.raises(ValueError):
            gcn.forward(np.eye(3), np.zeros((3, 4)))


class TestPoolers:
    @pytest.mark.parametrize("pooler_cls", ALL_POOLERS)
    def test_exact_size(self, pooler_cls):
        g = _connected_er(10, 0.4, 3)
        pooled = pooler_cls(seed=0).pool(g, 6)
        assert pooled.number_of_nodes() == 6

    @pytest.mark.parametrize("pooler_cls", ALL_POOLERS)
    def test_relabeled_to_range(self, pooler_cls):
        g = _connected_er(9, 0.5, 4)
        pooled = pooler_cls(seed=0).pool(g, 5)
        assert set(pooled.nodes()) == set(range(5))

    @pytest.mark.parametrize("pooler_cls", ALL_POOLERS)
    def test_size_validation(self, pooler_cls):
        g = _connected_er(8, 0.5, 5)
        with pytest.raises(ValueError):
            pooler_cls(seed=0).pool(g, 0)
        with pytest.raises(ValueError):
            pooler_cls(seed=0).pool(g, 9)

    @pytest.mark.parametrize("pooler_cls", ALL_POOLERS)
    def test_deterministic_given_seed(self, pooler_cls):
        g = _connected_er(10, 0.4, 6)
        a = pooler_cls(seed=3).pool(g, 6)
        b = pooler_cls(seed=3).pool(g, 6)
        assert set(a.edges()) == set(b.edges())

    def test_topk_subgraph_edges_from_original(self):
        g = _connected_er(10, 0.4, 7)
        pooler = TopKPooling(seed=0)
        scores = pooler.scores(g)
        nodes = sorted(g.nodes())
        keep = {nodes[i] for i in np.argsort(-scores)[:6]}
        pooled = pooler.pool(g, 6)
        assert pooled.number_of_edges() == g.subgraph(keep).number_of_edges()

    def test_asa_can_densify(self):
        """ASA's cluster connectivity usually yields denser pooled graphs
        than the induced subgraph -- its characteristic failure mode."""
        g = _connected_er(10, 0.35, 8)
        asa_edges = ASAPooling(seed=0).pool(g, 6).number_of_edges()
        topk_edges = TopKPooling(seed=0).pool(g, 6).number_of_edges()
        assert asa_edges >= topk_edges

    def test_pool_ratio(self):
        g = _connected_er(10, 0.4, 9)
        pooled = TopKPooling(seed=0).pool_ratio(g, 0.5)
        assert pooled.number_of_nodes() == 5

    def test_pool_ratio_validation(self):
        g = _connected_er(8, 0.4, 10)
        with pytest.raises(ValueError):
            TopKPooling(seed=0).pool_ratio(g, 0.0)


class TestFactory:
    @pytest.mark.parametrize("name,cls", [("topk", TopKPooling), ("sag", SAGPooling), ("asa", ASAPooling)])
    def test_lookup(self, name, cls):
        assert isinstance(get_pooler(name), cls)

    def test_case_insensitive(self):
        assert isinstance(get_pooler("TopK"), TopKPooling)

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_pooler("gnn")
