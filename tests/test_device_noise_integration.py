"""Integration: device noise models produce physically ordered results.

Runs identical circuits under every backend's noise model and checks that
output quality tracks the published calibration ordering -- the property
the Fig. 24 sweep depends on.
"""

import networkx as nx
import numpy as np
import pytest

from repro.quantum import (
    DensityMatrixSimulator,
    DeviceExecutor,
    QuantumCircuit,
    get_backend,
    list_backends,
)


def _ghz(n: int) -> QuantumCircuit:
    qc = QuantumCircuit(n)
    qc.h(0)
    for q in range(n - 1):
        qc.cx(q, q + 1)
    return qc


def _ghz_fidelity(device: str, n: int = 4) -> float:
    """Probability mass on the two GHZ outcomes under device noise."""
    backend = get_backend(device)
    model = backend.build_noise_model()
    probs = DensityMatrixSimulator().probabilities(_ghz(n), model)
    return float(probs[0] + probs[-1])


class TestGhzFidelityOrdering:
    def test_all_backends_degrade_ghz(self):
        ideal = 1.0
        for device in list_backends():
            fidelity = _ghz_fidelity(device)
            assert 0.3 < fidelity < ideal, device

    def test_kolkata_beats_retired_devices(self):
        kolkata = _ghz_fidelity("kolkata")
        assert kolkata > _ghz_fidelity("toronto")
        assert kolkata > _ghz_fidelity("melbourne")

    def test_ibm_beats_rigetti(self):
        # Rigetti Aspen error rates are substantially higher.
        assert _ghz_fidelity("kolkata") > _ghz_fidelity("aspen_m3")

    def test_fidelity_decreases_with_circuit_size(self):
        backend = get_backend("toronto")
        model = backend.build_noise_model()
        fidelities = []
        for n in (2, 4, 6):
            probs = DensityMatrixSimulator().probabilities(_ghz(n), model)
            fidelities.append(float(probs[0] + probs[-1]))
        assert fidelities[0] > fidelities[1] > fidelities[2]


class TestExecutorAcrossDevices:
    @pytest.mark.parametrize("device", ["kolkata", "guadalupe", "aspen_m3"])
    def test_qaoa_execution_on_every_topology(self, device):
        """The full pipeline (route + decompose + noisy sim) runs on IBM
        heavy-hex and Rigetti octagonal topologies alike."""
        graph = nx.cycle_graph(4)
        executor = DeviceExecutor(get_backend(device), noisy=True, seed=0)
        value = executor.maxcut_expectation(graph, [1.1], [0.39])
        assert 0 < value < 4

    def test_noise_ordering_visible_through_executor(self):
        graph = nx.cycle_graph(4)
        gammas, betas = [1.1], [0.39]
        values = {}
        for device in ("kolkata", "melbourne"):
            executor = DeviceExecutor(get_backend(device), noisy=True, seed=0)
            values[device] = executor.maxcut_expectation(graph, gammas, betas)
        # Near the optimum (~3.7 for C4), the better device retains more.
        assert values["kolkata"] > values["melbourne"]
