"""Tests for repro.quantum.coupling."""

import networkx as nx
import pytest

from repro.quantum.coupling import (
    FALCON_27_EDGES,
    GUADALUPE_16_EDGES,
    MELBOURNE_14_EDGES,
    CouplingMap,
    aspen_octagonal_map,
    grid_map,
    heavy_hex_map,
    line_map,
    ring_map,
)


class TestCouplingMap:
    def test_basic_construction(self):
        cm = CouplingMap([(0, 1), (1, 2)])
        assert cm.num_qubits == 3
        assert cm.are_adjacent(0, 1)
        assert not cm.are_adjacent(0, 2)

    def test_neighbors_sorted(self):
        cm = CouplingMap([(1, 0), (1, 3), (1, 2)])
        assert cm.neighbors(1) == [0, 2, 3]

    def test_distance(self):
        cm = line_map(5)
        assert cm.distance(0, 4) == 4
        assert cm.distance(2, 2) == 0

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            CouplingMap([(0, 1), (2, 3)], 4)

    def test_edges_exceeding_qubits_rejected(self):
        with pytest.raises(ValueError):
            CouplingMap([(0, 5)], 3)

    def test_distance_matrix_symmetric(self):
        cm = grid_map(3, 3)
        d = cm.distance_matrix
        assert (d == d.T).all()


class TestGenerators:
    def test_line(self):
        cm = line_map(7)
        assert cm.num_qubits == 7
        assert len(cm.edges) == 6

    def test_ring(self):
        cm = ring_map(6)
        assert len(cm.edges) == 6
        assert cm.distance(0, 3) == 3

    def test_ring_minimum_size(self):
        with pytest.raises(ValueError):
            ring_map(2)

    def test_grid(self):
        cm = grid_map(3, 4)
        assert cm.num_qubits == 12
        assert len(cm.edges) == 3 * 3 + 2 * 4

    @pytest.mark.parametrize("n", [27, 33, 65, 127])
    def test_heavy_hex_exact_size(self, n):
        cm = heavy_hex_map(n)
        assert cm.num_qubits == n
        assert nx.is_connected(cm.graph)

    def test_heavy_hex_low_degree(self):
        cm = heavy_hex_map(65)
        max_degree = max(dict(cm.graph.degree()).values())
        assert max_degree <= 4  # heavy-hex keeps connectivity sparse

    def test_aspen_size_and_connectivity(self):
        cm = aspen_octagonal_map(79)
        assert cm.num_qubits == 79
        assert nx.is_connected(cm.graph)

    def test_aspen_oversized_request_rejected(self):
        with pytest.raises(ValueError):
            aspen_octagonal_map(1000, octagon_cols=2, octagon_rows=1)


class TestHardcodedDeviceMaps:
    def test_falcon_27(self):
        cm = CouplingMap(FALCON_27_EDGES, 27)
        assert cm.num_qubits == 27
        assert nx.is_connected(cm.graph)
        assert max(dict(cm.graph.degree()).values()) <= 3

    def test_guadalupe_16(self):
        cm = CouplingMap(GUADALUPE_16_EDGES, 16)
        assert cm.num_qubits == 16
        assert nx.is_connected(cm.graph)

    def test_melbourne_14(self):
        cm = CouplingMap(MELBOURNE_14_EDGES, 14)
        assert cm.num_qubits == 14
        assert nx.is_connected(cm.graph)
