"""Tests for repro.qaoa.analytic: the closed-form p=1 engine."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qaoa.analytic import maxcut_p1_edge_expectation, maxcut_p1_expectation
from repro.qaoa.fast_sim import qaoa_expectation_fast
from repro.qaoa.hamiltonian import MaxCutHamiltonian


def _connected_er(n, p, seed):
    offset = 0
    while True:
        g = nx.erdos_renyi_graph(n, p, seed=seed + offset)
        if g.number_of_edges() and nx.is_connected(g):
            return g
        offset += 100


class TestEdgeFormula:
    def test_zero_parameters(self):
        assert maxcut_p1_edge_expectation(0.0, 0.0, 2, 2, 0) == pytest.approx(0.5)

    def test_isolated_edge_peak(self):
        # Lone edge (degrees 1,1, no triangles): optimum gamma=pi/2... the
        # known maximum expectation for a single edge at p=1 is 1.
        values = [
            maxcut_p1_edge_expectation(g, b, 1, 1, 0)
            for g in np.linspace(0, 2 * np.pi, 60)
            for b in np.linspace(0, np.pi, 30)
        ]
        assert max(values) == pytest.approx(1.0, abs=1e-3)

    def test_degree_validation(self):
        with pytest.raises(ValueError):
            maxcut_p1_edge_expectation(0.1, 0.1, 0, 1, 0)
        with pytest.raises(ValueError):
            maxcut_p1_edge_expectation(0.1, 0.1, 1, 1, -1)


class TestGraphFormula:
    @pytest.mark.parametrize("graph_builder", [
        lambda: nx.path_graph(5),
        lambda: nx.cycle_graph(6),
        lambda: nx.complete_graph(5),
        lambda: nx.star_graph(5),
        lambda: nx.random_regular_graph(3, 8, seed=0),
    ])
    def test_matches_exact_engine_on_structured_graphs(self, graph_builder):
        g = graph_builder()
        ham = MaxCutHamiltonian(g)
        rng = np.random.default_rng(0)
        for _ in range(3):
            gamma = float(rng.uniform(0, 2 * np.pi))
            beta = float(rng.uniform(0, np.pi))
            exact = qaoa_expectation_fast(ham, [gamma], [beta])
            analytic = maxcut_p1_expectation(g, gamma, beta)
            assert analytic == pytest.approx(exact, abs=1e-9)

    def test_large_graph_runs_fast(self):
        g = _connected_er(200, 0.03, 1)
        value = maxcut_p1_expectation(g, 0.7, 0.4)
        assert 0 <= value <= g.number_of_edges()

    def test_triangle_counting_matters(self):
        """A triangle graph and a path with the same degrees must differ."""
        triangle = nx.cycle_graph(3)
        value_t = maxcut_p1_expectation(triangle, 0.9, 0.5)
        exact_t = qaoa_expectation_fast(MaxCutHamiltonian(triangle), [0.9], [0.5])
        assert value_t == pytest.approx(exact_t, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    gamma=st.floats(min_value=0.0, max_value=2 * np.pi),
    beta=st.floats(min_value=0.0, max_value=np.pi),
)
def test_property_analytic_equals_statevector(seed, gamma, beta):
    """The closed form agrees with exact simulation on random graphs."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(3, 9))
    g = _connected_er(n, 0.5, seed)
    exact = qaoa_expectation_fast(MaxCutHamiltonian(g), [gamma], [beta])
    analytic = maxcut_p1_expectation(g, gamma, beta)
    assert analytic == pytest.approx(exact, abs=1e-8)
