"""Tests for repro.utils.graphs."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.graphs import (
    average_node_degree,
    connected_random_subgraph,
    edge_list,
    ensure_graph,
    is_connected_subset,
    neighbor_swap,
    nonisomorphic_connected_subgraphs,
    relabel_to_range,
)


class TestEnsureGraph:
    def test_accepts_simple_graph(self):
        g = nx.path_graph(3)
        assert ensure_graph(g) is g

    def test_rejects_directed(self):
        with pytest.raises(TypeError):
            ensure_graph(nx.DiGraph([(0, 1)]))

    def test_rejects_multigraph(self):
        with pytest.raises(TypeError):
            ensure_graph(nx.MultiGraph([(0, 1)]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ensure_graph(nx.Graph())

    def test_rejects_non_graph(self):
        with pytest.raises(TypeError):
            ensure_graph([(0, 1)])


class TestAverageNodeDegree:
    def test_cycle_graph_is_two(self):
        assert average_node_degree(nx.cycle_graph(7)) == 2.0

    def test_complete_graph(self):
        assert average_node_degree(nx.complete_graph(5)) == 4.0

    def test_star_graph(self):
        # K_{1,4}: degrees 4,1,1,1,1 -> AND = 8/5.
        assert average_node_degree(nx.star_graph(4)) == pytest.approx(1.6)

    def test_single_node(self):
        g = nx.Graph()
        g.add_node(0)
        assert average_node_degree(g) == 0.0

    def test_matches_sum_of_degrees(self):
        g = nx.erdos_renyi_graph(10, 0.4, seed=2)
        expected = sum(d for _, d in g.degree()) / g.number_of_nodes()
        assert average_node_degree(g) == pytest.approx(expected)


class TestEdgeList:
    def test_sorted_tuples(self):
        g = nx.Graph([(3, 1), (2, 0)])
        assert sorted(edge_list(g)) == [(0, 2), (1, 3)]

    def test_count_matches(self):
        g = nx.erdos_renyi_graph(9, 0.5, seed=1)
        assert len(edge_list(g)) == g.number_of_edges()


class TestRelabelToRange:
    def test_string_labels(self):
        g = nx.Graph([("b", "a"), ("a", "c")])
        r = relabel_to_range(g)
        assert set(r.nodes()) == {0, 1, 2}
        assert r.number_of_edges() == 2

    def test_preserves_structure(self):
        g = nx.Graph([(10, 20), (20, 30), (30, 10)])
        r = relabel_to_range(g)
        assert nx.is_isomorphic(g, r)

    def test_deterministic(self):
        g = nx.Graph([(5, 2), (2, 9)])
        assert edge_list(relabel_to_range(g)) == edge_list(relabel_to_range(g))

    def test_already_ranged_is_identity_mapping(self):
        g = nx.path_graph(4)
        assert edge_list(relabel_to_range(g)) == edge_list(g)


class TestIsConnectedSubset:
    def test_connected(self):
        g = nx.path_graph(5)
        assert is_connected_subset(g, {1, 2, 3})

    def test_disconnected(self):
        g = nx.path_graph(5)
        assert not is_connected_subset(g, {0, 4})

    def test_empty_is_false(self):
        assert not is_connected_subset(nx.path_graph(3), set())

    def test_unknown_node_raises(self):
        with pytest.raises(ValueError):
            is_connected_subset(nx.path_graph(3), {0, 99})


class TestConnectedRandomSubgraph:
    @pytest.mark.parametrize("size", [1, 3, 5, 8])
    def test_size_and_connectivity(self, size):
        g = nx.erdos_renyi_graph(8, 0.5, seed=3)
        assert nx.is_connected(g)
        nodes = connected_random_subgraph(g, size, seed=0)
        assert len(nodes) == size
        assert nx.is_connected(g.subgraph(nodes))

    def test_full_size_returns_everything(self):
        g = nx.cycle_graph(6)
        assert connected_random_subgraph(g, 6, seed=0) == set(range(6))

    def test_size_out_of_range(self):
        g = nx.path_graph(4)
        with pytest.raises(ValueError):
            connected_random_subgraph(g, 0)
        with pytest.raises(ValueError):
            connected_random_subgraph(g, 5)

    def test_too_small_component_raises(self):
        g = nx.Graph([(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            connected_random_subgraph(g, 3, seed=0)

    def test_seed_reproducibility(self):
        g = nx.erdos_renyi_graph(10, 0.4, seed=7)
        a = connected_random_subgraph(g, 5, seed=42)
        b = connected_random_subgraph(g, 5, seed=42)
        assert a == b


class TestNeighborSwap:
    def test_preserves_size(self):
        g = nx.erdos_renyi_graph(10, 0.5, seed=1)
        nodes = connected_random_subgraph(g, 5, seed=0)
        swapped = neighbor_swap(g, nodes, seed=0)
        assert len(swapped) == 5

    def test_preserves_connectivity(self):
        g = nx.erdos_renyi_graph(10, 0.5, seed=1)
        nodes = connected_random_subgraph(g, 5, seed=0)
        for seed in range(10):
            nodes = neighbor_swap(g, nodes, seed=seed)
            assert nx.is_connected(g.subgraph(nodes))

    def test_changes_at_most_one_node(self):
        g = nx.erdos_renyi_graph(10, 0.5, seed=1)
        nodes = connected_random_subgraph(g, 5, seed=0)
        swapped = neighbor_swap(g, nodes, seed=3)
        assert len(nodes - swapped) <= 1
        assert len(swapped - nodes) <= 1

    def test_whole_graph_is_fixed_point(self):
        g = nx.cycle_graph(5)
        nodes = set(range(5))
        assert neighbor_swap(g, nodes, seed=0) == nodes

    def test_does_not_mutate_input(self):
        g = nx.erdos_renyi_graph(8, 0.5, seed=2)
        nodes = connected_random_subgraph(g, 4, seed=0)
        snapshot = set(nodes)
        neighbor_swap(g, nodes, seed=1)
        assert nodes == snapshot


class TestNonisomorphicSubgraphs:
    def test_path_graph_subpaths(self):
        # All connected 3-node subgraphs of P5 are paths: one iso class.
        result = nonisomorphic_connected_subgraphs(nx.path_graph(5), 3)
        assert len(result) == 1

    def test_cycle_plus_chord(self):
        g = nx.cycle_graph(4)
        g.add_edge(0, 2)
        result = nonisomorphic_connected_subgraphs(g, 3)
        # Triangles and paths of length 2 both occur.
        assert len(result) == 2

    def test_max_count_caps_enumeration(self):
        g = nx.erdos_renyi_graph(9, 0.6, seed=4)
        result = nonisomorphic_connected_subgraphs(g, 5, max_count=3)
        assert len(result) <= 3

    def test_all_results_connected_and_right_size(self):
        g = nx.erdos_renyi_graph(8, 0.4, seed=9)
        for sub in nonisomorphic_connected_subgraphs(g, 4):
            assert sub.number_of_nodes() == 4
            assert nx.is_connected(sub)

    def test_pairwise_nonisomorphic(self):
        g = nx.erdos_renyi_graph(8, 0.5, seed=8)
        subs = nonisomorphic_connected_subgraphs(g, 4)
        for i in range(len(subs)):
            for j in range(i + 1, len(subs)):
                assert not nx.is_isomorphic(subs[i], subs[j])


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=4, max_value=12),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_property_subgraph_sampling_always_connected(n, seed):
    """Any connected graph, any feasible size: sample stays connected."""
    rng = np.random.default_rng(seed)
    graph = nx.erdos_renyi_graph(n, 0.5, seed=int(rng.integers(10**6)))
    if not (graph.number_of_edges() and nx.is_connected(graph)):
        graph = nx.cycle_graph(n)
    size = int(rng.integers(1, n + 1))
    nodes = connected_random_subgraph(graph, size, seed=rng)
    assert len(nodes) == size
    assert nx.is_connected(graph.subgraph(nodes))


class TestAverageNodeStrength:
    def test_unit_weights_equal_degree(self):
        from repro.utils.graphs import average_node_strength

        g = nx.erdos_renyi_graph(9, 0.4, seed=1)
        assert average_node_strength(g) == average_node_degree(g)

    def test_weighted_value(self):
        from repro.utils.graphs import average_node_strength

        g = nx.Graph()
        g.add_edge(0, 1, weight=2.0)
        g.add_edge(1, 2, weight=0.5)
        assert average_node_strength(g) == pytest.approx(2 * 2.5 / 3)

    def test_negative_weights_use_magnitude(self):
        """Spin-glass couplings count by |w|: signed sums would cancel."""
        from repro.utils.graphs import average_node_strength

        g = nx.Graph()
        g.add_edge(0, 1, weight=-1.0)
        g.add_edge(1, 2, weight=1.0)
        assert average_node_strength(g) == pytest.approx(2 * 2.0 / 3)
