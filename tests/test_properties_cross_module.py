"""Cross-module property-based tests (hypothesis).

These pin down invariants that hold across the stack rather than within
one module: landscape metrics, reduction/QAOA interplay, noise-model
consistency between the two noisy simulators, and dataset guarantees.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reduction import GraphReducer
from repro.datasets import aids_like_graph, imdb_like_graph, linux_like_graph
from repro.qaoa.fast_sim import FastNoiseSpec, noisy_qaoa_probabilities
from repro.qaoa.hamiltonian import MaxCutHamiltonian
from repro.qaoa.landscape import landscape_mse, normalize_landscape
from repro.quantum.backends import get_backend
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density_matrix import DensityMatrixSimulator
from repro.quantum.trajectories import TrajectorySimulator


def _connected_er(n, p, seed):
    offset = 0
    while True:
        g = nx.erdos_renyi_graph(n, p, seed=seed + offset)
        if g.number_of_edges() and nx.is_connected(g):
            return g
        offset += 100


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_property_normalize_idempotent(seed):
    values = np.random.default_rng(seed).normal(size=(6, 6))
    once = normalize_landscape(values)
    twice = normalize_landscape(once)
    assert np.allclose(once, twice)
    assert 0.0 <= once.min() and once.max() <= 1.0


@settings(max_examples=30, deadline=None)
@given(
    seed_a=st.integers(min_value=0, max_value=10**6),
    seed_b=st.integers(min_value=0, max_value=10**6),
)
def test_property_mse_symmetric_and_bounded(seed_a, seed_b):
    a = np.random.default_rng(seed_a).random((5, 5))
    b = np.random.default_rng(seed_b).random((5, 5))
    forward = landscape_mse(a, b)
    backward = landscape_mse(b, a)
    assert forward == pytest.approx(backward)
    assert 0.0 <= forward <= 1.0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**5))
def test_property_reduction_preserves_qaoa_bounds(seed):
    """The distilled graph's QAOA values stay within its own cut bounds and
    its AND stays within the original's range."""
    graph = _connected_er(8 + seed % 4, 0.45, seed)
    reduction = GraphReducer(seed=seed).reduce(graph)
    reduced = reduction.reduced_graph
    ham = MaxCutHamiltonian(reduced)
    rng = np.random.default_rng(seed)
    from repro.qaoa.fast_sim import qaoa_expectation_fast

    value = qaoa_expectation_fast(
        ham, [float(rng.uniform(0, 2 * np.pi))], [float(rng.uniform(0, np.pi))]
    )
    assert -1e-9 <= value <= reduced.number_of_edges() + 1e-9
    assert reduction.and_ratio <= 1.0 + 1e-9


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**5))
def test_property_noisy_probs_form_distribution(seed):
    graph = _connected_er(6, 0.5, seed)
    ham = MaxCutHamiltonian(graph)
    backend = get_backend("toronto")
    noise = FastNoiseSpec.for_graph(backend, graph)
    rng = np.random.default_rng(seed)
    probs = noisy_qaoa_probabilities(
        ham,
        [float(rng.uniform(0, 2 * np.pi))],
        [float(rng.uniform(0, np.pi))],
        noise,
        trajectories=3,
        seed=seed,
    )
    assert probs.sum() == pytest.approx(1.0)
    assert (probs >= -1e-12).all()


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**5))
def test_property_dataset_generators_connected(seed):
    rng = np.random.default_rng(seed)
    n_sparse = int(rng.integers(3, 11))
    n_dense = int(rng.integers(3, 15))
    for graph in (
        aids_like_graph(n_sparse, seed=seed),
        linux_like_graph(n_sparse, seed=seed),
        imdb_like_graph(n_dense, seed=seed),
    ):
        assert nx.is_connected(graph)
        assert nx.number_of_selfloops(graph) == 0


class TestSimulatorConsistencyOnBackendModels:
    """The DM and trajectory simulators agree on a backend noise model
    (which is a pure Pauli + readout model, so the twirl is exact)."""

    @pytest.mark.parametrize("device", ["kolkata", "melbourne"])
    def test_dm_vs_trajectories(self, device):
        backend = get_backend(device)
        model = backend.build_noise_model()
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.cx(1, 2)
        qc.rx(0.7, 2)
        exact = DensityMatrixSimulator().probabilities(qc, model)
        approx = TrajectorySimulator(trajectories=4000).probabilities(qc, model, seed=0)
        assert np.abs(exact - approx).max() < 0.02
