"""Tests for repro.core.reduction (GraphReducer)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reduction import GraphReducer
from repro.utils.graphs import average_node_degree


def _connected_er(n, p, seed):
    offset = 0
    while True:
        g = nx.erdos_renyi_graph(n, p, seed=seed + offset)
        if g.number_of_edges() and nx.is_connected(g):
            return g
        offset += 100


class TestReduce:
    def test_result_structure(self):
        g = _connected_er(12, 0.4, 0)
        result = GraphReducer(seed=0).reduce(g)
        assert result.nodes <= set(g.nodes())
        assert result.reduced_graph.number_of_nodes() == len(result.nodes)
        assert set(result.reduced_graph.nodes()) == set(range(len(result.nodes)))

    def test_reduction_happens(self):
        g = _connected_er(14, 0.4, 1)
        result = GraphReducer(seed=1).reduce(g)
        assert result.node_reduction > 0

    def test_and_ratio_threshold_met(self):
        for seed in range(4):
            g = _connected_er(12, 0.45, seed)
            reducer = GraphReducer(and_ratio_threshold=0.7, seed=seed)
            result = reducer.reduce(g)
            assert result.and_ratio >= 0.7 - 1e-9

    def test_min_keep_fraction_respected(self):
        g = _connected_er(15, 0.4, 2)
        result = GraphReducer(min_keep_fraction=0.8, seed=2).reduce(g)
        assert len(result.nodes) >= int(np.ceil(0.8 * 15))

    def test_stricter_threshold_keeps_more_nodes(self):
        g = _connected_er(14, 0.45, 3)
        loose = GraphReducer(and_ratio_threshold=0.6, min_keep_fraction=0.3, seed=3).reduce(g)
        strict = GraphReducer(and_ratio_threshold=0.95, min_keep_fraction=0.3, seed=3).reduce(g)
        assert len(strict.nodes) >= len(loose.nodes)

    def test_target_size_bypasses_search(self):
        g = _connected_er(12, 0.4, 4)
        result = GraphReducer(seed=4).reduce(g, target_size=8)
        assert len(result.nodes) == 8

    def test_node_mapping_consistent(self):
        g = _connected_er(10, 0.5, 5)
        result = GraphReducer(seed=5).reduce(g)
        for original, new in result.node_mapping.items():
            assert original in result.nodes
            assert 0 <= new < len(result.nodes)
        # Mapping must be a bijection.
        assert len(set(result.node_mapping.values())) == len(result.nodes)

    def test_edge_reduction_property(self):
        g = _connected_er(12, 0.45, 6)
        result = GraphReducer(seed=6).reduce(g)
        expected = 1 - result.reduced_graph.number_of_edges() / g.number_of_edges()
        assert result.edge_reduction == pytest.approx(expected)

    def test_edge_reduction_at_least_node_reduction_dense(self):
        """Removing nodes from a dense graph removes at least as many edges
        proportionally (each removed node had >= average degree chance)."""
        g = nx.complete_graph(10)
        result = GraphReducer(seed=7).reduce(g)
        assert result.edge_reduction >= result.node_reduction - 1e-9


class TestValidation:
    def test_threshold_bounds(self):
        with pytest.raises(ValueError):
            GraphReducer(and_ratio_threshold=0.0)
        with pytest.raises(ValueError):
            GraphReducer(and_ratio_threshold=1.5)

    def test_min_nodes_bound(self):
        with pytest.raises(ValueError):
            GraphReducer(min_nodes=1)

    def test_min_keep_fraction_bounds(self):
        with pytest.raises(ValueError):
            GraphReducer(min_keep_fraction=0.0)

    def test_retries_bound(self):
        with pytest.raises(ValueError):
            GraphReducer(retries=0)

    def test_edgeless_graph_rejected(self):
        g = nx.Graph()
        g.add_nodes_from(range(3))
        with pytest.raises(ValueError):
            GraphReducer(seed=0).reduce(g)

    def test_target_size_out_of_range(self):
        g = _connected_er(8, 0.5, 8)
        with pytest.raises(ValueError):
            GraphReducer(seed=0).reduce(g, target_size=2)
        with pytest.raises(ValueError):
            GraphReducer(seed=0).reduce(g, target_size=9)

    def test_tiny_graph_falls_back_to_whole(self):
        g = nx.path_graph(3)
        result = GraphReducer(seed=0).reduce(g)
        assert len(result.nodes) == 3
        assert result.node_reduction == 0.0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10**5))
def test_property_reducer_invariants(seed):
    """Reduced graph is connected, smaller or equal, within AND threshold."""
    g = _connected_er(8 + seed % 6, 0.45, seed)
    reducer = GraphReducer(seed=seed)
    result = reducer.reduce(g)
    assert nx.is_connected(result.reduced_graph)
    assert result.reduced_graph.number_of_nodes() <= g.number_of_nodes()
    assert result.and_ratio >= reducer.and_ratio_threshold - 1e-9
    # AND ratio definition check.
    ratio = average_node_degree(result.reduced_graph) / average_node_degree(g)
    ratio = ratio if ratio <= 1 else 1 / ratio
    assert result.and_ratio == pytest.approx(ratio)


class TestWeightedReduction:
    def _weighted_er(self, n, p, seed):
        from repro.datasets import attach_weights

        offset = 0
        while True:
            g = nx.erdos_renyi_graph(n, p, seed=seed + offset)
            if g.number_of_edges() and nx.is_connected(g):
                return attach_weights(g, "uniform", low=0.2, high=3.0, seed=seed)
            offset += 100

    def test_weighted_reduction_preserves_strength_ratio(self):
        from repro.utils.graphs import average_node_strength

        g = self._weighted_er(14, 0.4, 0)
        result = GraphReducer(seed=0).reduce(g)
        expected = average_node_strength(result.reduced_graph) / average_node_strength(g)
        expected = expected if expected <= 1.0 else 1.0 / expected
        assert result.and_ratio == pytest.approx(expected)
        assert result.and_ratio >= 0.7
        # Edge data survives the reduction and relabeling.
        assert all("weight" in d for _, _, d in result.reduced_graph.edges(data=True))

    def test_unit_weights_reduce_identically(self):
        """Explicit 1.0 weights must not change the reducer's decisions."""
        g = nx.erdos_renyi_graph(12, 0.45, seed=3)
        if not nx.is_connected(g):
            g = nx.erdos_renyi_graph(12, 0.45, seed=103)
        h = nx.Graph(g)
        for u, v in h.edges():
            h[u][v]["weight"] = 1.0
        a = GraphReducer(seed=5).reduce(g)
        b = GraphReducer(seed=5).reduce(h)
        assert a.nodes == b.nodes
        assert a.and_ratio == b.and_ratio
