"""Tests for repro.obs.metrics: registry, snapshots, merge, exposition."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    JOB_BUCKETS,
    KERNEL_BUCKETS,
    STAGE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
    quantile_from_buckets,
    snapshot_delta,
)


class TestInstruments:
    def test_counter_increments_and_refuses_decrease(self):
        counter = Counter("events_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("depth")
        gauge.set(7)
        gauge.inc()
        gauge.dec(3)
        assert gauge.value == 5.0

    def test_histogram_bucket_placement(self):
        histogram = Histogram("latency", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.1, 0.5, 5.0, 100.0):
            histogram.observe(value)
        # bisect_left: an observation equal to a bound lands in that bucket
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(105.65)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(1.0, 0.5))
        with pytest.raises(ValueError):
            Histogram("bad", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("bad", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_handle(self):
        registry = MetricsRegistry()
        assert registry.counter("a_total") is registry.counter("a_total")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")
        assert registry.names() == ["a_total", "b", "c"]
        assert registry.get("a_total").kind == "counter"
        assert registry.get("missing") is None

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_reset_zeroes_but_keeps_registrations(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(4)
        registry.gauge("b").set(2)
        registry.histogram("c", buckets=(1.0,)).observe(0.5)
        registry.reset()
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a": 0.0}
        assert snapshot["gauges"] == {"b": 0.0}
        assert snapshot["histograms"]["c"]["count"] == 0
        assert snapshot["histograms"]["c"]["counts"] == [0, 0]
        assert registry.names() == ["a", "b", "c"]

    def test_default_registry_is_module_singleton(self):
        assert get_registry() is REGISTRY


class TestSnapshotsAndMerge:
    def _loaded(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("jobs_total").inc(3)
        registry.gauge("depth").set(5)
        histogram = registry.histogram("seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        return registry

    def test_snapshot_is_json_safe_and_detached(self):
        import json

        registry = self._loaded()
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # plain data only
        registry.counter("jobs_total").inc()
        assert snapshot["counters"]["jobs_total"] == 3.0  # no aliasing

    def test_merge_accumulates_counters_and_histograms(self):
        source = self._loaded()
        target = self._loaded()
        target.merge(source.snapshot())
        snapshot = target.snapshot()
        assert snapshot["counters"]["jobs_total"] == 6.0
        assert snapshot["gauges"]["depth"] == 5.0  # gauges take, not add
        assert snapshot["histograms"]["seconds"]["count"] == 4
        assert snapshot["histograms"]["seconds"]["counts"] == [2, 2, 0]
        assert snapshot["histograms"]["seconds"]["sum"] == pytest.approx(1.1)

    def test_merge_registers_unknown_metrics(self):
        target = MetricsRegistry()
        target.merge(self._loaded().snapshot())
        assert target.names() == ["depth", "jobs_total", "seconds"]
        assert target.snapshot() == self._loaded().snapshot()

    def test_merge_drops_incompatible_histogram_shapes(self):
        target = MetricsRegistry()
        target.histogram("seconds", buckets=(5.0, 50.0)).observe(1.0)
        target.merge(self._loaded().snapshot())
        histogram = target.get("seconds")
        assert tuple(histogram.buckets) == (5.0, 50.0)
        assert histogram.count == 1  # the incompatible payload was dropped

    def test_snapshot_delta_subtracts_and_omits_unchanged(self):
        registry = self._loaded()
        before = registry.snapshot()
        registry.counter("jobs_total").inc(2)
        registry.counter("untouched_total")
        registry.gauge("depth").set(9)
        registry.histogram("seconds", buckets=(0.1, 1.0)).observe(10.0)
        delta = snapshot_delta(registry.snapshot(), before)
        assert delta["counters"] == {"jobs_total": 2.0}  # zero-change omitted
        assert delta["gauges"]["depth"] == 9.0  # gauges pass through
        assert delta["histograms"]["seconds"]["counts"] == [0, 0, 1]
        assert delta["histograms"]["seconds"]["count"] == 1

    def test_delta_with_metric_only_in_current(self):
        # a worker registers a counter mid-shard: previous knows nothing
        # about it, so the whole value is new and must ship in the delta
        registry = self._loaded()
        before = registry.snapshot()
        registry.counter("late_total").inc(7)
        registry.histogram("late_seconds", buckets=(0.1, 1.0)).observe(0.5)
        delta = snapshot_delta(registry.snapshot(), before)
        assert delta["counters"]["late_total"] == 7.0
        assert delta["histograms"]["late_seconds"]["count"] == 1
        assert delta["histograms"]["late_seconds"]["counts"] == [0, 1, 0]

    def test_delta_with_metric_only_in_previous(self):
        # the mirror case: a metric the current snapshot no longer carries
        # (a reset registry) contributes nothing rather than a negative
        before = self._loaded().snapshot()
        delta = snapshot_delta(
            {"counters": {}, "gauges": {}, "histograms": {}}, before
        )
        assert delta["counters"] == {}
        assert delta["gauges"] == {}
        assert delta["histograms"] == {}

    def test_merge_tolerates_one_sided_and_partial_snapshots(self):
        target = self._loaded()
        baseline = target.snapshot()
        target.merge({})  # no sections at all
        assert target.snapshot() == baseline
        target.merge({"counters": {"other_total": 4.0}})  # counters only
        snapshot = target.snapshot()
        assert snapshot["counters"]["other_total"] == 4.0
        assert snapshot["counters"]["jobs_total"] == baseline["counters"]["jobs_total"]
        assert snapshot["histograms"] == baseline["histograms"]

    def test_delta_then_merge_round_trips(self):
        # the worker->pump shipping contract: merging a delta never
        # double-counts what the previous shard already shipped
        worker = self._loaded()
        daemon = MetricsRegistry()
        baseline = {"counters": {}, "gauges": {}, "histograms": {}}
        for _ in range(3):  # three shards on one long-lived worker
            worker.counter("jobs_total").inc()
            current = worker.snapshot()
            daemon.merge(snapshot_delta(current, baseline))
            baseline = current
        assert daemon.snapshot()["counters"] == worker.snapshot()["counters"]


class TestPrometheusExposition:
    def test_render_counters_gauges_help_and_type(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", "completed jobs").inc(3)
        registry.gauge("depth").set(2.5)
        text = registry.render_prometheus()
        assert "# HELP jobs_total completed jobs" in text
        assert "# TYPE jobs_total counter" in text
        assert "\njobs_total 3\n" in text  # integral floats print as ints
        assert "# TYPE depth gauge" in text
        assert "depth 2.5" in text
        assert text.endswith("\n")

    def test_render_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.7, 9.0):
            histogram.observe(value)
        text = registry.render_prometheus()
        assert 'seconds_bucket{le="0.1"} 1' in text
        assert 'seconds_bucket{le="1"} 3' in text
        assert 'seconds_bucket{le="+Inf"} 4' in text
        assert "seconds_count 4" in text

    def test_default_buckets_are_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestBucketPresets:
    """Per-metric bucket overrides sized to each metric's dynamic range."""

    def test_presets_are_strictly_ascending(self):
        for preset in (KERNEL_BUCKETS, STAGE_BUCKETS, JOB_BUCKETS):
            assert list(preset) == sorted(set(preset))

    def test_kernel_preset_resolves_sub_millisecond_work(self):
        # the default buckets dump all sub-ms observations into one slot;
        # the kernel preset keeps several bounds below 1ms so quantiles
        # of fast kernel calls are not step functions
        assert sum(1 for b in KERNEL_BUCKETS if b < 0.001) >= 4
        assert sum(1 for b in DEFAULT_BUCKETS if b < 0.001) == 0
        histogram = Histogram("k", buckets=KERNEL_BUCKETS)
        for value in (2e-5, 8e-5, 3e-4):
            histogram.observe(value)
        p50 = quantile_from_buckets(histogram.buckets, histogram.counts, 0.5)
        assert p50 is not None and p50 < 0.001

    def test_job_preset_reaches_minute_scale(self):
        assert max(JOB_BUCKETS) >= 600.0

    def test_wired_histograms_use_their_presets(self):
        job = REGISTRY.get("redqaoa_job_seconds")
        wait = REGISTRY.get("redqaoa_queue_wait_seconds")
        assert tuple(job.buckets) == JOB_BUCKETS
        assert tuple(wait.buckets) == STAGE_BUCKETS

    def test_first_registration_owns_the_buckets(self):
        # get-or-create: a later caller with different buckets gets the
        # existing instrument back (merge relies on this to detect and
        # drop incompatible shapes instead of corrupting counts)
        registry = MetricsRegistry()
        first = registry.histogram("seconds", buckets=STAGE_BUCKETS)
        second = registry.histogram("seconds", buckets=JOB_BUCKETS)
        assert second is first
        assert tuple(second.buckets) == STAGE_BUCKETS


class TestWiredCounters:
    """The satellite contract: store/cache traffic flows through REGISTRY."""

    def test_store_get_routes_hits_and_misses_through_registry(self, tmp_path):
        from repro.service.store import ResultStore

        hits = REGISTRY.counter("redqaoa_store_hits_total")
        misses = REGISTRY.counter("redqaoa_store_misses_total")
        h0, m0 = hits.value, misses.value
        store = ResultStore(tmp_path / "store.jsonl")
        assert store.get("absent") is None
        assert (hits.value, misses.value) == (h0, m0 + 1)
        assert store.get("absent") is None
        assert (hits.value, misses.value) == (h0, m0 + 2)
        assert store.hits == 0 and store.misses == 2  # legacy view intact

    def test_batch_report_carries_store_misses(self, tmp_path):
        from repro.datasets import random_connected_gnp
        from repro.service.campaign import Campaign
        from repro.service.jobs import JobSpec

        specs = [
            JobSpec(graph=random_connected_gnp(8, 0.4, seed=seed), restarts=1, maxiter=4)
            for seed in range(2)
        ]
        campaign = Campaign(specs, store_path=tmp_path / "store.jsonl")
        report = campaign.run().to_dict()
        assert report["store_misses"] == 2
        assert report["store"]["misses"] >= 2
        assert report["store"]["hits"] == 0
        # second run over the same store is all hits
        again = Campaign(specs, store_path=tmp_path / "store.jsonl").run().to_dict()
        assert again["store_misses"] == 0
        assert again["store"]["hits"] == 2
