"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def triangle() -> nx.Graph:
    """The 3-cycle: smallest graph with a non-trivial MaxCut (value 2)."""
    return nx.cycle_graph(3)


@pytest.fixture
def square() -> nx.Graph:
    """The 4-cycle: bipartite, MaxCut cuts all 4 edges."""
    return nx.cycle_graph(4)


@pytest.fixture
def small_er_graph() -> nx.Graph:
    """A connected 8-node Erdős–Rényi graph used across modules."""
    graph = nx.erdos_renyi_graph(8, 0.45, seed=11)
    assert nx.is_connected(graph)
    return graph


@pytest.fixture
def medium_er_graph() -> nx.Graph:
    """A connected 12-node Erdős–Rényi graph."""
    graph = nx.erdos_renyi_graph(12, 0.35, seed=5)
    assert nx.is_connected(graph)
    return graph


def random_connected_graph(num_nodes: int, probability: float, seed: int) -> nx.Graph:
    """Deterministic connected G(n, p) helper for parametrized tests."""
    seed_offset = 0
    while True:
        graph = nx.erdos_renyi_graph(num_nodes, probability, seed=seed + seed_offset)
        if graph.number_of_edges() and nx.is_connected(graph):
            return graph
        seed_offset += 1000
