"""Tests for the ``red-qaoa top`` dashboard (repro.obs.top)."""

import contextlib
import threading

from repro.cli import main
from repro.obs.top import Top, render_frame
from repro.serve.client import ServeClient, ServeError, wait_for_socket
from repro.serve.daemon import ServeDaemon


def _sample(monotonic=100.0, counters=None, histograms=None, reasons=None,
            status="ok", events=None, shard_depths=None):
    return {
        "monotonic": monotonic,
        "status": {
            "ok": True,
            "version": "1.5.0",
            "pid": 4242,
            "uptime": 3723.0,
            "draining": False,
            "queue": {
                "depth": 5, "running": 2, "completed": 40, "dead": 1,
                "requeues": 3, "shard_depths": shard_depths or {"a": 3, "b": 2},
            },
            "workers": {
                "count": 2, "respawns": 1,
                "states": [
                    {"id": 0, "pid": 100, "alive": True, "claim": 9},
                    {"id": 1, "pid": 101, "alive": True, "claim": None},
                ],
            },
            "metrics": {
                "counters": counters or {},
                "histograms": histograms or {},
            },
        },
        "health": {
            "ok": True,
            "health": {"status": status, "checks": {}, "reasons": reasons or []},
            "events": events or [],
        },
    }


class TestRenderFrame:
    def test_header_carries_identity_and_verdict(self):
        frame = render_frame(_sample(), color=False)
        assert "v1.5.0" in frame and "pid 4242" in frame
        assert "up 1h02m03s" in frame
        assert "health OK" in frame

    def test_reasons_render_when_degraded(self):
        frame = render_frame(
            _sample(status="degraded",
                    reasons=[{"check": "workers", "severity": "degraded",
                              "detail": "1 of 2 workers dead"}]),
            color=False,
        )
        assert "health DEGRADED" in frame
        assert "! 1 of 2 workers dead" in frame

    def test_queue_panel_shows_depths_and_shard_bars(self):
        frame = render_frame(_sample(shard_depths={"a": 4, "f": 1}), color=False)
        assert "depth 5" in frame and "requeues 3" in frame
        assert "shard a" in frame and "shard f" in frame

    def test_throughput_needs_two_frames(self):
        first = _sample(100.0, counters={"redqaoa_jobs_completed_total": 100})
        frame = render_frame(first, None, color=False)
        assert "one more frame" in frame
        second = _sample(110.0, counters={"redqaoa_jobs_completed_total": 150})
        frame = render_frame(second, first, color=False)
        assert "jobs/s 5.00" in frame

    def test_latency_quantiles_from_histogram(self):
        histograms = {
            "redqaoa_job_seconds": {
                "buckets": [1.0, 2.0], "counts": [10, 10, 0],
                "sum": 30.0, "count": 20,
            }
        }
        frame = render_frame(_sample(histograms=histograms), color=False)
        assert "latency" in frame and "p50/p90/p99" in frame

    def test_events_render_with_fields(self):
        events = [{"level": "error", "event": "worker_crashed",
                   "uptime": 12.5, "claim": 7}]
        frame = render_frame(_sample(events=events), color=False)
        assert "worker_crashed" in frame and "claim=7" in frame

    def test_color_mode_emits_ansi_plain_mode_does_not(self):
        plain = render_frame(_sample(), color=False)
        assert "\x1b[" not in plain
        colored = render_frame(_sample(), color=True)
        assert "\x1b[1m" in colored and "\x1b[32m" in colored


@contextlib.contextmanager
def _daemon(tmp_path):
    daemon = ServeDaemon(
        socket_path=tmp_path / "serve.sock", store_path=tmp_path / "store.jsonl"
    )
    thread = threading.Thread(
        target=daemon.serve_forever,
        kwargs={"install_signal_handlers": False},
        daemon=True,
    )
    thread.start()
    wait_for_socket(daemon.socket_path)
    client = ServeClient(daemon.socket_path)
    try:
        yield daemon, client
    finally:
        if not daemon._stopped:
            with contextlib.suppress(OSError, ServeError):
                client.shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive()


class TestTopLive:
    def test_top_once_renders_against_a_live_daemon(self, tmp_path, capsys):
        """The ISSUE acceptance criterion: `red-qaoa top --once` renders."""
        manifest = {
            "schema": 1,
            "defaults": {"restarts": 1, "maxiter": 6},
            "jobs": [{"kind": "maxcut", "nodes": 8, "seed": 0}],
        }
        with _daemon(tmp_path) as (daemon, client):
            client.wait(client.submit(manifest)["ticket"], timeout=120)
            code = main(["top", "--socket", str(daemon.socket_path), "--once"])
            out = capsys.readouterr().out
        assert code == 0
        assert "red-qaoa top" in out
        assert "health OK" in out
        assert "completed 1" in out
        assert "\x1b[" not in out  # non-TTY default is plain text

    def test_top_object_accumulates_frames(self, tmp_path):
        with _daemon(tmp_path) as (daemon, client):
            top = Top(daemon.socket_path, color=False)
            first = top.frame()
            assert "one more frame" in first
            second = top.frame()
            assert "one more frame" not in second
