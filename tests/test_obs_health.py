"""Tests for the health monitor (repro.obs.health) and the ``health`` verb.

The acceptance scenario at the bottom drives a live daemon: SIGKILL a
worker mid-run with a tiny test-injected stuck-shard deadline, watch the
``health`` verb flip ok -> degraded with machine-readable reasons, then
recover to ok after respawn + requeue -- with the job results still
bit-identical to untraced sequential execution.
"""

import contextlib
import os
import signal
import threading
import time

import pytest

from repro.obs.health import (
    HEALTH_DEGRADED,
    HEALTH_FAILING,
    HEALTH_OK,
    HealthMonitor,
)
from repro.serve.client import ServeClient, ServeError, wait_for_socket
from repro.serve.daemon import ServeDaemon
from repro.serve.queue import ShardClaim
from repro.service.campaign import manifest_specs
from repro.service.jobs import run_job


class FakePool:
    def __init__(self, states):
        self.states = states
        self.kicked = []

    def worker_states(self):
        return self.states

    def kick(self, claim_id):
        self.kicked.append(claim_id)
        return True


class FakeQueue:
    def __init__(self):
        self.depth = 0
        self.num_running = 0
        self.completed = {}
        self.dead = {}
        self.crashes = 0
        self.requeues = 0


def _alive(worker_id=0, claim=None):
    return {"id": worker_id, "pid": 1000 + worker_id, "alive": True, "claim": claim}


def _dead(worker_id=0):
    return {"id": worker_id, "pid": 1000 + worker_id, "alive": False, "claim": None}


def _monitor(queue=None, pool=None, claims=None, **kwargs):
    return HealthMonitor(
        queue if queue is not None else FakeQueue(),
        pool if pool is not None else FakePool([_alive()]),
        claims if claims is not None else {},
        **kwargs,
    )


def _stalled_claim(claim_id=1, age_seconds=10.0):
    """A claim whose last progress stamp is ``age_seconds`` in the past."""
    stamp = time.perf_counter_ns() - int(age_seconds * 1e9)
    claim = ShardClaim(id=claim_id, shard="a", jobs=[], claimed_ns=stamp,
                       progress_ns=stamp)
    claim.unresolved = lambda: ["sentinel-job"]  # non-empty: work outstanding
    return claim


class TestHealthMonitor:
    def test_healthy_system_is_ok(self):
        report = _monitor().check()
        assert report.status == HEALTH_OK and report.ok
        assert report.reasons == []
        assert set(report.checks) == {
            "workers", "stuck_shards", "incidents", "dead_letters", "requeue_rate",
        }
        assert all(value == HEALTH_OK for value in report.checks.values())

    def test_report_to_dict_is_json_shaped(self):
        payload = _monitor().check().to_dict()
        assert payload["status"] == HEALTH_OK
        assert isinstance(payload["checks"], dict)
        assert isinstance(payload["reasons"], list)

    def test_dead_worker_degrades_with_pids(self):
        report = _monitor(pool=FakePool([_alive(0), _dead(1)])).check()
        assert report.status == HEALTH_DEGRADED
        [reason] = [r for r in report.reasons if r["check"] == "workers"]
        assert reason["severity"] == HEALTH_DEGRADED
        assert reason["dead_pids"] == [1001]

    def test_no_workers_with_backlog_is_failing(self):
        queue = FakeQueue()
        queue.depth = 4
        report = _monitor(queue=queue, pool=FakePool([_dead(0), _dead(1)])).check()
        assert report.status == HEALTH_FAILING
        assert report.checks["workers"] == HEALTH_FAILING

    def test_no_workers_without_work_is_not_failing(self):
        report = _monitor(pool=FakePool([_dead(0)])).check()
        assert report.checks["workers"] != HEALTH_FAILING

    def test_stuck_claim_degrades_and_counts_once(self):
        claims = {1: _stalled_claim(1, age_seconds=2.0)}
        monitor = _monitor(claims=claims, stuck_after=1.0)
        from repro.obs.health import _STUCK_TOTAL

        before = _STUCK_TOTAL.value
        report = monitor.check()
        assert report.status == HEALTH_DEGRADED
        [reason] = [r for r in report.reasons if r["check"] == "stuck_shards"]
        assert reason["claim"] == 1 and reason["shard"] == "a"
        assert reason["stalled_seconds"] >= 1.0
        monitor.check()  # same stuck claim: flagged, not re-counted
        assert _STUCK_TOTAL.value == before + 1

    def test_very_stale_claim_escalates_to_failing(self):
        claims = {1: _stalled_claim(1, age_seconds=10.0)}
        report = _monitor(claims=claims, stuck_after=1.0).check()
        assert report.checks["stuck_shards"] == HEALTH_FAILING  # 10x the deadline

    def test_fresh_claim_is_not_stuck(self):
        claims = {1: _stalled_claim(1, age_seconds=0.0)}
        report = _monitor(claims=claims, stuck_after=60.0).check()
        assert report.checks["stuck_shards"] == HEALTH_OK

    def test_watchdog_kick_is_opt_in(self):
        claims = {7: _stalled_claim(7, age_seconds=10.0)}
        pool = FakePool([_alive()])
        _monitor(pool=pool, claims=claims, stuck_after=1.0).check()
        assert pool.kicked == []
        pool = FakePool([_alive()])
        _monitor(pool=pool, claims={7: _stalled_claim(7, age_seconds=10.0)},
                 stuck_after=1.0, requeue_stuck=True).check()
        assert pool.kicked == [7]

    def test_incident_memory_degrades_then_expires(self):
        queue = FakeQueue()
        monitor = _monitor(queue=queue, incident_window=0.15)
        assert monitor.check().status == HEALTH_OK
        queue.crashes += 1  # the pump observed a worker death
        report = monitor.check()
        assert report.status == HEALTH_DEGRADED
        [reason] = [r for r in report.reasons if r["check"] == "incidents"]
        assert reason["crashes"] == 1
        time.sleep(0.2)  # past the window the verdict recovers
        assert monitor.check().status == HEALTH_OK

    def test_dead_letter_rate_threshold(self):
        queue = FakeQueue()
        queue.completed = {f"f{i}": None for i in range(9)}
        queue.dead = {"poison": {}}
        monitor = _monitor(queue=queue, incident_window=0.01,
                           dead_letter_threshold=0.05)
        monitor.check()
        time.sleep(0.05)  # let the dead-letter *incident* age out
        report = monitor.check()
        assert report.checks["dead_letters"] == HEALTH_DEGRADED
        [reason] = [r for r in report.reasons if r["check"] == "dead_letters"]
        assert reason["rate"] == pytest.approx(0.1)

    def test_requeue_rate_threshold(self):
        queue = FakeQueue()
        queue.completed = {f"f{i}": None for i in range(7)}
        queue.requeues = 3
        monitor = _monitor(queue=queue, incident_window=0.01,
                           requeue_threshold=0.25)
        monitor.check()
        time.sleep(0.05)
        assert monitor.check().checks["requeue_rate"] == HEALTH_DEGRADED

    def test_rate_checks_wait_for_min_samples(self):
        # one early crash must not poison a daemon's lifetime verdict
        queue = FakeQueue()
        queue.completed = {"a": None, "b": None}
        queue.requeues = 2  # 50% of a tiny sample
        queue.dead = {"c": {}}
        monitor = _monitor(queue=queue, incident_window=0.01)
        monitor.check()
        time.sleep(0.05)
        report = monitor.check()
        assert report.checks["requeue_rate"] == HEALTH_OK
        assert report.checks["dead_letters"] == HEALTH_OK

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            _monitor(stuck_after=0)
        with pytest.raises(ValueError):
            _monitor(incident_window=0)


# -- live daemon acceptance ----------------------------------------------------


def _manifest(count=4, nodes=8):
    return {
        "schema": 1,
        "defaults": {"restarts": 1, "maxiter": 6},
        "jobs": [{"kind": "maxcut", "nodes": nodes, "seed": i} for i in range(count)],
    }


@contextlib.contextmanager
def _daemon(tmp_path, **kwargs):
    kwargs.setdefault("store_path", tmp_path / "store.jsonl")
    daemon = ServeDaemon(socket_path=tmp_path / "serve.sock", **kwargs)
    thread = threading.Thread(
        target=daemon.serve_forever,
        kwargs={"install_signal_handlers": False},
        daemon=True,
    )
    thread.start()
    wait_for_socket(daemon.socket_path)
    client = ServeClient(daemon.socket_path)
    try:
        yield daemon, client
    finally:
        if not daemon._stopped:
            with contextlib.suppress(OSError, ServeError):
                client.shutdown()
        thread.join(timeout=30)
        assert not thread.is_alive(), "daemon failed to stop"


def _wait_health(client, predicate, timeout=60.0):
    deadline = time.monotonic() + timeout
    reply = client.health()
    while not predicate(reply):
        if time.monotonic() >= deadline:
            return reply
        time.sleep(0.05)
        reply = client.health()
    return reply


class TestHealthVerbLive:
    def test_idle_daemon_reports_ok(self, tmp_path):
        with _daemon(tmp_path, workers=1) as (daemon, client):
            reply = client.health()
            assert reply["ok"]
            assert reply["health"]["status"] == HEALTH_OK
            assert reply["health"]["reasons"] == []
            assert reply["events"] == []

    def test_status_carries_daemon_identity(self, tmp_path):
        with _daemon(tmp_path, workers=1) as (daemon, client):
            status = client.status()
            assert status["pid"] == os.getpid()  # in-process daemon thread
            assert status["started_unix"] == pytest.approx(time.time(), abs=120)
            assert status["uptime"] >= 0
            states = status["workers"]["states"]
            assert len(states) == 1 and states[0]["alive"]

    def test_sigkill_degrades_then_recovers_bit_identical(self, tmp_path):
        """The ISSUE acceptance scenario, end to end."""
        manifest = _manifest(count=4)
        specs = manifest_specs(manifest)
        with _daemon(
            tmp_path,
            workers=2,
            pool="process",
            stuck_after=0.15,  # test-injected deadline: any working shard trips it
            health_window=1.0,
        ) as (daemon, client):
            assert client.health()["health"]["status"] == HEALTH_OK

            ticket = client.submit(manifest)["ticket"]
            victim = client.status()["workers"]["pids"][0]
            os.kill(victim, signal.SIGKILL)

            degraded = _wait_health(
                client, lambda r: r["health"]["status"] != HEALTH_OK
            )
            assert degraded["health"]["status"] in (HEALTH_DEGRADED, HEALTH_FAILING)
            checks = degraded["health"]["checks"]
            tripped = {
                name
                for name, verdict in checks.items()
                if verdict != HEALTH_OK
            }
            # the kill shows up as a crash incident, a dead worker, or a
            # stalled shard past the injected deadline -- all with reasons
            assert tripped & {"incidents", "workers", "stuck_shards", "requeue_rate"}
            assert all(
                reason["detail"] for reason in degraded["health"]["reasons"]
            )

            final = client.wait(ticket, timeout=300)
            assert final["counts"] == {"done": 4}

            recovered = _wait_health(
                client,
                lambda r: r["health"]["status"] == HEALTH_OK,
                timeout=60.0,
            )
            assert recovered["health"]["status"] == HEALTH_OK
            assert client.status()["workers"]["respawns"] >= 1

            # determinism: the crash-and-requeue path changed no result bit
            by_fp = {job["fingerprint"]: job["result"] for job in final["jobs"]}
            for spec in specs:
                expected = run_job(spec)
                got = by_fp[spec.fingerprint]
                assert got["gammas"] == expected.gammas
                assert got["betas"] == expected.betas
                assert got["expectation"] == expected.expectation

    def test_crash_events_surface_in_health_reply(self, tmp_path):
        import io

        from repro.obs.log import EventLog

        manifest = _manifest(count=4)
        with _daemon(
            tmp_path,
            workers=2,
            pool="process",
            health_window=30.0,
            log=EventLog(level="error", stream=io.StringIO()),
        ) as (daemon, client):
            ticket = client.submit(manifest)["ticket"]
            victim = client.status()["workers"]["pids"][0]
            os.kill(victim, signal.SIGKILL)
            client.wait(ticket, timeout=300)
            # worker_crashed when the victim held a claim; if the kill
            # raced a shard boundary, the respawn event still surfaces
            crash_events = {"worker_crashed", "worker_respawned"}
            reply = _wait_health(
                client,
                lambda r: any(
                    e["event"] in crash_events for e in r.get("events", [])
                ),
                timeout=30.0,
            )
            names = {event["event"] for event in reply["events"]}
            assert names & crash_events
