"""Tests for repro.serve.queue: sharding, dedup, backpressure, dead letters."""

import pytest

from repro.serve.queue import ShardedJobQueue
from repro.service.jobs import JobResult, JobSpec
from repro.service.store import ResultStore


def _spec(seed: int, nodes: int = 8) -> JobSpec:
    from repro.datasets import random_connected_gnp

    return JobSpec(
        graph=random_connected_gnp(nodes, 0.4, seed=seed),
        restarts=1,
        maxiter=6,
        label=f"g{nodes}-s{seed}",
    )


def _fake_result(spec: JobSpec) -> JobResult:
    """A result pinned to the spec's fingerprint, no execution needed."""
    return JobResult(
        fingerprint=spec.fingerprint,
        instance_fingerprint=spec.instance_fingerprint,
        gammas=[0.1],
        betas=[0.2],
        expectation=1.0,
        best_value=2.0,
        bits=[0] * spec.num_qubits,
        reduced_qubits=spec.num_qubits,
        and_ratio=0.9,
        reduced_evaluations=1,
        original_evaluations=0,
    )


class TestSharding:
    def test_shard_is_fingerprint_prefix(self):
        queue = ShardedJobQueue(shard_prefix=2)
        spec = _spec(0)
        assert queue.shard_of(spec.fingerprint) == spec.fingerprint[:2]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ShardedJobQueue(shard_prefix=0)
        with pytest.raises(ValueError):
            ShardedJobQueue(high_water=0)
        with pytest.raises(ValueError):
            ShardedJobQueue(max_attempts=0)

    def test_claims_are_whole_shards_in_fingerprint_order(self):
        queue = ShardedJobQueue(shard_prefix=1)
        specs = [_spec(seed) for seed in range(8)]
        for spec in specs:
            assert queue.submit(spec).status == "queued"
        seen = {}
        while True:
            claim = queue.claim_next()
            if claim is None:
                break
            fingerprints = [job.fingerprint for job in claim.jobs]
            assert fingerprints == sorted(fingerprints)
            assert all(fp.startswith(claim.shard) for fp in fingerprints)
            seen[claim.shard] = fingerprints
        assert sum(len(v) for v in seen.values()) == len(specs)
        assert set().union(*seen.values()) == {spec.fingerprint for spec in specs}


class TestDedup:
    def test_inflight_duplicate_is_not_enqueued_twice(self):
        queue = ShardedJobQueue()
        spec = _spec(0)
        assert queue.submit(spec).status == "queued"
        second = queue.submit(spec)
        assert second.status == "inflight"
        assert queue.depth == 1
        assert queue.deduped == 1
        # still inflight while claimed/running
        claim = queue.claim_next()
        assert claim is not None
        assert queue.submit(spec).status == "inflight"
        assert queue.state_of(spec.fingerprint) == "running"

    def test_stored_duplicate_is_served_from_the_store(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        spec = _spec(0)
        store.put(_fake_result(spec))
        queue = ShardedJobQueue(store=store)
        outcome = queue.submit(spec)
        assert outcome.status == "cached"
        assert outcome.result is not None
        assert outcome.result.fingerprint == spec.fingerprint
        assert queue.depth == 0

    def test_session_completion_dedups_without_a_store(self):
        queue = ShardedJobQueue()
        spec = _spec(0)
        queue.submit(spec)
        claim = queue.claim_next()
        queue.complete(claim, spec.fingerprint, _fake_result(spec))
        queue.finish_claim(claim)
        outcome = queue.submit(spec)
        assert outcome.status == "cached"
        assert queue.state_of(spec.fingerprint) == "completed"


class TestBackpressure:
    def test_rejection_past_high_water_with_retry_after(self):
        queue = ShardedJobQueue(high_water=2)
        assert queue.submit(_spec(0)).accepted
        assert queue.submit(_spec(1)).accepted
        outcome = queue.submit(_spec(2))
        assert outcome.status == "rejected"
        assert not outcome.accepted
        assert outcome.retry_after is not None and outcome.retry_after > 1.0
        assert queue.rejected == 1
        assert queue.depth == 2

    def test_retry_after_grows_with_backlog(self):
        queue = ShardedJobQueue(high_water=4)
        empty = queue.retry_after()
        for seed in range(4):
            queue.submit(_spec(seed))
        assert queue.retry_after() > empty

    def test_draining_the_queue_reopens_it(self):
        queue = ShardedJobQueue(high_water=1)
        first = _spec(0)
        queue.submit(first)
        assert queue.submit(_spec(1)).status == "rejected"
        claim = queue.claim_next()
        queue.complete(claim, first.fingerprint, _fake_result(first))
        queue.finish_claim(claim)
        assert queue.submit(_spec(1)).status == "queued"


class TestRetriesAndDeadLetters:
    def test_failure_requeues_until_attempts_exhausted(self, tmp_path):
        store = ResultStore(tmp_path / "store.jsonl")
        queue = ShardedJobQueue(store=store, max_attempts=3)
        spec = _spec(0)
        queue.submit(spec)
        for attempt in range(1, 3):
            claim = queue.claim_next()
            assert claim is not None
            assert queue.fail(claim, spec.fingerprint, "boom") == "requeued"
            queue.finish_claim(claim)
            assert queue.state_of(spec.fingerprint) == "pending"
        claim = queue.claim_next()
        assert queue.fail(claim, spec.fingerprint, "boom") == "dead"
        queue.finish_claim(claim)
        assert queue.state_of(spec.fingerprint) == "dead"
        assert queue.dead[spec.fingerprint]["attempts"] == 3
        # the dead letter is durable and visible to a fresh store
        assert spec.fingerprint in ResultStore(tmp_path / "store.jsonl").dead_letters()
        assert queue.is_idle()

    def test_crash_release_requeues_unfinished_only(self):
        queue = ShardedJobQueue(shard_prefix=1, max_attempts=3)
        specs = [_spec(seed) for seed in range(8)]
        for spec in specs:
            queue.submit(spec)
        claim = queue.claim_next()
        finished = claim.jobs[0]
        queue.complete(claim, finished.fingerprint, _fake_result(finished.spec))
        requeued = queue.release_crashed(claim)
        assert queue.crashes == 1
        assert finished.fingerprint in queue.completed
        assert {job.fingerprint for job in requeued} == {
            job.fingerprint for job in claim.jobs[1:]
        }
        assert all(job.attempts == 1 for job in requeued)
        # the shard is claimable again and still holds the requeued jobs
        reshard = None
        while True:
            next_claim = queue.claim_next()
            if next_claim is None:
                break
            if next_claim.shard == claim.shard:
                reshard = next_claim
        if requeued:
            assert reshard is not None
            assert {job.fingerprint for job in reshard.jobs} >= {
                job.fingerprint for job in requeued
            }

    def test_repeated_crashes_dead_letter_the_poison_pill(self):
        queue = ShardedJobQueue(max_attempts=2)
        spec = _spec(0)
        queue.submit(spec)
        claim = queue.claim_next()
        assert queue.release_crashed(claim) != []  # first crash: requeued
        claim = queue.claim_next()
        assert queue.release_crashed(claim) == []  # second crash: parked
        assert queue.state_of(spec.fingerprint) == "dead"
        assert queue.is_idle()


class TestPriority:
    def test_cheapest_shard_claims_first(self):
        queue = ShardedJobQueue(shard_prefix=1)
        cheap = [_spec(seed, nodes=6) for seed in range(3)]
        costly = [_spec(seed, nodes=14) for seed in range(3)]
        for spec in cheap + costly:
            queue.submit(spec)
        cheap_shards = {queue.shard_of(s.fingerprint) for s in cheap}
        costly_shards = {queue.shard_of(s.fingerprint) for s in costly}
        only_costly = costly_shards - cheap_shards
        if not only_costly:  # all shards mixed: nothing to rank
            pytest.skip("fingerprints landed in overlapping shards")
        order = []
        while True:
            claim = queue.claim_next()
            if claim is None:
                break
            order.append(claim.shard)
        mixed_or_cheap = [s for s in order if s not in only_costly]
        assert order[: len(mixed_or_cheap)] == mixed_or_cheap

    def test_claimed_shard_is_exclusive_until_finished(self):
        queue = ShardedJobQueue(shard_prefix=1)
        spec = _spec(0)
        queue.submit(spec)
        claim = queue.claim_next()
        # a new job in the same shard must wait for the open claim
        sibling = next(
            _spec(seed)
            for seed in range(1, 200)
            if queue.shard_of(_spec(seed).fingerprint) == claim.shard
        )
        queue.submit(sibling)
        held = []
        while True:
            other = queue.claim_next()
            if other is None:
                break
            assert other.shard != claim.shard
            held.append(other)
        queue.complete(claim, spec.fingerprint, _fake_result(spec))
        queue.finish_claim(claim)
        reopened = queue.claim_next()
        assert reopened is not None and reopened.shard == claim.shard
        assert [job.fingerprint for job in reopened.jobs] == [sibling.fingerprint]

    def test_stats_shape(self):
        queue = ShardedJobQueue(high_water=7)
        queue.submit(_spec(0))
        stats = queue.stats()
        assert stats["depth"] == 1
        assert stats["high_water"] == 7
        assert stats["submitted"] == 1
        assert stats["shards"]
