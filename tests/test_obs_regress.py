"""Tests for the bench regression gate (repro.obs.regress + bench CLI)."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.regress import (
    append_record,
    compare,
    extract_metrics,
    load_records,
    make_record,
    metrics_from_history,
    noise_floor,
)

REPO = Path(__file__).resolve().parent.parent


def _rate(value, samples=None):
    metric = {"value": value, "kind": "rate", "direction": "higher"}
    if samples:
        metric["samples"] = samples
    return metric


def _record(label, **metrics):
    return {"label": label, "metrics": metrics}


class TestExtraction:
    def test_pr3_shape(self):
        payload = {
            "sa_reducer": {"100": {"incremental_steps_per_sec": 1000.0}},
            "lightcone": {"plan_points_per_sec": 200.0},
        }
        metrics = extract_metrics(payload)
        assert metrics["sa_steps_per_sec_n100"]["value"] == 1000.0
        assert metrics["sa_steps_per_sec_n100"]["kind"] == "rate"
        assert metrics["lightcone_points_per_sec"]["value"] == 200.0

    def test_pr4_shape_is_quality(self):
        payload = {
            "mis": {"and_ratio_sa": 0.99, "depths": {"1": {"sampled_ratio": 1.0}}},
            "sk": {"and_ratio_sa": 0.77, "depths": {"1": {"sampled_ratio": 0.9}}},
        }
        metrics = extract_metrics(payload)
        assert metrics["mis_and_ratio"]["kind"] == "quality"
        assert metrics["sk_sampled_ratio_p1"]["value"] == 0.9

    def test_pr5_shape_has_exact_flags(self):
        payload = {
            "speedup": 3.0,
            "bit_identical_batched_vs_sequential": True,
            "bit_identical_resumed_vs_batched": True,
        }
        metrics = extract_metrics(payload)
        assert metrics["batch_speedup"]["kind"] == "rate"
        assert metrics["bit_identical_batched_vs_sequential"] == {
            "value": 1.0, "kind": "exact", "direction": "higher",
        }

    def test_pr6_excludes_oversubscribed_rows(self):
        payload = {
            "daemon": [
                {"workers": 1, "jobs_per_sec": 10.0, "oversubscribed": False},
                {"workers": 4, "jobs_per_sec": 2.0, "oversubscribed": True},
            ],
            "bit_identical_all_worker_counts_vs_sequential": True,
        }
        metrics = extract_metrics(payload)
        assert "serve_jobs_per_sec_w1" in metrics
        assert "serve_jobs_per_sec_w4" not in metrics
        assert metrics["serve_bit_identical"]["value"] == 1.0

    def test_unrecognised_payload_yields_nothing(self):
        assert extract_metrics({"mystery": 1}) == {}
        assert extract_metrics([1, 2]) == {}

    def test_all_checked_in_bench_files_are_recognised(self):
        for name in ("BENCH_pr3", "BENCH_pr4", "BENCH_pr5", "BENCH_pr6"):
            payload = json.loads((REPO / f"{name}.json").read_text())
            assert extract_metrics(payload), f"{name} extracted no metrics"

    def test_history_snapshots_become_throughput_with_samples(self):
        def snap(seq, unix, total):
            return {
                "schema": 1, "kind": "snapshot", "seq": seq, "unix": unix,
                "pid": 1, "started_unix": 0.0,
                "snapshot": {"counters": {"redqaoa_jobs_completed_total": total},
                             "gauges": {}, "histograms": {}},
            }

        metrics = metrics_from_history(
            [snap(1, 0.0, 0), snap(2, 10.0, 100), snap(3, 20.0, 190)]
        )
        metric = metrics["serve_jobs_per_sec"]
        assert metric["value"] == pytest.approx(9.5)
        assert metric["samples"] == [10.0, 9.0]


class TestNoiseFloors:
    def test_static_floors_by_kind(self):
        assert noise_floor({"kind": "rate", "value": 1.0}) == 0.25
        assert noise_floor({"kind": "quality", "value": 1.0}) == 0.05
        assert noise_floor({"kind": "exact", "value": 1.0}) == 0.0

    def test_dispersion_floor_from_samples(self):
        jittery = _rate(100.0, samples=[60.0, 100.0, 140.0])
        assert noise_floor(jittery) > 0.25
        steady = _rate(100.0, samples=[99.0, 100.0, 101.0])
        assert noise_floor(steady) == pytest.approx(0.05)  # clamped at 5%

    def test_caller_floor_only_widens(self):
        metric = _rate(100.0)
        assert noise_floor(metric, default_floor=0.5) == 0.5
        assert noise_floor(metric, default_floor=0.01) == 0.25
        assert noise_floor({"kind": "exact", "value": 1.0}, default_floor=0.5) == 0.0


class TestCompare:
    def test_regression_beyond_floor_is_flagged(self):
        outcome = compare([
            _record("base", m=_rate(100.0)),
            _record("next", m=_rate(50.0)),
        ])
        assert not outcome["ok"]
        [row] = outcome["regressions"]
        assert row["metric"] == "m" and row["change"] == pytest.approx(-0.5)

    def test_drop_within_floor_passes(self):
        outcome = compare([
            _record("base", m=_rate(100.0)),
            _record("next", m=_rate(85.0)),  # -15% < 25% rate floor
        ])
        assert outcome["ok"] and len(outcome["rows"]) == 1

    def test_exact_metric_gates_any_drop(self):
        exact = {"value": 1.0, "kind": "exact", "direction": "higher"}
        broken = {"value": 0.0, "kind": "exact", "direction": "higher"}
        assert compare([_record("a", flag=exact), _record("b", flag=exact)])["ok"]
        assert not compare([_record("a", flag=exact), _record("b", flag=broken)])["ok"]

    def test_lower_is_better_direction(self):
        fast = {"value": 1.0, "kind": "rate", "direction": "lower"}
        slow = {"value": 2.0, "kind": "rate", "direction": "lower"}
        assert not compare([_record("a", lat=fast), _record("b", lat=slow)])["ok"]
        assert compare([_record("a", lat=slow), _record("b", lat=fast)])["ok"]

    def test_sparse_trajectory_uses_last_seen_baseline(self):
        outcome = compare([
            _record("pr3", m=_rate(100.0)),
            _record("pr4", other=_rate(1.0)),  # does not measure m
            _record("pr6", m=_rate(40.0)),  # compared against pr3, not pr4
        ])
        [row] = outcome["regressions"]
        assert row["baseline_label"] == "pr3"

    def test_disjoint_records_make_no_comparisons(self):
        outcome = compare([
            _record("pr3", a=_rate(1.0)),
            _record("pr4", b=_rate(2.0)),
        ])
        assert outcome["ok"] and outcome["rows"] == []

    def test_recorded_repo_trajectory_is_clean(self):
        trajectory = REPO / "benchmarks" / "history" / "trajectory.jsonl"
        records = load_records([trajectory])
        assert len(records) >= 4
        assert compare(records)["ok"]


class TestBenchCli:
    def _write_pair(self, tmp_path):
        base = {"daemon": [{"workers": 1, "jobs_per_sec": 100.0,
                            "oversubscribed": False}],
                "bit_identical_all_worker_counts_vs_sequential": True}
        regressed = {"daemon": [{"workers": 1, "jobs_per_sec": 30.0,
                                 "oversubscribed": False}],
                     "bit_identical_all_worker_counts_vs_sequential": True}
        (tmp_path / "base.json").write_text(json.dumps(base))
        (tmp_path / "regressed.json").write_text(json.dumps(regressed))
        return tmp_path / "base.json", tmp_path / "regressed.json"

    def test_compare_exits_nonzero_on_synthetic_regression(self, tmp_path, capsys):
        base, regressed = self._write_pair(tmp_path)
        assert main(["bench", "compare", str(base), str(regressed)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "serve_jobs_per_sec_w1" in out

    def test_compare_advisory_reports_but_exits_zero(self, tmp_path, capsys):
        base, regressed = self._write_pair(tmp_path)
        assert main(["bench", "compare", "--advisory", str(base), str(regressed)]) == 0
        assert "ADVISORY" in capsys.readouterr().out

    def test_compare_exits_zero_on_recorded_trajectory(self, capsys):
        trajectory = REPO / "benchmarks" / "history" / "trajectory.jsonl"
        assert main(["bench", "compare", str(trajectory)]) == 0

    def test_compare_real_bench_files_against_trajectory(self, capsys):
        # CI's advisory gate: today's BENCH emissions vs the recorded history
        trajectory = REPO / "benchmarks" / "history" / "trajectory.jsonl"
        code = main([
            "bench", "compare", "--advisory", str(trajectory),
            str(REPO / "BENCH_pr3.json"), str(REPO / "BENCH_pr5.json"),
        ])
        assert code == 0

    def test_compare_json_output(self, tmp_path, capsys):
        base, regressed = self._write_pair(tmp_path)
        main(["bench", "compare", "--json", str(base), str(regressed)])
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["regressions"][0]["metric"] == "serve_jobs_per_sec_w1"

    def test_record_appends_normalised_trajectory_entry(self, tmp_path, capsys):
        base, _ = self._write_pair(tmp_path)
        out = tmp_path / "trajectory.jsonl"
        assert main(["bench", "record", "--label", "ci", "--out", str(out),
                     str(base)]) == 0
        [line] = out.read_text().splitlines()
        record = json.loads(line)
        assert record["label"] == "ci" and record["kind"] == "bench"
        assert "serve_jobs_per_sec_w1" in record["metrics"]
        # and the trajectory it builds round-trips through the gate
        assert main(["bench", "compare", str(out), str(base)]) == 0

    def test_round_trip_record_then_regress(self, tmp_path):
        base, regressed = self._write_pair(tmp_path)
        out = tmp_path / "trajectory.jsonl"
        append_record(out, make_record("baseline", [base]))
        assert main(["bench", "compare", str(out), str(regressed)]) == 1
