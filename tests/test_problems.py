"""Unit tests for the Ising/QUBO problem layer: DiagonalProblem + encodings."""

import networkx as nx
import numpy as np
import pytest

from repro.problems import (
    DiagonalProblem,
    local_search_value,
    max_independent_set_problem,
    maxcut_problem,
    min_vertex_cover_problem,
    number_partitioning_problem,
    qubo_problem,
    sk_problem,
)
from repro.qaoa.hamiltonian import cut_values


def _brute_diagonal(problem):
    """Slow per-state evaluation of the Ising form -- the oracle."""
    n = problem.num_qubits
    values = np.empty(2**n)
    for z in range(2**n):
        spins = [1.0 - 2.0 * ((z >> u) & 1) for u in range(n)]
        total = problem.constant
        for u, h in problem.fields.items():
            total += h * spins[u]
        for (u, v), j in problem.couplings.items():
            total += j * spins[u] * spins[v]
        values[z] = total
    return values


class TestDiagonalProblem:
    def test_diagonal_matches_per_state_evaluation(self):
        rng = np.random.default_rng(0)
        problem = DiagonalProblem(
            6,
            {(0, 1): 0.5, (1, 3): -1.25, (2, 5): rng.normal(), (0, 4): 2.0},
            fields={0: 0.75, 3: -0.5, 5: 1.5},
            constant=-0.25,
        )
        assert np.allclose(problem.diagonal, _brute_diagonal(problem), atol=1e-12)

    def test_value_agrees_with_diagonal(self):
        problem = DiagonalProblem(4, {(0, 2): 1.0, (1, 3): -2.0}, fields={2: 0.5})
        for z in range(16):
            bits = [(z >> u) & 1 for u in range(4)]
            assert problem.value(bits) == pytest.approx(problem.diagonal[z])

    def test_couplings_canonicalized_and_merged(self):
        problem = DiagonalProblem(3, {(2, 0): 1.0, (0, 2): 0.5, (1, 2): 0.0})
        assert problem.couplings == {(0, 2): 1.5}
        assert problem.edges == [(0, 2)]

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="self-pair"):
            DiagonalProblem(3, {(1, 1): 1.0})
        with pytest.raises(ValueError, match="out of range"):
            DiagonalProblem(3, {(0, 5): 1.0})
        with pytest.raises(ValueError, match="finite"):
            DiagonalProblem(3, {(0, 1): float("nan")})
        with pytest.raises(ValueError, match="out of range"):
            DiagonalProblem(3, fields={7: 1.0})
        with pytest.raises(ValueError, match="num_qubits"):
            DiagonalProblem(0)

    def test_dense_guard(self):
        problem = DiagonalProblem(27, {(0, 1): 1.0})
        with pytest.raises(ValueError, match="refusing to materialize"):
            _ = problem.diagonal

    def test_brute_force_returns_argmax_bits(self):
        problem = DiagonalProblem(5, {(0, 1): -1.0, (2, 3): 2.0}, fields={4: 3.0})
        value, bits = problem.brute_force()
        assert value == pytest.approx(problem.diagonal.max())
        assert problem.value(bits) == pytest.approx(value)

    def test_subproblem_restricts_and_relabels(self):
        problem = DiagonalProblem(
            6, {(0, 1): 1.0, (1, 4): -2.0, (2, 3): 0.5}, fields={1: 0.25, 2: -1.0},
            constant=3.0, name="toy",
        )
        sub = problem.subproblem([1, 2, 4])
        assert sub.num_qubits == 3
        assert sub.couplings == {(0, 2): -2.0}  # (1, 4) -> (0, 2)
        assert sub.fields == {0: 0.25, 1: -1.0}
        assert sub.constant == 3.0
        assert sub.name == "toy"
        with pytest.raises(ValueError, match="non-empty"):
            problem.subproblem([])
        with pytest.raises(ValueError, match="out of range"):
            problem.subproblem([0, 9])

    def test_coupling_graph_weights_and_fields(self):
        problem = DiagonalProblem(4, {(0, 1): -0.5, (1, 2): 1.5}, fields={3: -2.0})
        graph = problem.coupling_graph()
        assert graph.number_of_nodes() == 4
        assert graph[0][1]["weight"] == 1.0  # -2 * (-1/2)
        assert graph[1][2]["weight"] == -3.0
        assert not any(u == v for u, v in graph.edges())
        with_fields = problem.coupling_graph(include_fields=True)
        assert with_fields[3][3]["weight"] == -4.0  # 2 * h

    def test_best_value_dense_and_local_agree(self):
        problem = sk_problem(10, seed=5)
        dense = problem.best_value(method="dense")
        local, bits = local_search_value(problem, restarts=40, seed=0)
        assert local <= dense + 1e-12
        assert problem.value(bits) == pytest.approx(local)
        # On 10 spins with 40 restarts the 1-flip search finds the optimum.
        assert local == pytest.approx(dense)


class TestQuboRoundTrip:
    def test_from_qubo_matches_brute_force(self):
        rng = np.random.default_rng(3)
        matrix = rng.normal(size=(6, 6))
        offset = 1.75
        problem = qubo_problem(matrix, offset=offset)
        for z in range(2**6):
            x = np.array([(z >> u) & 1 for u in range(6)], dtype=float)
            assert problem.diagonal[z] == pytest.approx(x @ matrix @ x + offset)

    def test_minimization_negates(self):
        matrix = np.array([[1.0, -2.0], [0.0, 3.0]])
        maxp = qubo_problem(matrix, maximize=True)
        minp = qubo_problem(matrix, maximize=False)
        assert np.allclose(maxp.diagonal, -minp.diagonal)

    def test_round_trip_preserves_diagonal(self):
        rng = np.random.default_rng(11)
        problem = DiagonalProblem(
            5,
            {(u, v): rng.normal() for u in range(5) for v in range(u + 1, 5)},
            fields={u: rng.normal() for u in range(5)},
            constant=rng.normal(),
        )
        rebuilt = DiagonalProblem.from_qubo(*problem.to_qubo())
        assert np.allclose(problem.diagonal, rebuilt.diagonal, atol=1e-10)

    def test_to_qubo_is_symmetric(self):
        matrix, _ = sk_problem(6, seed=2).to_qubo()
        assert np.allclose(matrix, matrix.T)

    def test_qubo_validation(self):
        with pytest.raises(ValueError, match="square"):
            qubo_problem(np.zeros((2, 3)))
        with pytest.raises(ValueError, match="finite"):
            qubo_problem(np.full((2, 2), np.inf))


class TestEncodings:
    def test_maxcut_diagonal_is_cut_values(self):
        graph = nx.erdos_renyi_graph(8, 0.4, seed=1)
        for u, v in graph.edges():
            graph[u][v]["weight"] = 0.5 + (u + v) % 3
        problem = maxcut_problem(graph)
        assert np.allclose(problem.diagonal, cut_values(problem.coupling_graph()),
                           atol=1e-12)
        assert problem.is_field_free

    def test_maxcut_coupling_graph_round_trips_weights_exactly(self):
        graph = nx.erdos_renyi_graph(9, 0.4, seed=2)
        rng = np.random.default_rng(0)
        for u, v in graph.edges():
            graph[u][v]["weight"] = float(rng.normal())
        recovered = maxcut_problem(graph).coupling_graph()
        for u, v, data in graph.edges(data=True):
            if data["weight"] != 0.0:
                assert recovered[u][v]["weight"] == data["weight"]  # bit-exact

    def test_mis_optimum_is_maximum_independent_set(self):
        graph = nx.erdos_renyi_graph(9, 0.35, seed=4)
        problem = max_independent_set_problem(graph)
        value, bits = problem.brute_force()
        assert all(not (bits[u] and bits[v]) for u, v in graph.edges())
        alpha = max(
            bin(z).count("1")
            for z in range(2**9)
            if all(not ((z >> u) & 1 and (z >> v) & 1) for u, v in graph.edges())
        )
        assert value == pytest.approx(alpha)

    def test_vertex_cover_optimum_is_minimum_cover(self):
        graph = nx.erdos_renyi_graph(9, 0.3, seed=7)
        problem = min_vertex_cover_problem(graph)
        value, bits = problem.brute_force()
        assert all(bits[u] or bits[v] for u, v in graph.edges())
        cover = min(
            bin(z).count("1")
            for z in range(2**9)
            if all((z >> u) & 1 or (z >> v) & 1 for u, v in graph.edges())
        )
        assert value == pytest.approx(-cover)

    def test_penalty_must_exceed_one(self):
        graph = nx.path_graph(4)
        with pytest.raises(ValueError, match="penalty"):
            max_independent_set_problem(graph, penalty=1.0)
        with pytest.raises(ValueError, match="penalty"):
            min_vertex_cover_problem(graph, penalty=0.5)

    def test_partition_value_is_negated_squared_residual(self):
        numbers = [3.0, 1.0, 4.0, 1.0, 5.0]
        problem = number_partitioning_problem(numbers)
        for z in range(2**5):
            spins = [1.0 - 2.0 * ((z >> u) & 1) for u in range(5)]
            residual = sum(a * s for a, s in zip(numbers, spins))
            assert problem.diagonal[z] == pytest.approx(-(residual**2))
        # 3 + 4 = 1 + 1 + 5: a perfect partition exists.
        assert problem.best_value() == pytest.approx(0.0)

    def test_partition_validation(self):
        with pytest.raises(ValueError, match="at least 2"):
            number_partitioning_problem([1.0])
        with pytest.raises(ValueError, match="finite"):
            number_partitioning_problem([1.0, float("inf")])

    def test_sk_is_field_free_complete_and_seeded(self):
        problem = sk_problem(8, seed=9)
        assert problem.is_field_free
        assert problem.num_couplings == 28
        again = sk_problem(8, seed=9)
        assert problem.couplings == again.couplings
        spins = sk_problem(8, seed=9, distribution="spin")
        scale = 1.0 / np.sqrt(8)
        assert all(abs(j) == pytest.approx(scale) for j in spins.couplings.values())
        with pytest.raises(ValueError, match="distribution"):
            sk_problem(8, distribution="bogus")
        with pytest.raises(ValueError, match="num_spins"):
            sk_problem(1)
