"""Tests for repro.quantum.trajectories."""

import numpy as np
import pytest

from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density_matrix import DensityMatrixSimulator
from repro.quantum.noise import NoiseModel, ReadoutError, depolarizing_error, pauli_error
from repro.quantum.statevector import StatevectorSimulator
from repro.quantum.trajectories import TrajectorySimulator


class TestNoiselessPath:
    def test_matches_statevector_without_noise(self):
        qc = QuantumCircuit(3)
        qc.h(0)
        qc.cx(0, 1)
        qc.rzz(0.9, 1, 2)
        traj = TrajectorySimulator(trajectories=4)
        probs = traj.probabilities(qc, noise_model=None, seed=0)
        expected = StatevectorSimulator().probabilities(qc)
        assert np.allclose(probs, expected)

    def test_trivial_noise_model_single_trajectory(self):
        qc = QuantumCircuit(2)
        qc.h(0)
        traj = TrajectorySimulator(trajectories=100)
        probs = traj.probabilities(qc, NoiseModel(), seed=0)
        expected = StatevectorSimulator().probabilities(qc)
        assert np.allclose(probs, expected)


class TestStochasticNoise:
    def test_deterministic_pauli_error(self):
        # X with probability 1 after the identity gate: |0> -> |1> always.
        model = NoiseModel()
        model.add_all_qubit_quantum_error(pauli_error({"X": 1.0}), "i")
        qc = QuantumCircuit(1)
        qc.append("i", (0,))
        traj = TrajectorySimulator(trajectories=3)
        probs = traj.probabilities(qc, model, seed=1)
        assert probs[1] == pytest.approx(1.0)

    def test_converges_to_density_matrix(self):
        """Trajectory average approaches the exact DM result for a Pauli channel."""
        model = NoiseModel()
        model.add_all_qubit_quantum_error(
            pauli_error({"I": 0.7, "X": 0.1, "Y": 0.1, "Z": 0.1}), "h"
        )
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.h(1)
        qc.cx(0, 1)
        exact = DensityMatrixSimulator().probabilities(qc, model)
        traj = TrajectorySimulator(trajectories=3000)
        approx = traj.probabilities(qc, model, seed=7)
        assert np.abs(exact - approx).max() < 0.03

    def test_seed_reproducibility(self):
        model = NoiseModel()
        model.add_all_qubit_quantum_error(depolarizing_error(0.3, 1), "h")
        qc = QuantumCircuit(2)
        qc.h(0)
        qc.h(1)
        traj = TrajectorySimulator(trajectories=10)
        a = traj.probabilities(qc, model, seed=5)
        b = traj.probabilities(qc, model, seed=5)
        assert np.array_equal(a, b)

    def test_readout_error_applied(self):
        model = NoiseModel()
        model.add_readout_error(ReadoutError(1.0, 1.0), 0)
        qc = QuantumCircuit(1)
        qc.append("i", (0,))
        traj = TrajectorySimulator(trajectories=2)
        probs = traj.probabilities(qc, model, seed=0)
        assert probs[1] == pytest.approx(1.0)

    def test_expectation_diagonal(self):
        model = NoiseModel()
        model.add_all_qubit_quantum_error(pauli_error({"X": 1.0}), "i")
        qc = QuantumCircuit(1)
        qc.append("i", (0,))
        traj = TrajectorySimulator(trajectories=2)
        value = traj.expectation_diagonal(qc, np.array([0.0, 5.0]), model, seed=0)
        assert value == pytest.approx(5.0)


class TestValidation:
    def test_trajectories_must_be_positive(self):
        with pytest.raises(ValueError):
            TrajectorySimulator(trajectories=0)

    def test_max_qubits_guard(self):
        traj = TrajectorySimulator(trajectories=1, max_qubits=2)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            traj.run_single(QuantumCircuit(3), None, rng)

    def test_diagonal_shape_checked(self):
        traj = TrajectorySimulator(trajectories=1)
        with pytest.raises(ValueError):
            traj.expectation_diagonal(QuantumCircuit(2), np.array([1.0]), None)
