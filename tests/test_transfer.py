"""Tests for repro.transfer.parameter_transfer."""

import networkx as nx
import pytest

from repro.transfer import (
    four_ary_tree_graph,
    perturb_graph,
    random_regular_donor,
    star_graph,
    transfer_landscape_mse,
)


class TestPerturbGraph:
    def test_edge_count_preserved(self):
        g = nx.random_regular_graph(3, 12, seed=0)
        perturbed = perturb_graph(g, 0.1, seed=0)
        assert perturbed.number_of_edges() == g.number_of_edges()

    def test_stays_connected(self):
        g = nx.random_regular_graph(3, 14, seed=1)
        perturbed = perturb_graph(g, 0.2, seed=1)
        assert nx.is_connected(perturbed)

    def test_becomes_irregular(self):
        g = nx.random_regular_graph(4, 12, seed=2)
        perturbed = perturb_graph(g, 0.15, seed=2)
        degrees = {d for _, d in perturbed.degree()}
        assert len(degrees) > 1

    def test_zero_fraction_is_identity(self):
        g = nx.random_regular_graph(3, 10, seed=3)
        perturbed = perturb_graph(g, 0.0, seed=3)
        assert set(perturbed.edges()) == set(g.edges())

    def test_original_not_mutated(self):
        g = nx.random_regular_graph(3, 10, seed=4)
        edges_before = set(g.edges())
        perturb_graph(g, 0.3, seed=4)
        assert set(g.edges()) == edges_before

    def test_fraction_validated(self):
        with pytest.raises(ValueError):
            perturb_graph(nx.path_graph(4), 1.5)


class TestDonor:
    def test_regular_and_connected(self):
        donor = random_regular_donor(3, 8, seed=0)
        degrees = {d for _, d in donor.degree()}
        assert degrees == {3}
        assert nx.is_connected(donor)

    def test_parity_fixup(self):
        # 3-regular on 7 nodes is impossible; the donor bumps to 8.
        donor = random_regular_donor(3, 7, seed=0)
        assert donor.number_of_nodes() == 8

    def test_small_count_bumped(self):
        donor = random_regular_donor(4, 3, seed=0)
        assert donor.number_of_nodes() >= 5

    def test_degree_validated(self):
        with pytest.raises(ValueError):
            random_regular_donor(0, 5)


class TestStructuredGraphs:
    def test_star(self):
        g = star_graph(30)
        assert g.number_of_nodes() == 30
        assert g.number_of_edges() == 29

    def test_four_ary_tree(self):
        g = four_ary_tree_graph(30)
        assert g.number_of_nodes() == 30
        assert nx.is_tree(g)

    def test_validation(self):
        with pytest.raises(ValueError):
            star_graph(1)


class TestTransferMse:
    def test_identical_graph_near_zero(self):
        g = nx.random_regular_graph(3, 10, seed=0)
        assert transfer_landscape_mse(g, g, width=10) == pytest.approx(0.0, abs=1e-12)

    def test_regular_to_regular_transfers_well(self):
        """Same-degree regular graphs share landscapes (prior work's case)."""
        a = nx.random_regular_graph(3, 12, seed=1)
        b = nx.random_regular_graph(3, 8, seed=2)
        assert transfer_landscape_mse(a, b, width=12) < 0.02

    def test_irregular_transfer_degrades(self):
        """A star is about as irregular as it gets; a regular donor's
        landscape is far away (Fig. 21's Star_30 column)."""
        star = star_graph(20)
        donor = random_regular_donor(2, 10, seed=0)
        star_mse = transfer_landscape_mse(star, donor, width=12)
        regular = nx.random_regular_graph(2, 14, seed=1)
        regular_mse = transfer_landscape_mse(regular, donor, width=12)
        assert star_mse > regular_mse
