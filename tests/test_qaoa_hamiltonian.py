"""Tests for repro.qaoa.hamiltonian."""

import networkx as nx
import numpy as np
import pytest

from repro.qaoa.hamiltonian import MaxCutHamiltonian, cut_values


class TestCutValues:
    def test_single_edge(self):
        g = nx.Graph([(0, 1)])
        assert np.array_equal(cut_values(g), [0, 1, 1, 0])

    def test_triangle(self):
        values = cut_values(nx.cycle_graph(3))
        # Triangle: all-same -> 0 cut; any split -> 2 edges cut.
        assert values[0] == 0 and values[7] == 0
        assert all(values[z] == 2 for z in range(1, 7))

    def test_square_maximum(self):
        values = cut_values(nx.cycle_graph(4))
        assert values.max() == 4  # bipartite: all edges cut
        assert values[0b0101] == 4

    def test_complement_symmetry(self):
        """Flipping all bits leaves every cut unchanged."""
        g = nx.erdos_renyi_graph(6, 0.5, seed=3)
        values = cut_values(g)
        n = 6
        flipped = values[np.arange(2**n) ^ (2**n - 1)]
        assert np.array_equal(values, flipped)

    def test_values_bounded_by_edge_count(self):
        g = nx.erdos_renyi_graph(7, 0.4, seed=1)
        values = cut_values(g)
        assert values.min() >= 0
        assert values.max() <= g.number_of_edges()

    def test_requires_range_labels(self):
        g = nx.Graph([(10, 20)])
        with pytest.raises(ValueError):
            cut_values(g)

    def test_size_guard(self):
        g = nx.path_graph(30)
        with pytest.raises(ValueError):
            cut_values(g)


class TestMaxCutHamiltonian:
    def test_relabels_arbitrary_nodes(self):
        g = nx.Graph([("a", "b"), ("b", "c")])
        ham = MaxCutHamiltonian(g)
        assert ham.num_qubits == 3
        assert ham.num_edges == 2

    def test_diagonal_cached(self):
        ham = MaxCutHamiltonian(nx.cycle_graph(4))
        assert ham.diagonal is ham.diagonal

    def test_max_value_path(self):
        # Path P4: bipartite, cut all 3 edges.
        ham = MaxCutHamiltonian(nx.path_graph(4))
        assert ham.max_value() == 3.0

    def test_max_value_complete_graph(self):
        # K4: best cut is 2+2 split -> 4 edges.
        ham = MaxCutHamiltonian(nx.complete_graph(4))
        assert ham.max_value() == 4.0

    def test_edges_sorted(self):
        ham = MaxCutHamiltonian(nx.Graph([(2, 0), (1, 0)]))
        assert ham.edges == [(0, 1), (0, 2)]
