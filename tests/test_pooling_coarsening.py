"""Tests for repro.pooling.coarsening (heavy-edge matching)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pooling import HeavyEdgeCoarsening, get_pooler
from repro.qaoa.hamiltonian import MaxCutHamiltonian


def _connected_er(n, p, seed):
    offset = 0
    while True:
        g = nx.erdos_renyi_graph(n, p, seed=seed + offset)
        if g.number_of_edges() and nx.is_connected(g):
            return g
        offset += 100


class TestCoarsening:
    def test_target_size_reached(self):
        g = _connected_er(12, 0.4, 0)
        pooled = HeavyEdgeCoarsening(seed=0).pool(g, 7)
        assert pooled.number_of_nodes() == 7

    def test_single_contraction(self):
        g = nx.path_graph(4)
        pooled = HeavyEdgeCoarsening(seed=0).pool(g, 3)
        assert pooled.number_of_nodes() == 3
        assert nx.is_connected(pooled)

    def test_weights_accumulate_on_triangle(self):
        # Contracting one triangle edge merges the two remaining edges into
        # a single weight-2 edge.
        g = nx.cycle_graph(3)
        pooled = HeavyEdgeCoarsening(seed=0).pool(g, 2)
        assert pooled.number_of_nodes() == 2
        assert pooled.number_of_edges() == 1
        (w,) = [d["weight"] for _, _, d in pooled.edges(data=True)]
        assert w == 2.0

    def test_total_weight_conserved_minus_contracted(self):
        g = _connected_er(10, 0.5, 1)
        total_before = g.number_of_edges()  # unit weights
        coarse = HeavyEdgeCoarsening(seed=1).pool(g, 7)
        total_after = sum(d["weight"] for _, _, d in coarse.edges(data=True))
        # Exactly the contracted (intra-super-node) edges disappear; on a
        # simple graph each contraction removes at least 1, at most n edges.
        assert total_after <= total_before
        assert total_after >= total_before - 3 * (10 - 7)

    def test_preserves_connectivity(self):
        for seed in range(4):
            g = _connected_er(11, 0.35, seed)
            coarse = HeavyEdgeCoarsening(seed=seed).pool(g, 6)
            assert nx.is_connected(coarse)

    def test_result_usable_by_weighted_qaoa(self):
        g = _connected_er(9, 0.45, 2)
        coarse = HeavyEdgeCoarsening(seed=2).pool(g, 6)
        ham = MaxCutHamiltonian(coarse)
        assert ham.is_weighted or coarse.number_of_edges() == 0
        assert ham.diagonal.max() > 0

    def test_size_validation(self):
        g = nx.path_graph(5)
        with pytest.raises(ValueError):
            HeavyEdgeCoarsening().pool(g, 0)
        with pytest.raises(ValueError):
            HeavyEdgeCoarsening().pool(g, 6)

    def test_factory_registration(self):
        assert isinstance(get_pooler("coarsen"), HeavyEdgeCoarsening)

    def test_full_size_is_copy(self):
        g = _connected_er(8, 0.5, 3)
        same = HeavyEdgeCoarsening(seed=3).pool(g, 8)
        assert same.number_of_nodes() == 8
        assert same.number_of_edges() == g.number_of_edges()


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**5),
    shrink=st.integers(min_value=1, max_value=5),
)
def test_property_coarsening_invariants(seed, shrink):
    """Connectivity and positive integer-ish weights hold for any input."""
    g = _connected_er(8 + seed % 4, 0.45, seed)
    target = max(2, g.number_of_nodes() - shrink)
    coarse = HeavyEdgeCoarsening(seed=seed).pool(g, target)
    assert coarse.number_of_nodes() == target
    assert nx.is_connected(coarse) or coarse.number_of_edges() == 0
    for _, _, d in coarse.edges(data=True):
        assert d["weight"] >= 1.0
