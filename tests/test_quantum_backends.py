"""Tests for repro.quantum.backends."""

import pytest

from repro.quantum.backends import get_backend, list_backends
from repro.quantum.circuit import Instruction


EXPECTED_SIZES = {
    "kolkata": 27,
    "auckland": 27,
    "cairo": 27,
    "mumbai": 27,
    "toronto": 27,
    "guadalupe": 16,
    "melbourne": 14,
    "eagle_33": 33,
    "hummingbird_65": 65,
    "eagle_127": 127,
    "sherbrooke": 127,
    "aspen_m3": 79,
}


class TestRegistry:
    def test_all_expected_backends_present(self):
        assert set(list_backends()) == set(EXPECTED_SIZES)

    @pytest.mark.parametrize("name", sorted(EXPECTED_SIZES))
    def test_qubit_counts(self, name):
        assert get_backend(name).num_qubits == EXPECTED_SIZES[name]

    def test_unknown_backend(self):
        with pytest.raises(KeyError):
            get_backend("not_a_device")

    def test_fig24_error_ordering(self):
        """Kolkata has the lowest error, retired Toronto/Melbourne highest."""
        errors = {name: get_backend(name).error_2q for name in (
            "kolkata", "auckland", "cairo", "mumbai", "toronto", "melbourne"
        )}
        assert errors["kolkata"] == min(errors.values())
        assert errors["toronto"] > errors["mumbai"]
        assert errors["melbourne"] == max(errors.values())

    def test_rigetti_basis_differs(self):
        assert "cz" in get_backend("aspen_m3").basis_gates
        assert "cx" in get_backend("kolkata").basis_gates


class TestNoiseModelConstruction:
    def test_model_is_cached(self):
        backend = get_backend("kolkata")
        assert backend.build_noise_model() is backend.build_noise_model()

    def test_model_covers_gates(self):
        model = get_backend("kolkata").build_noise_model()
        names = model.noisy_gate_names()
        assert "cx" in names
        assert "sx" in names
        assert "rz" not in names  # virtual gate: error-free

    def test_two_qubit_error_dominates(self):
        model = get_backend("kolkata").build_noise_model()
        err_1q = model.errors_for(Instruction("x", (0,)))[0].to_pauli()
        err_2q = model.errors_for(Instruction("cx", (0, 1)))[0].to_pauli()
        assert (1 - err_2q["II"]) > (1 - err_1q["I"])

    def test_readout_error_on_all_qubits(self):
        backend = get_backend("guadalupe")
        model = backend.build_noise_model()
        for q in range(backend.num_qubits):
            assert model.readout_error(q) is not None

    def test_pauli_probabilities_normalized(self):
        model = get_backend("toronto").build_noise_model()
        for inst in (Instruction("x", (0,)), Instruction("cx", (0, 1))):
            for error in model.errors_for(inst):
                assert sum(error.to_pauli().values()) == pytest.approx(1.0)

    def test_gate_time_lookup(self):
        backend = get_backend("kolkata")
        assert backend.gate_time("cx") == backend.time_2q
        assert backend.gate_time("sx") == backend.time_1q
        with pytest.raises(KeyError):
            backend.gate_time("nope")
