"""Cross-engine agreement on weighted MaxCut instances.

Regression suite for the lightcone weight bug: the seed's
``lightcone_expectation`` evolved states under the weighted Hamiltonian but
read out the *unweighted* cut indicator and memoized by a weight-blind
signature, so any weighted graph dispatched to the lightcone path got a
silently wrong answer.  These tests pin the corrected behavior and assert
all three exact engines agree on random weighted instances.
"""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import attach_weights
from repro.qaoa.analytic import maxcut_p1_expectation
from repro.qaoa.expectation import maxcut_expectation
from repro.qaoa.fast_sim import qaoa_expectation_fast
from repro.qaoa.hamiltonian import MaxCutHamiltonian
from repro.qaoa.lightcone import lightcone_expectation


def _weighted_sparse(n, p_edge, seed, distribution="uniform"):
    offset = 0
    while True:
        g = nx.erdos_renyi_graph(n, p_edge, seed=seed + offset)
        if g.number_of_edges() and nx.is_connected(g):
            break
        offset += 100
    return attach_weights(g, distribution, seed=seed)


def _weighted_six_cycle():
    g = nx.cycle_graph(6)
    for (u, v), w in zip(g.edges(), [0.5, 1.5, 0.9, 1.2, 2.0, 0.7]):
        g[u][v]["weight"] = w
    return g


class TestWeightedLightconeRegression:
    def test_pinned_weighted_cycle_value(self):
        """The exact value the seed's lightcone engine got wrong."""
        g = _weighted_six_cycle()
        value = lightcone_expectation(g, [0.6], [0.35])
        assert value == pytest.approx(5.2609333244663095, abs=1e-9)
        # The seed returned the unweighted readout of one shared cache
        # entry times the edge count -- make sure that never comes back.
        assert value != pytest.approx(3.646211448855615, abs=1e-6)

    def test_weighted_cycle_matches_statevector(self):
        g = _weighted_six_cycle()
        exact = qaoa_expectation_fast(MaxCutHamiltonian(g), [0.6], [0.35])
        assert lightcone_expectation(g, [0.6], [0.35]) == pytest.approx(exact, abs=1e-9)

    def test_signature_distinguishes_weights(self):
        """Same topology, different weights: no cache cross-talk."""
        g = _weighted_six_cycle()
        h = nx.cycle_graph(6)
        for u, v in h.edges():
            h[u][v]["weight"] = 1.0
        weighted = lightcone_expectation(g, [0.6], [0.35])
        unit = lightcone_expectation(h, [0.6], [0.35])
        assert weighted != pytest.approx(unit, abs=1e-6)
        assert unit == pytest.approx(
            lightcone_expectation(nx.cycle_graph(6), [0.6], [0.35]), abs=1e-12
        )

    def test_acceptance_24_node_weighted_p2(self):
        """Acceptance criterion: weighted 24-node p=2 graph on the auto
        (lightcone) path matches a direct statevector computation to 1e-9."""
        g = attach_weights(nx.random_regular_graph(3, 24, seed=5), "uniform", seed=5)
        gammas, betas = [0.7, 0.3], [0.25, 0.5]
        auto = maxcut_expectation(g, gammas, betas)
        direct = maxcut_expectation(g, gammas, betas, method="statevector")
        assert auto == pytest.approx(direct, abs=1e-9)

    def test_spin_glass_couplings(self):
        """+/-1 couplings (negative weights) agree across engines."""
        g = _weighted_sparse(10, 0.25, 3, distribution="spin")
        exact = qaoa_expectation_fast(MaxCutHamiltonian(g), [0.8, 0.4], [0.3, 0.6])
        cone = lightcone_expectation(g, [0.8, 0.4], [0.3, 0.6])
        assert cone == pytest.approx(exact, abs=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    gamma=st.floats(min_value=0.0, max_value=2 * np.pi),
    beta=st.floats(min_value=0.0, max_value=np.pi),
)
def test_property_p1_three_engines_agree_weighted(seed, gamma, beta):
    """p=1: statevector, analytic (weighted product form) and lightcone all
    compute the same expectation on random weighted graphs."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(5, 10))
    g = _weighted_sparse(n, 0.3, seed)
    exact = qaoa_expectation_fast(MaxCutHamiltonian(g), [gamma], [beta])
    analytic = maxcut_p1_expectation(g, gamma, beta)
    cone = lightcone_expectation(g, [gamma], [beta])
    assert analytic == pytest.approx(exact, abs=1e-8)
    assert cone == pytest.approx(exact, abs=1e-8)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    gamma1=st.floats(min_value=0.0, max_value=2 * np.pi),
    gamma2=st.floats(min_value=0.0, max_value=2 * np.pi),
    beta1=st.floats(min_value=0.0, max_value=np.pi),
    beta2=st.floats(min_value=0.0, max_value=np.pi),
)
def test_property_p2_lightcone_matches_statevector_weighted(
    seed, gamma1, gamma2, beta1, beta2
):
    """p=2: lightcone agrees with the exact statevector engine on random
    weighted sparse graphs."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(6, 11))
    g = _weighted_sparse(n, 0.25, seed)
    gammas, betas = [gamma1, gamma2], [beta1, beta2]
    exact = qaoa_expectation_fast(MaxCutHamiltonian(g), gammas, betas)
    cone = lightcone_expectation(g, gammas, betas)
    assert cone == pytest.approx(exact, abs=1e-8)


class TestAutoDispatchWeighted:
    def test_large_weighted_p1_routes_analytic(self):
        """Above exact_limit at p=1 the analytic weighted form is used and
        agrees with the lightcone engine."""
        g = attach_weights(nx.random_regular_graph(3, 30, seed=2), "gaussian", seed=2)
        auto = maxcut_expectation(g, [0.5], [0.3])
        cone = maxcut_expectation(g, [0.5], [0.3], method="lightcone")
        assert auto == pytest.approx(cone, abs=1e-9)

    def test_small_weighted_routes_statevector(self):
        g = _weighted_sparse(8, 0.4, 11)
        auto = maxcut_expectation(g, [0.5, 0.2], [0.3, 0.1])
        exact = qaoa_expectation_fast(MaxCutHamiltonian(g), [0.5, 0.2], [0.3, 0.1])
        assert auto == exact
