"""Tests for repro.quantum.noise."""

import math

import numpy as np
import pytest

from repro.quantum.circuit import Instruction
from repro.quantum.noise import (
    NoiseModel,
    QuantumError,
    ReadoutError,
    amplitude_damping_error,
    depolarizing_error,
    pauli_error,
    phase_damping_error,
    thermal_relaxation_error,
)


class TestPauliError:
    def test_identity_channel(self):
        err = pauli_error({"I": 1.0})
        assert err.num_qubits == 1
        assert len(err.kraus) == 1

    def test_bit_flip(self):
        err = pauli_error({"I": 0.9, "X": 0.1})
        probs = err.to_pauli()
        assert probs["X"] == pytest.approx(0.1)

    def test_probs_must_sum_to_one(self):
        with pytest.raises(ValueError):
            pauli_error({"I": 0.5, "X": 0.1})

    def test_inconsistent_widths(self):
        with pytest.raises(ValueError):
            pauli_error({"I": 0.5, "XX": 0.5})

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            pauli_error({})

    def test_two_qubit_labels(self):
        err = pauli_error({"II": 0.8, "XZ": 0.2})
        assert err.num_qubits == 2
        assert err.kraus[0].shape == (4, 4)


class TestDepolarizing:
    def test_zero_param_is_identity(self):
        probs = depolarizing_error(0.0, 1).to_pauli()
        assert probs["I"] == pytest.approx(1.0)

    def test_uniform_nonidentity(self):
        probs = depolarizing_error(0.3, 1).to_pauli()
        for label in ("X", "Y", "Z"):
            assert probs[label] == pytest.approx(0.3 / 4)

    def test_two_qubit_support(self):
        probs = depolarizing_error(0.16, 2).to_pauli()
        assert len(probs) == 16
        assert probs["II"] == pytest.approx(1 - 0.16 + 0.16 / 16)

    def test_param_range_checked(self):
        with pytest.raises(ValueError):
            depolarizing_error(-0.1, 1)
        with pytest.raises(ValueError):
            depolarizing_error(1.1, 1)

    def test_completeness(self):
        err = depolarizing_error(0.2, 2)
        total = sum(k.conj().T @ k for k in err.kraus)
        assert np.allclose(total, np.eye(4))


class TestDampingChannels:
    def test_amplitude_damping_completeness(self):
        err = amplitude_damping_error(0.3)
        total = sum(k.conj().T @ k for k in err.kraus)
        assert np.allclose(total, np.eye(2))

    def test_amplitude_damping_decays_one(self):
        gamma = 0.25
        err = amplitude_damping_error(gamma)
        rho1 = np.array([[0, 0], [0, 1]], dtype=complex)
        out = sum(k @ rho1 @ k.conj().T for k in err.kraus)
        assert out[0, 0] == pytest.approx(gamma)
        assert out[1, 1] == pytest.approx(1 - gamma)

    def test_phase_damping_is_pauli_z_channel(self):
        lam = 0.36
        probs = phase_damping_error(lam).to_pauli()
        expected_pz = (1 - math.sqrt(1 - lam)) / 2
        assert probs["Z"] == pytest.approx(expected_pz)

    def test_gamma_range(self):
        with pytest.raises(ValueError):
            amplitude_damping_error(1.5)
        with pytest.raises(ValueError):
            phase_damping_error(-0.1)


class TestThermalRelaxation:
    def test_zero_time_is_identity(self):
        err = thermal_relaxation_error(50e-6, 70e-6, 0.0)
        rho = np.array([[0.3, 0.2], [0.2, 0.7]], dtype=complex)
        out = sum(k @ rho @ k.conj().T for k in err.kraus)
        assert np.allclose(out, rho)

    def test_long_time_decays_to_ground(self):
        err = thermal_relaxation_error(1e-6, 1e-6, 1.0)
        rho = np.array([[0, 0], [0, 1]], dtype=complex)
        out = sum(k @ rho @ k.conj().T for k in err.kraus)
        assert out[0, 0] == pytest.approx(1.0, abs=1e-6)

    def test_t2_bound_enforced(self):
        with pytest.raises(ValueError):
            thermal_relaxation_error(10e-6, 25e-6, 1e-7)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            thermal_relaxation_error(1e-5, 1e-5, -1e-9)

    def test_twirl_probabilities_sum_to_one(self):
        probs = thermal_relaxation_error(100e-6, 80e-6, 300e-9).to_pauli()
        assert sum(probs.values()) == pytest.approx(1.0)
        assert probs["I"] > 0.99  # short gate: mostly no error


class TestQuantumError:
    def test_bad_completeness_rejected(self):
        bad = [np.array([[1, 0], [0, 0.5]], dtype=complex)]
        with pytest.raises(ValueError):
            QuantumError(bad, 1)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            QuantumError([np.eye(2, dtype=complex)], 2)

    def test_compose_pauli_channels(self):
        a = pauli_error({"I": 0.9, "X": 0.1})
        b = pauli_error({"I": 0.8, "X": 0.2})
        composed = a.compose(b).to_pauli()
        # X survives if exactly one applies: 0.9*0.2 + 0.1*0.8 = 0.26
        assert composed["X"] == pytest.approx(0.26)
        assert composed["I"] == pytest.approx(0.74)

    def test_compose_width_mismatch(self):
        with pytest.raises(ValueError):
            pauli_error({"I": 1.0}).compose(pauli_error({"II": 1.0}))

    def test_twirl_of_pauli_channel_is_exact(self):
        probs = {"I": 0.7, "X": 0.1, "Y": 0.05, "Z": 0.15}
        err = QuantumError(pauli_error(probs).kraus, 1)  # drop pauli annotation
        twirled = err.to_pauli()
        for label, p in probs.items():
            assert twirled[label] == pytest.approx(p, abs=1e-10)


class TestReadoutError:
    def test_confusion_matrix_columns_sum_to_one(self):
        ro = ReadoutError(0.02, 0.05)
        assert np.allclose(ro.confusion_matrix.sum(axis=0), [1, 1])

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            ReadoutError(1.2, 0.0)
        with pytest.raises(ValueError):
            ReadoutError(0.0, -0.1)


class TestNoiseModel:
    def test_trivial_by_default(self):
        assert NoiseModel().is_trivial

    def test_all_qubit_error_lookup(self):
        model = NoiseModel()
        err = depolarizing_error(0.1, 1)
        model.add_all_qubit_quantum_error(err, "x")
        inst = Instruction("x", (2,))
        assert model.errors_for(inst) == [err]
        assert model.errors_for(Instruction("h", (0,))) == []

    def test_local_error_overrides_global(self):
        model = NoiseModel()
        global_err = depolarizing_error(0.1, 1)
        local_err = depolarizing_error(0.5, 1)
        model.add_all_qubit_quantum_error(global_err, "x")
        model.add_quantum_error(local_err, "x", (3,))
        assert model.errors_for(Instruction("x", (3,))) == [local_err]
        assert model.errors_for(Instruction("x", (1,))) == [global_err]

    def test_multiple_gate_names(self):
        model = NoiseModel()
        err = depolarizing_error(0.05, 1)
        model.add_all_qubit_quantum_error(err, ["x", "sx"])
        assert model.errors_for(Instruction("sx", (0,))) == [err]

    def test_noisy_gate_names(self):
        model = NoiseModel()
        model.add_all_qubit_quantum_error(depolarizing_error(0.1, 2), "cx")
        model.add_quantum_error(depolarizing_error(0.1, 1), "x", (0,))
        assert model.noisy_gate_names() == {"cx", "x"}

    def test_readout_application_uniform_flip(self):
        model = NoiseModel()
        model.add_readout_error(ReadoutError(0.5, 0.5), 0)
        probs = np.array([1.0, 0.0])
        flipped = model.apply_readout_to_probs(probs, 1)
        assert np.allclose(flipped, [0.5, 0.5])

    def test_readout_only_affects_registered_qubit(self):
        model = NoiseModel()
        model.add_readout_error(ReadoutError(1.0, 1.0), 1)
        probs = np.zeros(4)
        probs[0] = 1.0  # |00>
        flipped = model.apply_readout_to_probs(probs, 2)
        # qubit 1 always flips: |00> -> |10> = index 2
        assert flipped[2] == pytest.approx(1.0)

    def test_readout_shape_checked(self):
        model = NoiseModel()
        with pytest.raises(ValueError):
            model.apply_readout_to_probs(np.array([1.0, 0.0]), 2)

    def test_readout_preserves_total_probability(self):
        model = NoiseModel()
        model.add_readout_error(ReadoutError(0.03, 0.08), 0)
        model.add_readout_error(ReadoutError(0.02, 0.02), 2)
        rng = np.random.default_rng(0)
        probs = rng.random(8)
        probs /= probs.sum()
        out = model.apply_readout_to_probs(probs, 3)
        assert out.sum() == pytest.approx(1.0)
