"""Tests for repro.quantum.transpiler."""

import numpy as np
import pytest

from repro.quantum.backends import get_backend
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.coupling import line_map, ring_map
from repro.quantum.statevector import StatevectorSimulator
from repro.quantum.transpiler import decompose_to_basis, route_sabre, transpile

IBM_BASIS = ("rz", "sx", "x", "cx")
RIGETTI_BASIS = ("rz", "rx", "cz")


def _probs(circuit: QuantumCircuit) -> np.ndarray:
    return StatevectorSimulator().probabilities(circuit)


def _random_circuit(n: int, depth: int, seed: int) -> QuantumCircuit:
    rng = np.random.default_rng(seed)
    qc = QuantumCircuit(n)
    for q in range(n):
        qc.h(q)
    for _ in range(depth):
        if rng.random() < 0.5:
            qc.rx(float(rng.uniform(0, 6)), int(rng.integers(n)))
        else:
            a, b = rng.choice(n, size=2, replace=False)
            qc.rzz(float(rng.uniform(0, 6)), int(a), int(b))
    return qc


class TestDecomposition:
    @pytest.mark.parametrize("basis", [IBM_BASIS, RIGETTI_BASIS])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_probabilities_preserved(self, basis, seed):
        qc = _random_circuit(3, 8, seed)
        decomposed = decompose_to_basis(qc, basis)
        assert np.allclose(_probs(qc), _probs(decomposed), atol=1e-10)

    @pytest.mark.parametrize("basis", [IBM_BASIS, RIGETTI_BASIS])
    def test_only_basis_gates_remain(self, basis):
        qc = _random_circuit(3, 10, 7)
        qc.swap(0, 2)
        qc.u3(0.1, 0.2, 0.3, 1)
        qc.y(0)
        qc.cz(0, 1)
        for inst in decompose_to_basis(qc, basis):
            assert inst.name in basis

    def test_h_decomposition_state(self):
        qc = QuantumCircuit(1)
        qc.h(0)
        decomposed = decompose_to_basis(qc, IBM_BASIS)
        assert np.allclose(_probs(qc), _probs(decomposed))

    def test_rz_merging(self):
        qc = QuantumCircuit(1)
        qc.rz(0.3, 0)
        qc.rz(0.4, 0)
        qc.rz(-0.7, 0)
        merged = decompose_to_basis(qc, IBM_BASIS)
        assert len(merged) == 0  # angles cancel entirely

    def test_rz_merge_blocked_by_other_gate(self):
        qc = QuantumCircuit(1)
        qc.rz(0.3, 0)
        qc.x(0)
        qc.rz(0.4, 0)
        merged = decompose_to_basis(qc, IBM_BASIS)
        assert merged.count_ops().get("rz", 0) == 2


class TestRouting:
    def test_adjacent_gates_untouched(self):
        qc = QuantumCircuit(3)
        qc.cx(0, 1)
        qc.cx(1, 2)
        routed, _, swaps = route_sabre(qc, line_map(3), {0: 0, 1: 1, 2: 2})
        assert swaps == 0
        assert len(routed) == 2

    def test_distant_gate_needs_swaps(self):
        qc = QuantumCircuit(4)
        qc.cx(0, 3)
        routed, _, swaps = route_sabre(qc, line_map(4), {i: i for i in range(4)})
        assert swaps >= 1

    def test_all_two_qubit_gates_executable(self):
        qc = _random_circuit(5, 15, 3)
        cm = ring_map(5)
        routed, _, _ = route_sabre(qc, cm, {i: i for i in range(5)})
        for inst in routed:
            if len(inst.qubits) == 2 and inst.name != "swap":
                assert cm.are_adjacent(*inst.qubits)
            elif inst.name == "swap":
                assert cm.are_adjacent(*inst.qubits)

    def test_routing_preserves_semantics_on_line(self):
        """Simulate routed circuit and undo the final permutation."""
        qc = _random_circuit(4, 10, 11)
        cm = line_map(4)
        layout = {i: i for i in range(4)}
        routed, final_layout, _ = route_sabre(qc, cm, layout)
        probs_orig = _probs(qc)
        probs_routed = _probs(routed)
        # Map logical basis index -> physical basis index via final layout.
        n = 4
        remapped = np.zeros_like(probs_routed)
        for z in range(2**n):
            phys = 0
            for logical in range(n):
                bit = (z >> logical) & 1
                phys |= bit << final_layout[logical]
            remapped[z] = probs_routed[phys]
        assert np.allclose(probs_orig, remapped, atol=1e-10)


class TestTranspile:
    def test_full_flow_on_backend(self):
        backend = get_backend("guadalupe")
        qc = _random_circuit(6, 12, 5)
        result = transpile(qc, backend, trials=4, seed=0)
        for inst in result.circuit:
            assert inst.name in backend.basis_gates
        assert result.depth == result.circuit.depth()

    def test_compacted_width_reasonable(self):
        backend = get_backend("kolkata")
        qc = _random_circuit(5, 8, 2)
        result = transpile(qc, backend, trials=2, seed=1, compact=True)
        assert result.circuit.num_qubits <= backend.num_qubits
        assert result.circuit.num_qubits >= 5

    def test_semantics_preserved_through_full_transpile(self):
        backend = get_backend("guadalupe")
        qc = _random_circuit(4, 8, 9)
        result = transpile(qc, backend, trials=3, seed=3, compact=True)
        probs_orig = _probs(qc)
        probs_t = _probs(result.circuit)
        n_t = result.circuit.num_qubits
        remapped = np.zeros(2**4)
        for z in range(2**4):
            phys = 0
            for logical in range(4):
                bit = (z >> logical) & 1
                phys |= bit << result.final_layout[logical]
            remapped[z] = probs_t[phys] if phys < 2**n_t else 0.0
        # Unused compacted qubits stay |0>, so marginalizing is a lookup.
        assert np.allclose(probs_orig, remapped, atol=1e-9)

    def test_more_trials_never_worse(self):
        backend = get_backend("kolkata")
        qc = _random_circuit(7, 20, 4)
        depth_1 = transpile(qc, backend, trials=1, seed=0).depth
        depth_10 = transpile(qc, backend, trials=10, seed=0).depth
        assert depth_10 <= depth_1

    def test_too_wide_circuit_rejected(self):
        backend = get_backend("melbourne")
        with pytest.raises(ValueError):
            transpile(QuantumCircuit(20), backend)

    def test_requires_target(self):
        with pytest.raises(ValueError):
            transpile(QuantumCircuit(2))

    def test_coupling_map_only(self):
        qc = _random_circuit(3, 5, 8)
        result = transpile(qc, coupling_map=line_map(5), trials=2, seed=0)
        assert result.circuit.num_qubits >= 3
