"""Tests for repro.core.cache (cross-instance reduction reuse)."""

import networkx as nx
import numpy as np
import pytest

from repro.core.cache import ReductionCache
from repro.core.reduction import GraphReducer
from repro.qaoa.landscape import compute_landscape, landscape_mse


def _connected_er(n, p, seed):
    offset = 0
    while True:
        g = nx.erdos_renyi_graph(n, p, seed=seed + offset)
        if g.number_of_edges() and nx.is_connected(g):
            return g
        offset += 100


class TestBasics:
    def test_first_call_misses_and_banks(self):
        cache = ReductionCache(reducer=GraphReducer(seed=0))
        graph = _connected_er(10, 0.45, 0)
        reduced, hit = cache.reduce(graph)
        assert not hit
        assert cache.misses == 1
        assert cache.size == 1
        assert reduced.number_of_nodes() < 10

    def test_similar_instance_hits(self):
        cache = ReductionCache(reducer=GraphReducer(seed=0))
        base = _connected_er(10, 0.45, 0)
        cache.reduce(base)
        # The paper's 10-vs-11-node scenario: one extra node with a typical
        # number of edges barely moves the AND, so the banked graph applies.
        similar = nx.Graph(base)
        similar.add_edges_from([(10, 0), (10, 1), (10, 2)])
        reduced, hit = cache.reduce(similar)
        assert hit
        assert cache.hits == 1
        assert reduced.number_of_nodes() < similar.number_of_nodes()

    def test_dissimilar_instance_misses(self):
        cache = ReductionCache(reducer=GraphReducer(seed=0))
        sparse = nx.cycle_graph(10)  # AND = 2
        cache.reduce(sparse)
        dense = nx.complete_graph(10)  # AND = 9
        _, hit = cache.reduce(dense)
        assert not hit

    def test_lookup_never_returns_equal_or_larger_graph(self):
        cache = ReductionCache(reducer=GraphReducer(seed=0))
        graph = _connected_er(10, 0.45, 2)
        cache.reduce(graph)
        small = _connected_er(5, 0.6, 3)
        entry = cache.lookup(small)
        if entry is not None:
            assert entry.graph.number_of_nodes() < 5

    def test_eviction(self):
        cache = ReductionCache(reducer=GraphReducer(seed=0), max_entries=2)
        for seed in range(4):
            # Alternate densities to force misses.
            p = 0.3 if seed % 2 == 0 else 0.8
            cache.reduce(_connected_er(9 + seed, p, seed))
        assert cache.size <= 2

    def test_hit_rate_accounting(self):
        cache = ReductionCache(reducer=GraphReducer(seed=0))
        assert cache.hit_rate == 0.0
        cache.reduce(_connected_er(10, 0.45, 4))
        cache.reduce(_connected_er(10, 0.45, 5))
        assert cache.hits + cache.misses == 2
        assert 0.0 <= cache.hit_rate <= 1.0

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            ReductionCache(max_entries=0)

    def test_returned_graph_is_a_copy(self):
        cache = ReductionCache(reducer=GraphReducer(seed=0))
        graph = _connected_er(10, 0.45, 6)
        cache.reduce(graph)
        reused, hit = cache.reduce(_connected_er(11, 0.45, 7))
        reused.add_edge(0, reused.number_of_nodes())
        # Mutating the returned graph must not corrupt the bank.
        again, _ = cache.reduce(_connected_er(11, 0.45, 8))
        assert again.number_of_nodes() <= 11


class TestLandscapeQualityOfHits:
    def test_cache_hit_landscape_close_to_query(self):
        """The Sec. 6.1 claim: a banked reduced graph with matching AND has
        a landscape close to the *new* instance's."""
        cache = ReductionCache(reducer=GraphReducer(seed=0))
        base = _connected_er(10, 0.45, 10)
        cache.reduce(base)
        mses = []
        for seed in (11, 12, 13):
            query = _connected_er(11, 0.45, seed)
            reduced, hit = cache.reduce(query)
            if not hit:
                continue
            reference = compute_landscape(query, width=12).values
            candidate = compute_landscape(reduced, width=12).values
            mses.append(landscape_mse(reference, candidate))
        if mses:
            assert np.mean(mses) < 0.08

    def test_stream_of_similar_instances_mostly_hits(self):
        cache = ReductionCache(reducer=GraphReducer(seed=0))
        for seed in range(8):
            cache.reduce(_connected_er(10 + seed % 3, 0.45, 20 + seed))
        assert cache.hit_rate >= 0.5


class TestWeightedIsolation:
    def test_weighted_query_never_hits_unweighted_bank(self):
        """A spin-glass instance must not reuse a weight-blind reduction."""
        from repro.datasets import attach_weights

        cache = ReductionCache(reducer=GraphReducer(seed=0))
        base = _connected_er(10, 0.45, 0)
        cache.reduce(base)
        weighted = attach_weights(
            _connected_er(11, 0.45, 1), "spin", seed=1
        )
        assert cache.lookup(weighted) is None
        _, hit = cache.reduce(weighted)
        assert not hit

    def test_weighted_bank_serves_weighted_queries(self):
        from repro.datasets import attach_weights

        cache = ReductionCache(reducer=GraphReducer(seed=0))
        cache.reduce(attach_weights(_connected_er(10, 0.45, 2), "uniform", seed=2))
        entry = cache._entries[0]
        assert entry.weighted
        similar = attach_weights(_connected_er(11, 0.45, 3), "uniform", seed=3)
        found = cache.lookup(similar)
        if found is not None:
            assert found.weighted
