"""Tests for repro.core.cache (cross-instance reduction reuse)."""

import networkx as nx
import numpy as np
import pytest

from repro.core.cache import ReductionCache
from repro.core.reduction import GraphReducer
from repro.qaoa.landscape import compute_landscape, landscape_mse


def _connected_er(n, p, seed):
    offset = 0
    while True:
        g = nx.erdos_renyi_graph(n, p, seed=seed + offset)
        if g.number_of_edges() and nx.is_connected(g):
            return g
        offset += 100


class TestBasics:
    def test_first_call_misses_and_banks(self):
        cache = ReductionCache(reducer=GraphReducer(seed=0))
        graph = _connected_er(10, 0.45, 0)
        reduced, hit = cache.reduce(graph)
        assert not hit
        assert cache.misses == 1
        assert cache.size == 1
        assert reduced.number_of_nodes() < 10

    def test_similar_instance_hits(self):
        cache = ReductionCache(reducer=GraphReducer(seed=0))
        base = _connected_er(10, 0.45, 0)
        cache.reduce(base)
        # The paper's 10-vs-11-node scenario: one extra node with a typical
        # number of edges barely moves the AND, so the banked graph applies.
        similar = nx.Graph(base)
        similar.add_edges_from([(10, 0), (10, 1), (10, 2)])
        reduced, hit = cache.reduce(similar)
        assert hit
        assert cache.hits == 1
        assert reduced.number_of_nodes() < similar.number_of_nodes()

    def test_dissimilar_instance_misses(self):
        cache = ReductionCache(reducer=GraphReducer(seed=0))
        sparse = nx.cycle_graph(10)  # AND = 2
        cache.reduce(sparse)
        dense = nx.complete_graph(10)  # AND = 9
        _, hit = cache.reduce(dense)
        assert not hit

    def test_lookup_never_returns_equal_or_larger_graph(self):
        cache = ReductionCache(reducer=GraphReducer(seed=0))
        graph = _connected_er(10, 0.45, 2)
        cache.reduce(graph)
        small = _connected_er(5, 0.6, 3)
        entry = cache.lookup(small)
        if entry is not None:
            assert entry.graph.number_of_nodes() < 5

    def test_eviction(self):
        cache = ReductionCache(reducer=GraphReducer(seed=0), max_entries=2)
        for seed in range(4):
            # Alternate densities to force misses.
            p = 0.3 if seed % 2 == 0 else 0.8
            cache.reduce(_connected_er(9 + seed, p, seed))
        assert cache.size <= 2

    def test_hit_rate_accounting(self):
        cache = ReductionCache(reducer=GraphReducer(seed=0))
        assert cache.hit_rate == 0.0
        cache.reduce(_connected_er(10, 0.45, 4))
        cache.reduce(_connected_er(10, 0.45, 5))
        assert cache.hits + cache.misses == 2
        assert 0.0 <= cache.hit_rate <= 1.0

    def test_max_entries_validated(self):
        with pytest.raises(ValueError):
            ReductionCache(max_entries=0)

    def test_returned_graph_is_a_copy(self):
        cache = ReductionCache(reducer=GraphReducer(seed=0))
        graph = _connected_er(10, 0.45, 6)
        cache.reduce(graph)
        reused, hit = cache.reduce(_connected_er(11, 0.45, 7))
        reused.add_edge(0, reused.number_of_nodes())
        # Mutating the returned graph must not corrupt the bank.
        again, _ = cache.reduce(_connected_er(11, 0.45, 8))
        assert again.number_of_nodes() <= 11


class TestLandscapeQualityOfHits:
    def test_cache_hit_landscape_close_to_query(self):
        """The Sec. 6.1 claim: a banked reduced graph with matching AND has
        a landscape close to the *new* instance's."""
        cache = ReductionCache(reducer=GraphReducer(seed=0))
        base = _connected_er(10, 0.45, 10)
        cache.reduce(base)
        mses = []
        for seed in (11, 12, 13):
            query = _connected_er(11, 0.45, seed)
            reduced, hit = cache.reduce(query)
            if not hit:
                continue
            reference = compute_landscape(query, width=12).values
            candidate = compute_landscape(reduced, width=12).values
            mses.append(landscape_mse(reference, candidate))
        if mses:
            assert np.mean(mses) < 0.08

    def test_stream_of_similar_instances_mostly_hits(self):
        cache = ReductionCache(reducer=GraphReducer(seed=0))
        for seed in range(8):
            cache.reduce(_connected_er(10 + seed % 3, 0.45, 20 + seed))
        assert cache.hit_rate >= 0.5


def _synthetic_reduction(banked: nx.Graph, original_nodes: int):
    """A ReductionResult wrapping ``banked`` for direct bank() injection."""
    from repro.core.annealer import AnnealResult
    from repro.core.reduction import ReductionResult

    original = nx.path_graph(original_nodes)
    return ReductionResult(
        original_graph=original,
        nodes=set(banked.nodes()),
        reduced_graph=banked,
        node_mapping={node: node for node in banked.nodes()},
        and_ratio=1.0,
        anneal_result=AnnealResult(
            nodes=set(banked.nodes()), subgraph=nx.Graph(banked),
            objective=0.0, steps=0, history=[0.0],
        ),
    )


class TestIndexAndLRU:
    def test_lookup_matches_linear_scan(self):
        """The bucket index must select exactly what the old O(entries)
        scan selected: the closest-AND acceptable entry."""
        cache = ReductionCache(reducer=GraphReducer(seed=0), max_entries=32)
        for seed in range(10):
            p = (0.25, 0.5, 0.75)[seed % 3]
            cache.reduce(_connected_er(8 + seed % 4, p, 40 + seed))
        from repro.utils.graphs import average_node_strength, is_weighted

        for seed in range(6):
            query = _connected_er(12, (0.3, 0.55, 0.8)[seed % 3], 60 + seed)
            target = average_node_strength(query)
            weighted = is_weighted(query)
            threshold = cache.reducer.and_ratio_threshold
            best, best_gap = None, np.inf
            for entry in cache._entries:
                if entry.graph.number_of_nodes() >= query.number_of_nodes():
                    continue
                if entry.weighted != weighted:
                    continue
                ratio = entry.and_value / target
                ratio = ratio if ratio <= 1.0 else 1.0 / ratio
                if ratio < threshold:
                    continue
                gap = abs(entry.and_value - target)
                if gap < best_gap:
                    best, best_gap = entry, gap
            found = cache.lookup(query)
            if best is None:
                assert found is None
            else:
                assert found is not None
                assert abs(found.and_value - target) == best_gap

    def test_hit_touches_entry_so_lru_eviction_spares_it(self):
        cache = ReductionCache(reducer=GraphReducer(seed=0), max_entries=2)
        hot = nx.cycle_graph(5)  # AND = 2
        cold = nx.complete_graph(5)  # AND = 4
        cache.bank(_synthetic_reduction(hot, 10))
        cache.bank(_synthetic_reduction(cold, 10))
        # Touch the older (hot) entry via a cycle-like query...
        assert cache.lookup(nx.cycle_graph(8)) is not None
        # ...then overflow: the *untouched* complete graph must go.
        cache.bank(_synthetic_reduction(nx.cycle_graph(6), 12))
        assert cache.size == 2
        assert all(entry.and_value < 4.0 for entry in cache._entries)

    def test_fifo_eviction_without_touches(self):
        cache = ReductionCache(reducer=GraphReducer(seed=0), max_entries=2)
        for size in (4, 5, 6):
            cache.bank(_synthetic_reduction(nx.cycle_graph(size), 12))
        assert [entry.graph.number_of_nodes() for entry in cache._entries] == [5, 6]

    def test_bucket_index_stays_consistent_under_eviction(self):
        cache = ReductionCache(reducer=GraphReducer(seed=0), max_entries=3)
        for seed in range(8):
            cache.bank(
                _synthetic_reduction(_connected_er(5 + seed % 3, 0.6, 80 + seed), 12)
            )
        assert cache.size == 3
        indexed = sorted(
            entry_id for ids in cache._buckets.values() for entry_id in ids
        )
        assert indexed == sorted(cache._by_id)

    def test_retuned_reducer_threshold_rebuilds_the_index(self):
        """Swapping the public reducer must not desynchronize bucket width
        from the live acceptance band (entries banked under the old width
        would otherwise be silently unreachable)."""
        cache = ReductionCache(reducer=GraphReducer(seed=0), max_entries=8)
        cache.bank(_synthetic_reduction(nx.cycle_graph(6), 12))  # AND = 2
        dense = _connected_er(9, 0.9, 90)  # AND well above 2 / 0.7
        assert cache.lookup(dense) is None
        cache.reducer = GraphReducer(and_ratio_threshold=0.25, seed=0)
        found = cache.lookup(dense)
        assert found is not None and found.and_value == 2.0

    def test_threshold_one_only_exact_and_matches(self):
        cache = ReductionCache(
            reducer=GraphReducer(and_ratio_threshold=1.0, seed=0), max_entries=8
        )
        cache.bank(_synthetic_reduction(nx.cycle_graph(5), 12))  # AND exactly 2
        assert cache.lookup(nx.cycle_graph(9)) is not None  # AND exactly 2
        assert cache.lookup(nx.complete_graph(9)) is None


class TestWeightedIsolation:
    def test_weighted_query_never_hits_unweighted_bank(self):
        """A spin-glass instance must not reuse a weight-blind reduction."""
        from repro.datasets import attach_weights

        cache = ReductionCache(reducer=GraphReducer(seed=0))
        base = _connected_er(10, 0.45, 0)
        cache.reduce(base)
        weighted = attach_weights(
            _connected_er(11, 0.45, 1), "spin", seed=1
        )
        assert cache.lookup(weighted) is None
        _, hit = cache.reduce(weighted)
        assert not hit

    def test_weighted_bank_serves_weighted_queries(self):
        from repro.datasets import attach_weights

        cache = ReductionCache(reducer=GraphReducer(seed=0))
        cache.reduce(attach_weights(_connected_er(10, 0.45, 2), "uniform", seed=2))
        entry = cache._entries[0]
        assert entry.weighted
        similar = attach_weights(_connected_er(11, 0.45, 3), "uniform", seed=3)
        found = cache.lookup(similar)
        if found is not None:
            assert found.weighted
