"""Figure 10: noisy-landscape MSE, baseline vs Red-QAOA, 7-14 qubits.

Paper protocol: random graphs of 7-14 nodes under FakeToronto-style noise;
MSE of each noisy landscape against the *ideal baseline* landscape.
Red-QAOA's reduced circuit consistently achieves a lower noisy MSE, and
both MSEs grow with qubit count.  This regenerates the figure's two series.
"""

import numpy as np

from _common import connected_er, header, row, run_once
from repro.core.reduction import GraphReducer
from repro.qaoa.fast_sim import FastNoiseSpec
from repro.qaoa.landscape import (
    compute_landscape,
    compute_noisy_landscape,
    landscape_mse,
)
from repro.quantum.backends import get_backend

SIZES = (7, 8, 9, 10, 11, 12, 13, 14)
WIDTH = 12
TRAJECTORIES = 4
SHOTS = 2048
REPEATS = 2


def test_fig10_noisy_mse_by_size(benchmark):
    backend = get_backend("toronto")

    def experiment():
        series = {}
        for n in SIZES:
            graph = connected_er(n, 0.4, seed=n)
            reduction = GraphReducer(seed=n).reduce(graph)
            ideal = compute_landscape(graph, width=WIDTH).values
            noise_full = FastNoiseSpec.for_graph(backend, graph)
            noise_red = FastNoiseSpec.for_graph(backend, reduction.reduced_graph)
            base_mses, red_mses = [], []
            for repeat in range(REPEATS):
                noisy_base = compute_noisy_landscape(
                    graph, noise_full, width=WIDTH,
                    trajectories=TRAJECTORIES, shots=SHOTS, seed=repeat,
                ).values
                noisy_red = compute_noisy_landscape(
                    reduction.reduced_graph, noise_red, width=WIDTH,
                    trajectories=TRAJECTORIES, shots=SHOTS, seed=repeat,
                ).values
                base_mses.append(landscape_mse(ideal, noisy_base))
                red_mses.append(landscape_mse(ideal, noisy_red))
            series[n] = (
                float(np.mean(base_mses)),
                float(np.mean(red_mses)),
                reduction.node_reduction,
                reduction.edge_reduction,
            )
        return series

    series = run_once(benchmark, experiment)

    header(
        "Figure 10: noisy MSE vs ideal baseline, 7-14 qubits (toronto noise)",
        width=WIDTH, trajectories=TRAJECTORIES, shots=SHOTS,
    )
    for n, (base, red, node_red, edge_red) in series.items():
        row(
            f"{n} qubits",
            baseline=base,
            red_qaoa=red,
            node_reduction=node_red,
            edge_reduction=edge_red,
        )

    base_all = np.array([v[0] for v in series.values()])
    red_all = np.array([v[1] for v in series.values()])
    # Headline: Red-QAOA beats the baseline on average and in most sizes.
    assert red_all.mean() < base_all.mean()
    assert (red_all < base_all).mean() >= 0.6
    # Noise impact grows with size for the baseline (paper's trend).
    assert np.mean(base_all[-3:]) > np.mean(base_all[:3])
    # Average reductions echo the paper's 36% node / 50% edge on this set.
    node_avg = np.mean([v[2] for v in series.values()])
    edge_avg = np.mean([v[3] for v in series.values()])
    row("avg reduction", nodes=float(node_avg), edges=float(edge_avg))
    assert 0.15 <= node_avg <= 0.55
