"""PR 4 workload tracking: the Ising/QUBO problem layer at n=24.

Exercises the generalized pipeline on the two acceptance workloads --
Max-Independent-Set (field-carrying penalty encoding) and an SK spin glass
(field-free, all-to-all couplings) -- at 24 qubits, and emits
``BENCH_pr4.json`` at the repo root:

- **SA-reduction quality**: the annealed coupling-graph subproblem versus
  a random connected subgraph of the same size, compared on field-aware
  AND ratio and on the full-problem expectation reached by transferring
  parameters optimized on each subproblem (p=1);
- **end-to-end approximation ratio**: reduce -> optimize on the reduced
  problem -> transfer, at p=1 and p=2, scored as transferred expectation
  and best-of-2048-samples value against the exact optimum (dense
  diagonal).

Qualitative claims asserted: the SA subproblem's AND ratio is no worse
than the random subgraph's, transfer lands within the problem's value
range, and sampled solutions recover a large fraction of the optimum.
"""

import json
from pathlib import Path

import numpy as np

from _common import header, row, run_once
from repro.core.reduction import GraphReducer
from repro.datasets import problem_instance
from repro.problems import problem_expectation
from repro.qaoa.fast_sim import qaoa_probabilities
from repro.qaoa.optimizer import multi_restart_optimize
from repro.utils.graphs import average_node_strength, connected_random_subgraph

NUM_QUBITS = 24
DEPTHS = (1, 2)
RESTARTS = 2
MAXITER = 30
SAMPLE_SHOTS = 2048
WORKLOADS = {
    "mis": dict(edge_probability=0.15),
    "sk": dict(),
}

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pr4.json"


def _optimize_and_transfer(problem, subproblem, p, seed):
    """Optimize on the subproblem, return (transferred expectation, params)."""
    objective = lambda gammas, betas: problem_expectation(subproblem, gammas, betas)
    traces = multi_restart_optimize(
        objective, p, restarts=RESTARTS, maxiter=MAXITER, seed=seed
    )
    best = max(traces, key=lambda t: t.best_value)
    gammas, betas = best.best_parameters
    return problem_expectation(problem, gammas, betas), (gammas, betas)


def _sample_best(problem, gammas, betas, seed):
    """Best objective value among SAMPLE_SHOTS draws from the trial state."""
    probs = qaoa_probabilities(problem, list(gammas), list(betas))
    rng = np.random.default_rng(seed)
    outcomes = rng.choice(probs.size, size=SAMPLE_SHOTS, p=probs / probs.sum())
    return float(problem.diagonal[outcomes].max())


def _and_ratio(graph, nodes):
    """Field-aware AND ratio of an arbitrary node subset (self-loops count).

    Same definition the reducer scores its own result with
    (``ProblemReductionResult.and_ratio``); needed here only for the
    random-subgraph baseline, which the reducer never sees.
    """
    sub = graph.subgraph(nodes)
    original = average_node_strength(graph)
    reduced = average_node_strength(sub)
    ratio = reduced / original
    return ratio if ratio <= 1.0 else 1.0 / ratio


def _workload_section(kind, kwargs, seed):
    problem = problem_instance(kind, NUM_QUBITS, seed=seed, **kwargs)
    best = problem.best_value(method="dense")
    coupling = problem.coupling_graph(include_fields=True)

    reduction = GraphReducer(seed=seed).reduce_problem(problem)
    k = reduction.subproblem.num_qubits
    random_nodes = sorted(
        connected_random_subgraph(coupling, k, seed=seed + 1)
    )
    random_sub = problem.subproblem(random_nodes)

    sa_ratio = reduction.and_ratio
    random_ratio = _and_ratio(coupling, random_nodes)

    # Reduced-vs-random transfer quality at p=1 under an identical budget.
    sa_transfer, _ = _optimize_and_transfer(problem, reduction.subproblem, 1, seed)
    random_transfer, _ = _optimize_and_transfer(problem, random_sub, 1, seed)

    depths = {}
    for p in DEPTHS:
        expectation, (gammas, betas) = _optimize_and_transfer(
            problem, reduction.subproblem, p, seed
        )
        sampled = _sample_best(problem, gammas, betas, seed)
        depths[str(p)] = {
            "transferred_expectation": expectation,
            "sampled_best": sampled,
            "expectation_ratio": expectation / best if best > 0 else None,
            "sampled_ratio": sampled / best if best > 0 else None,
        }

    section = {
        "num_qubits": NUM_QUBITS,
        "reduced_qubits": k,
        "best_value": best,
        "and_ratio_sa": sa_ratio,
        "and_ratio_random": random_ratio,
        "transfer_p1_sa": sa_transfer,
        "transfer_p1_random": random_transfer,
        "depths": depths,
    }

    header(
        f"PR4 problem layer: {kind} @ n={NUM_QUBITS}",
        reduced=k, best_value=round(best, 4),
    )
    row("AND ratio", sa=sa_ratio, random=random_ratio)
    row("transfer p=1", sa=sa_transfer, random=random_transfer)
    for p in DEPTHS:
        d = depths[str(p)]
        row(
            f"end-to-end p={p}",
            expectation=d["transferred_expectation"],
            sampled=d["sampled_best"],
        )

    # Qualitative claims: SA matches connectivity at least as well as a
    # random subgraph, expectations stay inside the value range, and
    # sampling the transferred state recovers most of the optimum.
    assert sa_ratio >= random_ratio - 1e-9
    diag_min = float(problem.diagonal.min())
    for d in depths.values():
        assert diag_min - 1e-6 <= d["transferred_expectation"] <= best + 1e-6
        assert d["sampled_best"] <= best + 1e-9
    if best > 0:
        assert depths["1"]["sampled_ratio"] >= 0.75
    return section


def test_bench_pr4_emit(benchmark):
    def experiment():
        return {
            kind: _workload_section(kind, kwargs, seed=index)
            for index, (kind, kwargs) in enumerate(WORKLOADS.items())
        }

    results = run_once(benchmark, experiment)
    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
