"""Figure 1: noise-induced degradation of QAOA convergence.

Paper protocol: 6-node and 10-node graphs, 100 COBYLA iterations, ideal vs
noisy optimization; approximation ratios diverge under noise, and the
10-node noisy run stagnates (~60%) while the 6-node stays higher (~80%).
We reproduce the two claims: (a) noisy optimization ends below ideal, and
(b) the noise penalty grows from 6 to 10 nodes.
"""

import numpy as np

from _common import connected_er, header, row, run_once
from repro.qaoa.expectation import maxcut_expectation, noisy_maxcut_expectation
from repro.qaoa.fast_sim import FastNoiseSpec
from repro.qaoa.maxcut import brute_force_maxcut
from repro.qaoa.optimizer import cobyla_optimize
from repro.quantum.backends import get_backend
from repro.utils.graphs import relabel_to_range

MAXITER = 100
RESTARTS = 2


def _final_ratio(graph, noise, seed):
    """Best *measured* approximation ratio after optimization.

    Fig. 1 plots the approximation ratio the (possibly noisy) execution
    itself reports: under noise the measured expectation is damped and the
    curve stagnates -- 60% for the 10-node graph vs 80% for the 6-node one
    in the paper.  The optimizer's own best objective value over the run is
    exactly that quantity.
    """
    relabeled = relabel_to_range(graph)
    optimum, _ = brute_force_maxcut(relabeled)
    rng = np.random.default_rng(seed)
    if noise is None:
        fn = lambda g, b: maxcut_expectation(relabeled, g, b)
    else:
        fn = lambda g, b: noisy_maxcut_expectation(
            relabeled, g, b, noise, trajectories=4, shots=2048, seed=rng
        )
    best = -np.inf
    for restart in range(RESTARTS):
        trace = cobyla_optimize(fn, p=1, maxiter=MAXITER, seed=seed + restart)
        best = max(best, trace.best_value)
    return best / optimum


NUM_GRAPHS = 4


def test_fig01_noise_degradation(benchmark):
    backend = get_backend("toronto")

    def experiment():
        results = {}
        for n in (6, 10):
            ideal_ratios, noisy_ratios = [], []
            for seed in range(NUM_GRAPHS):
                graph = connected_er(n, 0.5, seed=100 * n + seed)
                noise = FastNoiseSpec.for_graph(backend, graph)
                ideal_ratios.append(_final_ratio(graph, None, seed=seed))
                noisy_ratios.append(_final_ratio(graph, noise, seed=seed))
            results[n] = {
                "ideal": float(np.mean(ideal_ratios)),
                "noisy": float(np.mean(noisy_ratios)),
            }
        return results

    results = run_once(benchmark, experiment)

    header(
        "Figure 1: QAOA approximation ratio, ideal vs noisy optimization",
        maxiter=MAXITER, restarts=RESTARTS, graphs_per_size=NUM_GRAPHS,
        noise="toronto",
    )
    for n, r in results.items():
        row(f"{n}-node graph", ideal=r["ideal"], noisy=r["noisy"],
            penalty=r["ideal"] - r["noisy"])

    # Claim (a): noise degrades the final ratio for the larger instance.
    assert results[10]["noisy"] <= results[10]["ideal"] + 1e-9
    # Claim (b): the larger graph suffers at least as much from noise.
    penalty_6 = results[6]["ideal"] - results[6]["noisy"]
    penalty_10 = results[10]["ideal"] - results[10]["noisy"]
    assert penalty_10 >= penalty_6 - 0.02
