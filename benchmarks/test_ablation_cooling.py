"""Ablation: adaptive vs constant cooling (paper Secs. 4.4-4.5).

The paper selects adaptive cooling because it reaches equal-or-better
subgraphs with lower computational overhead.  We compare the two schedules
on identical reduction tasks: achieved AND objective and annealing steps.
"""

import numpy as np

from _common import connected_er, header, row, run_once
from repro.core.annealer import simulated_annealing

NUM_GRAPHS = 8
SUBGRAPH_FRACTION = 0.6


def test_ablation_adaptive_vs_constant_cooling(benchmark):
    def experiment():
        outcomes = {"adaptive": [], "constant": []}
        for seed in range(NUM_GRAPHS):
            graph = connected_er(14 + seed % 4, 0.35, seed=seed)
            k = max(3, round(SUBGRAPH_FRACTION * graph.number_of_nodes()))
            for schedule in outcomes:
                result = simulated_annealing(graph, k, cooling=schedule, seed=seed)
                outcomes[schedule].append((result.objective, result.steps))
        return outcomes

    outcomes = run_once(benchmark, experiment)

    header(
        "Ablation: adaptive vs constant cooling",
        graphs=NUM_GRAPHS, keep_fraction=SUBGRAPH_FRACTION,
    )
    summary = {}
    for schedule, rows in outcomes.items():
        objs = np.array([r[0] for r in rows])
        steps = np.array([r[1] for r in rows])
        summary[schedule] = (float(objs.mean()), float(steps.mean()))
        row(schedule, mean_objective=summary[schedule][0], mean_steps=summary[schedule][1])

    # Adaptive reaches objectives at least as good as constant cooling.
    assert summary["adaptive"][0] <= summary["constant"][0] + 0.05


def test_ablation_cooling_rate_sensitivity(benchmark):
    """Constant cooling quality depends on alpha; adaptive self-tunes."""
    from repro.core.cooling import ConstantCooling

    def experiment():
        graph = connected_er(16, 0.35, seed=99)
        k = 10
        results = {}
        for alpha in (0.80, 0.90, 0.95, 0.99):
            objs = [
                simulated_annealing(
                    graph, k, cooling=ConstantCooling(alpha=alpha), seed=s
                ).objective
                for s in range(4)
            ]
            results[alpha] = float(np.mean(objs))
        adaptive = float(np.mean([
            simulated_annealing(graph, k, cooling="adaptive", seed=s).objective
            for s in range(4)
        ]))
        return results, adaptive

    results, adaptive = run_once(benchmark, experiment)
    header("Ablation: constant-cooling alpha sensitivity vs adaptive")
    for alpha, obj in results.items():
        row(f"constant alpha={alpha}", mean_objective=obj)
    row("adaptive", mean_objective=adaptive)

    # Adaptive is competitive with the best hand-tuned constant rate.
    assert adaptive <= min(results.values()) + 0.1
