"""Figure 9: SA finds one of the best subgraphs at every reduction ratio.

Paper protocol: one random 15-node graph; for node reduction ratios 0.67,
0.60, 0.53, 0.47, 0.40 enumerate unique connected subgraphs, grid-search
each (900 points), and histogram their MSEs; the SA result (dashed line)
sits in the best tail.  We cap the enumeration per size and assert the SA
subgraph lands in the best 35% of the sampled population.
"""

import numpy as np

from _common import connected_er, header, row, run_once
from repro.core.annealer import simulated_annealing
from repro.qaoa.landscape import compute_landscape, landscape_mse
from repro.utils.graphs import connected_random_subgraph, relabel_to_range

WIDTH = 30
NUM_NODES = 15
REDUCTION_RATIOS = (0.67, 0.53, 0.40)
POPULATION = 40


def test_fig09_sa_vs_subgraph_population(benchmark):
    def experiment():
        graph = connected_er(NUM_NODES, 0.3, seed=9)
        reference = compute_landscape(graph, width=WIDTH).values
        rng = np.random.default_rng(0)
        results = {}
        for ratio in REDUCTION_RATIOS:
            size = max(3, round((1 - ratio) * NUM_NODES))
            population = []
            seen = set()
            for _ in range(POPULATION * 3):
                nodes = frozenset(connected_random_subgraph(graph, size, rng))
                if nodes in seen:
                    continue
                seen.add(nodes)
                sub = relabel_to_range(graph.subgraph(nodes))
                if sub.number_of_edges() == 0:
                    continue
                population.append(
                    landscape_mse(reference, compute_landscape(sub, width=WIDTH).values)
                )
                if len(population) >= POPULATION:
                    break
            # Best of three annealing runs by the AND objective, mirroring
            # the retry behaviour of GraphReducer.
            sa = min(
                (simulated_annealing(graph, size, seed=s) for s in (1, 2, 3)),
                key=lambda r: r.objective,
            )
            sa_sub = relabel_to_range(sa.subgraph)
            sa_mse = landscape_mse(
                reference, compute_landscape(sa_sub, width=WIDTH).values
            )
            results[ratio] = (sa_mse, population)
        return results

    results = run_once(benchmark, experiment)

    header(
        "Figure 9: SA subgraph vs random-subgraph MSE population",
        nodes=NUM_NODES, width=WIDTH, population=POPULATION,
    )
    for ratio, (sa_mse, population) in results.items():
        percentile = float(np.mean(np.array(population) >= sa_mse))
        row(
            f"{int(ratio * 100)}% node reduction",
            sa_mse=sa_mse,
            pop_median=float(np.median(population)),
            pop_best=float(np.min(population)),
            better_than=f"{percentile:.0%}",
        )
        # SA consistently sits in the good half of the distribution.
        assert sa_mse <= np.percentile(population, 50) + 1e-9
