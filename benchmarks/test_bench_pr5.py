"""PR 5 serving tracking: batched campaigns vs N independent pipeline runs.

The service layer's economics on one 32-job manifest that looks like real
traffic -- duplicate submissions, isomorphic relabelings of the same
instances, and config scans over shared instances:

- **sequential**: 32 independent ``RedQAOA.run`` executions (one
  :func:`~repro.service.jobs.run_job` per manifest entry, no sharing) --
  the before-state of the repo, one pipeline per CLI invocation;
- **batched**: one :class:`~repro.service.scheduler.BatchScheduler` pass
  with fingerprint dedup, shared reductions, a shared plan cache, and a
  persistent store;
- **resumed**: a second scheduler against the same store file, as a fresh
  process would see it.

Emits ``BENCH_pr5.json``.  Acceptance asserted: batched wall-clock beats
sequential by >= 2x (gated by ``BENCH_STRICT``), the resumed campaign
re-runs 0 jobs (store hit counters), and per-job results are bit-identical
across all three executions -- the scheduler may only remove work, never
change an answer.
"""

import json
import os
import tempfile
import time
from pathlib import Path

import networkx as nx
import numpy as np

from _common import header, row, run_once
from repro.datasets import attach_weights, problem_instance, random_connected_gnp
from repro.problems import DiagonalProblem, maxcut_problem
from repro.service import BatchScheduler, JobSpec, ResultStore, run_job

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pr5.json"

MAXCUT_NODES = 14
PROBLEM_NODES = 12
# Above MAX_DENSE_QUBITS: forces lightcone plan compilation for both the
# full problem and its reduced subproblem, and skips the dense readout
# (which would cost a 2**n statevector).
LIGHTCONE_NODES = 40
CONFIG = dict(restarts=2, maxiter=20)


def _permuted_graph(graph, seed):
    rng = np.random.default_rng(seed)
    nodes = sorted(graph.nodes())
    shuffled = list(rng.permutation(nodes))
    return nx.relabel_nodes(graph, {a: int(b) for a, b in zip(nodes, shuffled)})


def _permuted_problem(problem, seed):
    perm = list(np.random.default_rng(seed).permutation(problem.num_qubits))
    return DiagonalProblem(
        problem.num_qubits,
        {(int(perm[u]), int(perm[v])): j for (u, v), j in problem.couplings.items()},
        {int(perm[u]): h for u, h in problem.fields.items()},
        constant=problem.constant,
        name=problem.name,
    )


def build_manifest() -> list[JobSpec]:
    """32 jobs, 11 unique: the duplicate-heavy traffic the store amortizes."""
    specs: list[JobSpec] = []
    # 6 weighted MaxCut instances: each submitted as the original, an exact
    # duplicate, and an isomorphic relabeling; the first two also get a
    # second relabeling (20 jobs, 6 unique).
    for seed in range(6):
        graph = attach_weights(
            random_connected_gnp(MAXCUT_NODES, 0.35, seed=seed), "uniform", seed=seed
        )
        label = f"maxcut-s{seed}"
        specs.append(JobSpec(graph=graph, label=label, **CONFIG))
        specs.append(JobSpec(graph=nx.Graph(graph), label=f"{label}-dup", **CONFIG))
        perm_seeds = (100 + seed, 200 + seed) if seed < 2 else (100 + seed,)
        for perm_seed in perm_seeds:
            specs.append(
                JobSpec(
                    graph=_permuted_graph(graph, perm_seed),
                    label=f"{label}-iso{perm_seed}",
                    **CONFIG,
                )
            )
    # 2 MIS problem instances; the first submitted three times (5 jobs, 2 unique).
    for seed in range(2):
        problem = problem_instance("mis", PROBLEM_NODES, seed=seed, edge_probability=0.25)
        specs.append(JobSpec(problem=problem, label=f"mis-s{seed}", **CONFIG))
        specs.append(JobSpec(problem=problem, label=f"mis-s{seed}-dup", **CONFIG))
        if seed == 0:
            specs.append(JobSpec(problem=problem, label=f"mis-s{seed}-dup2", **CONFIG))
    # 1 SK instance: original plus two qubit permutations (3 jobs, 1 unique).
    sk = problem_instance("sk", PROBLEM_NODES, seed=0)
    specs.append(JobSpec(problem=sk, label="sk-s0", **CONFIG))
    specs.append(JobSpec(problem=_permuted_problem(sk, 7), label="sk-s0-iso7", **CONFIG))
    specs.append(JobSpec(problem=_permuted_problem(sk, 8), label="sk-s0-iso8", **CONFIG))
    # One sparse field-free instance above the dense dispatch limit, scanned
    # under two optimizer budgets -- distinct jobs sharing the instance's SA
    # reduction and its compiled lightcone plan -- each budget submitted
    # twice (4 jobs, 2 unique).  Exact duplicates, not relabelings: on an
    # unweighted regular graph every structural key ties, so canonical
    # forms are not permutation-stable there (the documented tie caveat).
    regular = nx.random_regular_graph(3, LIGHTCONE_NODES, seed=0)
    lightcone_problem = maxcut_problem(regular)
    for maxiter, tag in ((12, "a"), (18, "b")):
        for suffix in ("", "-dup"):
            specs.append(
                JobSpec(
                    problem=lightcone_problem, label=f"plan-{tag}{suffix}",
                    p=2, restarts=1, maxiter=maxiter,
                )
            )
    assert len(specs) == 32
    return specs


def _result_key(result):
    return (
        tuple(result.gammas),
        tuple(result.betas),
        result.expectation,
        None if result.best_value != result.best_value else result.best_value,
        tuple(result.bits),
    )


def _experiment():
    # Fresh spec objects per mode, so each timing includes its own
    # canonicalization/fingerprinting cost (specs cache their canonical
    # form; sharing objects would hand the scheduler a head start).
    start = time.perf_counter()
    sequential = [run_job(spec) for spec in build_manifest()]
    sequential_seconds = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "store.jsonl")
        start = time.perf_counter()
        batched = BatchScheduler(store=ResultStore(store_path)).run(build_manifest())
        batched_seconds = time.perf_counter() - start

        # Resume as a fresh process would: new store object, new scheduler.
        resumed_store = ResultStore(store_path)
        resumed = BatchScheduler(store=resumed_store).run(build_manifest())

    identical_batched = all(
        _result_key(a) == _result_key(b.result)
        for a, b in zip(sequential, batched.results)
    )
    identical_resumed = all(
        _result_key(a.result) == _result_key(b.result)
        for a, b in zip(batched.results, resumed.results)
    )
    speedup = sequential_seconds / batched_seconds if batched_seconds > 0 else float("inf")
    return {
        "jobs": batched.num_jobs,
        "unique_jobs": batched.num_unique,
        "instances": batched.num_instances,
        "deduped": batched.deduped,
        "reduction_reuses": batched.reduction_reuses,
        "plan_hits": batched.plan_hits,
        "sequential_seconds": sequential_seconds,
        "batched_seconds": batched_seconds,
        "speedup": speedup,
        "resumed": {
            "computed": resumed.computed,
            "store_hits": resumed.store_hits,
            "store_hit_counter": resumed_store.hits,
        },
        "bit_identical_batched_vs_sequential": identical_batched,
        "bit_identical_resumed_vs_batched": identical_resumed,
    }


def test_bench_pr5_emit(benchmark):
    results = run_once(benchmark, _experiment)
    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")

    header(
        "PR5 batch serving: 32-job manifest with duplicates",
        jobs=results["jobs"],
        unique=results["unique_jobs"],
        output=OUTPUT.name,
    )
    row(
        "wall clock",
        sequential=results["sequential_seconds"],
        batched=results["batched_seconds"],
        speedup=results["speedup"],
    )
    row(
        "reuse",
        deduped=results["deduped"],
        reductions=results["reduction_reuses"],
        plan_hits=results["plan_hits"],
    )
    row(
        "resume",
        computed=results["resumed"]["computed"],
        store_hits=results["resumed"]["store_hits"],
    )

    # Correctness claims hold unconditionally: scheduling may only remove
    # work, never change a result, and a resumed campaign re-runs nothing.
    assert results["bit_identical_batched_vs_sequential"]
    assert results["bit_identical_resumed_vs_batched"]
    assert results["resumed"]["computed"] == 0
    assert results["resumed"]["store_hits"] == results["unique_jobs"]
    assert results["deduped"] == results["jobs"] - results["unique_jobs"] > 0
    # Issue acceptance floor: only meaningful on a quiet machine; CI sets
    # BENCH_STRICT=0 so a noisy neighbor can't fail an unrelated push.
    if os.environ.get("BENCH_STRICT", "1") != "0":
        assert results["speedup"] >= 2.0, results
