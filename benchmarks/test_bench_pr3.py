"""PR 3 performance tracking: incremental annealer + lightcone plan.

Measures the two rewritten hot paths against their retained baselines on
this box and emits ``BENCH_pr3.json`` at the repo root, so the perf
trajectory is tracked from this PR onward:

- SA reducer steps/sec at n in {100, 400, 1000} (connected ER instances,
  same sizing rule as the Fig. 18 runtime study), incremental engine vs
  the retained per-call networkx reference;
- lightcone landscape points/sec on a 64-node 3-regular graph at p=2 over
  384 random parameter sets, plan/evaluate engine vs the retained
  per-call engine (timed on a subset -- it re-discovers structure every
  point -- and extrapolated per point).

Acceptance floors from the issue: >= 5x reducer steps/sec at n=400 and
>= 10x lightcone points/sec, with the two engines agreeing to 1e-12.
"""

import json
import os
from pathlib import Path

import networkx as nx
import numpy as np

from _common import header, row, run_once
from repro.analysis.runtime import (
    benchmark_graph,
    measure_annealer_rate,
    measure_lightcone_rate,
)

SA_SIZES = (100, 400, 1000)
SA_STEPS_INCREMENTAL = 1000
SA_STEPS_REFERENCE = {100: 300, 400: 200, 1000: 120}
LIGHTCONE_NODES = 64
LIGHTCONE_DEGREE = 3
LIGHTCONE_P = 2
LIGHTCONE_POINTS = 384
LIGHTCONE_REFERENCE_POINTS = 6

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pr3.json"


def _sa_section():
    section = {}
    for n in SA_SIZES:
        graph = benchmark_graph(n, seed=1)
        fast = measure_annealer_rate(
            graph, max_steps=SA_STEPS_INCREMENTAL, seed=0, annealer="incremental"
        )
        slow = measure_annealer_rate(
            graph, max_steps=SA_STEPS_REFERENCE[n], seed=0, annealer="reference"
        )
        section[str(n)] = {
            "incremental_steps_per_sec": fast["steps_per_sec"],
            "reference_steps_per_sec": slow["steps_per_sec"],
            "speedup": fast["steps_per_sec"] / slow["steps_per_sec"],
        }
    return section


def _lightcone_section():
    graph = nx.random_regular_graph(LIGHTCONE_DEGREE, LIGHTCONE_NODES, seed=0)
    from repro.qaoa.landscape import sample_parameter_sets

    points = sample_parameter_sets(LIGHTCONE_P, LIGHTCONE_POINTS, seed=0)
    plan = measure_lightcone_rate(
        graph, LIGHTCONE_P, LIGHTCONE_POINTS, engine="plan", parameter_sets=points
    )
    percall = measure_lightcone_rate(
        graph, LIGHTCONE_P, LIGHTCONE_REFERENCE_POINTS, engine="percall",
        parameter_sets=points,
    )
    # The subsets share a seed, so the leading values must agree: the
    # speedup claim only counts if both engines price the same landscape.
    agreement = float(
        np.abs(
            plan["values"][:LIGHTCONE_REFERENCE_POINTS] - percall["values"]
        ).max()
    )
    return {
        "nodes": LIGHTCONE_NODES,
        "degree": LIGHTCONE_DEGREE,
        "p": LIGHTCONE_P,
        "points": LIGHTCONE_POINTS,
        "plan_points_per_sec": plan["points_per_sec"],
        "percall_points_per_sec": percall["points_per_sec"],
        "percall_points_timed": LIGHTCONE_REFERENCE_POINTS,
        "speedup": plan["points_per_sec"] / percall["points_per_sec"],
        "max_value_disagreement": agreement,
    }


def test_bench_pr3_emit(benchmark):
    def experiment():
        return {"sa_reducer": _sa_section(), "lightcone": _lightcone_section()}

    results = run_once(benchmark, experiment)
    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")

    header(
        "PR 3: incremental annealer + lightcone plan speedups",
        sa_sizes=SA_SIZES,
        lightcone=f"{LIGHTCONE_NODES}-node {LIGHTCONE_DEGREE}-regular "
                  f"p={LIGHTCONE_P} x{LIGHTCONE_POINTS}",
        output=OUTPUT.name,
    )
    for n, stats in results["sa_reducer"].items():
        row(f"SA n={n}",
            incremental=stats["incremental_steps_per_sec"],
            reference=stats["reference_steps_per_sec"],
            speedup=stats["speedup"])
    cone = results["lightcone"]
    row("lightcone",
        plan=cone["plan_points_per_sec"],
        percall=cone["percall_points_per_sec"],
        speedup=cone["speedup"])

    # Engines must price the same landscape before speed claims count.
    assert cone["max_value_disagreement"] < 1e-12
    # The fast paths should never lose at any measured size.
    assert all(s["speedup"] > 1.0 for s in results["sa_reducer"].values())
    # Issue acceptance floors: hard wall-clock ratios only mean something
    # on the calibrated 1-core box; on shared CI runners (bench-smoke job)
    # set BENCH_STRICT=0 so a noisy neighbor can't fail an unrelated push.
    if os.environ.get("BENCH_STRICT", "1") != "0":
        assert results["sa_reducer"]["400"]["speedup"] >= 5.0
        assert cone["speedup"] >= 10.0
