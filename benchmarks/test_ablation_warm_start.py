"""Ablation: warm-start lookup vs random restarts (paper Sec. 7.2).

The paper positions warm-start techniques as complementary to Red-QAOA.
This ablation measures the value of the degree-indexed parameter library:
the quality of the very first evaluation, and the end value under a small
iteration budget, against cold random restarts -- both on top of Red-QAOA's
reduced graphs.
"""

import numpy as np

from _common import connected_er, header, row, run_once
from repro.core.reduction import GraphReducer
from repro.qaoa.expectation import maxcut_expectation
from repro.qaoa.optimizer import cobyla_optimize
from repro.transfer import ParameterLookup
from repro.utils.graphs import relabel_to_range

NUM_GRAPHS = 6
MAXITER = 12


def test_ablation_warm_start_lookup(benchmark):
    def experiment():
        lookup = ParameterLookup(donor_nodes=14, grid_width=14, seed=0)
        rows = []
        for seed in range(NUM_GRAPHS):
            graph = connected_er(11, 0.4, seed=seed + 80)
            reduction = GraphReducer(seed=seed).reduce(graph)
            reduced = reduction.reduced_graph
            relabeled = relabel_to_range(graph)
            fn = lambda g, b: maxcut_expectation(reduced, g, b)

            warm_trace = cobyla_optimize(
                fn, p=1, initial=lookup.warm_start_vector(reduced, 1),
                maxiter=MAXITER, seed=seed,
            )
            cold_traces = [
                cobyla_optimize(fn, p=1, maxiter=MAXITER, seed=100 * seed + r)
                for r in range(3)
            ]
            # Evaluate the found parameters back on the ORIGINAL graph.
            wg, wb = warm_trace.best_parameters
            warm_final = maxcut_expectation(relabeled, wg, wb)
            cold_finals = []
            for t in cold_traces:
                cg, cb = t.best_parameters
                cold_finals.append(maxcut_expectation(relabeled, cg, cb))
            rows.append(
                (
                    warm_trace.values[0],
                    float(np.mean([t.values[0] for t in cold_traces])),
                    warm_final,
                    float(np.mean(cold_finals)),
                )
            )
        return rows

    rows = run_once(benchmark, experiment)
    header(
        "Ablation: warm-start lookup vs cold random restarts",
        graphs=NUM_GRAPHS, maxiter=MAXITER,
    )
    for index, (w0, c0, wf, cf) in enumerate(rows):
        row(f"graph {index}", warm_first=w0, cold_first=c0,
            warm_final=wf, cold_final_mean=cf)

    first_gain = np.mean([w - c for w, c, _, _ in rows])
    final_gain = np.mean([w - c for _, _, w, c in rows])
    row("mean gain", first_eval=float(first_gain), final=float(final_gain))
    # The library's first guess is far better than a random point...
    assert first_gain > 0
    # ...and the final quality is at least competitive.
    assert final_gain > -0.1
