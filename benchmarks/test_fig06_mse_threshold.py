"""Figure 6: what MSE level still preserves the optimum's location.

Paper: across six random graphs compared to a reference, once MSE exceeds
~0.02 the optimal point placement deviates significantly -- the basis for
the 0.02-MSE / 0.7-AND-ratio operating point.  We regenerate a set of
(MSE, optimum-displacement) pairs and check the displacement is small for
MSE < 0.02 landscapes and grows with MSE.
"""

import numpy as np

from _common import connected_er, header, row, run_once
from repro.qaoa.landscape import (
    compute_landscape,
    landscape_mse,
    optimal_point_distance,
)

WIDTH = 24
NUM_GRAPHS = 8


def test_fig06_mse_threshold_for_optimal_points(benchmark):
    def experiment():
        reference_graph = connected_er(9, 0.45, seed=100)
        reference = compute_landscape(reference_graph, width=WIDTH)
        pairs = []
        for seed in range(NUM_GRAPHS):
            graph = connected_er(6 + seed % 5, 0.3 + 0.08 * (seed % 4), seed=seed)
            scape = compute_landscape(graph, width=WIDTH)
            mse = landscape_mse(reference.values, scape.values)
            drift = optimal_point_distance(reference, scape, tolerance=1e-6)
            pairs.append((mse, drift))
        return sorted(pairs)

    pairs = run_once(benchmark, experiment)

    header(
        "Figure 6: landscape MSE vs optimal-point displacement",
        width=WIDTH, graphs=NUM_GRAPHS,
    )
    for mse, drift in pairs:
        row("graph", mse=mse, optimum_drift=drift)

    low = [d for m, d in pairs if m < 0.02]
    high = [d for m, d in pairs if m >= 0.02]
    if low and high:
        row("mean drift", below_002=float(np.mean(low)), above_002=float(np.mean(high)))
        # Low-MSE landscapes keep their optimum close to the reference.
        assert np.mean(low) <= np.mean(high) + 1e-9
