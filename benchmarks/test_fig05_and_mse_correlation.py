"""Figure 5: correlation between AND ratio and landscape MSE.

Paper protocol: 15 random graphs, all unique non-isomorphic connected
subgraphs, 1-layer QAOA grid of width 30 (900 points); MSE of each
subgraph's normalized landscape against its original correlates with the
subgraph's Average-Node-Degree ratio; a 6th-degree polynomial fits the
cloud.  We use fewer graphs and cap subgraph enumeration for laptop
runtime, and assert a significant negative correlation (higher AND ratio
-> lower MSE).
"""

import numpy as np

from _common import connected_er, header, row, run_once
from repro.core.equivalence import fit_polynomial, subgraph_and_mse_study

NUM_GRAPHS = 4
WIDTH = 30
MAX_SUBGRAPHS_PER_SIZE = 12


def test_fig05_and_ratio_mse_correlation(benchmark):
    def experiment():
        samples = []
        for seed in range(NUM_GRAPHS):
            graph = connected_er(8 + seed % 2, 0.45, seed=seed)
            samples.extend(
                subgraph_and_mse_study(
                    graph,
                    min_size=3,
                    max_subgraphs_per_size=MAX_SUBGRAPHS_PER_SIZE,
                    width=WIDTH,
                )
            )
        return samples

    samples = run_once(benchmark, experiment)
    ratios = np.array([s.and_ratio for s in samples])
    mses = np.array([s.mse for s in samples])
    correlation = float(np.corrcoef(ratios, mses)[0, 1])
    coeffs = fit_polynomial(samples, degree=6)

    header(
        "Figure 5: AND ratio vs landscape MSE",
        graphs=NUM_GRAPHS, width=WIDTH, samples=len(samples),
    )
    row("pearson correlation", r=correlation)
    for ratio in (0.4, 0.6, 0.8, 1.0):
        row(f"poly fit @ AND ratio {ratio}", mse=float(np.polyval(coeffs, ratio)))

    # The paper's scatter shows a clear negative relationship.
    assert correlation < -0.3
    # Near-matching AND (ratio ~1) should predict near-zero MSE.
    assert np.polyval(coeffs, 1.0) < np.polyval(coeffs, 0.4)
