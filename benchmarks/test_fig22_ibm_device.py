"""Figure 22: execution on the IBM device (ibmq_kolkata, 13-node graph).

Paper: on the real 27-qubit ibmq_kolkata, the Red-QAOA landscape reaches
MSE 0.01 vs the ideal landscape while the noisy baseline sits at 0.07, and
Red-QAOA's optima stay close to the ideal ones.

Substitution: no hardware access offline -- the kolkata preset (topology +
calibration-ballpark noise) stands in for the device; both methods run
under the identical model, preserving the relative comparison.
"""

from _common import connected_er, header, row, run_once
from repro.core.reduction import GraphReducer
from repro.qaoa.fast_sim import FastNoiseSpec
from repro.qaoa.landscape import (
    compute_landscape,
    compute_noisy_landscape,
    landscape_mse,
    optimal_point_distance,
)
from repro.quantum.backends import get_backend

WIDTH = 16
TRAJECTORIES = 6
SHOTS = 4096


def test_fig22_kolkata_13_node(benchmark):
    backend = get_backend("kolkata")

    def experiment():
        graph = connected_er(13, 0.3, seed=22)
        reduction = GraphReducer(seed=22).reduce(graph)
        ideal = compute_landscape(graph, width=WIDTH)
        noisy_base = compute_noisy_landscape(
            graph, FastNoiseSpec.for_graph(backend, graph),
            width=WIDTH, trajectories=TRAJECTORIES, shots=SHOTS, seed=0,
        )
        noisy_red = compute_noisy_landscape(
            reduction.reduced_graph,
            FastNoiseSpec.for_graph(backend, reduction.reduced_graph),
            width=WIDTH, trajectories=TRAJECTORIES, shots=SHOTS, seed=0,
        )
        return ideal, noisy_base, noisy_red, reduction

    ideal, noisy_base, noisy_red, reduction = run_once(benchmark, experiment)
    mse_base = landscape_mse(ideal.values, noisy_base.values)
    mse_red = landscape_mse(ideal.values, noisy_red.values)
    drift_base = optimal_point_distance(ideal, noisy_base, tolerance=1e-6)
    drift_red = optimal_point_distance(ideal, noisy_red, tolerance=1e-6)

    header(
        "Figure 22: 13-node graph on the kolkata device model",
        width=WIDTH, shots=SHOTS,
        reduced_to=f"{reduction.reduced_graph.number_of_nodes()} nodes",
        paper="Red-QAOA MSE 0.01 vs baseline 0.07",
    )
    row("baseline (noisy)", mse=mse_base, optimum_drift=drift_base)
    row("red-qaoa (noisy)", mse=mse_red, optimum_drift=drift_red)

    assert mse_red < mse_base
