"""Ablation: error mitigation on the solution-finding step (paper Fig. 4).

The Red-QAOA design argues that because the original graph runs only for
the final parameters, error mitigation is cheap to apply there (refs [55]).
This ablation quantifies both techniques on the final expectation: zero-
noise extrapolation against coherent+stochastic gate noise, and readout-
matrix inversion against measurement error.
"""

import numpy as np

from _common import connected_er, header, row, run_once
from repro.mitigation import ReadoutMitigator, zne_maxcut_expectation
from repro.qaoa.expectation import maxcut_expectation, noisy_maxcut_expectation
from repro.qaoa.fast_sim import FastNoiseSpec, noisy_qaoa_probabilities
from repro.qaoa.hamiltonian import MaxCutHamiltonian
from repro.quantum.backends import get_backend
from repro.utils.graphs import relabel_to_range

NUM_GRAPHS = 4


def test_ablation_zne_on_final_expectation(benchmark):
    backend = get_backend("toronto")

    def experiment():
        rows = []
        for seed in range(NUM_GRAPHS):
            graph = relabel_to_range(connected_er(9, 0.4, seed=seed + 60))
            gammas, betas = [1.0], [0.45]
            ideal = maxcut_expectation(graph, gammas, betas)
            noise = FastNoiseSpec.for_graph(backend, graph)
            raw = noisy_maxcut_expectation(
                graph, gammas, betas, noise, trajectories=60, seed=seed
            )
            mitigated, _ = zne_maxcut_expectation(
                graph, gammas, betas, noise, scales=(1.0, 1.5, 2.0),
                trajectories=60, seed=seed,
            )
            rows.append((ideal, raw, mitigated))
        return rows

    rows = run_once(benchmark, experiment)
    header("Ablation: zero-noise extrapolation on the final expectation",
           graphs=NUM_GRAPHS, scales=(1.0, 1.5, 2.0))
    raw_errs, zne_errs = [], []
    for index, (ideal, raw, mitigated) in enumerate(rows):
        raw_errs.append(abs(raw - ideal))
        zne_errs.append(abs(mitigated - ideal))
        row(f"graph {index}", ideal=ideal, raw=raw, zne=mitigated)
    row("mean abs error", raw=float(np.mean(raw_errs)), zne=float(np.mean(zne_errs)))
    assert np.mean(zne_errs) < np.mean(raw_errs)


def test_ablation_readout_mitigation(benchmark):
    def experiment():
        rows = []
        for seed in range(NUM_GRAPHS):
            graph = relabel_to_range(connected_er(8, 0.45, seed=seed + 70))
            ham = MaxCutHamiltonian(graph)
            gammas, betas = [1.0], [0.45]
            ideal = maxcut_expectation(graph, gammas, betas)
            p_flip = 0.05
            noise = FastNoiseSpec(readout_error=p_flip)
            observed = noisy_qaoa_probabilities(ham, gammas, betas, noise, seed=seed)
            raw = float(observed @ ham.diagonal)
            mitigator = ReadoutMitigator.symmetric(p_flip, ham.num_qubits)
            corrected = mitigator.expectation_diagonal(observed, ham.diagonal)
            rows.append((ideal, raw, corrected))
        return rows

    rows = run_once(benchmark, experiment)
    header("Ablation: readout-error mitigation (5% symmetric flips)")
    for index, (ideal, raw, corrected) in enumerate(rows):
        row(f"graph {index}", ideal=ideal, raw=raw, mitigated=corrected)
        # Inversion of the exact confusion model recovers the ideal value.
        assert abs(corrected - ideal) < 0.05 * abs(raw - ideal) + 1e-9
