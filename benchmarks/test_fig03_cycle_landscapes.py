"""Figure 3: energy-landscape concentration on cycle graphs.

Paper: 7-node and 10-node cycles share all subgraphs, so their normalized
p=1 landscapes are nearly identical -- reported MSE 1.6e-5.  We regenerate
both landscapes and check the MSE at the same order of magnitude.
"""

import networkx as nx

from _common import header, row, run_once
from repro.qaoa.landscape import compute_landscape, landscape_mse

WIDTH = 32


def test_fig03_cycle_landscape_concentration(benchmark):
    def experiment():
        small = compute_landscape(nx.cycle_graph(7), width=WIDTH)
        large = compute_landscape(nx.cycle_graph(10), width=WIDTH)
        return landscape_mse(small.values, large.values)

    mse = run_once(benchmark, experiment)

    header("Figure 3: cycle-graph landscape concentration (C7 vs C10)", width=WIDTH)
    row("C7 vs C10", mse=mse, paper_mse=1.6e-5)

    # Same order of magnitude as the paper's 1.6e-5.
    assert mse < 1e-3


def test_fig03_generalizes_across_cycle_sizes(benchmark):
    """Any two long-enough cycles concentrate, not just the paper's pair."""

    def experiment():
        reference = compute_landscape(nx.cycle_graph(8), width=16).values
        return {
            n: landscape_mse(reference, compute_landscape(nx.cycle_graph(n), width=16).values)
            for n in (5, 6, 9, 11, 12)
        }

    mses = run_once(benchmark, experiment)
    header("Figure 3 (extension): concentration across cycle sizes vs C8")
    for n, mse in mses.items():
        row(f"C{n} vs C8", mse=mse)
    for n, mse in mses.items():
        assert mse < 5e-3, f"cycle C{n} landscape deviates: {mse}"
