"""Figure 13: node/edge reduction ratios on AIDS, Linux, IMDb (<= 10 nodes).

Paper: averaging over the three real-world datasets, Red-QAOA removes 28%
of nodes and 37% of edges; IMDb (dense) reduces least, and its edge-to-node
reduction gap exceeds the sparse datasets'.  We regenerate the six bars.
"""

import numpy as np

from _common import header, row, run_once
from repro.core.reduction import GraphReducer
from repro.datasets import load_dataset

DATASETS = ("aids", "linux", "imdb")
COUNT = 15


def test_fig13_dataset_reduction_ratios(benchmark):
    def experiment():
        results = {}
        for name in DATASETS:
            graphs = load_dataset(name, count=COUNT, min_nodes=5, max_nodes=10, seed=0)
            node_reds, edge_reds = [], []
            reducer = GraphReducer(seed=0)
            for g in graphs:
                reduction = reducer.reduce(g)
                node_reds.append(reduction.node_reduction)
                edge_reds.append(reduction.edge_reduction)
            results[name] = (float(np.mean(node_reds)), float(np.mean(edge_reds)))
        return results

    results = run_once(benchmark, experiment)

    header(
        "Figure 13: node/edge reduction ratios per dataset (graphs <= 10 nodes)",
        graphs_per_dataset=COUNT, paper_avg="28% nodes / 37% edges",
    )
    for name, (node_red, edge_red) in results.items():
        row(name, node_reduction=node_red, edge_reduction=edge_red)

    node_avg = np.mean([v[0] for v in results.values()])
    edge_avg = np.mean([v[1] for v in results.values()])
    row("average", node_reduction=float(node_avg), edge_reduction=float(edge_avg))

    # Edges reduce at least as much as nodes (paper: 37% vs 28%).
    assert edge_avg >= node_avg - 0.02
    # Meaningful reduction happens on every dataset.
    for name, (node_red, _) in results.items():
        assert node_red > 0.1, f"{name} barely reduced"
