"""PR 6 serving tracking: daemon throughput and latency across worker counts.

One dedup-free manifest (16 unique weighted-MaxCut jobs, no duplicate or
isomorphic traffic -- so every measured second is real execution, not
dedup wins) is pushed through a live :class:`~repro.serve.daemon.ServeDaemon`
over its unix socket at 1, 2, and 4 process workers, measuring:

- **throughput**: submit -> all results landed (jobs/sec over the wall);
- **latency**: submit -> first streamed result, the async-serving win --
  a client sees its first answer while the rest of the manifest is still
  executing.

Emits ``BENCH_pr6.json``.  Correctness asserted unconditionally: every
worker count returns bit-identical per-job results, equal to sequential
``run_job`` oracles.  The >= 1.8x 4-worker throughput floor is asserted
only when ``BENCH_STRICT`` is on *and* the machine has >= 4 CPUs --
process workers cannot beat one worker on a 1-core box, so the JSON
records ``cpu_count`` and whether the floor was checked.
"""

import json
import os
import tempfile
import threading
import time
from pathlib import Path

from _common import header, row, run_once
from repro.datasets import attach_weights, random_connected_gnp
from repro.serve import ServeClient, ServeDaemon, wait_for_socket
from repro.service import JobSpec, run_job

OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_pr6.json"

NUM_JOBS = 16
NODES = 14
CONFIG = dict(restarts=2, maxiter=20)
WORKER_COUNTS = (1, 2, 4)


def build_specs() -> list[JobSpec]:
    """16 unique jobs: distinct instances, so nothing dedups."""
    specs = [
        JobSpec(
            graph=attach_weights(
                random_connected_gnp(NODES, 0.35, seed=seed), "uniform", seed=seed
            ),
            label=f"maxcut-s{seed}",
            seed=seed,  # the manifest path pins each job's seed too
            **CONFIG,
        )
        for seed in range(NUM_JOBS)
    ]
    assert len({spec.fingerprint for spec in specs}) == NUM_JOBS
    return specs


def _manifest() -> dict:
    # The daemon speaks manifests; regenerate the same 16 instances by seed.
    return {
        "schema": 1,
        "defaults": {"weight_dist": "uniform", **CONFIG},
        "jobs": [
            {"kind": "maxcut", "nodes": NODES, "seed": seed, "label": f"maxcut-s{seed}"}
            for seed in range(NUM_JOBS)
        ],
    }


def _run_daemon(workers: int) -> dict:
    """One fresh daemon: submit the manifest, stream, record the clock."""
    with tempfile.TemporaryDirectory() as tmp:
        daemon = ServeDaemon(
            socket_path=os.path.join(tmp, "serve.sock"),
            store_path=os.path.join(tmp, "store.jsonl"),
            workers=workers,
            pool="process",  # same pool kind at every count: honest scaling
        )
        thread = threading.Thread(
            target=daemon.serve_forever,
            kwargs={"install_signal_handlers": False},
            daemon=True,
        )
        thread.start()
        wait_for_socket(daemon.socket_path)
        client = ServeClient(daemon.socket_path, timeout=600)

        start = time.perf_counter()
        ticket = client.submit(_manifest())["ticket"]
        submitted = time.perf_counter() - start
        first_result = None
        results = {}
        for event in client.stream(ticket):
            if event["event"] == "result":
                if first_result is None:
                    first_result = time.perf_counter() - start
                results[event["fingerprint"]] = event["result"]
        seconds = time.perf_counter() - start
        client.shutdown()
        thread.join(timeout=60)
        assert len(results) == NUM_JOBS
        return {
            "workers": workers,
            "seconds": seconds,
            "jobs_per_sec": NUM_JOBS / seconds,
            "submit_seconds": submitted,
            "first_result_seconds": first_result,
            "results": results,
        }


def _result_key(fields: dict):
    return (
        tuple(fields["gammas"]),
        tuple(fields["betas"]),
        fields["expectation"],
        fields["best_value"],
        tuple(fields["bits"]),
    )


def _experiment():
    start = time.perf_counter()
    oracle = {spec.fingerprint: run_job(spec) for spec in build_specs()}
    sequential_seconds = time.perf_counter() - start

    runs = [_run_daemon(workers) for workers in WORKER_COUNTS]

    oracle_keys = {
        fp: (
            tuple(r.gammas),
            tuple(r.betas),
            r.expectation,
            None if r.best_value != r.best_value else r.best_value,
            tuple(r.bits),
        )
        for fp, r in oracle.items()
    }
    identical = all(
        {fp: _result_key(fields) for fp, fields in run["results"].items()}
        == oracle_keys
        for run in runs
    )
    cpu_count = os.cpu_count() or 1
    for run in runs:
        del run["results"]  # measured, compared, not worth persisting
        # More workers than cores measures contention, not scaling; flag
        # the row so nobody reads an oversubscribed number as a speedup.
        run["oversubscribed"] = run["workers"] > cpu_count
    honest = [run for run in runs if not run["oversubscribed"]]
    return {
        "jobs": NUM_JOBS,
        "nodes": NODES,
        "cpu_count": cpu_count,
        "sequential_seconds": sequential_seconds,
        "daemon": runs,
        # Only meaningful when the 4-worker row ran with real parallelism;
        # oversubscribed rows are excluded rather than reported as a
        # (dishonest) sub-1x "speedup".
        "speedup_4_vs_1": (
            runs[0]["seconds"] / honest[-1]["seconds"]
            if len(honest) > 1 and honest[-1]["workers"] == WORKER_COUNTS[-1]
            else None
        ),
        "bit_identical_all_worker_counts_vs_sequential": identical,
    }


def test_bench_pr6_emit(benchmark):
    results = run_once(benchmark, _experiment)
    strict = os.environ.get("BENCH_STRICT", "1") != "0"
    floor_checked = strict and (results["cpu_count"] or 1) >= 4
    results["floor_checked"] = floor_checked
    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")

    header(
        "PR6 serve daemon: 16-job dedup-free manifest over the socket",
        jobs=results["jobs"],
        nodes=results["nodes"],
        cpus=results["cpu_count"],
        output=OUTPUT.name,
    )
    row("sequential oracle", seconds=results["sequential_seconds"])
    for run in results["daemon"]:
        row(
            f"daemon {run['workers']} worker(s)"
            + (" [oversubscribed]" if run["oversubscribed"] else ""),
            seconds=run["seconds"],
            jobs_per_sec=run["jobs_per_sec"],
            first_result=run["first_result_seconds"],
        )
    if results["speedup_4_vs_1"] is not None:
        row("4w vs 1w", speedup=results["speedup_4_vs_1"])
    else:
        print(f"  note: speedup_4_vs_1 omitted -- "
              f"{results['cpu_count']} CPU(s) oversubscribe 4 workers")

    # Correctness is unconditional: worker count may change only timing.
    assert results["bit_identical_all_worker_counts_vs_sequential"]
    # Async serving means the first answer lands well before the batch is
    # done -- on every worker count, even one.
    for run in results["daemon"]:
        assert run["first_result_seconds"] < run["seconds"]
    # Issue acceptance floor: >= 1.8x at 4 workers -- only meaningful with
    # >= 4 CPUs and a quiet machine (CI sets BENCH_STRICT=0; a 1-core box
    # cannot scale process workers, so the gate prints instead of failing).
    if floor_checked:
        assert results["speedup_4_vs_1"] >= 1.8, results
    else:
        print(f"  note: 1.8x floor not enforced "
              f"(BENCH_STRICT={'on' if strict else 'off'}, "
              f"cpus={results['cpu_count']})")
