"""Figure 14: ideal-landscape MSE per dataset for p = 1, 2, 3.

Paper: with 1024 random parameter sets per p, the MSE between the reduced
and original graphs' energies stays below ~0.01 for AIDS/Linux and around
0.05 for (small, dense) IMDb, growing slightly with p.  We use 512
parameter sets and 8 graphs per dataset.
"""

import numpy as np

from _common import header, row, run_once
from repro.core.reduction import GraphReducer
from repro.datasets import load_dataset
from repro.qaoa.landscape import (
    evaluate_parameter_sets,
    landscape_mse,
    sample_parameter_sets,
)

DATASETS = ("aids", "linux", "imdb")
P_VALUES = (1, 2, 3)
NUM_SETS = 512
COUNT = 8


def test_fig14_ideal_mse_by_dataset_and_depth(benchmark):
    def experiment():
        table = {}
        for name in DATASETS:
            graphs = load_dataset(name, count=COUNT, min_nodes=5, max_nodes=10, seed=0)
            reducer = GraphReducer(seed=0)
            reductions = [reducer.reduce(g) for g in graphs]
            for p in P_VALUES:
                gammas, betas = sample_parameter_sets(p, NUM_SETS, seed=p)
                mses = []
                for g, reduction in zip(graphs, reductions):
                    if reduction.reduced_graph.number_of_edges() == 0:
                        continue
                    ref = evaluate_parameter_sets(g, gammas, betas)
                    red = evaluate_parameter_sets(reduction.reduced_graph, gammas, betas)
                    mses.append(landscape_mse(ref, red))
                table[(name, p)] = float(np.mean(mses))
        return table

    table = run_once(benchmark, experiment)

    header(
        "Figure 14: ideal MSE per dataset and QAOA depth",
        parameter_sets=NUM_SETS, graphs_per_dataset=COUNT,
    )
    for name in DATASETS:
        row(name, **{f"p{p}": table[(name, p)] for p in P_VALUES})

    # Sparse datasets achieve low MSE; dense small IMDb is the worst case.
    for p in P_VALUES:
        assert table[("aids", p)] < 0.06
        assert table[("linux", p)] < 0.06
    imdb_avg = np.mean([table[("imdb", p)] for p in P_VALUES])
    sparse_avg = np.mean(
        [table[(name, p)] for name in ("aids", "linux") for p in P_VALUES]
    )
    assert imdb_avg >= sparse_avg - 0.01
