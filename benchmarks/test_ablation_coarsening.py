"""Ablation (extension): node deletion (SA) vs edge contraction (coarsening).

Heavy-edge coarsening preserves total cut weight but distorts degree
structure; Red-QAOA's SA deletes nodes while *matching* the AND.  Comparing
their landscape MSEs at equal node budgets tests the paper's core design
premise -- that degree matching, not weight preservation, is what keeps
QAOA landscapes aligned.
"""

import numpy as np

from _common import connected_er, header, row, run_once
from repro.core.annealer import simulated_annealing
from repro.pooling import HeavyEdgeCoarsening
from repro.qaoa.landscape import (
    evaluate_parameter_sets,
    landscape_mse,
    sample_parameter_sets,
)
from repro.utils.graphs import relabel_to_range

NUM_GRAPHS = 5
NUM_SETS = 256
KEEP_FRACTION = 0.6


def test_ablation_sa_vs_coarsening(benchmark):
    def experiment():
        gammas, betas = sample_parameter_sets(1, NUM_SETS, seed=0)
        rows = []
        for seed in range(NUM_GRAPHS):
            graph = connected_er(12, 0.4, seed=seed + 90)
            size = max(3, round(KEEP_FRACTION * graph.number_of_nodes()))
            reference = evaluate_parameter_sets(graph, gammas, betas)

            sa_sub = relabel_to_range(
                simulated_annealing(graph, size, seed=seed).subgraph
            )
            sa_mse = landscape_mse(
                reference, evaluate_parameter_sets(sa_sub, gammas, betas)
            )

            coarse = HeavyEdgeCoarsening(seed=seed).pool(graph, size)
            coarse_mse = landscape_mse(
                reference, evaluate_parameter_sets(coarse, gammas, betas)
            )
            rows.append((sa_mse, coarse_mse))
        return rows

    rows = run_once(benchmark, experiment)
    header(
        "Ablation: SA node deletion vs heavy-edge coarsening",
        graphs=NUM_GRAPHS, keep_fraction=KEEP_FRACTION, parameter_sets=NUM_SETS,
    )
    for index, (sa_mse, coarse_mse) in enumerate(rows):
        row(f"graph {index}", sa=sa_mse, coarsening=coarse_mse)
    sa_mean = float(np.mean([r[0] for r in rows]))
    coarse_mean = float(np.mean([r[1] for r in rows]))
    row("mean", sa=sa_mean, coarsening=coarse_mean)

    # AND-matched deletion tracks the landscape better than weight-
    # preserving contraction -- the premise behind the AND objective.
    assert sa_mean <= coarse_mean + 0.005
