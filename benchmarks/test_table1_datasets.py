"""Table 1: benchmark graph dataset characteristics.

Regenerates the dataset summary table -- graph counts, node ranges, density
profile -- plus the regularity fractions Sec. 7.1 quotes (AIDS 1.14%, LINUX
0%, IMDb ~54%) to justify why parameter transfer fails on real data.
"""

from _common import header, row, run_once
from repro.datasets import dataset_stats, load_dataset

EXPECTED = {
    # name: (count, min_nodes, max_nodes)
    "aids": (700, 2, 10),
    "linux": (1000, 4, 10),
    "imdb": (1500, 7, 89),
    "random": (10, 7, 20),
}
SAMPLE = 300  # per-dataset sample for the statistics (full counts asserted separately)


def test_table1_dataset_characteristics(benchmark):
    def experiment():
        stats = {}
        for name in EXPECTED:
            count = SAMPLE if name != "random" else 10
            graphs = load_dataset(name, count=count, seed=0)
            stats[name] = dataset_stats(name, graphs)
        return stats

    stats = run_once(benchmark, experiment)

    header("Table 1: benchmark graph datasets", sample_per_dataset=SAMPLE)
    for name, s in stats.items():
        print("  " + s.as_row())

    for name, (count, lo, hi) in EXPECTED.items():
        s = stats[name]
        assert s.min_nodes >= lo
        assert s.max_nodes <= hi

    # Density ordering: IMDb much denser than AIDS/LINUX.
    assert stats["imdb"].mean_and > 2 * stats["aids"].mean_and
    # Regularity: IMDb ~54%, sparse datasets near zero (Sec. 7.1).
    assert stats["imdb"].regular_fraction > 0.3
    assert stats["aids"].regular_fraction < 0.15
    assert stats["linux"].regular_fraction < 0.1


def test_table1_full_dataset_counts(benchmark):
    """The registry serves the full Table 1 counts when asked."""

    def experiment():
        return {
            name: len(load_dataset(name, seed=0))
            for name in ("aids", "linux", "imdb", "random")
        }

    counts = run_once(benchmark, experiment)
    header("Table 1: full dataset counts")
    row("counts", **counts)
    assert counts == {"aids": 700, "linux": 1000, "imdb": 1500, "random": 10}
