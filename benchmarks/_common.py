"""Shared helpers for the benchmark harness.

Every benchmark module reproduces one table or figure from the paper
(see DESIGN.md's per-experiment index).  Benchmarks print the rows/series
they regenerate -- run with ``pytest benchmarks/ --benchmark-only -s`` to
see them -- and assert the paper's *qualitative* claim (who wins, direction
of trends), not absolute numbers, since the substrate is a simulator rather
than the authors' hardware.

Workload sizes default smaller than the paper's (laptop vs. Perlmutter
A100 nodes); each module states its settings in the printed header.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

__all__ = ["connected_er", "header", "row", "run_once"]


def connected_er(num_nodes: int, probability: float, seed: int) -> nx.Graph:
    """Deterministic connected Erdős–Rényi sample."""
    offset = 0
    while True:
        graph = nx.erdos_renyi_graph(num_nodes, probability, seed=seed + offset)
        if graph.number_of_edges() and nx.is_connected(graph):
            return graph
        offset += 1000


def header(title: str, **settings) -> None:
    """Print a benchmark header with its settings."""
    print()
    print("=" * 72)
    print(title)
    if settings:
        line = ", ".join(f"{k}={v}" for k, v in settings.items())
        print(f"  settings: {line}")
    print("=" * 72)


def row(label: str, **values) -> None:
    """Print one result row."""
    parts = []
    for key, value in values.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.4f}")
        else:
            parts.append(f"{key}={value}")
    print(f"  {label:<28} " + "  ".join(parts))


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The experiments are deterministic given their seeds and too expensive
    for multi-round timing; pedantic mode records a single-round wall time.
    """
    return benchmark.pedantic(fn, iterations=1, rounds=1)
