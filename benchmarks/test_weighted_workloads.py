"""Weighted workloads: SA reduction vs random subgraphs on weighted MaxCut.

Fig. 8-style protocol on the weighted instance class the paper leaves
unexplored: random ER graphs with uniform edge weights and +/-1 spin-glass
couplings, p=2, fixed reduction ratios.  The strength-matching SA reducer
should track the original weighted landscape better than picking a random
connected subgraph of the same size -- the weighted analogue of the paper's
SA-beats-pooling claim.
"""

import numpy as np

from _common import connected_er, header, row, run_once
from repro.core.annealer import simulated_annealing
from repro.datasets import attach_weights
from repro.qaoa.landscape import (
    evaluate_parameter_sets,
    landscape_mse,
    sample_parameter_sets,
)
from repro.utils.graphs import connected_random_subgraph, relabel_to_range
from repro.utils.rng import as_generator

P_LAYERS = 2
NUM_SETS = 128
NUM_GRAPHS = 3
REDUCTION_RATIOS = (0.1, 0.2, 0.3)
DISTRIBUTIONS = ("uniform", "spin")


def _reduce_sa(graph, size, seed):
    return relabel_to_range(
        simulated_annealing(graph, size, cooling="adaptive", seed=seed).subgraph
    )


def _reduce_random(graph, size, seed):
    nodes = connected_random_subgraph(graph, size, as_generator(seed))
    return relabel_to_range(graph.subgraph(nodes))


def test_weighted_sa_vs_random(benchmark):
    def experiment():
        gammas, betas = sample_parameter_sets(P_LAYERS, NUM_SETS, seed=0)
        table = {
            dist: {"SA_Adap": [], "Random": []} for dist in DISTRIBUTIONS
        }
        for dist in DISTRIBUTIONS:
            for seed in range(NUM_GRAPHS):
                graph = attach_weights(connected_er(12, 0.4, seed=seed), dist, seed=seed)
                reference = evaluate_parameter_sets(graph, gammas, betas)
                for ratio in REDUCTION_RATIOS:
                    size = max(3, round((1 - ratio) * graph.number_of_nodes()))
                    for method, reduce_fn in (
                        ("SA_Adap", _reduce_sa), ("Random", _reduce_random)
                    ):
                        reduced = reduce_fn(graph, size, seed)
                        energies = evaluate_parameter_sets(reduced, gammas, betas)
                        table[dist][method].append(landscape_mse(reference, energies))
        return {
            dist: {m: float(np.mean(v)) for m, v in methods.items()}
            for dist, methods in table.items()
        }

    table = run_once(benchmark, experiment)

    header(
        "Weighted workloads: landscape MSE, strength-matching SA vs random subgraph",
        p=P_LAYERS, parameter_sets=NUM_SETS, graphs=NUM_GRAPHS,
        ratios=REDUCTION_RATIOS,
    )
    for dist in DISTRIBUTIONS:
        row(dist, **table[dist])

    # Headline: on every weighted instance class, SA tracks the original
    # landscape at least as well as a random subgraph of the same size.
    for dist in DISTRIBUTIONS:
        assert table[dist]["SA_Adap"] <= table[dist]["Random"] + 1e-9
