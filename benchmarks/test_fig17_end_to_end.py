"""Figure 17: end-to-end Red-QAOA vs baseline on large graphs.

Paper protocol: 100 random 30-node graphs, COBYLA with 20/50/150 restarts
for p = 1/2/3; Red-QAOA achieves >= 99% of the baseline's best result and
>= 97% of its average, despite ~31% node and ~44% edge reduction.

Substitution: the paper runs p <= 3 at 30 nodes on A100 nodes; exactly
simulating p=3 at 30 nodes needs either GPUs or sparse lightcones.  We run
p=1 at 30 nodes (analytic engine, exact) and p=2 at 14 nodes (statevector),
with fewer graphs/restarts; the claim tested is the ratio, which is
size-stable (cf. the artifact appendix's own suggestion to use smaller
``--num_nodes`` for reduced overhead).
"""

import numpy as np

from _common import connected_er, header, row, run_once
from repro.core.pipeline import RedQAOA
from repro.core.reduction import GraphReducer
from repro.qaoa.expectation import maxcut_expectation
from repro.qaoa.optimizer import multi_restart_optimize
from repro.utils.graphs import relabel_to_range

CASES = (
    # (p, num_nodes, edge_probability, num_graphs, restarts, maxiter)
    (1, 30, 0.12, 6, 6, 40),
    (2, 14, 0.30, 4, 6, 50),
)


def _run_case(p, num_nodes, edge_probability, num_graphs, restarts, maxiter):
    best_ratios, avg_ratios = [], []
    node_reds, edge_reds = [], []
    for seed in range(num_graphs):
        graph = connected_er(num_nodes, edge_probability, seed=seed)
        relabeled = relabel_to_range(graph)
        fn = lambda g, b: maxcut_expectation(relabeled, g, b)

        baseline = multi_restart_optimize(fn, p, restarts=restarts, maxiter=maxiter, seed=seed)
        base_values = [t.best_value for t in baseline]

        reducer = GraphReducer(seed=seed)
        red = RedQAOA(
            p=p, reducer=reducer, restarts=restarts, maxiter=maxiter,
            finetune_maxiter=10, seed=seed,
        )
        reduction = red.reduce(graph)
        node_reds.append(reduction.node_reduction)
        edge_reds.append(reduction.edge_reduction)
        traces = red.optimize_reduced(reduction)
        red_values = []
        for trace in traces:
            gammas, betas = trace.best_parameters
            red_values.append(maxcut_expectation(relabeled, gammas, betas))

        best_ratios.append(max(red_values) / max(base_values))
        avg_ratios.append(np.mean(red_values) / np.mean(base_values))
    return {
        "best": float(np.mean(best_ratios)),
        "avg": float(np.mean(avg_ratios)),
        "node_reduction": float(np.mean(node_reds)),
        "edge_reduction": float(np.mean(edge_reds)),
    }


def test_fig17_end_to_end_ratio(benchmark):
    def experiment():
        return {
            (p, n): _run_case(p, n, ep, g, r, m)
            for p, n, ep, g, r, m in CASES
        }

    results = run_once(benchmark, experiment)

    header(
        "Figure 17: Red-QAOA / baseline ratio (best restart and average)",
        cases=[f"p={p}, n={n}" for p, n, *_ in CASES],
        paper="best ~1.00, average >= 0.97",
    )
    for (p, n), r in results.items():
        row(
            f"p={p}, {n}-node graphs",
            best_ratio=r["best"], avg_ratio=r["avg"],
            node_reduction=r["node_reduction"], edge_reduction=r["edge_reduction"],
        )

    for r in results.values():
        # Near-parity on the best restart, high ratio on the average.
        assert r["best"] >= 0.95
        assert r["avg"] >= 0.90
