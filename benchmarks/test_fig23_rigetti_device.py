"""Figure 23: execution on the Rigetti device (Aspen-M-3, 5-10 nodes).

Paper: on the 79-qubit Aspen-M-3 (higher error rates than IBM Falcons),
Red-QAOA achieves lower MSE than the noisy baseline on every graph size
from 5 to 10 nodes at p=1.

Substitution: the aspen_m3 preset (octagonal lattice, Rigetti-ballpark
error rates, CZ basis) stands in for the hardware.
"""

import numpy as np

from _common import connected_er, header, row, run_once
from repro.core.reduction import GraphReducer
from repro.qaoa.fast_sim import FastNoiseSpec
from repro.qaoa.landscape import (
    compute_landscape,
    compute_noisy_landscape,
    landscape_mse,
)
from repro.quantum.backends import get_backend

SIZES = (5, 6, 7, 8, 9, 10)
WIDTH = 12
TRAJECTORIES = 4
SHOTS = 2048


def test_fig23_aspen_small_graphs(benchmark):
    backend = get_backend("aspen_m3")

    def experiment():
        series = {}
        for n in SIZES:
            graph = connected_er(n, 0.5, seed=n + 230)
            reduction = GraphReducer(seed=n).reduce(graph)
            ideal = compute_landscape(graph, width=WIDTH).values
            noisy_base = compute_noisy_landscape(
                graph, FastNoiseSpec.for_graph(backend, graph),
                width=WIDTH, trajectories=TRAJECTORIES, shots=SHOTS, seed=0,
            ).values
            noisy_red = compute_noisy_landscape(
                reduction.reduced_graph,
                FastNoiseSpec.for_graph(backend, reduction.reduced_graph),
                width=WIDTH, trajectories=TRAJECTORIES, shots=SHOTS, seed=0,
            ).values
            series[n] = (
                landscape_mse(ideal, noisy_base),
                landscape_mse(ideal, noisy_red),
            )
        return series

    series = run_once(benchmark, experiment)

    header(
        "Figure 23: Aspen-M-3 device model, 5-10 node graphs (p=1)",
        width=WIDTH, shots=SHOTS,
    )
    for n, (base, red) in series.items():
        row(f"{n} nodes", baseline=base, red_qaoa=red)

    base_all = np.array([v[0] for v in series.values()])
    red_all = np.array([v[1] for v in series.values()])
    # Red-QAOA wins on average; the Rigetti error rates are high enough
    # that the noise reduction dominates the structural approximation.
    assert red_all.mean() < base_all.mean()
    assert (red_all < base_all).mean() >= 0.5
