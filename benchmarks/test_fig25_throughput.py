"""Figure 25: expected throughput improvement on multi-programmed devices.

Paper: running many QAOA jobs concurrently on 27/33/65/127-qubit devices,
Red-QAOA's smaller circuits improve system throughput ~1.92-1.81x (AIDS),
~2.19-1.97x (Linux), and ~1.44-1.37x (IMDb), the gain shrinking slightly
with device size.  We regenerate the 12 bars from dataset reductions and
the analytic throughput model.
"""

import numpy as np

from _common import header, row, run_once
from repro.analysis.throughput import relative_throughput
from repro.core.reduction import GraphReducer
from repro.datasets import load_dataset
from repro.quantum.backends import get_backend

DATASETS = ("aids", "linux", "imdb")
DEVICES = ("kolkata", "eagle_33", "hummingbird_65", "eagle_127")
COUNT = 12


def test_fig25_throughput_improvement(benchmark):
    def experiment():
        pairs_by_dataset = {}
        for name in DATASETS:
            graphs = load_dataset(name, count=COUNT, min_nodes=5, max_nodes=10, seed=0)
            reducer = GraphReducer(seed=0)
            pairs_by_dataset[name] = [
                (g, reducer.reduce(g).reduced_graph) for g in graphs
            ]
        table = {}
        for device in DEVICES:
            backend = get_backend(device)
            for name in DATASETS:
                report = relative_throughput(backend, pairs_by_dataset[name], name)
                table[(device, name)] = report.relative
        return table

    table = run_once(benchmark, experiment)

    header(
        "Figure 25: relative throughput, Red-QAOA vs baseline",
        devices=DEVICES, graphs_per_dataset=COUNT,
        paper="aids ~1.85x, linux ~2.1x, imdb ~1.4x",
    )
    for device in DEVICES:
        row(device, **{name: table[(device, name)] for name in DATASETS})

    means = {
        name: float(np.mean([table[(d, name)] for d in DEVICES])) for name in DATASETS
    }
    row("dataset averages", **means)

    # Every (device, dataset) cell shows a throughput gain.
    assert all(v > 1.0 for v in table.values())
    # Dense IMDb gains least (its graphs reduce least) -- the paper's order.
    assert means["imdb"] <= min(means["aids"], means["linux"]) + 0.05
