"""Figure 19: relative approximation-ratio improvement over noisy baseline.

Paper protocol: 10-node random graphs; for each of Red-QAOA / SAG / Top-K /
ASA, optimize on the surrogate graph (grid search), evaluate the found
parameters on the original graph, compare against optimizing directly on
the noisy original.  Red-QAOA shows consistent positive improvement (+4.2%
median); SAG/Top-K are highly variable; ASA is worst.
"""

import numpy as np

from _common import connected_er, header, row, run_once
from repro.analysis.metrics import paired_summary
from repro.core.reduction import GraphReducer
from repro.pooling import get_pooler
from repro.qaoa.expectation import maxcut_expectation, noisy_maxcut_expectation
from repro.qaoa.fast_sim import FastNoiseSpec
from repro.qaoa.optimizer import grid_search
from repro.quantum.backends import get_backend
from repro.utils.graphs import relabel_to_range

NUM_GRAPHS = 12
GRID_WIDTH = 12
TRAJECTORIES = 3
SHOTS = 2048
METHODS = ("ASA", "SAG", "TopK", "Red-QAOA")


def _noisy_objective(graph, backend, rng):
    noise = FastNoiseSpec.for_graph(backend, graph)
    relabeled = relabel_to_range(graph)
    return lambda g, b: noisy_maxcut_expectation(
        relabeled, g, b, noise, trajectories=TRAJECTORIES, shots=SHOTS, seed=rng
    )


def test_fig19_surrogate_training_improvement(benchmark):
    backend = get_backend("toronto")

    def experiment():
        improvements = {m: [] for m in METHODS}
        for seed in range(NUM_GRAPHS):
            rng = np.random.default_rng(seed)
            graph = connected_er(10, 0.4, seed=seed)
            relabeled = relabel_to_range(graph)

            # Baseline: optimize directly on the noisy original graph.
            (bg, bb), _, _ = grid_search(
                _noisy_objective(graph, backend, rng), width=GRID_WIDTH
            )
            baseline = maxcut_expectation(relabeled, [bg], [bb])

            reduction = GraphReducer(seed=seed).reduce(graph)
            k = reduction.reduced_graph.number_of_nodes()
            surrogates = {
                "Red-QAOA": reduction.reduced_graph,
                "SAG": get_pooler("sag", seed=seed).pool(graph, k),
                "TopK": get_pooler("topk", seed=seed).pool(graph, k),
                "ASA": get_pooler("asa", seed=seed).pool(graph, k),
            }
            for method, surrogate in surrogates.items():
                if surrogate.number_of_edges() == 0:
                    improvements[method].append(-0.5)
                    continue
                (sg, sb), _, _ = grid_search(
                    _noisy_objective(surrogate, backend, rng), width=GRID_WIDTH
                )
                value = maxcut_expectation(relabeled, [sg], [sb])
                improvements[method].append((value - baseline) / baseline)
        return improvements

    improvements = run_once(benchmark, experiment)

    header(
        "Figure 19: relative improvement in approximation ratio vs noisy baseline",
        graphs=NUM_GRAPHS, grid=GRID_WIDTH, shots=SHOTS,
    )
    summaries = {m: paired_summary(v) for m, v in improvements.items()}
    for method in METHODS:
        s = summaries[method]
        row(method, median=s.median, q1=s.q1, q3=s.q3,
            positive=f"{s.fraction_positive:.0%}")

    # Red-QAOA's improvement is non-negative in the median (the paper's
    # "consistently positive improvements")...
    assert summaries["Red-QAOA"].median >= -0.01
    # ...and beats the average pooling method (single-method medians are
    # noisy at this sample size; the paper's claim is about the ensemble).
    pooling_means = [float(np.mean(improvements[m])) for m in ("ASA", "SAG", "TopK")]
    assert float(np.mean(improvements["Red-QAOA"])) >= np.mean(pooling_means) - 0.01
