"""Ablation: SABRE best-of-N repetition depth selection (paper Sec. 5.3).

The paper transpiles with SABRE and keeps the minimum-depth circuit of 100
repetitions.  We measure how transpiled depth improves with the trial
budget, and quantify the depth advantage of reduced circuits -- the reason
smaller graphs accumulate less noise.
"""

import numpy as np

from _common import connected_er, header, row, run_once
from repro.core.reduction import GraphReducer
from repro.qaoa.circuit_builder import build_qaoa_circuit
from repro.quantum.backends import get_backend
from repro.quantum.transpiler import transpile
from repro.utils.graphs import relabel_to_range

TRIAL_BUDGETS = (1, 5, 20)


def test_ablation_sabre_trial_budget(benchmark):
    backend = get_backend("kolkata")

    def experiment():
        graph = connected_er(10, 0.4, seed=55)
        circuit = build_qaoa_circuit(relabel_to_range(graph), [0.7], [0.4])
        depths = {}
        for trials in TRIAL_BUDGETS:
            result = transpile(circuit, backend, trials=trials, seed=0)
            depths[trials] = (result.depth, result.swap_count)
        return depths

    depths = run_once(benchmark, experiment)

    header("Ablation: SABRE best-of-N depth selection", device="kolkata")
    for trials, (depth, swaps) in depths.items():
        row(f"{trials} trial(s)", depth=depth, swaps=swaps)

    # More trials never yields a deeper best circuit.
    budget_list = sorted(depths)
    for small, large in zip(budget_list, budget_list[1:]):
        assert depths[large][0] <= depths[small][0]


def test_ablation_reduced_circuit_depth(benchmark):
    backend = get_backend("kolkata")

    def experiment():
        rows = []
        for seed in range(4):
            graph = connected_er(12, 0.4, seed=seed)
            reduction = GraphReducer(seed=seed).reduce(graph)
            full = transpile(
                build_qaoa_circuit(relabel_to_range(graph), [0.7], [0.4]),
                backend, trials=8, seed=seed,
            )
            red = transpile(
                build_qaoa_circuit(reduction.reduced_graph, [0.7], [0.4]),
                backend, trials=8, seed=seed,
            )
            rows.append((full.depth, red.depth, full.circuit.two_qubit_gate_count(),
                         red.circuit.two_qubit_gate_count()))
        return rows

    rows = run_once(benchmark, experiment)
    header("Ablation: transpiled depth, original vs reduced circuits")
    for index, (fd, rd, f2q, r2q) in enumerate(rows):
        row(f"graph {index}", full_depth=fd, reduced_depth=rd,
            full_cx=f2q, reduced_cx=r2q)

    # Reduced circuits are shallower and use fewer 2-qubit gates on average.
    assert np.mean([r[1] for r in rows]) < np.mean([r[0] for r in rows])
    assert np.mean([r[3] for r in rows]) < np.mean([r[2] for r in rows])
