"""Figure 24: noise tolerance across device noise models.

Paper protocol: one random 10-node graph, 1-layer QAOA, 1024 parameter
points; MSE between the noise-free landscape and the landscape under each
of seven IBM device noise models (Kolkata ... retired Toronto).  Red-QAOA
is consistently below the baseline on every device.
"""

import numpy as np

from _common import connected_er, header, row, run_once
from repro.core.reduction import GraphReducer
from repro.qaoa.fast_sim import FastNoiseSpec
from repro.qaoa.landscape import (
    compute_landscape,
    compute_noisy_landscape,
    landscape_mse,
)
from repro.quantum.backends import get_backend

DEVICES = ("kolkata", "auckland", "cairo", "mumbai", "guadalupe", "melbourne", "toronto")
WIDTH = 14
TRAJECTORIES = 4
SHOTS = 2048


def test_fig24_varying_noise_models(benchmark):
    def experiment():
        graph = connected_er(10, 0.4, seed=24)
        reduction = GraphReducer(seed=24).reduce(graph)
        ideal = compute_landscape(graph, width=WIDTH).values
        results = {}
        for device in DEVICES:
            backend = get_backend(device)
            noisy_base = compute_noisy_landscape(
                graph, FastNoiseSpec.for_graph(backend, graph),
                width=WIDTH, trajectories=TRAJECTORIES, shots=SHOTS, seed=0,
            ).values
            noisy_red = compute_noisy_landscape(
                reduction.reduced_graph,
                FastNoiseSpec.for_graph(backend, reduction.reduced_graph),
                width=WIDTH, trajectories=TRAJECTORIES, shots=SHOTS, seed=0,
            ).values
            results[device] = (
                landscape_mse(ideal, noisy_base),
                landscape_mse(ideal, noisy_red),
            )
        return results

    results = run_once(benchmark, experiment)

    header(
        "Figure 24: MSE under different device noise models (10-node graph)",
        width=WIDTH, shots=SHOTS,
    )
    for device, (base, red) in results.items():
        row(device, baseline=base, red_qaoa=red)

    base_all = np.array([v[0] for v in results.values()])
    red_all = np.array([v[1] for v in results.values()])
    # Red-QAOA is more noise-tolerant across the device spectrum.
    assert red_all.mean() < base_all.mean()
    assert (red_all <= base_all + 0.005).mean() >= 0.7
    # Higher-error devices distort the baseline more: retired toronto /
    # melbourne exceed kolkata (the paper's left-to-right trend).
    assert results["toronto"][0] > results["kolkata"][0]
