"""Figure 21: Red-QAOA vs parameter transfer across graph families.

Paper protocol: real-world graphs (AIDS/Linux/IMDb, 10 nodes), star and
4-ary-tree graphs (30 nodes), and perturbed k-regular graphs (60 nodes);
for each, compare the landscape MSE of (a) a random regular donor graph of
matching degree (parameter transfer) and (b) the Red-QAOA distilled graph.
Transfer works on (near-)regular graphs but fails on irregular ones;
Red-QAOA stays low everywhere.
"""

import networkx as nx
import numpy as np

from _common import header, row, run_once
from repro.core.reduction import GraphReducer
from repro.datasets import load_dataset
from repro.transfer import (
    four_ary_tree_graph,
    perturb_graph,
    random_regular_donor,
    star_graph,
    transfer_landscape_mse,
)
from repro.utils.graphs import average_node_degree

WIDTH = 16


def _cases():
    cases = []
    for name in ("aids", "linux", "imdb"):
        g = load_dataset(name, count=1, min_nodes=9, max_nodes=10, seed=2)[0]
        cases.append((f"{name}_10", g))
    cases.append(("star_30", star_graph(30)))
    cases.append(("4ary_30", four_ary_tree_graph(30)))
    for degree in (2, 3, 4):
        base = nx.random_regular_graph(degree, 60, seed=degree)
        cases.append((f"{degree}-regular_60", perturb_graph(base, 0.1, seed=degree)))
    return cases


def test_fig21_transfer_vs_red_qaoa(benchmark):
    def experiment():
        results = {}
        for label, graph in _cases():
            reducer = GraphReducer(seed=1)
            reduction = reducer.reduce(graph)
            red_mse = transfer_landscape_mse(graph, reduction.reduced_graph, width=WIDTH)

            degree = max(1, round(average_node_degree(graph)))
            donor = random_regular_donor(
                degree, reduction.reduced_graph.number_of_nodes(), seed=1
            )
            transfer_mse = transfer_landscape_mse(graph, donor, width=WIDTH)
            results[label] = (transfer_mse, red_mse)
        return results

    results = run_once(benchmark, experiment)

    header(
        "Figure 21: parameter transfer vs Red-QAOA landscape MSE",
        width=WIDTH,
    )
    for label, (transfer_mse, red_mse) in results.items():
        row(label, parameter_transfer=transfer_mse, red_qaoa=red_mse)

    transfer_all = np.array([v[0] for v in results.values()])
    red_all = np.array([v[1] for v in results.values()])
    # Red-QAOA wins on average across the families...
    assert red_all.mean() <= transfer_all.mean() + 1e-9
    # ...and on the irregular families specifically (star / trees / datasets).
    irregular = [k for k in results if "regular" not in k]
    red_irr = np.mean([results[k][1] for k in irregular])
    transfer_irr = np.mean([results[k][0] for k in irregular])
    assert red_irr <= transfer_irr + 0.005
    # Red-QAOA's MSE stays uniformly low (paper: < ~0.02 across all bars).
    assert red_all.max() < 0.05
