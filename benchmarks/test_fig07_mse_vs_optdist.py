"""Figure 7: MSE correlates with the distance between optimal solutions.

Paper protocol: random 15-node graphs and their subgraphs, 2-layer QAOA
with 2048 random parameter sets; MSE between each subgraph's normalized
energy vector and the original's correlates strongly with the average
distance between their optima.  We use 15-node graphs, p=2, 512 parameter
sets, subgraphs from the SA annealer at several sizes.
"""

import numpy as np

from _common import connected_er, header, row, run_once
from repro.core.annealer import simulated_annealing
from repro.qaoa.landscape import (
    evaluate_parameter_sets,
    landscape_mse,
    sample_parameter_sets,
)
from repro.utils.graphs import relabel_to_range

P_LAYERS = 2
NUM_SETS = 512
SUBGRAPH_SIZES = (6, 8, 10, 12, 14)


TOP_FRACTION = 0.02


def _best_param_distance(energies_a, energies_b, gammas, betas):
    """Average toroidal distance between the two top-energy parameter sets.

    The paper's "average distance between optimals": take the top 2% of
    sampled parameter sets for each instance and symmetrically average the
    nearest-neighbor distances between the two optima clouds.
    """
    k = max(1, int(TOP_FRACTION * len(energies_a)))
    points = np.concatenate([gammas, betas], axis=1)
    top_a = points[np.argsort(-energies_a)[:k]]
    top_b = points[np.argsort(-energies_b)[:k]]
    periods = np.concatenate(
        [np.full(P_LAYERS, 2 * np.pi), np.full(P_LAYERS, np.pi)]
    )

    def directed(src, dst):
        dists = []
        for point in src:
            delta = np.abs(dst - point)
            delta = np.minimum(delta, periods - delta)
            dists.append(np.sqrt((delta**2).sum(axis=1)).min())
        return float(np.mean(dists))

    return 0.5 * (directed(top_a, top_b) + directed(top_b, top_a))


def test_fig07_mse_vs_optimal_distance(benchmark):
    def experiment():
        graph = connected_er(15, 0.3, seed=15)
        gammas, betas = sample_parameter_sets(P_LAYERS, NUM_SETS, seed=0)
        reference = evaluate_parameter_sets(graph, gammas, betas)
        points = []
        for index, size in enumerate(SUBGRAPH_SIZES):
            for attempt in range(2):
                result = simulated_annealing(graph, size, seed=10 * index + attempt)
                sub = relabel_to_range(result.subgraph)
                energies = evaluate_parameter_sets(sub, gammas, betas)
                mse = landscape_mse(reference, energies)
                dist = _best_param_distance(reference, energies, gammas, betas)
                points.append((mse, dist))
        return points

    points = run_once(benchmark, experiment)
    mses = np.array([p[0] for p in points])
    dists = np.array([p[1] for p in points])
    correlation = float(np.corrcoef(mses, dists)[0, 1])

    header(
        "Figure 7: landscape MSE vs distance between optima (p=2)",
        parameter_sets=NUM_SETS, subgraph_sizes=SUBGRAPH_SIZES,
    )
    for mse, dist in sorted(points):
        row("subgraph", mse=mse, optima_distance=dist)
    row("pearson correlation", r=correlation)

    # Paper reports a strong positive correlation.
    assert correlation > 0.2
