"""Figures 15-16: IMDb small vs medium -- reductions improve with size.

Paper: scaling IMDb from small (<= 10 nodes) to medium (10-20 nodes)
raises node reduction from ~15% to ~25% and edge reduction from ~28% to
~35%, while the MSE drops from ~0.05 to below 0.02.  We regenerate both
categories.
"""

import numpy as np

from _common import header, row, run_once
from repro.core.reduction import GraphReducer
from repro.datasets import load_dataset
from repro.qaoa.landscape import (
    evaluate_parameter_sets,
    landscape_mse,
    sample_parameter_sets,
)

COUNT = 8
NUM_SETS = 384
P_VALUES = (1, 2)


def _category(min_nodes, max_nodes, seed):
    graphs = load_dataset("imdb", count=COUNT, min_nodes=min_nodes, max_nodes=max_nodes, seed=seed)
    reducer = GraphReducer(seed=seed)
    node_reds, edge_reds, mses = [], [], {p: [] for p in P_VALUES}
    for g in graphs:
        reduction = reducer.reduce(g)
        node_reds.append(reduction.node_reduction)
        edge_reds.append(reduction.edge_reduction)
        for p in P_VALUES:
            gammas, betas = sample_parameter_sets(p, NUM_SETS, seed=p)
            ref = evaluate_parameter_sets(g, gammas, betas)
            red = evaluate_parameter_sets(reduction.reduced_graph, gammas, betas)
            mses[p].append(landscape_mse(ref, red))
    return {
        "node_reduction": float(np.mean(node_reds)),
        "edge_reduction": float(np.mean(edge_reds)),
        "mse": {p: float(np.mean(v)) for p, v in mses.items()},
    }


def test_fig15_fig16_imdb_small_vs_medium(benchmark):
    def experiment():
        return {
            "small": _category(5, 10, seed=0),
            "medium": _category(11, 18, seed=1),
        }

    results = run_once(benchmark, experiment)

    header(
        "Figures 15-16: IMDb small (<=10) vs medium (11-20 nodes)",
        graphs_per_category=COUNT, parameter_sets=NUM_SETS,
    )
    for name, r in results.items():
        row(
            f"imdb {name}",
            node_reduction=r["node_reduction"],
            edge_reduction=r["edge_reduction"],
            **{f"mse_p{p}": r["mse"][p] for p in P_VALUES},
        )

    small, medium = results["small"], results["medium"]
    # Larger graphs reduce more...
    assert medium["node_reduction"] >= small["node_reduction"] - 0.05
    # ...and land at comparable-or-lower landscape error.
    assert np.mean(list(medium["mse"].values())) <= np.mean(list(small["mse"].values())) + 0.02
