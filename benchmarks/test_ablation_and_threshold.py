"""Ablation: the 0.7 AND-ratio acceptance threshold (paper Sec. 4.3).

The threshold trades reduction (smaller circuits) against landscape
fidelity.  We sweep thresholds and measure both sides of the trade: kept
fraction and landscape MSE.  The paper's 0.7 default should sit on the
knee -- meaningful reduction at MSE near the 0.02 target.
"""

import numpy as np

from _common import connected_er, header, row, run_once
from repro.core.reduction import GraphReducer
from repro.qaoa.landscape import compute_landscape, landscape_mse

THRESHOLDS = (0.5, 0.6, 0.7, 0.8, 0.9)
NUM_GRAPHS = 5
WIDTH = 16


def test_ablation_and_ratio_threshold(benchmark):
    def experiment():
        table = {t: {"kept": [], "mse": []} for t in THRESHOLDS}
        for seed in range(NUM_GRAPHS):
            graph = connected_er(12, 0.4, seed=seed)
            reference = compute_landscape(graph, width=WIDTH).values
            for threshold in THRESHOLDS:
                reducer = GraphReducer(
                    and_ratio_threshold=threshold,
                    min_keep_fraction=0.3,  # let the threshold drive the size
                    seed=seed,
                )
                reduction = reducer.reduce(graph)
                kept = 1.0 - reduction.node_reduction
                mse = landscape_mse(
                    reference,
                    compute_landscape(reduction.reduced_graph, width=WIDTH).values,
                )
                table[threshold]["kept"].append(kept)
                table[threshold]["mse"].append(mse)
        return {
            t: (float(np.mean(v["kept"])), float(np.mean(v["mse"])))
            for t, v in table.items()
        }

    table = run_once(benchmark, experiment)

    header(
        "Ablation: AND-ratio threshold sweep",
        graphs=NUM_GRAPHS, width=WIDTH, paper_default=0.7,
    )
    for threshold, (kept, mse) in table.items():
        row(f"threshold {threshold}", kept_fraction=kept, mse=mse)

    kept_series = [table[t][0] for t in THRESHOLDS]
    mse_series = [table[t][1] for t in THRESHOLDS]
    # Stricter thresholds keep more of the graph...
    assert kept_series[-1] >= kept_series[0] - 1e-9
    # ...and achieve equal-or-lower landscape error.
    assert mse_series[-1] <= mse_series[0] + 0.01
    # The paper's 0.7 point reaches the ~0.02-0.05 MSE regime.
    assert table[0.7][1] < 0.08
