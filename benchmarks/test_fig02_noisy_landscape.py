"""Figure 2: ideal vs noisy energy landscape on a 13-node graph.

Paper: the 27-qubit ibmq_kolkata landscape for a 13-node graph shows
substantial noise-induced distortion.  We regenerate both landscapes under
the kolkata noise preset and report the MSE and the displacement of the
global optimum.
"""

from _common import connected_er, header, row, run_once
from repro.qaoa.fast_sim import FastNoiseSpec
from repro.qaoa.landscape import (
    compute_landscape,
    compute_noisy_landscape,
    landscape_mse,
    optimal_point_distance,
)
from repro.quantum.backends import get_backend

WIDTH = 16
TRAJECTORIES = 4
SHOTS = 2048


def test_fig02_noisy_landscape(benchmark):
    graph = connected_er(13, 0.35, seed=13)
    backend = get_backend("kolkata")
    noise = FastNoiseSpec.for_graph(backend, graph)

    def experiment():
        ideal = compute_landscape(graph, width=WIDTH)
        noisy = compute_noisy_landscape(
            graph, noise, width=WIDTH, trajectories=TRAJECTORIES, shots=SHOTS, seed=0
        )
        return ideal, noisy

    ideal, noisy = run_once(benchmark, experiment)
    mse = landscape_mse(ideal.values, noisy.values)
    drift = optimal_point_distance(ideal, noisy, tolerance=1e-6)

    header(
        "Figure 2: ideal vs noisy landscape (13-node graph, kolkata noise)",
        width=WIDTH, trajectories=TRAJECTORIES, shots=SHOTS,
    )
    row("ideal vs noisy", mse=mse, optimum_drift=drift)

    # The landscapes must differ visibly (the paper's point), and the noisy
    # optimum generally moves away from the ideal one.
    assert mse > 0.001
