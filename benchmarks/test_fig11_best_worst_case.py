"""Figures 11-12: best/worst-case noisy landscapes (10- and 11-node graphs).

Paper: for the 10-node graph (best case) Red-QAOA's noisy landscape has
MSE 0.03 vs the baseline's 0.13, with optima staying near the ideal ones;
for the 11-node graph (worst case) Red-QAOA still wins (0.07 vs 0.12) but
its optima begin to drift.  We regenerate both cases and check Red-QAOA's
MSE and optimum drift stay at or below the baseline's.
"""

from _common import connected_er, header, row, run_once
from repro.core.reduction import GraphReducer
from repro.qaoa.fast_sim import FastNoiseSpec
from repro.qaoa.landscape import (
    compute_landscape,
    compute_noisy_landscape,
    landscape_mse,
    optimal_point_distance,
)
from repro.quantum.backends import get_backend

WIDTH = 16
TRAJECTORIES = 6
SHOTS = 2048


def _case(n, seed):
    backend = get_backend("toronto")
    graph = connected_er(n, 0.4, seed=seed)
    reduction = GraphReducer(seed=seed).reduce(graph)
    ideal = compute_landscape(graph, width=WIDTH)
    noisy_base = compute_noisy_landscape(
        graph, FastNoiseSpec.for_graph(backend, graph),
        width=WIDTH, trajectories=TRAJECTORIES, shots=SHOTS, seed=0,
    )
    noisy_red = compute_noisy_landscape(
        reduction.reduced_graph,
        FastNoiseSpec.for_graph(backend, reduction.reduced_graph),
        width=WIDTH, trajectories=TRAJECTORIES, shots=SHOTS, seed=0,
    )
    return {
        "mse_base": landscape_mse(ideal.values, noisy_base.values),
        "mse_red": landscape_mse(ideal.values, noisy_red.values),
        "drift_base": optimal_point_distance(ideal, noisy_base, tolerance=1e-6),
        "drift_red": optimal_point_distance(ideal, noisy_red, tolerance=1e-6),
    }


def test_fig11_fig12_best_and_worst_case(benchmark):
    def experiment():
        return {10: _case(10, seed=10), 11: _case(11, seed=11)}

    cases = run_once(benchmark, experiment)

    header(
        "Figures 11-12: noisy landscape best (10-node) / worst (11-node) case",
        width=WIDTH, trajectories=TRAJECTORIES, shots=SHOTS,
    )
    for n, c in cases.items():
        row(
            f"{n}-node graph",
            baseline_mse=c["mse_base"], red_mse=c["mse_red"],
            baseline_drift=c["drift_base"], red_drift=c["drift_red"],
        )

    # Red-QAOA wins on MSE in both cases (the figures' headline).
    for c in cases.values():
        assert c["mse_red"] <= c["mse_base"] + 0.01
