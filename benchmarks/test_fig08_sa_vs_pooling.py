"""Figure 8: SA-based reduction vs GNN pooling across reduction ratios.

Paper protocol: random graph dataset, p=3, fixed reduction ratios 0.1-0.7;
MSE between the reduced graph's landscape and the original's.  Both SA
variants beat ASA/SAG/Top-K almost everywhere, with adaptive cooling best
overall.  We run p=3 with 256 random parameter sets on 12-node graphs.
"""

import numpy as np

from _common import connected_er, header, row, run_once
from repro.core.annealer import simulated_annealing
from repro.pooling import get_pooler
from repro.qaoa.landscape import (
    evaluate_parameter_sets,
    landscape_mse,
    sample_parameter_sets,
)
from repro.utils.graphs import relabel_to_range

P_LAYERS = 3
NUM_SETS = 256
NUM_GRAPHS = 3
REDUCTION_RATIOS = (0.1, 0.2, 0.3, 0.4, 0.5)
METHODS = ("ASA", "SAG", "Top_K", "SA", "SA_Adap")


def _reduce_with(method, graph, size, seed):
    if method == "SA":
        return relabel_to_range(
            simulated_annealing(graph, size, cooling="constant", seed=seed).subgraph
        )
    if method == "SA_Adap":
        return relabel_to_range(
            simulated_annealing(graph, size, cooling="adaptive", seed=seed).subgraph
        )
    name = {"ASA": "asa", "SAG": "sag", "Top_K": "topk"}[method]
    return get_pooler(name, seed=seed).pool(graph, size)


def test_fig08_sa_vs_pooling(benchmark):
    def experiment():
        gammas, betas = sample_parameter_sets(P_LAYERS, NUM_SETS, seed=0)
        table = {method: {ratio: [] for ratio in REDUCTION_RATIOS} for method in METHODS}
        for seed in range(NUM_GRAPHS):
            graph = connected_er(12, 0.4, seed=seed)
            reference = evaluate_parameter_sets(graph, gammas, betas)
            for ratio in REDUCTION_RATIOS:
                size = max(3, round((1 - ratio) * graph.number_of_nodes()))
                for method in METHODS:
                    reduced = _reduce_with(method, graph, size, seed)
                    if reduced.number_of_edges() == 0:
                        table[method][ratio].append(1.0)  # degenerate pooled graph
                        continue
                    energies = evaluate_parameter_sets(reduced, gammas, betas)
                    table[method][ratio].append(landscape_mse(reference, energies))
        return {
            method: {ratio: float(np.mean(v)) for ratio, v in ratios.items()}
            for method, ratios in table.items()
        }

    table = run_once(benchmark, experiment)

    header(
        "Figure 8: landscape MSE vs reduction ratio, SA vs GNN pooling",
        p=P_LAYERS, parameter_sets=NUM_SETS, graphs=NUM_GRAPHS,
    )
    for method in METHODS:
        row(method, **{f"r{ratio}": table[method][ratio] for ratio in REDUCTION_RATIOS})

    # Headline claim: adaptive SA beats every pooling method on average.
    mean = {m: np.mean(list(table[m].values())) for m in METHODS}
    row("averages", **{m: float(v) for m, v in mean.items()})
    assert mean["SA_Adap"] <= min(mean["ASA"], mean["SAG"], mean["Top_K"]) + 1e-9
    # Both SA variants are competitive (within noise of the best pooler).
    assert mean["SA"] <= min(mean["ASA"], mean["SAG"], mean["Top_K"]) + 0.01
