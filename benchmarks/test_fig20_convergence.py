"""Figure 20: convergence of noisy optimization, baseline vs Red-QAOA.

Paper protocol: a 10-node random graph, COBYLA with five random restarts
under noise, on (a) the original graph and (b) the Red-QAOA reduced graph;
parameters recorded each iteration are re-evaluated on an ideal simulator.
Red-QAOA converges faster and to better energies.
"""

import numpy as np

from _common import connected_er, header, row, run_once
from repro.core.reduction import GraphReducer
from repro.qaoa.expectation import maxcut_expectation, noisy_maxcut_expectation
from repro.qaoa.fast_sim import FastNoiseSpec
from repro.qaoa.optimizer import multi_restart_optimize
from repro.quantum.backends import get_backend
from repro.utils.graphs import relabel_to_range

RESTARTS = 5
MAXITER = 40
TRAJECTORIES = 3
SHOTS = 1024


def _grid_best(graph):
    """Coarse ideal grid optimum used to normalize curves per graph."""
    best = None
    for gamma in np.linspace(0.1, 2 * np.pi, 14, endpoint=False):
        for beta in np.linspace(0.05, np.pi, 14, endpoint=False):
            value = maxcut_expectation(graph, [gamma], [beta])
            if best is None or value > best[0]:
                best = (value, gamma, beta)
    return [best[1]], [best[2]]


def test_fig20_noisy_convergence(benchmark):
    backend = get_backend("toronto")

    def experiment():
        curves = {"baseline": [], "red-qaoa": []}
        for graph_seed in (20, 21, 22):
            graph = connected_er(10, 0.4, seed=graph_seed)
            relabeled = relabel_to_range(graph)
            reduction = GraphReducer(seed=graph_seed).reduce(graph)
            reduced = reduction.reduced_graph
            optimum = maxcut_expectation(
                relabeled,
                *_grid_best(relabeled),
            )
            ideal_eval = lambda g, b: maxcut_expectation(relabeled, g, b) / optimum
            for label, target in (("baseline", relabeled), ("red-qaoa", reduced)):
                rng = np.random.default_rng(0)
                noise = FastNoiseSpec.for_graph(backend, target)
                fn = lambda g, b: noisy_maxcut_expectation(
                    target, g, b, noise, trajectories=TRAJECTORIES, shots=SHOTS, seed=rng
                )
                traces = multi_restart_optimize(
                    fn, p=1, restarts=RESTARTS, maxiter=MAXITER, seed=1
                )
                # Re-evaluate each iterate on the ideal simulator of the
                # ORIGINAL graph (the paper's protocol for comparability),
                # normalized per graph so curves aggregate across instances.
                curves[label].extend(trace.reevaluate(ideal_eval) for trace in traces)
        return curves

    curves = run_once(benchmark, experiment)

    def running_best(values):
        return np.maximum.accumulate(values)

    header(
        "Figure 20: noisy-optimization convergence (ideal re-evaluation)",
        restarts=RESTARTS, maxiter=MAXITER, shots=SHOTS,
    )
    summary = {}
    for label, runs in curves.items():
        finals = [running_best(r)[-1] for r in runs]
        halfway = [running_best(r)[min(10, len(r) - 1)] for r in runs]
        summary[label] = (float(np.mean(halfway)), float(np.mean(finals)))
        row(label, mean_at_iter10=summary[label][0], mean_final=summary[label][1])

    # Red-QAOA converges at least as fast (iteration 10) and as high
    # (final), within a small tolerance on the normalized [0, 1] scale.
    assert summary["red-qaoa"][0] >= summary["baseline"][0] - 0.03
    assert summary["red-qaoa"][1] >= summary["baseline"][1] - 0.03
