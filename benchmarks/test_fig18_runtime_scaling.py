"""Figure 18: Red-QAOA preprocessing scales as n log n and is negligible.

Paper: reducer preprocessing on 10-1000-node graphs fits an n log n curve;
a 10-node graph costs ~0.004 s against ~4.2 s for one circuit execution on
ibm_sherbrooke (~0.1% overhead).  We time the reducer across sizes, fit
``a * n log n + b``, and compare against the modeled per-circuit time.
"""

from _common import header, row, run_once
from repro.analysis.runtime import (
    fit_nlogn,
    measure_preprocessing_times,
    per_circuit_execution_time,
)

SIZES = (10, 25, 50, 100, 200, 400, 700, 1000)


def test_fig18_preprocessing_runtime(benchmark):
    def experiment():
        return measure_preprocessing_times(SIZES, seed=0, repeats=1)

    measurements = run_once(benchmark, experiment)
    model = fit_nlogn(measurements)

    header(
        "Figure 18: preprocessing runtime vs n log n fit",
        sizes=SIZES,
    )
    for n, seconds in measurements:
        row(f"n={n}", measured_s=seconds, fitted_s=model.predict(n))
    row("fit", a=model.a, b=model.b, r_squared=model.r_squared)

    circuit_time = per_circuit_execution_time(10, p=1, shots=8192)
    overhead_10 = dict(measurements)[10] / circuit_time
    row("10-node overhead", preprocessing_s=dict(measurements)[10],
        circuit_s=circuit_time, fraction=overhead_10)

    # The n log n model explains the scaling well.
    assert model.r_squared > 0.9
    # Preprocessing stays a small fraction of one circuit execution.
    assert overhead_10 < 0.25
    # Super-quadratic growth would break the fit badly; check the largest
    # measurement is within 3x of the model's prediction.
    largest_n, largest_t = measurements[-1]
    assert largest_t < 3 * model.predict(largest_n) + 0.5
