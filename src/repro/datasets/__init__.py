"""Benchmark graph datasets (paper Sec. 5.2, Table 1).

The original AIDS / LINUX / IMDb collections are TU-dataset downloads; this
reproduction ships synthetic generators matched to the published statistics
(graph counts, node ranges, and -- critically for every Red-QAOA result --
the average-node-degree profile: IMDb dense and cliquish, AIDS and LINUX
sparse and tree-like).  See DESIGN.md for the substitution rationale.

Beyond graphs, :mod:`repro.datasets.problems` generates instances of every
Ising/QUBO workload in :mod:`repro.problems` (MIS, vertex cover, number
partitioning, SK spin glasses, random QUBOs) by the same seeded-and-
deterministic rules.
"""

from repro.datasets.problems import (
    PROBLEM_KINDS,
    partition_numbers,
    problem_instance,
    problem_suite,
    suite_manifest,
    random_qubo_matrix,
)
from repro.datasets.random_graphs import random_graph_suite, random_connected_gnp
from repro.datasets.registry import DATASET_NAMES, load_dataset
from repro.datasets.stats import DatasetStats, dataset_stats
from repro.datasets.synthetic import aids_like_graph, imdb_like_graph, linux_like_graph
from repro.datasets.weighted import (
    WEIGHT_DISTRIBUTIONS,
    attach_weights,
    spin_glass_graph,
    weighted_graph_suite,
)

__all__ = [
    "DATASET_NAMES",
    "DatasetStats",
    "PROBLEM_KINDS",
    "WEIGHT_DISTRIBUTIONS",
    "aids_like_graph",
    "attach_weights",
    "dataset_stats",
    "imdb_like_graph",
    "linux_like_graph",
    "load_dataset",
    "partition_numbers",
    "problem_instance",
    "problem_suite",
    "suite_manifest",
    "random_connected_gnp",
    "random_graph_suite",
    "random_qubo_matrix",
    "spin_glass_graph",
    "weighted_graph_suite",
]
