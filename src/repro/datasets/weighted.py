"""Weighted MaxCut / random-Ising instance generators.

The paper evaluates unit-weight MaxCut, but its cost Hamiltonian (Eq. 5)
is weighted, and every engine in :mod:`repro.qaoa` honors the ``weight``
edge attribute.  This module supplies the matching workload generators:

- **uniform**: i.i.d. weights from ``U[low, high)`` -- generic weighted
  MaxCut instances;
- **gaussian**: i.i.d. weights from ``N(mean, sigma)`` -- continuous
  disorder; draws are *not* clipped, so couplings may be negative
  (ferromagnetic), which all engines support;
- **spin**: Rademacher ``+/-1`` weights -- Edwards-Anderson / spin-glass
  style random-Ising instances.

All generators return connected simple graphs with a ``weight`` attribute
on every edge, ready for any expectation engine or the Red-QAOA pipeline.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.datasets.random_graphs import random_connected_gnp
from repro.utils.graphs import ensure_graph
from repro.utils.rng import as_generator

__all__ = [
    "WEIGHT_DISTRIBUTIONS",
    "attach_weights",
    "spin_glass_graph",
    "weighted_graph_suite",
]

WEIGHT_DISTRIBUTIONS = ("uniform", "gaussian", "spin")


def attach_weights(
    graph: nx.Graph,
    distribution: str = "uniform",
    low: float = 0.1,
    high: float = 2.0,
    mean: float = 1.0,
    sigma: float = 0.25,
    seed: int | np.random.Generator | None = None,
) -> nx.Graph:
    """Copy of ``graph`` with random ``weight`` edge attributes.

    ``distribution`` is one of :data:`WEIGHT_DISTRIBUTIONS`; the ``low`` /
    ``high`` bounds apply to ``"uniform"`` and ``mean`` / ``sigma`` to
    ``"gaussian"``.  Weights are drawn in the graph's edge-iteration order
    from ``seed``, so the same (graph, seed) pair always yields the same
    instance.
    """
    ensure_graph(graph)
    if distribution not in WEIGHT_DISTRIBUTIONS:
        raise ValueError(
            f"unknown weight distribution {distribution!r}; "
            f"available: {WEIGHT_DISTRIBUTIONS}"
        )
    rng = as_generator(seed)
    weighted = nx.Graph(graph)
    m = weighted.number_of_edges()
    if distribution == "uniform":
        if not low < high:
            raise ValueError(f"need low < high, got [{low}, {high})")
        draws = rng.uniform(low, high, size=m)
    elif distribution == "gaussian":
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        draws = rng.normal(mean, sigma, size=m)
    else:  # spin
        draws = rng.choice([-1.0, 1.0], size=m)
    for (u, v), w in zip(weighted.edges(), draws):
        weighted[u][v]["weight"] = float(w)
    return weighted


def spin_glass_graph(
    num_nodes: int,
    edge_probability: float = 0.5,
    seed: int | np.random.Generator | None = None,
) -> nx.Graph:
    """A connected G(n, p) instance with Rademacher ``+/-1`` couplings."""
    rng = as_generator(seed)
    graph = random_connected_gnp(num_nodes, edge_probability, seed=rng)
    return attach_weights(graph, "spin", seed=rng)


def weighted_graph_suite(
    count: int = 10,
    min_nodes: int = 7,
    max_nodes: int = 20,
    edge_probability: float = 0.4,
    distribution: str = "uniform",
    seed: int | np.random.Generator | None = None,
) -> list[nx.Graph]:
    """``count`` connected ER graphs with random edge weights.

    The weighted counterpart of
    :func:`~repro.datasets.random_graphs.random_graph_suite`; node counts
    are drawn uniformly from ``[min_nodes, max_nodes]``.
    """
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if not 2 <= min_nodes <= max_nodes:
        raise ValueError(f"invalid node range [{min_nodes}, {max_nodes}]")
    rng = as_generator(seed)
    sizes = rng.integers(min_nodes, max_nodes + 1, size=count)
    return [
        attach_weights(
            random_connected_gnp(int(n), edge_probability, seed=rng),
            distribution,
            seed=rng,
        )
        for n in sizes
    ]
