"""Problem-instance generators for the Ising/QUBO workload layer.

The problem-side analogue of the graph datasets: deterministic, seeded
generators for every encoding in :mod:`repro.problems`, keyed by the same
workload names the CLI's ``solve --problem`` accepts.  Structured problems
(MaxCut, MIS, vertex cover) are built on connected G(n, p) samples;
partitioning draws integer weights; SK and QUBO draw random couplings.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.random_graphs import random_connected_gnp
from repro.datasets.weighted import attach_weights
from repro.problems import (
    DiagonalProblem,
    max_independent_set_problem,
    maxcut_problem,
    min_vertex_cover_problem,
    number_partitioning_problem,
    qubo_problem,
    sk_problem,
)
from repro.utils.rng import as_generator

__all__ = [
    "PROBLEM_KINDS",
    "partition_numbers",
    "problem_instance",
    "problem_suite",
    "random_qubo_matrix",
    "suite_manifest",
]

PROBLEM_KINDS = ("maxcut", "mis", "vertex-cover", "partition", "sk", "qubo")


def random_qubo_matrix(
    num_variables: int,
    density: float = 0.5,
    scale: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """A random symmetric QUBO matrix with ``N(0, scale)`` entries.

    Off-diagonal pairs are kept with probability ``density`` (their two
    symmetric entries share one value); the diagonal (linear terms) is
    always dense.
    """
    if num_variables < 1:
        raise ValueError(f"num_variables must be >= 1, got {num_variables}")
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    rng = as_generator(seed)
    matrix = np.zeros((num_variables, num_variables))
    for u in range(num_variables):
        matrix[u, u] = rng.normal(0.0, scale)
        for v in range(u + 1, num_variables):
            if rng.random() < density:
                value = rng.normal(0.0, scale) / 2.0
                matrix[u, v] = value
                matrix[v, u] = value
    return matrix


def partition_numbers(
    count: int,
    low: int = 1,
    high: int = 50,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """``count`` integers drawn uniformly from ``[low, high]`` (as floats)."""
    if count < 2:
        raise ValueError(f"count must be >= 2, got {count}")
    if not 1 <= low <= high:
        raise ValueError(f"need 1 <= low <= high, got [{low}, {high}]")
    rng = as_generator(seed)
    return rng.integers(low, high + 1, size=count).astype(float)


def problem_instance(
    kind: str,
    num_qubits: int,
    seed: int | np.random.Generator | None = None,
    edge_probability: float = 0.35,
    penalty: float = 2.0,
    weight_distribution: str | None = None,
    qubo_density: float = 0.5,
) -> DiagonalProblem:
    """One deterministic instance of workload ``kind`` on ``num_qubits`` qubits.

    ``kind`` is one of :data:`PROBLEM_KINDS`.  ``edge_probability`` shapes
    the G(n, p) sample behind the graph-structured kinds;
    ``weight_distribution`` optionally weights the MaxCut instance
    (``uniform``/``gaussian``/``spin``) or selects the SK coupling draw
    (``gaussian``/``spin``); ``penalty`` parameterizes the MIS and
    vertex-cover encodings; ``qubo_density`` the random QUBO's off-diagonal
    fill.
    """
    if kind not in PROBLEM_KINDS:
        raise ValueError(f"unknown problem kind {kind!r}; available: {PROBLEM_KINDS}")
    rng = as_generator(seed)
    if kind == "maxcut":
        graph = random_connected_gnp(num_qubits, edge_probability, seed=rng)
        if weight_distribution is not None:
            graph = attach_weights(graph, weight_distribution, seed=rng)
        return maxcut_problem(graph)
    if kind == "mis":
        graph = random_connected_gnp(num_qubits, edge_probability, seed=rng)
        return max_independent_set_problem(graph, penalty=penalty)
    if kind == "vertex-cover":
        graph = random_connected_gnp(num_qubits, edge_probability, seed=rng)
        return min_vertex_cover_problem(graph, penalty=penalty)
    if kind == "partition":
        return number_partitioning_problem(partition_numbers(num_qubits, seed=rng))
    if kind == "sk":
        distribution = "gaussian" if weight_distribution is None else weight_distribution
        return sk_problem(num_qubits, seed=rng, distribution=distribution)
    return qubo_problem(random_qubo_matrix(num_qubits, density=qubo_density, seed=rng))


def problem_suite(
    kind: str,
    count: int = 10,
    num_qubits: int = 12,
    seed: int | np.random.Generator | None = None,
    **kwargs,
) -> list[DiagonalProblem]:
    """``count`` independent instances of workload ``kind`` (shared RNG stream)."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    rng = as_generator(seed)
    return [problem_instance(kind, num_qubits, seed=rng, **kwargs) for _ in range(count)]


def suite_manifest(
    kind: str,
    count: int = 10,
    num_qubits: int = 12,
    seed: int = 0,
    generator: dict | None = None,
    **job_config,
) -> dict:
    """A batch-serving manifest for a generated dataset suite.

    The suite -> manifest bridge: ``count`` jobs of workload ``kind`` on
    ``num_qubits`` qubits with consecutive seeds (``seed + i`` pins both
    the instance draw and the job execution), ready for
    :func:`repro.service.manifest_specs` / ``red-qaoa batch``.
    ``generator`` holds instance-shaping keys (``edge_probability``,
    ``weight_dist``, ``penalty``, ``qubo_density``); remaining keyword
    arguments become the manifest's job-config ``defaults`` (``p``,
    ``restarts``, ``maxiter``, ...).  ``kind="maxcut"`` describes graph
    jobs; every other :data:`PROBLEM_KINDS` entry a problem job.
    """
    if kind != "maxcut" and kind not in PROBLEM_KINDS:
        raise ValueError(f"unknown workload kind {kind!r}; available: {PROBLEM_KINDS}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    generator = dict(generator or {})
    jobs = [
        {"kind": kind, "nodes": int(num_qubits), "seed": int(seed) + index, **generator}
        for index in range(count)
    ]
    manifest = {"schema": 1, "jobs": jobs}
    if job_config:
        manifest["defaults"] = dict(job_config)
    return manifest
