"""Random graph generation (the paper's fourth dataset, Table 1).

Erdős–Rényi graphs with node counts 7-20, conditioned on connectivity so
that every instance maps to one QAOA circuit.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.utils.rng import as_generator

__all__ = ["random_connected_gnp", "random_graph_suite"]


def random_connected_gnp(
    num_nodes: int,
    edge_probability: float,
    seed: int | np.random.Generator | None = None,
    max_attempts: int = 200,
) -> nx.Graph:
    """A connected G(n, p) sample; retries until connected.

    Raises ``RuntimeError`` when connectivity is not achieved within
    ``max_attempts`` draws (choose a larger ``edge_probability``).
    """
    if num_nodes < 2:
        raise ValueError(f"num_nodes must be >= 2, got {num_nodes}")
    if not 0.0 < edge_probability <= 1.0:
        raise ValueError(f"edge_probability must be in (0, 1], got {edge_probability}")
    rng = as_generator(seed)
    for _ in range(max_attempts):
        graph = nx.erdos_renyi_graph(num_nodes, edge_probability, seed=rng)
        if graph.number_of_edges() and nx.is_connected(graph):
            return graph
    raise RuntimeError(
        f"no connected G({num_nodes}, {edge_probability}) sample in {max_attempts} attempts"
    )


def random_graph_suite(
    count: int = 10,
    min_nodes: int = 7,
    max_nodes: int = 20,
    edge_probability: float = 0.4,
    seed: int | np.random.Generator | None = None,
) -> list[nx.Graph]:
    """The paper's random dataset: ``count`` connected ER graphs, 7-20 nodes."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if not 2 <= min_nodes <= max_nodes:
        raise ValueError(f"invalid node range [{min_nodes}, {max_nodes}]")
    rng = as_generator(seed)
    sizes = rng.integers(min_nodes, max_nodes + 1, size=count)
    return [random_connected_gnp(int(n), edge_probability, rng) for n in sizes]
