"""Dataset summary statistics (reproduces Table 1).

``dataset_stats`` summarizes a list of graphs: counts, node/edge ranges,
average node degree, and the fraction of regular graphs -- the last being
the statistic Sec. 7.1 quotes (1.14% of AIDS, 0% of LINUX, ~54% of IMDb
graphs are regular) to argue that parameter transfer's regularity
precondition fails on real data.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.utils.graphs import average_node_degree

__all__ = ["DatasetStats", "dataset_stats", "is_regular"]


def is_regular(graph: nx.Graph) -> bool:
    """Whether all node degrees are equal."""
    degrees = {d for _, d in graph.degree()}
    return len(degrees) <= 1


@dataclass(frozen=True)
class DatasetStats:
    """Aggregate statistics of one graph dataset."""

    name: str
    num_graphs: int
    min_nodes: int
    max_nodes: int
    mean_nodes: float
    mean_edges: float
    mean_and: float
    regular_fraction: float

    def as_row(self) -> str:
        """One formatted Table 1-style row."""
        return (
            f"{self.name:<8} {self.num_graphs:>6} graphs  "
            f"nodes {self.min_nodes}-{self.max_nodes} (avg {self.mean_nodes:.1f})  "
            f"avg edges {self.mean_edges:.1f}  AND {self.mean_and:.2f}  "
            f"regular {100 * self.regular_fraction:.1f}%"
        )


def dataset_stats(name: str, graphs: list[nx.Graph]) -> DatasetStats:
    """Compute :class:`DatasetStats` over ``graphs``."""
    if not graphs:
        raise ValueError("graphs must be non-empty")
    nodes = np.array([g.number_of_nodes() for g in graphs])
    edges = np.array([g.number_of_edges() for g in graphs])
    ands = np.array([average_node_degree(g) for g in graphs])
    regular = np.array([is_regular(g) for g in graphs])
    return DatasetStats(
        name=name,
        num_graphs=len(graphs),
        min_nodes=int(nodes.min()),
        max_nodes=int(nodes.max()),
        mean_nodes=float(nodes.mean()),
        mean_edges=float(edges.mean()),
        mean_and=float(ands.mean()),
        regular_fraction=float(regular.mean()),
    )
