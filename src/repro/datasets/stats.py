"""Dataset summary statistics (reproduces Table 1).

``dataset_stats`` summarizes a list of graphs: counts, node/edge ranges,
average node degree, and the fraction of regular graphs -- the last being
the statistic Sec. 7.1 quotes (1.14% of AIDS, 0% of LINUX, ~54% of IMDb
graphs are regular) to argue that parameter transfer's regularity
precondition fails on real data.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.utils.graphs import (
    average_node_degree,
    average_node_strength,
    is_weighted as is_weighted_graph,
)

__all__ = ["DatasetStats", "dataset_stats", "is_regular", "is_weighted_graph"]


def is_regular(graph: nx.Graph) -> bool:
    """Whether all node degrees are equal."""
    degrees = {d for _, d in graph.degree()}
    return len(degrees) <= 1


@dataclass(frozen=True)
class DatasetStats:
    """Aggregate statistics of one graph dataset.

    ``mean_strength`` is the mean weighted AND (node strength); it equals
    ``mean_and`` on unit-weight datasets.  ``weighted_fraction`` is the
    fraction of graphs carrying non-unit edge weights.
    """

    name: str
    num_graphs: int
    min_nodes: int
    max_nodes: int
    mean_nodes: float
    mean_edges: float
    mean_and: float
    regular_fraction: float
    mean_strength: float = float("nan")
    weighted_fraction: float = 0.0

    def as_row(self) -> str:
        """One formatted Table 1-style row."""
        row = (
            f"{self.name:<8} {self.num_graphs:>6} graphs  "
            f"nodes {self.min_nodes}-{self.max_nodes} (avg {self.mean_nodes:.1f})  "
            f"avg edges {self.mean_edges:.1f}  AND {self.mean_and:.2f}  "
            f"regular {100 * self.regular_fraction:.1f}%"
        )
        if self.weighted_fraction > 0.0:
            row += (
                f"  strength {self.mean_strength:.2f}  "
                f"weighted {100 * self.weighted_fraction:.1f}%"
            )
        return row


def dataset_stats(name: str, graphs: list[nx.Graph]) -> DatasetStats:
    """Compute :class:`DatasetStats` over ``graphs``."""
    if not graphs:
        raise ValueError("graphs must be non-empty")
    nodes = np.array([g.number_of_nodes() for g in graphs])
    edges = np.array([g.number_of_edges() for g in graphs])
    ands = np.array([average_node_degree(g) for g in graphs])
    strengths = np.array([average_node_strength(g) for g in graphs])
    regular = np.array([is_regular(g) for g in graphs])
    weighted = np.array([is_weighted_graph(g) for g in graphs])
    return DatasetStats(
        name=name,
        num_graphs=len(graphs),
        min_nodes=int(nodes.min()),
        max_nodes=int(nodes.max()),
        mean_nodes=float(nodes.mean()),
        mean_edges=float(edges.mean()),
        mean_and=float(ands.mean()),
        regular_fraction=float(regular.mean()),
        mean_strength=float(strengths.mean()),
        weighted_fraction=float(weighted.mean()),
    )
