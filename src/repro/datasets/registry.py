"""Dataset registry: load any benchmark dataset by name.

``load_dataset`` mirrors the paper's experiment scripts
(``--graph_set aids|linux|imdb``) with node-range filters
(``--min_nodes`` / ``--max_nodes``) and deterministic seeding.  Full-size
datasets (700 / 1000 / 1500 graphs, Table 1) are the defaults; pass
``count`` for a subsample.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.datasets.random_graphs import random_graph_suite
from repro.datasets.synthetic import aids_like_graph, imdb_like_graph, linux_like_graph
from repro.datasets.weighted import weighted_graph_suite
from repro.utils.rng import as_generator

__all__ = ["DATASET_NAMES", "load_dataset"]

# (generator, full count, (min_nodes, max_nodes)) per Table 1.
_SPECS = {
    "aids": (aids_like_graph, 700, (2, 10)),
    "linux": (linux_like_graph, 1000, (4, 10)),
    "imdb": (imdb_like_graph, 1500, (7, 89)),
}

# Weighted workloads (beyond the paper's Table 1): ER graphs with random
# edge weights; "spinglass" draws Rademacher +/-1 couplings.
_WEIGHTED_SPECS = {
    "weighted-uniform": "uniform",
    "weighted-gaussian": "gaussian",
    "spinglass": "spin",
}

DATASET_NAMES = ("aids", "linux", "imdb", "random") + tuple(_WEIGHTED_SPECS)


def load_dataset(
    name: str,
    count: int | None = None,
    min_nodes: int | None = None,
    max_nodes: int | None = None,
    seed: int | np.random.Generator | None = 0,
) -> list[nx.Graph]:
    """Graphs from dataset ``name``, filtered to the node range.

    ``name`` is one of :data:`DATASET_NAMES`.  ``count`` limits the number
    of graphs (defaults to the full Table 1 count).  ``min_nodes`` /
    ``max_nodes`` clamp sizes inside the dataset's natural range -- e.g.
    the paper's "IMDb medium" is ``min_nodes=10, max_nodes=20``.
    """
    name = name.lower()
    if name == "random":
        return random_graph_suite(
            count=count if count is not None else 10,
            min_nodes=min_nodes if min_nodes is not None else 7,
            max_nodes=max_nodes if max_nodes is not None else 20,
            seed=seed,
        )
    if name in _WEIGHTED_SPECS:
        return weighted_graph_suite(
            count=count if count is not None else 10,
            min_nodes=min_nodes if min_nodes is not None else 7,
            max_nodes=max_nodes if max_nodes is not None else 20,
            distribution=_WEIGHTED_SPECS[name],
            seed=seed,
        )
    if name not in _SPECS:
        raise KeyError(f"unknown dataset {name!r}; available: {DATASET_NAMES}")
    generator, full_count, (lo, hi) = _SPECS[name]
    lo = max(lo, min_nodes) if min_nodes is not None else lo
    hi = min(hi, max_nodes) if max_nodes is not None else hi
    if lo > hi:
        raise ValueError(f"empty node range [{lo}, {hi}] for dataset {name!r}")
    # IMDb node sizes are heavy-tailed (average 6, max 89): sample sizes from
    # a clipped geometric-ish distribution; AIDS/LINUX are near-uniform.
    rng = as_generator(seed)
    count = count if count is not None else full_count
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    graphs: list[nx.Graph] = []
    while len(graphs) < count:
        size = _sample_size(name, lo, hi, rng)
        graphs.append(generator(size, seed=rng))
    return graphs


def _sample_size(name: str, lo: int, hi: int, rng: np.random.Generator) -> int:
    if name == "imdb":
        # Heavy-tailed: most ego networks are small, a few reach 89 actors.
        size = lo + int(rng.geometric(0.25)) - 1
        return int(min(size, hi))
    return int(rng.integers(lo, hi + 1))
