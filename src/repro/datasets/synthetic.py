"""Synthetic stand-ins for the AIDS, LINUX, and IMDb graph datasets.

Each generator mimics the structural fingerprint of its namesake:

- **AIDS** (chemical compounds): molecule-like graphs -- mostly trees of
  low-degree atoms with occasional rings; average degree close to 2.
- **LINUX** (program dependence / function call graphs): sparse rooted
  trees with a few shortcut (cross-call) edges; degrees dominated by 1-3.
- **IMDb** (actor ego networks): one or two dense collaboration cliques
  around a hub actor; high average degree, ~54% of small instances end up
  regular (complete graphs are regular), matching Sec. 7.1's observation.

All generators return connected simple graphs with nodes ``0..n-1``.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.utils.rng import as_generator

__all__ = ["aids_like_graph", "imdb_like_graph", "linux_like_graph"]


def aids_like_graph(
    num_nodes: int,
    seed: int | np.random.Generator | None = None,
) -> nx.Graph:
    """A molecule-like graph: random tree plus ring closures.

    Tree degrees are capped at 4 (carbon valence); with ~40% probability a
    ring of length 5-6 is closed by adding one edge between tree nodes at
    the right distance, echoing aromatic rings in the NCI compounds.
    """
    if num_nodes < 2:
        raise ValueError(f"num_nodes must be >= 2, got {num_nodes}")
    rng = as_generator(seed)
    graph = _bounded_degree_tree(num_nodes, max_degree=4, rng=rng)
    if num_nodes >= 5 and rng.random() < 0.4:
        _close_ring(graph, rng, ring_lengths=(5, 6))
    return graph


def linux_like_graph(
    num_nodes: int,
    seed: int | np.random.Generator | None = None,
) -> nx.Graph:
    """A call-graph-like graph: skewed tree plus a few shortcut edges.

    Preferential attachment with a mild bias produces the hub-ish shape of
    function-call graphs; each non-tree pair gains a shortcut edge with
    small probability (cross calls), keeping AND a bit above 2.
    """
    if num_nodes < 2:
        raise ValueError(f"num_nodes must be >= 2, got {num_nodes}")
    rng = as_generator(seed)
    graph = nx.Graph()
    graph.add_node(0)
    for node in range(1, num_nodes):
        # Preferential attachment: weight by (degree + 1)^0.8.
        nodes = list(graph.nodes())
        weights = np.array([(graph.degree(v) + 1) ** 0.8 for v in nodes])
        target = nodes[int(rng.choice(len(nodes), p=weights / weights.sum()))]
        graph.add_edge(node, target)
    num_shortcuts = int(rng.binomial(max(0, num_nodes - 3), 0.12))
    candidates = [
        (u, v)
        for u in range(num_nodes)
        for v in range(u + 1, num_nodes)
        if not graph.has_edge(u, v)
    ]
    if candidates and num_shortcuts:
        picks = rng.choice(len(candidates), size=min(num_shortcuts, len(candidates)), replace=False)
        for index in np.atleast_1d(picks):
            graph.add_edge(*candidates[int(index)])
    return graph


def imdb_like_graph(
    num_nodes: int,
    seed: int | np.random.Generator | None = None,
) -> nx.Graph:
    """An ego-network-like graph: dense clique(s) around a hub.

    Small instances (<= 12 nodes) are complete collaboration cliques --
    regular with probability ~0.54 (Sec. 7.1) -- or near-complete with a
    few edges removed; larger instances are two overlapping cliques (two
    movies sharing cast) joined at the ego node.
    """
    if num_nodes < 3:
        raise ValueError(f"num_nodes must be >= 3, got {num_nodes}")
    rng = as_generator(seed)
    if num_nodes <= 12:
        graph = nx.complete_graph(num_nodes)
        # ~54% of IMDb ego networks are regular (paper Sec. 7.1): a single
        # full cast forms a complete clique, hence a regular graph.  The
        # remainder lose a few collaborations.
        if rng.random() > 0.54:
            removable = 1 + int(rng.binomial(num_nodes, 0.35))
            _remove_edges_keep_connected(graph, removable, rng)
        return graph
    size_a = int(num_nodes * rng.uniform(0.45, 0.65))
    size_a = min(max(size_a, 3), num_nodes - 2)
    clique_a = list(range(size_a + 1))  # ego node 0 plus first movie cast
    clique_b = [0] + list(range(size_a + 1, num_nodes))
    graph = nx.Graph()
    for clique in (clique_a, clique_b):
        for i, u in enumerate(clique):
            for v in clique[i + 1:]:
                graph.add_edge(u, v)
    removable = int(rng.binomial(graph.number_of_edges(), 0.10))
    _remove_edges_keep_connected(graph, removable, rng)
    return graph


def _bounded_degree_tree(num_nodes: int, max_degree: int, rng: np.random.Generator) -> nx.Graph:
    """A uniform random tree where no node exceeds ``max_degree``."""
    graph = nx.Graph()
    graph.add_node(0)
    for node in range(1, num_nodes):
        candidates = [v for v in graph.nodes() if graph.degree(v) < max_degree]
        target = candidates[int(rng.integers(len(candidates)))]
        graph.add_edge(node, target)
    return graph


def _close_ring(graph: nx.Graph, rng: np.random.Generator, ring_lengths: tuple[int, ...]) -> None:
    """Add one edge closing a cycle of a length drawn from ``ring_lengths``."""
    lengths = dict(nx.all_pairs_shortest_path_length(graph))
    options = [
        (u, v)
        for u in graph.nodes()
        for v, dist in lengths[u].items()
        if u < v and (dist + 1) in ring_lengths and not graph.has_edge(u, v)
    ]
    if options:
        graph.add_edge(*options[int(rng.integers(len(options)))])


def _remove_edges_keep_connected(graph: nx.Graph, count: int, rng: np.random.Generator) -> None:
    """Remove up to ``count`` random edges without disconnecting the graph."""
    for _ in range(count):
        edges = list(graph.edges())
        rng.shuffle(edges)
        for edge in edges:
            graph.remove_edge(*edge)
            if nx.is_connected(graph):
                break
            graph.add_edge(*edge)
        else:
            return
