"""Expectation-value dispatch: pick the right engine for the problem size.

``maxcut_expectation`` chooses among three exact engines, all of which
honor the ``weight`` edge attribute (weighted MaxCut / random Ising):

========================  =========  ==========================================
condition (``auto``)      engine     notes
========================  =========  ==========================================
``n <= exact_limit``      statevector  :mod:`repro.qaoa.fast_sim`; exact for
                                       any depth, weighted diagonal
``p == 1`` (any size)     analytic     :mod:`repro.qaoa.analytic`; O(|E|)
                                       unweighted closed form, or the weighted
                                       product form (Ozaeta et al. 2022) when
                                       any edge weight differs from 1
otherwise                 lightcone    :mod:`repro.qaoa.lightcone`; per-edge
                                       ``w_uv P(cut)`` terms on weighted
                                       distance-p subgraphs, memoized by a
                                       canonical weighted signature
========================  =========  ==========================================

``noisy_maxcut_expectation`` runs the fast Pauli-trajectory noisy path
(statevector-based, so it also honors weights).
"""

from __future__ import annotations

from collections.abc import Sequence

import networkx as nx
import numpy as np

from repro.qaoa.analytic import maxcut_p1_expectation
from repro.qaoa.fast_sim import (
    FastNoiseSpec,
    noisy_qaoa_expectation_fast,
    qaoa_expectation_fast,
)
from repro.qaoa.hamiltonian import MaxCutHamiltonian
from repro.qaoa.lightcone import LightconeTooLargeError, lightcone_expectation
from repro.utils.graphs import ensure_graph, relabel_to_range

__all__ = ["EngineLimitError", "maxcut_expectation", "noisy_maxcut_expectation"]

_EXACT_LIMIT = 20


class EngineLimitError(ValueError):
    """No exact engine can handle the requested (size, depth) combination."""


def maxcut_expectation(
    graph: nx.Graph,
    gammas: Sequence[float],
    betas: Sequence[float],
    method: str = "auto",
    exact_limit: int = _EXACT_LIMIT,
) -> float:
    """Ideal QAOA MaxCut expectation with automatic engine choice.

    ``method`` may be ``"auto"``, ``"statevector"``, ``"analytic"`` (p=1
    only) or ``"lightcone"``.
    """
    ensure_graph(graph)
    gammas = [float(g) for g in np.atleast_1d(gammas)]
    betas = [float(b) for b in np.atleast_1d(betas)]
    if len(gammas) != len(betas) or not gammas:
        raise ValueError("gammas and betas must be non-empty and equal length")
    p = len(gammas)
    n = graph.number_of_nodes()

    if method == "statevector" or (method == "auto" and n <= exact_limit):
        hamiltonian = MaxCutHamiltonian(graph)
        return qaoa_expectation_fast(hamiltonian, gammas, betas)
    if method == "analytic" or (method == "auto" and p == 1):
        if p != 1:
            raise ValueError("the analytic engine only supports p=1")
        return maxcut_p1_expectation(graph, gammas[0], betas[0])
    if method in ("lightcone", "auto"):
        relabeled = relabel_to_range(graph)
        try:
            return lightcone_expectation(relabeled, gammas, betas, max_qubits=exact_limit)
        except LightconeTooLargeError as exc:
            raise EngineLimitError(
                f"graph with {n} nodes at p={p} is beyond exact simulation: {exc}"
            ) from exc
    raise ValueError(f"unknown method {method!r}")


def noisy_maxcut_expectation(
    graph: nx.Graph,
    gammas: Sequence[float],
    betas: Sequence[float],
    noise: FastNoiseSpec,
    trajectories: int = 8,
    shots: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> float:
    """Noisy QAOA MaxCut expectation on the fast trajectory path.

    Noise is injected at QAOA-layer granularity (see
    :class:`~repro.qaoa.fast_sim.FastNoiseSpec`); readout error and optional
    finite-``shots`` sampling apply at the end.
    """
    ensure_graph(graph)
    hamiltonian = MaxCutHamiltonian(graph)
    gammas = [float(g) for g in np.atleast_1d(gammas)]
    betas = [float(b) for b in np.atleast_1d(betas)]
    return noisy_qaoa_expectation_fast(
        hamiltonian, gammas, betas, noise, trajectories=trajectories, shots=shots, seed=seed
    )
