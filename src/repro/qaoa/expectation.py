"""Expectation-value dispatch: pick the right engine for the problem size.

``maxcut_expectation`` chooses among three exact engines, all of which
honor the ``weight`` edge attribute (weighted MaxCut / random Ising):

========================  =========  ==========================================
condition (``auto``)      engine     notes
========================  =========  ==========================================
``n <= exact_limit``      statevector  :mod:`repro.qaoa.fast_sim`; exact for
                                       any depth, weighted diagonal
``p == 1`` (any size)     analytic     :mod:`repro.qaoa.analytic`; O(|E|)
                                       unweighted closed form, or the weighted
                                       product form (Ozaeta et al. 2022) when
                                       any edge weight differs from 1
otherwise                 lightcone    :mod:`repro.qaoa.lightcone`; per-edge
                                       ``w_uv P(cut)`` terms on weighted
                                       distance-p subgraphs, memoized by a
                                       canonical weighted signature
========================  =========  ==========================================

``noisy_maxcut_expectation`` runs the fast Pauli-trajectory noisy path
(statevector-based, so it also honors weights).
"""

from __future__ import annotations

from collections.abc import Sequence

import networkx as nx
import numpy as np

from repro.qaoa.analytic import maxcut_p1_expectation
from repro.qaoa.fast_sim import (
    FastNoiseSpec,
    noisy_qaoa_expectation_fast,
    qaoa_expectation_fast,
)
from repro.qaoa.hamiltonian import MaxCutHamiltonian
from repro.qaoa.lightcone import (
    LightconePlan,
    LightconeTooLargeError,
    PlanCache,
    lightcone_expectation,
)
from repro.utils.graphs import ensure_graph, relabel_to_range

__all__ = [
    "EngineLimitError",
    "maxcut_evaluator",
    "maxcut_expectation",
    "noisy_maxcut_expectation",
]

_EXACT_LIMIT = 20


class EngineLimitError(ValueError):
    """No exact engine can handle the requested (size, depth) combination."""


def maxcut_expectation(
    graph: nx.Graph,
    gammas: Sequence[float],
    betas: Sequence[float],
    method: str = "auto",
    exact_limit: int = _EXACT_LIMIT,
) -> float:
    """Ideal QAOA MaxCut expectation with automatic engine choice.

    ``method`` may be ``"auto"``, ``"statevector"``, ``"analytic"`` (p=1
    only) or ``"lightcone"``.
    """
    ensure_graph(graph)
    gammas = [float(g) for g in np.atleast_1d(gammas)]
    betas = [float(b) for b in np.atleast_1d(betas)]
    if len(gammas) != len(betas) or not gammas:
        raise ValueError("gammas and betas must be non-empty and equal length")
    p = len(gammas)
    n = graph.number_of_nodes()

    if method == "statevector" or (method == "auto" and n <= exact_limit):
        hamiltonian = MaxCutHamiltonian(graph)
        return qaoa_expectation_fast(hamiltonian, gammas, betas)
    if method == "analytic" or (method == "auto" and p == 1):
        if p != 1:
            raise ValueError("the analytic engine only supports p=1")
        return maxcut_p1_expectation(graph, gammas[0], betas[0])
    if method in ("lightcone", "auto"):
        relabeled = relabel_to_range(graph)
        try:
            return lightcone_expectation(relabeled, gammas, betas, max_qubits=exact_limit)
        except LightconeTooLargeError as exc:
            raise EngineLimitError(
                f"graph with {n} nodes at p={p} is beyond exact simulation: {exc}"
            ) from exc
    raise ValueError(f"unknown method {method!r}")


def maxcut_evaluator(
    graph: nx.Graph,
    p: int,
    method: str = "auto",
    exact_limit: int = _EXACT_LIMIT,
    plan_cache: PlanCache | None = None,
):
    """One-time engine dispatch: a reusable ``f(gammas, betas) -> float``.

    The graph-side twin of :func:`repro.problems.expectation.problem_evaluator`:
    the engine choice -- and on the lightcone path the whole
    structure-discovery/compile cost -- is paid once, so optimizer loops
    price thousands of points without re-dispatching or rebuilding a plan
    per call.  Every path produces bit-identical values to
    :func:`maxcut_expectation` with the same ``method``.  ``plan_cache``
    optionally shares compiled :class:`~repro.qaoa.lightcone.LightconePlan`
    objects across evaluators (batch serving); pass canonically relabeled
    graphs when sharing, as plan keys embed node labels.

    Fails fast: :class:`EngineLimitError` is raised here, not at the first
    evaluation, when no exact engine can handle the graph at depth ``p``.
    The returned evaluator only accepts depth-``p`` parameter vectors.
    """
    ensure_graph(graph)
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    n = graph.number_of_nodes()

    def coerce(gammas, betas) -> tuple[list[float], list[float]]:
        gammas = [float(g) for g in np.atleast_1d(gammas)]
        betas = [float(b) for b in np.atleast_1d(betas)]
        if len(gammas) != len(betas) or len(gammas) != p:
            raise ValueError(
                f"evaluator was built for p={p}, got {len(gammas)} gammas "
                f"and {len(betas)} betas"
            )
        return gammas, betas

    if method == "statevector" or (method == "auto" and n <= exact_limit):
        hamiltonian = MaxCutHamiltonian(graph)

        def statevector(gammas, betas):
            gammas, betas = coerce(gammas, betas)
            return qaoa_expectation_fast(hamiltonian, gammas, betas)

        return statevector
    if method == "analytic" or (method == "auto" and p == 1):
        if p != 1:
            raise ValueError("the analytic engine only supports p=1")

        def analytic(gammas, betas):
            gammas, betas = coerce(gammas, betas)
            return maxcut_p1_expectation(graph, gammas[0], betas[0])

        return analytic
    if method in ("lightcone", "auto"):
        relabeled = relabel_to_range(graph)
        try:
            plan = LightconePlan.build_cached(
                relabeled, p, max_qubits=exact_limit, cache=plan_cache
            )
        except LightconeTooLargeError as exc:
            raise EngineLimitError(
                f"graph with {n} nodes at p={p} is beyond exact simulation: {exc}"
            ) from exc

        def lightcone(gammas, betas):
            gammas, betas = coerce(gammas, betas)
            return plan.evaluate(gammas, betas)

        return lightcone
    raise ValueError(f"unknown method {method!r}")


def noisy_maxcut_expectation(
    graph: nx.Graph,
    gammas: Sequence[float],
    betas: Sequence[float],
    noise: FastNoiseSpec,
    trajectories: int = 8,
    shots: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> float:
    """Noisy QAOA MaxCut expectation on the fast trajectory path.

    Noise is injected at QAOA-layer granularity (see
    :class:`~repro.qaoa.fast_sim.FastNoiseSpec`); readout error and optional
    finite-``shots`` sampling apply at the end.
    """
    ensure_graph(graph)
    hamiltonian = MaxCutHamiltonian(graph)
    gammas = [float(g) for g in np.atleast_1d(gammas)]
    betas = [float(b) for b in np.atleast_1d(betas)]
    return noisy_qaoa_expectation_fast(
        hamiltonian, gammas, betas, noise, trajectories=trajectories, shots=shots, seed=seed
    )
