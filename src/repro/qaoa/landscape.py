"""Energy landscapes: grids, random parameter sets, normalization, MSE.

An *energy landscape* (paper Sec. 3.3) is the QAOA expectation as a
function of the circuit parameters.  For p=1 it is the 2-D surface over
``gamma in [0, 2*pi]``, ``beta in [0, pi]`` that all the paper's landscape
figures draw; for p > 1 the paper samples random parameter sets instead
(1024 by default) and compares the resulting energy vectors.

The similarity metric is the MSE between *normalized* landscapes (paper
Eq. 12); normalization rescales each landscape to [0, 1] so instances with
different edge counts become comparable.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.qaoa.expectation import maxcut_expectation, noisy_maxcut_expectation
from repro.qaoa.fast_sim import FastNoiseSpec, qaoa_expectation_batch
from repro.qaoa.hamiltonian import MaxCutHamiltonian
from repro.qaoa.lightcone import LightconePlan, LightconeTooLargeError
from repro.utils.graphs import ensure_graph, relabel_to_range
from repro.utils.rng import as_generator

__all__ = [
    "GAMMA_RANGE",
    "BETA_RANGE",
    "Landscape",
    "compute_landscape",
    "compute_noisy_landscape",
    "evaluate_parameter_sets",
    "landscape_mse",
    "normalize_landscape",
    "optimal_points",
    "optimal_point_distance",
    "sample_parameter_sets",
]

GAMMA_RANGE = (0.0, 2.0 * np.pi)
BETA_RANGE = (0.0, np.pi)


@dataclass
class Landscape:
    """A p=1 energy landscape on a regular (gamma, beta) grid.

    ``values[i, j]`` is the expectation at ``(gammas[i], betas[j])``.
    """

    gammas: np.ndarray
    betas: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        expected = (len(self.gammas), len(self.betas))
        if self.values.shape != expected:
            raise ValueError(f"values shape {self.values.shape} != {expected}")

    @property
    def width(self) -> int:
        return len(self.gammas)

    def normalized(self) -> "Landscape":
        return Landscape(self.gammas, self.betas, normalize_landscape(self.values))

    def best_parameters(self) -> tuple[float, float]:
        """(gamma, beta) of the landscape maximum."""
        i, j = np.unravel_index(int(np.argmax(self.values)), self.values.shape)
        return float(self.gammas[i]), float(self.betas[j])


def grid_axes(width: int) -> tuple[np.ndarray, np.ndarray]:
    """Evenly spaced (gamma, beta) axes over the standard QAOA ranges."""
    if width < 2:
        raise ValueError(f"width must be >= 2, got {width}")
    gammas = np.linspace(GAMMA_RANGE[0], GAMMA_RANGE[1], width, endpoint=False)
    betas = np.linspace(BETA_RANGE[0], BETA_RANGE[1], width, endpoint=False)
    return gammas, betas


def compute_landscape(graph: nx.Graph, width: int = 32, method: str = "auto") -> Landscape:
    """Ideal p=1 landscape on a ``width x width`` grid (1024 points at 32).

    Uses the batched statevector engine when the graph is small enough; for
    larger graphs a :class:`~repro.qaoa.lightcone.LightconePlan` is built
    once and evaluated at every grid point, so the whole grid pays the
    structure-discovery cost a single time.  Graphs too dense for the
    lightcone cap fall back to the dispatching scalar engine per point.
    """
    ensure_graph(graph)
    gammas, betas = grid_axes(width)
    gg, bb = np.meshgrid(gammas, betas, indexing="ij")
    if graph.number_of_nodes() <= 20:
        hamiltonian = MaxCutHamiltonian(graph)
        flat = qaoa_expectation_batch(
            hamiltonian, gg.reshape(-1, 1), bb.reshape(-1, 1)
        )
    else:
        flat = _plan_or_pointwise(graph, gg.reshape(-1, 1), bb.reshape(-1, 1), method)
    return Landscape(gammas, betas, flat.reshape(width, width))


def compute_noisy_landscape(
    graph: nx.Graph,
    noise: FastNoiseSpec,
    width: int = 32,
    trajectories: int = 8,
    shots: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> Landscape:
    """Noisy p=1 landscape under the fast trajectory path."""
    ensure_graph(graph)
    rng = as_generator(seed)
    gammas, betas = grid_axes(width)
    relabeled = relabel_to_range(graph)
    values = np.empty((width, width))
    for i, gamma in enumerate(gammas):
        for j, beta in enumerate(betas):
            values[i, j] = noisy_maxcut_expectation(
                relabeled, [gamma], [beta], noise,
                trajectories=trajectories, shots=shots, seed=rng,
            )
    return Landscape(gammas, betas, values)


def sample_parameter_sets(
    p: int,
    count: int,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``count`` random parameter sets: gammas, betas of shape (count, p).

    Uniform over the standard ranges, matching the paper's "1024 random
    parameter sets" protocol for p > 1 comparisons.
    """
    if p < 1 or count < 1:
        raise ValueError("p and count must be >= 1")
    rng = as_generator(seed)
    gammas = rng.uniform(GAMMA_RANGE[0], GAMMA_RANGE[1], size=(count, p))
    betas = rng.uniform(BETA_RANGE[0], BETA_RANGE[1], size=(count, p))
    return gammas, betas


def evaluate_parameter_sets(
    graph: nx.Graph,
    gammas: np.ndarray,
    betas: np.ndarray,
    evaluator: Callable[[nx.Graph, Sequence[float], Sequence[float]], float] | None = None,
) -> np.ndarray:
    """Energy vector for many parameter sets (the p > 1 "landscape").

    ``evaluator`` defaults to the ideal expectation; pass a closure over
    ``noisy_maxcut_expectation`` for noisy energy vectors.  Default
    evaluation is fully batched: the statevector engine below 21 nodes, a
    once-built :class:`~repro.qaoa.lightcone.LightconePlan` above.
    """
    ensure_graph(graph)
    gammas = np.atleast_2d(gammas)
    betas = np.atleast_2d(betas)
    if gammas.shape != betas.shape:
        raise ValueError(f"shape mismatch: {gammas.shape} vs {betas.shape}")
    if evaluator is None and graph.number_of_nodes() <= 20:
        hamiltonian = MaxCutHamiltonian(graph)
        return qaoa_expectation_batch(hamiltonian, gammas, betas)
    if evaluator is None:
        return _plan_or_pointwise(graph, gammas, betas, "auto")
    return np.array([evaluator(graph, g, b) for g, b in zip(gammas, betas)])


def _plan_or_pointwise(
    graph: nx.Graph, gammas: np.ndarray, betas: np.ndarray, method: str
) -> np.ndarray:
    """Batched lightcone-plan evaluation with a per-point dispatch fallback."""
    if method in ("auto", "lightcone"):
        try:
            plan = LightconePlan.build(relabel_to_range(graph), gammas.shape[1])
        except LightconeTooLargeError:
            if method == "lightcone":
                raise
        else:
            return plan.evaluate_batch(gammas, betas)
    return np.array(
        [
            maxcut_expectation(graph, g, b, method=method)
            for g, b in zip(gammas, betas)
        ]
    )


def normalize_landscape(values: np.ndarray) -> np.ndarray:
    """Rescale to [0, 1]; a constant landscape maps to all zeros."""
    values = np.asarray(values, dtype=float)
    low = values.min()
    span = values.max() - low
    if span <= 0:
        return np.zeros_like(values)
    return (values - low) / span


def landscape_mse(a: np.ndarray, b: np.ndarray) -> float:
    """MSE between two *normalized* landscapes (paper Eq. 12)."""
    a = normalize_landscape(a)
    b = normalize_landscape(b)
    if a.shape != b.shape:
        raise ValueError(f"landscape shapes differ: {a.shape} vs {b.shape}")
    return float(np.mean((a - b) ** 2))


def optimal_points(values: np.ndarray, tolerance: float = 1e-9) -> np.ndarray:
    """Grid indices of all points within ``tolerance`` of the maximum."""
    values = np.asarray(values, dtype=float)
    return np.argwhere(values >= values.max() - tolerance)


def optimal_point_distance(
    landscape_a: Landscape,
    landscape_b: Landscape,
    tolerance: float = 1e-6,
) -> float:
    """Mean toroidal parameter distance between the two optima sets.

    Both parameter axes are periodic (gamma period 2*pi, beta period pi),
    so distances wrap around.  For each optimum of ``a`` we take the
    distance to the nearest optimum of ``b`` and average (and symmetrize).
    """
    pts_a = _optimal_coords(landscape_a, tolerance)
    pts_b = _optimal_coords(landscape_b, tolerance)
    periods = np.array([GAMMA_RANGE[1], BETA_RANGE[1]])

    def directed(src: np.ndarray, dst: np.ndarray) -> float:
        dists = []
        for point in src:
            delta = np.abs(dst - point)
            delta = np.minimum(delta, periods - delta)
            dists.append(np.sqrt((delta**2).sum(axis=1)).min())
        return float(np.mean(dists))

    return 0.5 * (directed(pts_a, pts_b) + directed(pts_b, pts_a))


def _optimal_coords(landscape: Landscape, tolerance: float) -> np.ndarray:
    indices = optimal_points(landscape.values, tolerance)
    return np.array(
        [[landscape.gammas[i], landscape.betas[j]] for i, j in indices]
    )
