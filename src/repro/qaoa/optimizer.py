"""Classical parameter optimization: COBYLA with restarts, grid search.

The paper optimizes with SciPy's COBYLA (ref. [52]) and multiple random
restarts, recording the parameters at every iteration so noisy runs can be
re-evaluated on an ideal simulator (Fig. 20).  :class:`OptimizationTrace`
captures exactly that record.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np
from scipy import optimize as sciopt

from repro.qaoa.landscape import BETA_RANGE, GAMMA_RANGE, grid_axes
from repro.utils.rng import as_generator

__all__ = [
    "OptimizationTrace",
    "cobyla_optimize",
    "grid_search",
    "multi_restart_optimize",
    "random_initial_point",
]

EnergyFunction = Callable[[np.ndarray, np.ndarray], float]
"""Signature: f(gammas, betas) -> expectation (to be MAXIMIZED)."""


@dataclass
class OptimizationTrace:
    """Record of one optimization run.

    ``parameters[i]`` is the (gammas, betas) pair evaluated at step ``i``
    and ``values[i]`` the objective seen by the optimizer (possibly noisy);
    ``best_value``/``best_parameters`` track the incumbent.
    """

    parameters: list[tuple[np.ndarray, np.ndarray]] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def record(self, gammas: np.ndarray, betas: np.ndarray, value: float) -> None:
        self.parameters.append((gammas.copy(), betas.copy()))
        self.values.append(float(value))

    @property
    def num_evaluations(self) -> int:
        return len(self.values)

    @property
    def best_value(self) -> float:
        if not self.values:
            raise ValueError("trace is empty")
        return max(self.values)

    @property
    def best_parameters(self) -> tuple[np.ndarray, np.ndarray]:
        if not self.values:
            raise ValueError("trace is empty")
        index = int(np.argmax(self.values))
        return self.parameters[index]

    def reevaluate(self, fn: EnergyFunction) -> np.ndarray:
        """Evaluate every visited parameter set under another objective.

        Fig. 20's protocol: record noisy-optimizer iterates, then recompute
        their *ideal* energies to compare convergence trajectories.
        """
        return np.array([fn(g, b) for g, b in self.parameters])


def random_initial_point(p: int, rng: np.random.Generator) -> np.ndarray:
    """Uniform random starting vector [gammas..., betas...] of length 2p."""
    gammas = rng.uniform(GAMMA_RANGE[0], GAMMA_RANGE[1], size=p)
    betas = rng.uniform(BETA_RANGE[0], BETA_RANGE[1], size=p)
    return np.concatenate([gammas, betas])


def cobyla_optimize(
    fn: EnergyFunction,
    p: int,
    initial: np.ndarray | None = None,
    maxiter: int = 100,
    rhobeg: float = 0.5,
    seed: int | np.random.Generator | None = None,
) -> OptimizationTrace:
    """Maximize ``fn`` with COBYLA from ``initial`` (random if omitted)."""
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    if maxiter < 1:
        raise ValueError(f"maxiter must be >= 1, got {maxiter}")
    rng = as_generator(seed)
    if initial is None:
        initial = random_initial_point(p, rng)
    initial = np.asarray(initial, dtype=float)
    if initial.shape != (2 * p,):
        raise ValueError(f"initial point must have shape ({2 * p},), got {initial.shape}")
    trace = OptimizationTrace()

    def objective(x: np.ndarray) -> float:
        gammas, betas = x[:p], x[p:]
        value = fn(gammas, betas)
        trace.record(gammas, betas, value)
        return -value  # COBYLA minimizes.

    # COBYLA needs at least dim + 2 evaluations to build its first simplex.
    effective_maxiter = max(maxiter, 2 * p + 2)
    sciopt.minimize(
        objective,
        initial,
        method="COBYLA",
        options={"maxiter": effective_maxiter, "rhobeg": rhobeg},
    )
    return trace


def multi_restart_optimize(
    fn: EnergyFunction,
    p: int,
    restarts: int,
    maxiter: int = 100,
    seed: int | np.random.Generator | None = None,
) -> list[OptimizationTrace]:
    """Independent COBYLA runs from random starts (paper Sec. 6.4/6.5)."""
    if restarts < 1:
        raise ValueError(f"restarts must be >= 1, got {restarts}")
    rng = as_generator(seed)
    return [
        cobyla_optimize(fn, p, maxiter=maxiter, seed=rng)
        for _ in range(restarts)
    ]


def grid_search(
    fn: EnergyFunction,
    width: int = 30,
) -> tuple[tuple[float, float], float, np.ndarray]:
    """Exhaustive p=1 grid search over the standard parameter ranges.

    Returns ``((gamma, beta), best_value, grid_values)`` where
    ``grid_values[i, j]`` is the objective at ``(gammas[i], betas[j])``.
    """
    gammas, betas = grid_axes(width)
    values = np.empty((width, width))
    for i, gamma in enumerate(gammas):
        for j, beta in enumerate(betas):
            values[i, j] = fn(np.array([gamma]), np.array([beta]))
    i, j = np.unravel_index(int(np.argmax(values)), values.shape)
    return (float(gammas[i]), float(betas[j])), float(values[i, j]), values
