"""Gate-level QAOA circuit construction.

Produces the standard MaxCut QAOA circuit (paper Eq. 3) as a
:class:`~repro.quantum.circuit.QuantumCircuit`: Hadamards for the uniform
superposition, then ``p`` alternating cost layers (``RZZ(2*gamma)`` per
edge) and mixer layers (``RX(2*beta)`` per qubit).

Note the cost-layer convention: ``H_c = sum (I - Z_i Z_j) / 2``, so
``exp(-i gamma H_c)`` equals ``prod RZZ(-gamma)`` on the edges, up to a
global phase from the identity part.  We emit ``RZZ(-gamma)`` so that the
gate-level circuit matches the fast engine's ``exp(-i gamma * cut)`` phase
exactly (again up to global phase), which the tests verify.
"""

from __future__ import annotations

from collections.abc import Sequence

import networkx as nx

from repro.quantum.circuit import QuantumCircuit
from repro.utils.graphs import ensure_graph

__all__ = ["build_qaoa_circuit"]


def build_qaoa_circuit(
    graph: nx.Graph,
    gammas: Sequence[float],
    betas: Sequence[float],
) -> QuantumCircuit:
    """The p-layer MaxCut QAOA circuit for ``graph``.

    Nodes must be labeled ``0..n-1``.  ``len(gammas) == len(betas) == p``.
    """
    ensure_graph(graph)
    n = graph.number_of_nodes()
    if set(graph.nodes()) != set(range(n)):
        raise ValueError("graph nodes must be 0..n-1; use relabel_to_range first")
    if len(gammas) != len(betas) or not gammas:
        raise ValueError("gammas and betas must be non-empty and equal length")
    circuit = QuantumCircuit(n)
    for q in range(n):
        circuit.h(q)
    edges = sorted((min(u, v), max(u, v)) for u, v in graph.edges())
    for gamma, beta in zip(gammas, betas):
        for u, v in edges:
            # exp(-i gamma w (I - Z Z)/2) == RZZ(-gamma w) up to global phase.
            weight = float(graph[u][v].get("weight", 1.0))
            circuit.rzz(-float(gamma) * weight, u, v)
        for q in range(n):
            circuit.rx(2.0 * float(beta), q)
    return circuit
