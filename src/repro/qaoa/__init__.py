"""QAOA for MaxCut: Hamiltonians, circuits, simulation engines, landscapes.

The public surface:

- :func:`repro.qaoa.maxcut.brute_force_maxcut` / ``approximation_ratio``
- :func:`repro.qaoa.expectation.maxcut_expectation` — ideal expectation with
  automatic engine choice (exact statevector, analytic p=1, lightcone)
- :func:`repro.qaoa.expectation.noisy_maxcut_expectation` — trajectory noise
- :mod:`repro.qaoa.landscape` — energy-landscape grids, normalization, MSE
- :mod:`repro.qaoa.optimizer` — COBYLA with restarts, grid search
- :func:`repro.qaoa.circuit_builder.build_qaoa_circuit` — gate-level IR for
  the transpiler and the generic simulators
"""

from repro.qaoa.hamiltonian import MaxCutHamiltonian, cut_values
from repro.qaoa.circuit_builder import build_qaoa_circuit
from repro.qaoa.expectation import (
    EngineLimitError,
    maxcut_expectation,
    noisy_maxcut_expectation,
)
from repro.qaoa.fast_sim import FastNoiseSpec, qaoa_probabilities, qaoa_statevector
from repro.qaoa.lightcone import LightconePlan, lightcone_expectation
from repro.qaoa.landscape import (
    Landscape,
    compute_landscape,
    landscape_mse,
    normalize_landscape,
    optimal_points,
    sample_parameter_sets,
)
from repro.qaoa.maxcut import approximation_ratio, brute_force_maxcut, local_search_maxcut
from repro.qaoa.optimizer import OptimizationTrace, cobyla_optimize, grid_search, multi_restart_optimize

__all__ = [
    "EngineLimitError",
    "FastNoiseSpec",
    "Landscape",
    "LightconePlan",
    "MaxCutHamiltonian",
    "OptimizationTrace",
    "approximation_ratio",
    "brute_force_maxcut",
    "build_qaoa_circuit",
    "cobyla_optimize",
    "compute_landscape",
    "cut_values",
    "grid_search",
    "landscape_mse",
    "lightcone_expectation",
    "local_search_maxcut",
    "maxcut_expectation",
    "multi_restart_optimize",
    "noisy_maxcut_expectation",
    "normalize_landscape",
    "optimal_points",
    "qaoa_probabilities",
    "qaoa_statevector",
    "sample_parameter_sets",
]
