"""MaxCut cost Hamiltonians.

For a graph ``G=(V, E)`` the MaxCut cost Hamiltonian is
``H_c = sum_{(i,j) in E} w_ij (I - Z_i Z_j) / 2`` (paper Eq. 5; the paper
uses unit weights, and weighted MaxCut follows its reference [29]).
``H_c`` is diagonal in the computational basis, and its diagonal entry at
basis state ``z`` is the total weight of edges cut by the bit partition
``z`` -- which is what :func:`cut_values` computes, vectorized over all
``2**n`` states.  Edge weights are read from the ``weight`` edge attribute
and default to 1.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.utils.graphs import edge_list, ensure_graph, is_weighted, relabel_to_range

__all__ = ["MaxCutHamiltonian", "cut_values"]

_MAX_DENSE_QUBITS = 26


def cut_values(graph: nx.Graph) -> np.ndarray:
    """Cut weight of every basis state: array of shape ``(2**n,)``.

    Nodes must be labeled ``0..n-1`` (use
    :func:`repro.utils.graphs.relabel_to_range` first if not).  Guarded at
    ``n <= 26`` to avoid accidental multi-GB allocations.
    """
    ensure_graph(graph)
    n = graph.number_of_nodes()
    if set(graph.nodes()) != set(range(n)):
        raise ValueError("graph nodes must be 0..n-1; use relabel_to_range first")
    if n > _MAX_DENSE_QUBITS:
        raise ValueError(
            f"refusing to materialize 2**{n} cut values; "
            "use the analytic or lightcone engines for large graphs"
        )
    z = np.arange(2**n, dtype=np.uint64)
    values = np.zeros(2**n, dtype=np.float64)
    for u, v, data in graph.edges(data=True):
        cut = ((z >> np.uint64(u)) ^ (z >> np.uint64(v))) & np.uint64(1)
        values += float(data.get("weight", 1.0)) * cut
    return values


class MaxCutHamiltonian:
    """The MaxCut problem instance wrapping a graph.

    Precomputes and caches the diagonal (cut-value vector) on first access.
    """

    def __init__(self, graph: nx.Graph):
        ensure_graph(graph)
        self.graph = relabel_to_range(graph)
        self.num_qubits = self.graph.number_of_nodes()
        self.edges = edge_list(self.graph)
        self.weights = tuple(
            float(self.graph[u][v].get("weight", 1.0)) for u, v in self.edges
        )
        self._diagonal: np.ndarray | None = None

    @property
    def is_weighted(self) -> bool:
        """Whether any edge carries a non-unit weight."""
        return is_weighted(self.graph)

    @property
    def diagonal(self) -> np.ndarray:
        """Cut values over the computational basis (cached)."""
        if self._diagonal is None:
            self._diagonal = cut_values(self.graph)
        return self._diagonal

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def max_value(self) -> float:
        """The true MaxCut value via the dense diagonal (small graphs only)."""
        return float(self.diagonal.max())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MaxCutHamiltonian(n={self.num_qubits}, m={self.num_edges})"
