"""Closed-form p=1 QAOA MaxCut expectation, unweighted and weighted.

For one QAOA layer on an unweighted graph, the expected cut contribution of
each edge has a closed form in the edge's local structure (Wang, Hadfield,
Jiang, Rieffel, PRA 97 022304 (2018)):

    <C_uv> = 1/2
           + (1/4) sin(4 beta) sin(gamma) (cos^{d_u} gamma + cos^{d_v} gamma)
           - (1/4) sin^2(2 beta) cos^{d_u + d_v - 2 t} gamma
             * (1 - cos^t (2 gamma))

where ``d_u = deg(u) - 1`` and ``d_v = deg(v) - 1`` count the *other*
neighbors of the endpoints and ``t`` is the number of triangles containing
the edge (common neighbors of u and v).

For weighted MaxCut (Ozaeta, McMahon, van Dam, 2022 generalization of the
same derivation), ``<Z_u Z_v>`` becomes a product form over neighbor
weights -- see :func:`maxcut_p1_weighted_edge_zz` -- and
``<C_uv> = w_uv (1 - <Z_u Z_v>) / 2``.

This makes p=1 expectations O(|E| * maxdeg) regardless of graph size -- it
is how the 30-node (Fig. 17) and 60-node (Fig. 21) experiments run exactly
without a GPU cluster.  Agreement with the exact statevector engine is
covered by property-based tests for both the weighted and unweighted forms.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.utils.graphs import ensure_graph, is_weighted

__all__ = [
    "maxcut_p1_edge_expectation",
    "maxcut_p1_expectation",
    "maxcut_p1_weighted_edge_zz",
]


def maxcut_p1_edge_expectation(
    gamma: float, beta: float, deg_u: int, deg_v: int, triangles: int
) -> float:
    """Closed-form ``<C_uv>`` for one edge; see module docstring.

    ``deg_u``/``deg_v`` are full node degrees (including the edge itself);
    ``triangles`` is the number of common neighbors of the endpoints.
    """
    if deg_u < 1 or deg_v < 1:
        raise ValueError("endpoint degrees must be >= 1 (the edge itself)")
    if triangles < 0:
        raise ValueError("triangle count must be non-negative")
    d = deg_u - 1
    e = deg_v - 1
    cg = math.cos(gamma)
    term_linear = (
        0.25 * math.sin(4 * beta) * math.sin(gamma) * (cg**d + cg**e)
    )
    term_quad = (
        0.25
        * math.sin(2 * beta) ** 2
        * cg ** (d + e - 2 * triangles)
        * (1.0 - math.cos(2 * gamma) ** triangles)
    )
    return 0.5 + term_linear - term_quad


def maxcut_p1_weighted_edge_zz(
    gamma: float,
    beta: float,
    weight: float,
    neighbor_weights_u: dict,
    neighbor_weights_v: dict,
) -> float:
    """Closed-form ``<Z_u Z_v>`` for one weighted edge at p=1.

    ``neighbor_weights_u`` maps each neighbor of ``u`` *other than v* to the
    weight of its edge with ``u`` (similarly for ``v``).  Derivation as in
    the unweighted case, with products over neighbor cosines replacing the
    powers; validated against exact simulation in the test suite.
    """
    a_u = math.prod(
        math.cos(gamma * w) for w in neighbor_weights_u.values()
    )
    a_v = math.prod(
        math.cos(gamma * w) for w in neighbor_weights_v.values()
    )
    term_linear = 0.5 * math.sin(4 * beta) * math.sin(gamma * weight) * (a_u + a_v)

    common = set(neighbor_weights_u) & set(neighbor_weights_v)
    b_u = math.prod(
        math.cos(gamma * w) for k, w in neighbor_weights_u.items() if k not in common
    )
    b_v = math.prod(
        math.cos(gamma * w) for k, w in neighbor_weights_v.items() if k not in common
    )
    c_plus = math.prod(
        math.cos(gamma * (neighbor_weights_u[k] + neighbor_weights_v[k]))
        for k in common
    )
    c_minus = math.prod(
        math.cos(gamma * (neighbor_weights_u[k] - neighbor_weights_v[k]))
        for k in common
    )
    term_quad = 0.5 * math.sin(2 * beta) ** 2 * b_u * b_v * (c_plus - c_minus)
    return -term_linear - term_quad


def maxcut_p1_expectation(graph: nx.Graph, gamma: float, beta: float) -> float:
    """Exact p=1 QAOA MaxCut expectation, any graph size.

    Unit-weight graphs use the degree/triangle power form (O(|E|)); graphs
    with a ``weight`` edge attribute use the weighted product form
    (O(|E| * maxdeg)).
    """
    ensure_graph(graph)
    if not is_weighted(graph):
        adjacency = {node: set(graph.neighbors(node)) for node in graph.nodes()}
        total = 0.0
        for u, v in graph.edges():
            triangles = len(adjacency[u] & adjacency[v])
            total += maxcut_p1_edge_expectation(
                gamma, beta, len(adjacency[u]), len(adjacency[v]), triangles
            )
        return total

    weights = {
        node: {k: float(d.get("weight", 1.0)) for k, d in graph.adj[node].items()}
        for node in graph.nodes()
    }
    total = 0.0
    for u, v, data in graph.edges(data=True):
        w = float(data.get("weight", 1.0))
        nbrs_u = {k: wt for k, wt in weights[u].items() if k != v}
        nbrs_v = {k: wt for k, wt in weights[v].items() if k != u}
        zz = maxcut_p1_weighted_edge_zz(gamma, beta, w, nbrs_u, nbrs_v)
        total += 0.5 * w * (1.0 - zz)
    return total
