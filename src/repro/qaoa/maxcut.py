"""Classical MaxCut reference solvers and the approximation ratio.

The approximation ratio (paper Eq. 13) compares the QAOA expectation with
the classically computed ground truth.  Brute force covers the paper's
graph sizes (<= 20 nodes); a randomized local-search solver provides strong
lower bounds beyond that.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.qaoa.hamiltonian import MaxCutHamiltonian
from repro.utils.graphs import ensure_graph, relabel_to_range
from repro.utils.rng import as_generator

__all__ = [
    "approximation_ratio",
    "brute_force_maxcut",
    "cut_size",
    "local_search_maxcut",
]

_BRUTE_FORCE_LIMIT = 24


def cut_size(graph: nx.Graph, assignment: dict) -> float:
    """Total weight of edges cut by a node -> {0, 1} partition ``assignment``.

    Unit weights give the plain edge count (as an integer-valued float).
    """
    ensure_graph(graph)
    missing = set(graph.nodes()) - set(assignment)
    if missing:
        raise ValueError(f"assignment missing nodes: {sorted(missing)}")
    return float(
        sum(
            data.get("weight", 1.0)
            for u, v, data in graph.edges(data=True)
            if assignment[u] != assignment[v]
        )
    )


def brute_force_maxcut(graph: nx.Graph) -> tuple[float, dict]:
    """Exact MaxCut via the dense cut-value vector.

    Returns ``(max_cut_value, assignment)`` where ``assignment`` maps the
    graph's *original* node labels to partitions.  Limited to
    ``n <= 24`` nodes.
    """
    ensure_graph(graph)
    n = graph.number_of_nodes()
    if n > _BRUTE_FORCE_LIMIT:
        raise ValueError(
            f"brute force is limited to {_BRUTE_FORCE_LIMIT} nodes, got {n}; "
            "use local_search_maxcut for larger graphs"
        )
    try:
        ordered = sorted(graph.nodes())
    except TypeError:
        ordered = list(graph.nodes())
    hamiltonian = MaxCutHamiltonian(graph)
    best = int(np.argmax(hamiltonian.diagonal))
    assignment = {node: (best >> index) & 1 for index, node in enumerate(ordered)}
    return float(hamiltonian.diagonal[best]), assignment


def local_search_maxcut(
    graph: nx.Graph,
    restarts: int = 20,
    seed: int | np.random.Generator | None = None,
) -> tuple[float, dict]:
    """Randomized 1-flip local search; strong lower bound for large graphs."""
    ensure_graph(graph)
    if restarts < 1:
        raise ValueError(f"restarts must be >= 1, got {restarts}")
    rng = as_generator(seed)
    relabeled = relabel_to_range(graph)
    try:
        original = sorted(graph.nodes())
    except TypeError:
        original = list(graph.nodes())
    n = relabeled.number_of_nodes()
    neighbors = [
        [(j, float(d.get("weight", 1.0))) for j, d in relabeled.adj[i].items()]
        for i in range(n)
    ]
    best_value = -np.inf
    best_bits: np.ndarray | None = None
    for _ in range(restarts):
        bits = rng.integers(0, 2, size=n)
        improved = True
        while improved:
            improved = False
            for i in range(n):
                # Weighted 1-flip gain: flip when more weight sits on
                # same-side neighbors than on cut neighbors.
                same = sum(w for j, w in neighbors[i] if bits[j] == bits[i])
                diff = sum(w for j, w in neighbors[i] if bits[j] != bits[i])
                if same > diff:
                    bits[i] ^= 1
                    improved = True
        value = sum(
            float(d.get("weight", 1.0))
            for u, v, d in relabeled.edges(data=True)
            if bits[u] != bits[v]
        )
        if value > best_value:
            best_value = value
            best_bits = bits.copy()
    assert best_bits is not None
    assignment = {original[i]: int(best_bits[i]) for i in range(n)}
    return float(best_value), assignment


def approximation_ratio(expectation: float, ground_truth: float) -> float:
    """QAOA expectation over the classical optimum (paper Eq. 13)."""
    if ground_truth <= 0:
        raise ValueError(f"ground truth must be positive, got {ground_truth}")
    return float(expectation) / float(ground_truth)
