"""Fast QAOA-for-MaxCut simulation.

The MaxCut cost layer is diagonal, so a p-layer QAOA circuit reduces to
``p`` rounds of (elementwise phase multiply, per-qubit RX) on the state.
This engine is exact and one to two orders of magnitude faster than walking
the gate-level IR, which makes the paper's 1024-point landscape grids cheap
on a laptop.  A cross-check against the generic gate-level simulator lives
in the test suite.

The module also provides the *fast noisy path*: Pauli-trajectory noise
injected at the QAOA-layer granularity (one two-qubit error channel per
edge per cost layer -- matching the RZZ/CX pairs a transpiled circuit would
execute -- and one single-qubit channel per qubit per mixer layer, plus
readout error).  :class:`FastNoiseSpec` captures those rates and can be
derived from a :class:`~repro.quantum.backends.FakeBackend`.

The ideal engines only touch ``hamiltonian.num_qubits`` and
``hamiltonian.diagonal``, so any diagonal cost function duck-types here --
in particular :class:`~repro.problems.DiagonalProblem`, whose linear-Z
fields simply appear as extra distinct diagonal values (the phase-table
gather absorbs them at no extra cost).
"""

from __future__ import annotations

import hashlib
import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.qaoa.hamiltonian import MaxCutHamiltonian
from repro.utils.rng import as_generator

__all__ = [
    "FastNoiseSpec",
    "qaoa_expectation_fast",
    "qaoa_expectation_batch",
    "qaoa_probabilities",
    "qaoa_statevector",
]


def _check_params(gammas: Sequence[float], betas: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    gammas = np.atleast_1d(np.asarray(gammas, dtype=float))
    betas = np.atleast_1d(np.asarray(betas, dtype=float))
    if gammas.shape != betas.shape or gammas.ndim != 1 or gammas.size == 0:
        raise ValueError(
            f"gammas and betas must be equal-length 1-D sequences, got "
            f"{gammas.shape} and {betas.shape}"
        )
    return gammas, betas


def _rx_update(a: np.ndarray, b: np.ndarray, c, s) -> None:
    """In-place ``RX`` pair update: ``(a, b) <- (c a - i s b, c b - i s a)``.

    ``a`` and ``b`` are the two half-state views for one qubit; ``c`` and
    ``s`` are ``cos(beta)`` / ``sin(beta)`` -- scalars, or arrays that
    broadcast against the views (the batched engine passes per-point
    columns).  One temporary instead of the old copy-then-assign dance.
    """
    js = 1j * s
    top = c * a - js * b
    b *= c
    b -= js * a
    a[...] = top


def _apply_rx_qubit(state: np.ndarray, qubit: int, c: float, s: float) -> None:
    """Apply ``RX`` with precomputed cosine/sine to one qubit in place."""
    view = state.reshape(-1, 2, 2**qubit)
    _rx_update(view[:, 0, :], view[:, 1, :], c, s)


def _apply_rx_all(state: np.ndarray, num_qubits: int, beta: float) -> np.ndarray:
    """Apply ``RX(2*beta)`` (= exp(-i beta X)) to every qubit in place."""
    c = math.cos(beta)
    s = math.sin(beta)
    for q in range(num_qubits):
        _apply_rx_qubit(state, q, c, s)
    return state


def qaoa_statevector(
    hamiltonian: MaxCutHamiltonian,
    gammas: Sequence[float],
    betas: Sequence[float],
) -> np.ndarray:
    """Exact final statevector of p-layer QAOA (paper Eq. 3)."""
    gammas, betas = _check_params(gammas, betas)
    n = hamiltonian.num_qubits
    diag = hamiltonian.diagonal
    state = np.full(2**n, 1.0 / math.sqrt(2**n), dtype=complex)
    for gamma, beta in zip(gammas, betas):
        state *= np.exp(-1j * gamma * diag)
        state = _apply_rx_all(state, n, beta)
    return state


def qaoa_probabilities(
    hamiltonian: MaxCutHamiltonian,
    gammas: Sequence[float],
    betas: Sequence[float],
) -> np.ndarray:
    """Ideal measurement probabilities of the QAOA trial state."""
    state = qaoa_statevector(hamiltonian, gammas, betas)
    return np.abs(state) ** 2


def qaoa_expectation_fast(
    hamiltonian: MaxCutHamiltonian,
    gammas: Sequence[float],
    betas: Sequence[float],
) -> float:
    """Ideal expected cut value ``<psi| H_c |psi>``."""
    probs = qaoa_probabilities(hamiltonian, gammas, betas)
    return float(probs @ hamiltonian.diagonal)


def _phase_table(diag: np.ndarray) -> tuple[np.ndarray, np.ndarray] | None:
    """Distinct diagonal values and inverse index, when few enough to pay off.

    Cut-value diagonals take at most ``m + 1`` distinct values on unweighted
    graphs, so ``exp(-i g v)`` over the distinct values plus a gather beats
    a transcendental per amplitude by one to two orders of magnitude.
    """
    values, inverse = np.unique(diag, return_inverse=True)
    if len(values) * 8 > diag.size:
        return None
    return values, inverse.astype(np.intp)


def qaoa_expectation_batch(
    hamiltonian: MaxCutHamiltonian,
    gammas: np.ndarray,
    betas: np.ndarray,
    chunk_size: int = 32,
    observable: np.ndarray | None = None,
) -> np.ndarray:
    """Vectorized expectations for many parameter sets.

    ``gammas`` and ``betas`` have shape ``(batch, p)``.  Batches are chunked
    so the working set stays cache-sized (near ``chunk_size * 2**n``
    amplitudes).  ``observable`` overrides the measured diagonal (default:
    the cut-value diagonal); the phase layers always use the Hamiltonian's
    own diagonal.  The lightcone plan uses this to read a marked edge's cut
    probability from a class subgraph.
    """
    gammas = np.atleast_2d(np.asarray(gammas, dtype=float))
    betas = np.atleast_2d(np.asarray(betas, dtype=float))
    if gammas.shape != betas.shape:
        raise ValueError(f"shape mismatch: {gammas.shape} vs {betas.shape}")
    batch, p = gammas.shape
    n = hamiltonian.num_qubits
    diag = hamiltonian.diagonal
    measured = diag if observable is None else np.asarray(observable, dtype=float)
    if measured.shape != diag.shape:
        raise ValueError(
            f"observable shape {measured.shape} does not match the "
            f"{n}-qubit Hamiltonian (expected shape {diag.shape})"
        )
    table = _phase_table(diag)
    # Keep the per-chunk working set near 2**19 amplitudes (cache-resident).
    chunk_size = max(1, min(chunk_size, 2**19 // 2**n))
    out = np.empty(batch, dtype=float)
    for start in range(0, batch, chunk_size):
        stop = min(start + chunk_size, batch)
        size = stop - start
        states = np.full((size, 2**n), 1.0 / math.sqrt(2**n), dtype=complex)
        for layer in range(p):
            g = gammas[start:stop, layer][:, None]
            if table is None:
                states *= np.exp(-1j * g * diag[None, :])
            else:
                values, inverse = table
                states *= np.exp(-1j * g * values[None, :])[:, inverse]
            c = np.cos(betas[start:stop, layer])[:, None, None]
            s = np.sin(betas[start:stop, layer])[:, None, None]
            for q in range(n):
                view = states.reshape(size, -1, 2, 2**q)
                _rx_update(view[:, :, 0, :], view[:, :, 1, :], c, s)
        out[start:stop] = np.einsum("bi,i->b", np.abs(states) ** 2, measured)
    return out


@dataclass(frozen=True)
class FastNoiseSpec:
    """Layer-granular noise for the fast noisy path.

    Stochastic (incoherent) components:

    - ``edge_error``: probability of a random two-qubit Pauli after each
      edge interaction in a cost layer (a transpiled RZZ costs two CX
      gates, so this is roughly ``2 x`` the device CX error, times a
      routing overhead);
    - ``node_error``: probability of a random single-qubit Pauli per qubit
      per mixer layer;
    - ``readout_error``: symmetric per-qubit assignment error.

    Systematic (coherent) components -- these are what actually *warp* the
    landscape shape and displace optima, as seen on real hardware (paper
    Fig. 2); incoherent Pauli noise mostly damps the landscape uniformly,
    which normalization cancels:

    - ``edge_phase_bias``: per-edge multiplicative error on the cost phase
      (``gamma -> gamma * (1 + bias_e)``), from calibration drift, residual
      ZZ crosstalk, and SWAP-chain decomposition angle errors;
    - ``node_mixer_bias``: per-qubit multiplicative error on the mixer angle.

    Biases are fixed per spec (drawn once by :meth:`for_graph`), making the
    distortion systematic across a landscape rather than re-randomized per
    evaluation point.
    """

    edge_error: float = 0.0
    node_error: float = 0.0
    readout_error: float = 0.0
    edge_phase_bias: tuple[float, ...] | None = None
    node_mixer_bias: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        for name in ("edge_error", "node_error", "readout_error"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in ("edge_phase_bias", "node_mixer_bias"):
            biases = getattr(self, name)
            if biases is None:
                continue
            for index, bias in enumerate(biases):
                if not math.isfinite(bias):
                    raise ValueError(
                        f"{name}[{index}] must be finite, got {bias!r}"
                    )

    @classmethod
    def from_backend(cls, backend, routing_overhead: float = 1.5) -> "FastNoiseSpec":
        """Derive layer rates from a fake backend's calibration.

        ``routing_overhead`` multiplies the two-qubit error to account for
        SWAP insertion on sparse topologies (SABRE-routed QAOA circuits on
        heavy-hex devices typically add ~0.5 extra CX per logical CX).
        Purely incoherent; use :meth:`for_graph` for the coherent warp.
        """
        edge = min(1.0, 2.0 * backend.error_2q * routing_overhead)
        return cls(
            edge_error=edge,
            node_error=min(1.0, backend.error_1q),
            readout_error=min(1.0, backend.error_readout),
        )

    @classmethod
    def for_graph(cls, backend, graph, p: int = 1, coherent_scale: float = 1.0) -> "FastNoiseSpec":
        """Graph-size-aware noise, modeling transpilation overhead.

        Routing cost grows with circuit width and with how much the graph's
        connectivity exceeds the device's (every extra logical neighbor
        forces SWAP chains on a degree-<=3 heavy-hex lattice).  Both the
        incoherent rates and the coherent bias magnitudes scale with that
        overhead, which is the mechanism behind the paper's Fig. 10: the
        distilled graph's smaller, shallower circuit is distorted less.

        Biases are drawn from a generator seeded by (backend, graph shape),
        so the same (device, graph) pair always sees the same systematic
        error -- as a real calibration snapshot would.
        """
        n = graph.number_of_nodes()
        m = graph.number_of_edges()
        if n == 0:
            raise ValueError("graph must have nodes")
        graph_degree = 2.0 * m / n
        device_degree = 2.0 * len(backend.coupling_map.edges) / backend.num_qubits
        overhead = 1.0 + 0.15 * n + 0.3 * max(0.0, graph_degree - device_degree)
        quality = backend.error_2q / 0.01
        # Coherent angle error accumulates along SWAP chains, so its
        # magnitude scales with both the routing overhead and the circuit
        # area (sqrt of the edge count); the 3.5% base and the scalings are
        # calibrated so 7-14-node graphs under the toronto preset show the
        # ~0.02-0.1 noisy-landscape MSE range of the paper's Fig. 10, with
        # the reduced circuit distorted visibly less.
        sigma = coherent_scale * 0.035 * overhead * quality * math.sqrt(max(m, 1) / 10.0)
        # Stable across processes (built-in hash() is salted per run).
        digest = hashlib.sha256(f"{backend.name}:{n}:{m}".encode()).digest()
        rng = np.random.default_rng(int.from_bytes(digest[:4], "big"))
        edge_bias = tuple(float(b) for b in rng.normal(0.0, sigma, size=max(m, 1)))
        node_bias = tuple(float(b) for b in rng.normal(0.0, sigma, size=n))
        return cls(
            edge_error=min(1.0, 2.0 * backend.error_2q * overhead),
            node_error=min(1.0, backend.error_1q * (1.0 + 0.02 * n)),
            readout_error=min(1.0, backend.error_readout),
            edge_phase_bias=edge_bias,
            node_mixer_bias=node_bias,
        )

    @property
    def is_trivial(self) -> bool:
        return (
            self.edge_error == 0.0
            and self.node_error == 0.0
            and self.readout_error == 0.0
            and self.edge_phase_bias is None
            and self.node_mixer_bias is None
        )


_PAULI_OPS = ("x", "y", "z")


def _apply_pauli_fast(state: np.ndarray, num_qubits: int, qubit: int, op: str) -> None:
    """Apply a single Pauli in place via slice manipulation."""
    view = state.reshape(-1, 2, 2**qubit)
    if op == "x":
        tmp = view[:, 0, :].copy()
        view[:, 0, :] = view[:, 1, :]
        view[:, 1, :] = tmp
    elif op == "y":
        tmp = view[:, 0, :].copy()
        view[:, 0, :] = -1j * view[:, 1, :]
        view[:, 1, :] = 1j * tmp
    elif op == "z":
        view[:, 1, :] *= -1.0
    else:  # pragma: no cover - internal
        raise ValueError(f"unknown Pauli {op!r}")


def _biased_cost_diagonal(hamiltonian: MaxCutHamiltonian, noise: FastNoiseSpec) -> np.ndarray:
    """Cost-layer phase diagonal including coherent per-edge biases.

    The implemented circuit rotates edge ``e`` by ``gamma * (1 + bias_e)``
    rather than ``gamma``; equivalently the phase diagonal is the weighted
    cut-value vector with weights ``1 + bias_e``.  The *measured observable*
    remains the unweighted cut count.
    """
    if noise.edge_phase_bias is None:
        return hamiltonian.diagonal
    edges = hamiltonian.edges
    if len(noise.edge_phase_bias) < len(edges):
        raise ValueError(
            f"edge_phase_bias has {len(noise.edge_phase_bias)} entries for "
            f"{len(edges)} edges"
        )
    n = hamiltonian.num_qubits
    z = np.arange(2**n, dtype=np.uint64)
    diag = np.zeros(2**n)
    for (u, v), weight, bias in zip(edges, hamiltonian.weights, noise.edge_phase_bias):
        cut = ((z >> np.uint64(u)) ^ (z >> np.uint64(v))) & np.uint64(1)
        diag += (1.0 + bias) * weight * cut
    return diag


def _apply_biased_mixer(
    state: np.ndarray, num_qubits: int, beta: float, noise: FastNoiseSpec
) -> np.ndarray:
    """Mixer layer with coherent per-qubit angle biases."""
    if noise.node_mixer_bias is None:
        return _apply_rx_all(state, num_qubits, beta)
    if len(noise.node_mixer_bias) < num_qubits:
        raise ValueError(
            f"node_mixer_bias has {len(noise.node_mixer_bias)} entries for "
            f"{num_qubits} qubits"
        )
    for q in range(num_qubits):
        angle = beta * (1.0 + noise.node_mixer_bias[q])
        _apply_rx_qubit(state, q, math.cos(angle), math.sin(angle))
    return state


def _noisy_trajectory_probs(
    hamiltonian: MaxCutHamiltonian,
    gammas: np.ndarray,
    betas: np.ndarray,
    noise: FastNoiseSpec,
    rng: np.random.Generator,
    cost_diag: np.ndarray | None = None,
) -> np.ndarray:
    """One noisy trajectory; returns measurement probabilities."""
    n = hamiltonian.num_qubits
    diag = cost_diag if cost_diag is not None else _biased_cost_diagonal(hamiltonian, noise)
    state = np.full(2**n, 1.0 / math.sqrt(2**n), dtype=complex)
    for gamma, beta in zip(gammas, betas):
        state *= np.exp(-1j * gamma * diag)
        if noise.edge_error > 0.0:
            for u, v in hamiltonian.edges:
                if rng.random() < noise.edge_error:
                    # Uniform non-identity two-qubit Pauli: draw from the 16
                    # products and reject II.
                    while True:
                        pu, pv = rng.integers(0, 4, size=2)
                        if pu or pv:
                            break
                    if pu:
                        _apply_pauli_fast(state, n, u, _PAULI_OPS[pu - 1])
                    if pv:
                        _apply_pauli_fast(state, n, v, _PAULI_OPS[pv - 1])
        state = _apply_biased_mixer(state, n, beta, noise)
        if noise.node_error > 0.0:
            for q in range(n):
                if rng.random() < noise.node_error:
                    _apply_pauli_fast(state, n, q, _PAULI_OPS[rng.integers(0, 3)])
    return np.abs(state) ** 2


def _apply_symmetric_readout(probs: np.ndarray, num_qubits: int, p_flip: float) -> np.ndarray:
    """Apply a symmetric bit-flip confusion matrix to every qubit."""
    if p_flip <= 0.0:
        return probs
    tensor = probs.reshape((2,) * num_qubits)
    matrix = np.array([[1 - p_flip, p_flip], [p_flip, 1 - p_flip]])
    for axis in range(num_qubits):
        tensor = np.moveaxis(np.tensordot(matrix, tensor, axes=([1], [axis])), 0, axis)
    return np.ascontiguousarray(tensor).reshape(-1)


def noisy_qaoa_probabilities(
    hamiltonian: MaxCutHamiltonian,
    gammas: Sequence[float],
    betas: Sequence[float],
    noise: FastNoiseSpec,
    trajectories: int = 8,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Trajectory-averaged noisy measurement probabilities."""
    gammas, betas = _check_params(gammas, betas)
    if trajectories < 1:
        raise ValueError(f"trajectories must be >= 1, got {trajectories}")
    rng = as_generator(seed)
    n = hamiltonian.num_qubits
    if noise.is_trivial:
        probs = qaoa_probabilities(hamiltonian, gammas, betas)
    else:
        cost_diag = _biased_cost_diagonal(hamiltonian, noise)
        if noise.edge_error == 0.0 and noise.node_error == 0.0:
            trajectories = 1  # purely coherent noise is deterministic
        acc = np.zeros(2**n)
        for _ in range(trajectories):
            acc += _noisy_trajectory_probs(
                hamiltonian, gammas, betas, noise, rng, cost_diag
            )
        probs = acc / trajectories
    return _apply_symmetric_readout(probs, n, noise.readout_error)


def noisy_qaoa_expectation_fast(
    hamiltonian: MaxCutHamiltonian,
    gammas: Sequence[float],
    betas: Sequence[float],
    noise: FastNoiseSpec,
    trajectories: int = 8,
    shots: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> float:
    """Noisy expected cut value, optionally with shot sampling noise."""
    rng = as_generator(seed)
    probs = noisy_qaoa_probabilities(hamiltonian, gammas, betas, noise, trajectories, rng)
    if shots is None:
        return float(probs @ hamiltonian.diagonal)
    if shots < 1:
        raise ValueError(f"shots must be >= 1, got {shots}")
    outcomes = rng.choice(len(probs), size=shots, p=probs / probs.sum())
    return float(hamiltonian.diagonal[outcomes].mean())
