"""Lightcone (subgraph) evaluation of QAOA expectations.

The expectation of a p-layer QAOA decomposes edge by edge (paper Eq. 7),
and each edge term ``E_<jk>`` depends only on the subgraph induced by nodes
within graph distance ``p`` of the edge (paper Sec. 3.3, following Farhi et
al.).  Evaluating each edge term on its own small subgraph makes exact
expectations possible for graphs far beyond full-statevector reach, as long
as the graph is sparse enough that the distance-p neighborhoods stay small.

Edge weights (the ``weight`` edge attribute, default 1) are honored
throughout: the lightcone state evolves under the weighted cost Hamiltonian
of the subgraph, the edge term is ``w_uv * P(edge cut)``, and the
memoization signature embeds the canonical weighted edge list so lightcones
that differ only in weights never share a cached value.

Structure discovery is separated from evaluation by :class:`LightconePlan`:
``build`` walks the graph once, dedups lightcones into signature classes
with multiplicities, and compiles each class into a batched evaluator;
``evaluate`` / ``evaluate_batch`` then price any number of parameter points
against the compiled classes, so a 1024-point landscape sweep pays the
structure cost once instead of 1024 times.

Each class is compiled to one of two exact kernels:

- **statevector**: the full induced lightcone, batched over parameter
  points through :func:`~repro.qaoa.fast_sim.qaoa_expectation_batch` with
  the marked edge's cut indicator as the measured observable;
- **core density matrix**: only nodes within distance ``p - 1`` of the
  marked edge (the *core*) are simulated.  Distance-p *frontier* qubits
  receive nothing but diagonal cost phases, so tracing them out is exact
  and turns each into a dephasing factor ``cos(gamma * (a(z) - a(z')))``
  on its core neighbors.  Gates outside an operator's backward lightcone
  cancel in the expectation, which also prunes later layers: cost layer
  ``k`` (0-indexed) keeps only edges touching the distance-``(p-1-k)``
  ball of the marked edge, and mixer layer ``k`` only qubits inside it.
  For a 3-regular graph at p=2 this replaces a 14-qubit statevector with a
  6-qubit density matrix -- an order of magnitude less work per point.

Both kernels agree with the retained per-call reference
(:func:`lightcone_expectation_reference`) to better than 1e-12.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.obs.metrics import KERNEL_BUCKETS, REGISTRY
from repro.obs.trace import span
from repro.qaoa.fast_sim import qaoa_expectation_batch, qaoa_probabilities
from repro.qaoa.hamiltonian import MaxCutHamiltonian
from repro.utils.graphs import ensure_graph

# Module-level metric handles: registration happens once at import, hot
# paths below pay one attribute access + one float add per event.
_PLAN_HITS = REGISTRY.counter(
    "redqaoa_plan_cache_hits_total", "compiled lightcone plans served from the cache"
)
_PLAN_MISSES = REGISTRY.counter(
    "redqaoa_plan_cache_misses_total", "plan-cache lookups that had to compile"
)
_PLAN_BUILDS = REGISTRY.counter(
    "redqaoa_plan_builds_total", "lightcone plans compiled"
)
_PLAN_BUILD_SECONDS = REGISTRY.counter(
    "redqaoa_plan_build_seconds_total", "seconds spent compiling lightcone plans"
)
_LC_POINTS = REGISTRY.counter(
    "redqaoa_lightcone_points_total", "parameter points priced through compiled plans"
)
_LC_EVALS = REGISTRY.counter(
    "redqaoa_lightcone_evaluations_total",
    "class-kernel evaluations (signature classes x parameter points)",
)
_LC_SECONDS = REGISTRY.counter(
    "redqaoa_lightcone_seconds_total", "seconds spent in plan evaluation"
)
_PLAN_BUILD_DURATION = REGISTRY.histogram(
    "redqaoa_plan_build_duration_seconds",
    "per-plan compile latency",
    buckets=KERNEL_BUCKETS,
)
_LC_EVAL_DURATION = REGISTRY.histogram(
    "redqaoa_lightcone_evaluate_seconds",
    "per-call batched evaluation latency",
    buckets=KERNEL_BUCKETS,
)


def _popcount(values: np.ndarray) -> np.ndarray:
    """Elementwise population count of a non-negative integer array."""
    result = np.zeros(values.shape, dtype=np.int64)
    work = values.astype(np.int64)
    while work.any():
        result += work & 1
        work >>= 1
    return result

__all__ = [
    "LightconePlan",
    "LightconeTooLargeError",
    "PlanCache",
    "bfs_canonical_order",
    "edge_lightcone",
    "lightcone_expectation",
    "lightcone_expectation_reference",
    "refine_keys",
    "weighted_edge_list",
]


class LightconeTooLargeError(ValueError):
    """A distance-p neighborhood exceeds the exact-simulation qubit cap."""


def edge_lightcone(graph: nx.Graph, edge: tuple[int, int], p: int) -> set:
    """Nodes within graph distance ``p`` of either endpoint of ``edge``."""
    u, v = edge
    nodes = {u, v}
    frontier = {u, v}
    for _ in range(p):
        nxt = set()
        for node in frontier:
            nxt.update(graph.neighbors(node))
        nxt -= nodes
        nodes |= nxt
        frontier = nxt
        if not frontier:
            break
    return nodes


def _check_parameters(gammas, betas) -> tuple[list[float], list[float]]:
    gammas = list(gammas)
    betas = list(betas)
    if len(gammas) != len(betas) or not gammas:
        raise ValueError("gammas and betas must be non-empty and equal length")
    return gammas, betas


def lightcone_expectation(
    graph: nx.Graph,
    gammas: Sequence[float],
    betas: Sequence[float],
    max_qubits: int = 20,
    stats: dict | None = None,
) -> float:
    """Exact QAOA expectation via per-edge lightcone simulation.

    Raises :class:`LightconeTooLargeError` when some edge's distance-p
    neighborhood exceeds ``max_qubits`` nodes.  Identical lightcones (up to
    the relabeled weighted (edge, subgraph) signature) are evaluated once
    and reused, which is what makes regular-ish graphs cheap.

    When ``stats`` is a dict it is updated in place with ``edges`` (terms
    summed), ``evaluations`` (distinct lightcones simulated) and ``hits``
    (cache reuses) so callers can assert on memoization effectiveness.

    Builds a :class:`LightconePlan` and evaluates it once; callers pricing
    many parameter points on one graph should build the plan themselves
    and call :meth:`LightconePlan.evaluate_batch`.
    """
    gammas, betas = _check_parameters(gammas, betas)
    plan = LightconePlan.build(graph, len(gammas), max_qubits=max_qubits)
    value = plan.evaluate(gammas, betas)
    if stats is not None:
        stats.update(plan.stats)
    return value


def lightcone_expectation_reference(
    graph: nx.Graph,
    gammas: Sequence[float],
    betas: Sequence[float],
    max_qubits: int = 20,
    stats: dict | None = None,
) -> float:
    """The retained per-call implementation of :func:`lightcone_expectation`.

    Re-discovers structure and re-simulates every signature class on each
    call (full statevector per class, no batching).  Kept as the numerical
    oracle for the plan's equivalence tests and as the "before" baseline
    for the ``BENCH_*.json`` speedup measurements; prefer
    :class:`LightconePlan` everywhere else.
    """
    ensure_graph(graph)
    gammas, betas = _check_parameters(gammas, betas)
    p = len(gammas)
    cache: dict[object, float] = {}
    total = 0.0
    num_edges = 0
    for edge in graph.edges():
        nodes = edge_lightcone(graph, edge, p)
        if len(nodes) > max_qubits:
            raise LightconeTooLargeError(
                f"edge {edge} has a distance-{p} lightcone of {len(nodes)} nodes "
                f"(> {max_qubits}); the graph is too dense for lightcone evaluation"
            )
        key = _signature(graph, edge, nodes)
        if key not in cache:
            cache[key] = _edge_term(graph, edge, nodes, gammas, betas)
        total += cache[key]
        num_edges += 1
    if stats is not None:
        stats.update(
            edges=num_edges,
            evaluations=len(cache),
            hits=num_edges - len(cache),
        )
    return total


@dataclass
class LightconePlan:
    """Compiled per-graph lightcone structure, reusable across evaluations.

    ``classes`` holds one compiled evaluator per distinct weighted
    lightcone signature; ``num_edges`` counts the edge terms the classes
    cover (with multiplicity).  Build once per (graph, p, max_qubits),
    evaluate at any number of parameter points.
    """

    p: int
    max_qubits: int
    num_edges: int
    classes: list

    @classmethod
    def build(cls, graph: nx.Graph, p: int, max_qubits: int = 20) -> "LightconePlan":
        """Discover, dedup, and compile the lightcone classes of ``graph``."""
        ensure_graph(graph)
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        t0 = time.perf_counter()
        with span("plan_build", n=graph.number_of_nodes(), p=p):
            representatives: dict[object, list] = {}
            num_edges = 0
            for edge in graph.edges():
                nodes = edge_lightcone(graph, edge, p)
                if len(nodes) > max_qubits:
                    raise LightconeTooLargeError(
                        f"edge {edge} has a distance-{p} lightcone of {len(nodes)} nodes "
                        f"(> {max_qubits}); the graph is too dense for lightcone evaluation"
                    )
                key = _signature(graph, edge, nodes)
                entry = representatives.get(key)
                if entry is None:
                    representatives[key] = [edge, nodes, 1]
                else:
                    entry[2] += 1
                num_edges += 1
            classes = [
                _compile_class(graph, edge, nodes, p, count)
                for edge, nodes, count in representatives.values()
            ]
        _PLAN_BUILDS.inc()
        build_seconds = time.perf_counter() - t0
        _PLAN_BUILD_SECONDS.inc(build_seconds)
        _PLAN_BUILD_DURATION.observe(build_seconds)
        return cls(p=p, max_qubits=max_qubits, num_edges=num_edges, classes=classes)

    @classmethod
    def build_cached(
        cls,
        graph: nx.Graph,
        p: int,
        max_qubits: int = 20,
        cache: "PlanCache | None" = None,
    ) -> "LightconePlan":
        """:meth:`build`, consulting a :class:`PlanCache` when one is given.

        The batch-serving entry point: with ``cache=None`` this is exactly
        :meth:`build`; with a cache, structurally identical graphs share
        one compiled plan across any number of jobs.
        """
        if cache is None:
            return cls.build(graph, p, max_qubits=max_qubits)
        return cache.get_or_build(graph, p, max_qubits=max_qubits)

    @property
    def stats(self) -> dict:
        """Same keys :func:`lightcone_expectation` reports: edges, evaluations, hits."""
        return {
            "edges": self.num_edges,
            "evaluations": len(self.classes),
            "hits": self.num_edges - len(self.classes),
        }

    def evaluate(self, gammas: Sequence[float], betas: Sequence[float]) -> float:
        """Expectation at one parameter point."""
        gammas, betas = _check_parameters(gammas, betas)
        if len(gammas) != self.p:
            raise ValueError(f"plan was built for p={self.p}, got p={len(gammas)}")
        return float(
            self.evaluate_batch(
                np.asarray(gammas, dtype=float)[None, :],
                np.asarray(betas, dtype=float)[None, :],
            )[0]
        )

    def evaluate_batch(self, gammas: np.ndarray, betas: np.ndarray) -> np.ndarray:
        """Expectations for parameter sets of shape ``(batch, p)``.

        Each compiled class is simulated once per parameter point through
        its batched kernel; the edge terms are recombined with their class
        multiplicities.
        """
        gammas = np.atleast_2d(np.asarray(gammas, dtype=float))
        betas = np.atleast_2d(np.asarray(betas, dtype=float))
        if gammas.shape != betas.shape:
            raise ValueError(f"shape mismatch: {gammas.shape} vs {betas.shape}")
        if gammas.shape[1] != self.p:
            raise ValueError(f"plan was built for p={self.p}, got p={gammas.shape[1]}")
        t0 = time.perf_counter()
        out = np.zeros(gammas.shape[0])
        for compiled in self.classes:
            out += compiled.count * compiled.evaluate(gammas, betas)
        eval_seconds = time.perf_counter() - t0
        _LC_SECONDS.inc(eval_seconds)
        _LC_EVAL_DURATION.observe(eval_seconds)
        _LC_POINTS.inc(gammas.shape[0])
        _LC_EVALS.inc(gammas.shape[0] * len(self.classes))
        return out


# -- class compilation ---------------------------------------------------------


def _compile_class(graph, edge, nodes, p, count):
    """Pick the cheaper exact kernel for one signature class.

    The core density matrix costs ``4**|core|`` amplitudes per point, the
    statevector ``2**|lightcone|``; the core kernel wins exactly when the
    frontier is at least half the lightcone.
    """
    sub = graph.subgraph(nodes)
    dist = _distances(sub, edge)
    core = sorted(x for x in sub.nodes() if dist[x] <= p - 1)
    if 2 * len(core) <= len(nodes):
        return _CoreDensityClass(sub, edge, dist, core, p, count)
    return _StatevectorClass(sub, edge, p, count)


def _distances(sub: nx.Graph, edge: tuple) -> dict:
    """Graph distance from the marked edge within the lightcone subgraph."""
    u, v = edge
    dist = {u: 0, v: 0}
    queue = deque((u, v))
    while queue:
        node = queue.popleft()
        for nbr in sub.neighbors(node):
            if nbr not in dist:
                dist[nbr] = dist[node] + 1
                queue.append(nbr)
    return dist


class _StatevectorClass:
    """Full-lightcone batched statevector kernel for one signature class."""

    def __init__(self, sub: nx.Graph, edge: tuple, p: int, count: int) -> None:
        self.count = count
        self.weight = _edge_weight(sub, *edge)
        ordered = sorted(sub.nodes())
        mapping = {node: index for index, node in enumerate(ordered)}
        self.hamiltonian = MaxCutHamiltonian(sub)
        u, v = mapping[edge[0]], mapping[edge[1]]
        z = np.arange(self.hamiltonian.diagonal.size, dtype=np.uint64)
        self.cut_mask = (((z >> np.uint64(u)) ^ (z >> np.uint64(v))) & np.uint64(1)).astype(float)

    def evaluate(self, gammas: np.ndarray, betas: np.ndarray) -> np.ndarray:
        return self.weight * qaoa_expectation_batch(
            self.hamiltonian, gammas, betas, observable=self.cut_mask
        )


class _CoreDensityClass:
    """Density-matrix kernel on the distance-(p-1) core of one class.

    The whole p-layer evolution collapses into per-point matrix algebra on
    the ``2**|core|``-dimensional core:

    - the initial density matrix ``rho0[z, z'] = F[z, z'] / dim`` carries
      the frontier dephasing exactly: frontier qubits sharing a (core
      neighbors, weights) pattern collapse into one factor
      ``cos(gamma_0 * (a(z) - a(z')))**multiplicity`` gathered from a table
      over the distinct values of ``a(z) - a(z')``;
    - layer ``k`` is one matrix ``M_k = (RX tensor) . diag(phase_k)``: the
      subset RX tensor is a gather of ``cos(beta)**(|S|-h) (-i sin(beta))**h``
      over the masked XOR popcount ``h`` (zero off the subset block), and
      ``phase_k`` is the in-core cut diagonal restricted to edges touching
      the distance-``(p-1-k)`` ball;
    - the readout contracts everything without ever forming the evolved
      density matrix: with ``A = M_p[cut rows] @ M_{p-1} @ ... @ M_1``,
      ``P(cut) = sum((A @ rho0) * conj(A))`` -- one half-height matmul
      chain per point, executed batched through BLAS.
    """

    def __init__(self, sub, edge, dist, core, p, count) -> None:
        self.count = count
        self.weight = _edge_weight(sub, *edge)
        self.p = p
        mc = len(core)
        self.dim = 1 << mc
        position = {node: i for i, node in enumerate(core)}
        dim = self.dim
        bits = (np.arange(dim)[:, None] >> np.arange(mc)[None, :]) & 1

        # Cost-layer diagonals over core-core edges, pruned per layer.
        self.phase_tables: list[tuple[np.ndarray, np.ndarray] | None] = []
        for k in range(p):
            radius = p - 1 - k
            diag = np.zeros(dim)
            for a, b, data in sub.edges(data=True):
                if a == b or a not in position or b not in position:
                    continue
                if min(dist[a], dist[b]) > radius:
                    continue
                cut = bits[:, position[a]] ^ bits[:, position[b]]
                diag = diag + float(data.get("weight", 1.0)) * cut
            if diag.any():
                values, inverse = np.unique(diag, return_inverse=True)
                self.phase_tables.append((values, inverse.astype(np.intp)))
            else:
                self.phase_tables.append(None)

        # Frontier dephasing groups (only the first cost layer reaches them).
        groups: dict[tuple, int] = {}
        for node in sub.nodes():
            if dist[node] != p:
                continue
            pattern = tuple(
                sorted(
                    (position[nbr], _edge_weight(sub, node, nbr))
                    for nbr in sub.neighbors(node)
                    if nbr in position
                )
            )
            groups[pattern] = groups.get(pattern, 0) + 1
        self.channels = []
        for pattern, multiplicity in groups.items():
            avec = np.zeros(dim)
            for qpos, weight in pattern:
                avec = avec + weight * bits[:, qpos]
            delta = avec[:, None] - avec[None, :]
            values, inverse = np.unique(delta, return_inverse=True)
            index_dtype = np.uint16 if len(values) < 2**16 else np.intp
            self.channels.append(
                (values, inverse.reshape(-1).astype(index_dtype), multiplicity)
            )

        # Subset RX tensors: masked XOR popcount index per mixer layer, with
        # a sentinel column (coefficient 0) off the subset block.  Mixer
        # layers shrink toward the marked edge.
        z = np.arange(dim)
        xor = z[:, None] ^ z[None, :]
        self.mixers = []
        for k in range(p):
            qubits = [position[x] for x in core if dist[x] <= p - 1 - k]
            mask = 0
            for qpos in qubits:
                mask |= 1 << qpos
            num = len(qubits)
            index = np.where(
                (xor & ~mask) == 0,
                _popcount(xor & mask),
                num + 1,
            ).astype(np.uint16 if num + 2 < 2**16 else np.intp)
            self.mixers.append((num, index))

        u, v = edge
        self.cut_rows = np.flatnonzero(bits[:, position[u]] ^ bits[:, position[v]])

    def evaluate(self, gammas: np.ndarray, betas: np.ndarray) -> np.ndarray:
        batch = gammas.shape[0]
        dim = self.dim
        chunk = max(1, min(batch, 2**20 // (dim * dim)))
        out = np.empty(batch)
        for start in range(0, batch, chunk):
            stop = min(start + chunk, batch)
            size = stop - start
            gc = gammas[start:stop]
            bc = betas[start:stop]
            rho0 = np.full((size, dim, dim), 1.0 / dim)
            g0 = gc[:, 0][:, None]
            for values, inverse, multiplicity in self.channels:
                factor = np.cos(g0 * values[None, :])
                if multiplicity > 1:
                    factor = factor**multiplicity
                rho0 *= factor[:, inverse].reshape(size, dim, dim)
            a = None
            for k in range(self.p - 1, -1, -1):
                layer = self._layer_matrix(gc, bc, k, size)
                if a is None:
                    a = np.ascontiguousarray(layer[:, self.cut_rows, :])
                else:
                    a = a @ layer
            out[start:stop] = np.einsum(
                "bij,bij->b", a @ rho0, a.conj()
            ).real
        return self.weight * out

    def _layer_matrix(self, gammas, betas, k, size) -> np.ndarray:
        """``M_k = (subset RX tensor) . diag(exp(-i gamma_k cut_k))``."""
        num, index = self.mixers[k]
        c = np.cos(betas[:, k])[:, None]
        js = (-1j) * np.sin(betas[:, k])[:, None]
        h = np.arange(num + 1)[None, :]
        coeff = np.concatenate(
            [c ** (num - h) * js**h, np.zeros((size, 1), dtype=complex)], axis=1
        )
        matrix = coeff[:, index]
        table = self.phase_tables[k]
        if table is not None:
            values, inverse = table
            g = gammas[:, k][:, None]
            matrix = matrix * np.exp(-1j * g * values[None, :])[:, inverse][:, None, :]
        return matrix


# -- plan reuse across evaluations ---------------------------------------------


class PlanCache:
    """Bank of compiled :class:`LightconePlan` objects keyed by exact structure.

    The compile-once/run-many hook for batch serving: a plan is a pure
    function of the weighted edge list, so reusing a compiled plan across
    jobs that share a graph (e.g. the same instance priced under several
    optimizer budgets) is result-neutral -- evaluations are bit-identical
    to rebuilding.  Keys embed node labels as-is, so callers should pass
    canonically relabeled (``0..n-1``) graphs; the pipeline already does.

    Entries are evicted least-recently-used beyond ``max_entries``.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = max_entries
        self._plans: dict[tuple, LightconePlan] = {}
        self.hits = 0
        self.misses = 0

    @staticmethod
    def plan_key(graph: nx.Graph, p: int, max_qubits: int) -> tuple:
        """Exact cache key: qubit count, depth, cap, weighted edge list."""
        return (graph.number_of_nodes(), p, max_qubits, weighted_edge_list(graph))

    def get_or_build(self, graph: nx.Graph, p: int, max_qubits: int = 20) -> LightconePlan:
        """The banked plan for ``graph``, compiling (and banking) on a miss."""
        key = self.plan_key(graph, p, max_qubits)
        plan = self._plans.pop(key, None)
        if plan is not None:
            self.hits += 1
            _PLAN_HITS.inc()
            self._plans[key] = plan  # re-insert as most recently used
            return plan
        self.misses += 1
        _PLAN_MISSES.inc()
        plan = LightconePlan.build(graph, p, max_qubits=max_qubits)
        self._plans[key] = plan
        while len(self._plans) > self.max_entries:
            del self._plans[next(iter(self._plans))]
        return plan

    @property
    def size(self) -> int:
        return len(self._plans)


# -- signatures and the per-call reference ------------------------------------


def _edge_weight(graph: nx.Graph, u, v) -> float:
    return float(graph[u][v].get("weight", 1.0))


def weighted_edge_list(graph: nx.Graph) -> tuple:
    """Sorted ``(u, v, w)`` edge tuple with ``u <= v``, default weight 1.

    The one weighted-edge-list normalization shared by plan-cache keys and
    the service layer's canonical forms, so they can never disagree on
    weight defaults.  Labels are used as-is and must be mutually sortable.
    """
    edges = []
    for a, b, data in graph.edges(data=True):
        u, v = (a, b) if a <= b else (b, a)
        edges.append((u, v, float(data.get("weight", 1.0))))
    return tuple(sorted(edges))


def refine_keys(graph: nx.Graph, key: dict, rounds: int = 2) -> dict:
    """Sharpen label-independent node keys by Weisfeiler-Leman-style rounds.

    Each round replaces a node's key with ``(old key, sorted multiset of
    (neighbor key, edge weight))``.  Starting from any label-independent
    ``key`` (degree, weight multisets, distances, ...), the refined keys
    stay label-independent, so isomorphic graphs refine identically.
    Shared by the lightcone signature below and the whole-graph canonical
    form behind :class:`repro.service.JobSpec` fingerprints.
    """
    for _ in range(rounds):
        key = {
            node: (
                key[node],
                tuple(
                    sorted(
                        (key[nbr], _edge_weight(graph, node, nbr))
                        for nbr in graph.neighbors(node)
                    )
                ),
            )
            for node in graph.nodes()
        }
    return key


def bfs_canonical_order(graph: nx.Graph, key: dict, start_nodes) -> dict:
    """Deterministic BFS numbering from ``start_nodes``, ordered by ``key``.

    Nodes are assigned ``0..k-1`` in BFS order; at every step candidates are
    sorted by their structural ``key`` with the original label as the
    tiebreak, so labels only decide between exact structural ties -- which
    costs canonicality on tie-heavy graphs, never correctness, because the
    caller compares the resulting relabeled edge lists.  Only nodes
    reachable from the start set are numbered.
    """
    order: dict = {}
    queue = deque()
    for node in sorted(sorted(start_nodes), key=lambda x: key[x]):
        if node not in order:
            order[node] = len(order)
            queue.append(node)
    while queue:
        node = queue.popleft()
        nbrs = sorted(
            sorted(n for n in graph.neighbors(node) if n not in order),
            key=lambda x: key[x],
        )
        for n in nbrs:
            order[n] = len(order)
            queue.append(n)
    return order


def _signature(graph: nx.Graph, edge: tuple[int, int], nodes: set) -> object:
    """Hashable key for a weighted (subgraph, marked edge) pair after relabeling.

    A cheap canonical form: relabel nodes by BFS from the marked edge,
    ordering by a label-independent structural key -- distance to the edge,
    subgraph degree, and the multiset of incident edge weights, sharpened by
    two rounds of Weisfeiler-Leman-style neighborhood refinement.  The key
    never consults original node labels (they only break exact structural
    ties, which costs cache hits, never correctness), so isomorphic
    lightcones with different labelings normally hash identically.

    Collisions across genuinely distinct lightcones cannot cause a wrong
    merge: the signature embeds the full relabeled *weighted* edge list, and
    the weighted edge list determines the subgraph, so equal signatures mean
    the lightcones are isomorphic (marked edge fixed, weights matching) and
    their edge terms are equal.
    """
    sub = graph.subgraph(nodes)
    u, v = edge

    dist = {u: 0, v: 0}
    frontier = [u, v]
    while frontier:
        nxt = []
        for node in frontier:
            for nbr in sub.neighbors(node):
                if nbr not in dist:
                    dist[nbr] = dist[node] + 1
                    nxt.append(nbr)
        frontier = nxt

    key = refine_keys(
        sub,
        {
            node: (
                dist[node],
                sub.degree(node),
                tuple(sorted(_edge_weight(sub, node, nbr) for nbr in sub.neighbors(node))),
            )
            for node in sub.nodes()
        },
    )

    order = bfs_canonical_order(sub, key, [u, v])
    edges = tuple(
        sorted(
            (min(order[a], order[b]), max(order[a], order[b]), _edge_weight(sub, a, b))
            for a, b in sub.edges()
        )
    )
    marked = (min(order[u], order[v]), max(order[u], order[v]))
    return (marked, edges)


def _edge_term(
    graph: nx.Graph,
    edge: tuple[int, int],
    nodes: set,
    gammas: Sequence[float],
    betas: Sequence[float],
) -> float:
    """Evaluate ``<C_uv> = w_uv P(edge cut)`` on the induced lightcone subgraph.

    The state evolves under the *weighted* cost Hamiltonian of the subgraph
    (relabeling preserves edge data), and the measured edge observable is
    scaled by the marked edge's weight, matching the per-edge term of
    ``H_c = sum w_ij (I - Z_i Z_j) / 2``.
    """
    sub = graph.subgraph(nodes)
    ordered = sorted(sub.nodes())
    mapping = {node: index for index, node in enumerate(ordered)}
    relabeled = nx.relabel_nodes(sub, mapping)
    hamiltonian = MaxCutHamiltonian(relabeled)
    probs = qaoa_probabilities(hamiltonian, list(gammas), list(betas))
    u, v = mapping[edge[0]], mapping[edge[1]]
    z = np.arange(probs.size, dtype=np.uint64)
    cut = ((z >> np.uint64(u)) ^ (z >> np.uint64(v))) & np.uint64(1)
    return _edge_weight(graph, *edge) * float(probs @ cut.astype(float))
