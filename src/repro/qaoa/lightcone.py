"""Lightcone (subgraph) evaluation of QAOA expectations.

The expectation of a p-layer QAOA decomposes edge by edge (paper Eq. 7),
and each edge term ``E_<jk>`` depends only on the subgraph induced by nodes
within graph distance ``p`` of the edge (paper Sec. 3.3, following Farhi et
al.).  Evaluating each edge term on its own small subgraph makes exact
expectations possible for graphs far beyond full-statevector reach, as long
as the graph is sparse enough that the distance-p neighborhoods stay small.

Edge weights (the ``weight`` edge attribute, default 1) are honored
throughout: the lightcone state evolves under the weighted cost Hamiltonian
of the subgraph, the edge term is ``w_uv * P(edge cut)``, and the
memoization signature embeds the canonical weighted edge list so lightcones
that differ only in weights never share a cached value.
"""

from __future__ import annotations

from collections.abc import Sequence

import networkx as nx
import numpy as np

from repro.qaoa.fast_sim import qaoa_probabilities
from repro.qaoa.hamiltonian import MaxCutHamiltonian
from repro.utils.graphs import ensure_graph

__all__ = ["LightconeTooLargeError", "lightcone_expectation", "edge_lightcone"]


class LightconeTooLargeError(ValueError):
    """A distance-p neighborhood exceeds the exact-simulation qubit cap."""


def edge_lightcone(graph: nx.Graph, edge: tuple[int, int], p: int) -> set:
    """Nodes within graph distance ``p`` of either endpoint of ``edge``."""
    u, v = edge
    nodes = {u, v}
    frontier = {u, v}
    for _ in range(p):
        nxt = set()
        for node in frontier:
            nxt.update(graph.neighbors(node))
        nxt -= nodes
        nodes |= nxt
        frontier = nxt
        if not frontier:
            break
    return nodes


def lightcone_expectation(
    graph: nx.Graph,
    gammas: Sequence[float],
    betas: Sequence[float],
    max_qubits: int = 20,
    stats: dict | None = None,
) -> float:
    """Exact QAOA expectation via per-edge lightcone simulation.

    Raises :class:`LightconeTooLargeError` when some edge's distance-p
    neighborhood exceeds ``max_qubits`` nodes.  Identical lightcones (up to
    the relabeled weighted (edge, subgraph) signature) are evaluated once
    and reused, which is what makes regular-ish graphs cheap.

    When ``stats`` is a dict it is updated in place with ``edges`` (terms
    summed), ``evaluations`` (distinct lightcones simulated) and ``hits``
    (cache reuses) so callers can assert on memoization effectiveness.
    """
    ensure_graph(graph)
    gammas = list(gammas)
    betas = list(betas)
    if len(gammas) != len(betas) or not gammas:
        raise ValueError("gammas and betas must be non-empty and equal length")
    p = len(gammas)
    cache: dict[object, float] = {}
    total = 0.0
    num_edges = 0
    for edge in graph.edges():
        nodes = edge_lightcone(graph, edge, p)
        if len(nodes) > max_qubits:
            raise LightconeTooLargeError(
                f"edge {edge} has a distance-{p} lightcone of {len(nodes)} nodes "
                f"(> {max_qubits}); the graph is too dense for lightcone evaluation"
            )
        key = _signature(graph, edge, nodes)
        if key not in cache:
            cache[key] = _edge_term(graph, edge, nodes, gammas, betas)
        total += cache[key]
        num_edges += 1
    if stats is not None:
        stats.update(
            edges=num_edges,
            evaluations=len(cache),
            hits=num_edges - len(cache),
        )
    return total


def _edge_weight(graph: nx.Graph, u, v) -> float:
    return float(graph[u][v].get("weight", 1.0))


def _signature(graph: nx.Graph, edge: tuple[int, int], nodes: set) -> object:
    """Hashable key for a weighted (subgraph, marked edge) pair after relabeling.

    A cheap canonical form: relabel nodes by BFS from the marked edge,
    ordering by a label-independent structural key -- distance to the edge,
    subgraph degree, and the multiset of incident edge weights, sharpened by
    two rounds of Weisfeiler-Leman-style neighborhood refinement.  The key
    never consults original node labels (they only break exact structural
    ties, which costs cache hits, never correctness), so isomorphic
    lightcones with different labelings normally hash identically.

    Collisions across genuinely distinct lightcones cannot cause a wrong
    merge: the signature embeds the full relabeled *weighted* edge list, and
    the weighted edge list determines the subgraph, so equal signatures mean
    the lightcones are isomorphic (marked edge fixed, weights matching) and
    their edge terms are equal.
    """
    sub = graph.subgraph(nodes)
    u, v = edge

    dist = {u: 0, v: 0}
    frontier = [u, v]
    while frontier:
        nxt = []
        for node in frontier:
            for nbr in sub.neighbors(node):
                if nbr not in dist:
                    dist[nbr] = dist[node] + 1
                    nxt.append(nbr)
        frontier = nxt

    key = {
        node: (
            dist[node],
            sub.degree(node),
            tuple(sorted(_edge_weight(sub, node, nbr) for nbr in sub.neighbors(node))),
        )
        for node in sub.nodes()
    }
    for _ in range(2):
        key = {
            node: (
                key[node],
                tuple(
                    sorted(
                        (key[nbr], _edge_weight(sub, node, nbr))
                        for nbr in sub.neighbors(node)
                    )
                ),
            )
            for node in sub.nodes()
        }

    order: dict[int, int] = {}
    start = sorted(sorted([u, v]), key=lambda x: key[x])
    for node in start:
        order[node] = len(order)
    queue = list(start)
    while queue:
        node = queue.pop(0)
        nbrs = sorted(
            sorted(n for n in sub.neighbors(node) if n not in order),
            key=lambda x: key[x],
        )
        for n in nbrs:
            order[n] = len(order)
            queue.append(n)
    edges = tuple(
        sorted(
            (min(order[a], order[b]), max(order[a], order[b]), _edge_weight(sub, a, b))
            for a, b in sub.edges()
        )
    )
    marked = (min(order[u], order[v]), max(order[u], order[v]))
    return (marked, edges)


def _edge_term(
    graph: nx.Graph,
    edge: tuple[int, int],
    nodes: set,
    gammas: Sequence[float],
    betas: Sequence[float],
) -> float:
    """Evaluate ``<C_uv> = w_uv P(edge cut)`` on the induced lightcone subgraph.

    The state evolves under the *weighted* cost Hamiltonian of the subgraph
    (relabeling preserves edge data), and the measured edge observable is
    scaled by the marked edge's weight, matching the per-edge term of
    ``H_c = sum w_ij (I - Z_i Z_j) / 2``.
    """
    sub = graph.subgraph(nodes)
    ordered = sorted(sub.nodes())
    mapping = {node: index for index, node in enumerate(ordered)}
    relabeled = nx.relabel_nodes(sub, mapping)
    hamiltonian = MaxCutHamiltonian(relabeled)
    probs = qaoa_probabilities(hamiltonian, list(gammas), list(betas))
    u, v = mapping[edge[0]], mapping[edge[1]]
    z = np.arange(probs.size, dtype=np.uint64)
    cut = ((z >> np.uint64(u)) ^ (z >> np.uint64(v))) & np.uint64(1)
    return _edge_weight(graph, *edge) * float(probs @ cut.astype(float))
