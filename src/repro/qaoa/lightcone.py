"""Lightcone (subgraph) evaluation of QAOA expectations.

The expectation of a p-layer QAOA decomposes edge by edge (paper Eq. 7),
and each edge term ``E_<jk>`` depends only on the subgraph induced by nodes
within graph distance ``p`` of the edge (paper Sec. 3.3, following Farhi et
al.).  Evaluating each edge term on its own small subgraph makes exact
expectations possible for graphs far beyond full-statevector reach, as long
as the graph is sparse enough that the distance-p neighborhoods stay small.
"""

from __future__ import annotations

from collections.abc import Sequence

import networkx as nx
import numpy as np

from repro.qaoa.fast_sim import qaoa_probabilities
from repro.qaoa.hamiltonian import MaxCutHamiltonian
from repro.utils.graphs import ensure_graph

__all__ = ["LightconeTooLargeError", "lightcone_expectation", "edge_lightcone"]


class LightconeTooLargeError(ValueError):
    """A distance-p neighborhood exceeds the exact-simulation qubit cap."""


def edge_lightcone(graph: nx.Graph, edge: tuple[int, int], p: int) -> set:
    """Nodes within graph distance ``p`` of either endpoint of ``edge``."""
    u, v = edge
    nodes = {u, v}
    frontier = {u, v}
    for _ in range(p):
        nxt = set()
        for node in frontier:
            nxt.update(graph.neighbors(node))
        nxt -= nodes
        nodes |= nxt
        frontier = nxt
        if not frontier:
            break
    return nodes


def lightcone_expectation(
    graph: nx.Graph,
    gammas: Sequence[float],
    betas: Sequence[float],
    max_qubits: int = 20,
) -> float:
    """Exact QAOA expectation via per-edge lightcone simulation.

    Raises :class:`LightconeTooLargeError` when some edge's distance-p
    neighborhood exceeds ``max_qubits`` nodes.  Identical lightcones (up to
    the relabeled (edge, subgraph) signature) are evaluated once and reused,
    which is what makes regular-ish graphs cheap.
    """
    ensure_graph(graph)
    gammas = list(gammas)
    betas = list(betas)
    if len(gammas) != len(betas) or not gammas:
        raise ValueError("gammas and betas must be non-empty and equal length")
    p = len(gammas)
    cache: dict[object, float] = {}
    total = 0.0
    for edge in graph.edges():
        nodes = edge_lightcone(graph, edge, p)
        if len(nodes) > max_qubits:
            raise LightconeTooLargeError(
                f"edge {edge} has a distance-{p} lightcone of {len(nodes)} nodes "
                f"(> {max_qubits}); the graph is too dense for lightcone evaluation"
            )
        key = _signature(graph, edge, nodes)
        if key not in cache:
            cache[key] = _edge_term(graph, edge, nodes, gammas, betas)
        total += cache[key]
    return total


def _signature(graph: nx.Graph, edge: tuple[int, int], nodes: set) -> object:
    """Hashable key for a (subgraph, marked edge) pair after relabeling.

    A cheap canonical form: relabel nodes by (distance-to-edge, degree-in-
    subgraph, tie-break by BFS order).  Collisions across genuinely distinct
    lightcones are possible in principle, so the signature also embeds the
    full relabeled edge multiset; two lightcones with equal signatures are
    isomorphic *with the marked edge fixed* for all structures occurring in
    our benchmarks, and a wrong merge would only occur for non-isomorphic
    graphs sharing an identical canonical edge list, which cannot happen
    (the edge list determines the graph).
    """
    sub = graph.subgraph(nodes)
    u, v = edge
    order: dict[int, int] = {}
    frontier = sorted([u, v], key=lambda x: (sub.degree(x), x))
    for node in frontier:
        order[node] = len(order)
    queue = list(frontier)
    while queue:
        node = queue.pop(0)
        nbrs = sorted(
            (n for n in sub.neighbors(node) if n not in order),
            key=lambda x: (sub.degree(x), x),
        )
        for n in nbrs:
            order[n] = len(order)
            queue.append(n)
    edges = frozenset(
        (min(order[a], order[b]), max(order[a], order[b])) for a, b in sub.edges()
    )
    marked = (min(order[u], order[v]), max(order[u], order[v]))
    return (marked, edges)


def _edge_term(
    graph: nx.Graph,
    edge: tuple[int, int],
    nodes: set,
    gammas: Sequence[float],
    betas: Sequence[float],
) -> float:
    """Evaluate ``<C_uv>`` exactly on the induced lightcone subgraph."""
    sub = graph.subgraph(nodes)
    ordered = sorted(sub.nodes())
    mapping = {node: index for index, node in enumerate(ordered)}
    relabeled = nx.relabel_nodes(sub, mapping)
    hamiltonian = MaxCutHamiltonian(relabeled)
    probs = qaoa_probabilities(hamiltonian, list(gammas), list(betas))
    u, v = mapping[edge[0]], mapping[edge[1]]
    z = np.arange(probs.size, dtype=np.uint64)
    cut = ((z >> np.uint64(u)) ^ (z >> np.uint64(v))) & np.uint64(1)
    return float(probs @ cut.astype(float))
