"""Campaigns: manifest-driven batch runs with aggregate reporting.

A *manifest* is a plain mapping (YAML or JSON on disk) describing a batch
of jobs:

.. code-block:: yaml

    schema: 1
    defaults:            # optional JobSpec config applied to every job
      p: 1
      restarts: 3
      maxiter: 40
    jobs:
      - kind: maxcut     # graph workload (the paper's); other kinds are
        nodes: 14        #   problem workloads from repro.datasets
        seed: 3
        weight_dist: uniform
      - kind: sk
        nodes: 12
        p: 2             # per-job overrides beat defaults
        repeat: 4        # deliberate duplicates (deduped by fingerprint)

Generator keys (``nodes``, ``seed``, ``edge_probability``, ``weight_dist``,
``penalty``, ``qubo_density``) feed the deterministic instance generators
in :mod:`repro.datasets`; everything else is
:class:`~repro.service.jobs.JobSpec` configuration.  ``seed`` seeds both
the generator and the job, so one integer pins the whole job.
:func:`repro.datasets.suite_manifest` builds such a mapping for a whole
generated dataset suite.

:class:`Campaign` runs a manifest through the
:class:`~repro.service.scheduler.BatchScheduler` against an optional
persistent store and aggregates the outcome per label/kind; re-running a
finished campaign against the same store recomputes nothing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.service.jobs import JobSpec
from repro.service.scheduler import BatchReport, BatchScheduler
from repro.service.store import ResultStore

__all__ = [
    "Campaign",
    "CampaignReport",
    "load_manifest",
    "manifest_specs",
]

MANIFEST_SCHEMA = 1

_GENERATOR_KEYS = ("edge_probability", "weight_dist", "penalty", "qubo_density")
_CONFIG_KEYS = (
    "p",
    "restarts",
    "maxiter",
    "finetune_maxiter",
    "shots",
    "warm_start",
    "and_ratio_threshold",
    "seed",
    "label",
)


def load_manifest(path: str | Path) -> dict:
    """Parse a manifest file: YAML when available, JSON always.

    ``.json`` files parse as JSON; anything else tries YAML first (when
    PyYAML is installed -- it is optional, never a hard dependency) and
    falls back to JSON, so a JSON manifest under any extension works in
    minimal environments.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if path.suffix.lower() != ".json":
        try:
            import yaml
        except ImportError:
            pass
        else:
            try:
                manifest = yaml.safe_load(text)
            except yaml.YAMLError as exc:
                raise ValueError(f"manifest {path} is not valid YAML: {exc}") from exc
            if not isinstance(manifest, dict):
                raise ValueError(f"manifest {path} must be a mapping, got {type(manifest).__name__}")
            return manifest
    try:
        manifest = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"manifest {path} is not valid JSON: {exc}") from exc
    if not isinstance(manifest, dict):
        raise ValueError(f"manifest {path} must be a mapping, got {type(manifest).__name__}")
    return manifest


def manifest_specs(manifest: dict) -> list[JobSpec]:
    """Expand a manifest mapping into concrete :class:`JobSpec` objects."""
    schema = manifest.get("schema", MANIFEST_SCHEMA)
    if schema != MANIFEST_SCHEMA:
        raise ValueError(f"unsupported manifest schema {schema!r} (supported: {MANIFEST_SCHEMA})")
    entries = manifest.get("jobs")
    if not entries:
        raise ValueError("manifest has no jobs")
    defaults = manifest.get("defaults", {})
    specs: list[JobSpec] = []
    for position, entry in enumerate(entries):
        merged = {**defaults, **entry}
        repeat = int(merged.pop("repeat", 1))
        if repeat < 1:
            raise ValueError(f"job {position}: repeat must be >= 1, got {repeat}")
        specs.extend(_entry_spec(merged, position) for _ in range(repeat))
    return specs


def _entry_spec(entry: dict, position: int) -> JobSpec:
    entry = dict(entry)
    kind = entry.pop("kind", "maxcut")
    nodes = int(entry.pop("nodes", 12))
    seed = int(entry.get("seed", 0))
    generator = {key: entry.pop(key) for key in _GENERATOR_KEYS if key in entry}
    unknown = set(entry) - set(_CONFIG_KEYS)
    if unknown:
        raise ValueError(f"job {position}: unknown manifest keys {sorted(unknown)}")
    config = dict(entry)
    config.setdefault("label", f"{kind}-n{nodes}-s{seed}")

    if kind == "maxcut":
        from repro.datasets import attach_weights, random_connected_gnp

        graph = random_connected_gnp(
            nodes, float(generator.get("edge_probability", 0.35)), seed=seed
        )
        distribution = generator.get("weight_dist")
        if distribution is not None:
            graph = attach_weights(graph, distribution, seed=seed)
        return JobSpec(graph=graph, **config)

    from repro.datasets import problem_instance

    problem = problem_instance(
        kind,
        nodes,
        seed=seed,
        edge_probability=float(generator.get("edge_probability", 0.35)),
        penalty=float(generator.get("penalty", 2.0)),
        weight_distribution=generator.get("weight_dist"),
        qubo_density=float(generator.get("qubo_density", 0.5)),
    )
    return JobSpec(problem=problem, **config)


@dataclass
class CampaignReport:
    """A batch report plus per-label aggregates, JSON-serializable.

    ``store`` (when a persistent store backed the run) summarizes the
    store's accesses -- fed from the same counters the metrics registry
    tracks (``redqaoa_store_hits_total`` / ``redqaoa_store_misses_total``).
    """

    batch: BatchReport
    aggregates: dict
    store: dict | None = None

    def to_dict(self) -> dict:
        report = self.batch.to_dict()
        report["aggregates"] = self.aggregates
        if self.store is not None:
            report["store"] = self.store
        return report

    def write(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")


class Campaign:
    """A batch of job specs bound to an optional persistent store.

    ``store_path`` opens (or creates) a
    :class:`~repro.service.store.ResultStore`; omit it for a purely
    in-memory run.  ``reduction_reuse``, ``workers``, and ``pool`` are
    forwarded to the scheduler (``workers=N`` executes on N processes of
    the :mod:`repro.serve` worker pool, bit-identical to 1).
    """

    def __init__(
        self,
        specs,
        store_path: str | Path | None = None,
        reduction_reuse: str = "exact",
        workers: int = 1,
        pool: str | None = None,
    ) -> None:
        self.specs = list(specs)
        if not self.specs:
            raise ValueError("campaign has no jobs")
        self.store = ResultStore(store_path) if store_path is not None else None
        self.scheduler = BatchScheduler(
            store=self.store,
            reduction_reuse=reduction_reuse,
            workers=workers,
            pool=pool,
        )

    @classmethod
    def from_manifest(
        cls,
        manifest: dict,
        store_path: str | Path | None = None,
        reduction_reuse: str = "exact",
        workers: int = 1,
        pool: str | None = None,
    ) -> "Campaign":
        return cls(
            manifest_specs(manifest),
            store_path=store_path,
            reduction_reuse=reduction_reuse,
            workers=workers,
            pool=pool,
        )

    @classmethod
    def from_file(
        cls,
        path: str | Path,
        store_path: str | Path | None = None,
        reduction_reuse: str = "exact",
        workers: int = 1,
        pool: str | None = None,
    ) -> "Campaign":
        return cls.from_manifest(
            load_manifest(path),
            store_path=store_path,
            reduction_reuse=reduction_reuse,
            workers=workers,
            pool=pool,
        )

    def run(self, on_result=None) -> CampaignReport:
        """Execute the campaign and aggregate per-label statistics."""
        batch = self.scheduler.run(self.specs, on_result=on_result)
        groups: dict[str, list] = {}
        for view in batch.results:
            groups.setdefault(view.label or view.kind, []).append(view)
        aggregates = {}
        for label in sorted(groups):
            views = groups[label]
            expectations = [v.result.expectation for v in views]
            best_values = [
                v.result.best_value
                for v in views
                if v.result.best_value == v.result.best_value  # drop NaN
            ]
            aggregates[label] = {
                "count": len(views),
                "mean_expectation": sum(expectations) / len(expectations),
                "mean_best_value": (
                    sum(best_values) / len(best_values) if best_values else None
                ),
            }
        store = None
        if self.store is not None:
            store = {
                "path": str(self.store.path),
                "results": len(self.store),
                "hits": self.store.hits,
                "misses": self.store.misses,
                "dead_letters": len(self.store.dead_letters()),
            }
        return CampaignReport(batch=batch, aggregates=aggregates, store=store)
