"""Job specifications with canonical, relabeling-invariant fingerprints.

A :class:`JobSpec` is one unit of batch work: a workload instance (a MaxCut
graph or any :class:`~repro.problems.DiagonalProblem`) plus the pipeline
configuration (QAOA depth, optimizer budget, reduction threshold, seed).
Its *fingerprint* is a content hash of a canonical form of that data, built
on the weighted signature machinery of :mod:`repro.qaoa.lightcone`
(:func:`~repro.qaoa.lightcone.refine_keys` /
:func:`~repro.qaoa.lightcone.bfs_canonical_order`): nodes are renumbered by
a label-independent structural key, so isomorphic relabelings and
node-order permutations of the same weighted instance fingerprint
identically, while any weight, field, constant, or config change produces a
new fingerprint.  Equal fingerprints can never merge distinct jobs -- the
hashed payload embeds the full canonical weighted edge (or coupling) list,
which determines the instance up to isomorphism.  Structural ties broken by
labels (possible on tie-heavy unweighted graphs) can at worst split one
isomorphism class across fingerprints, costing reuse, never correctness.

Execution is canonical too: :func:`run_job` runs the pipeline on the
*canonical* instance with RNG seeds derived from the fingerprints (one
stream for reduction, one for optimization), then maps the sampled
assignment back through the job's own labels.  Two consequences anchor the
whole service layer:

- a job's result is a pure function of its fingerprint, so deduplication,
  the persistent :class:`~repro.service.store.ResultStore`, and shared
  reductions/plans are all result-neutral -- batched, sequential, and
  resumed execution are bit-identical per job;
- isomorphic duplicates share everything except the final relabeling of
  the assignment.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any

import networkx as nx

from repro.core.pipeline import RedQAOA, RedQAOAResult
from repro.core.reduction import DEFAULT_AND_RATIO_THRESHOLD, GraphReducer
from repro.problems import DiagonalProblem
from repro.qaoa.lightcone import (
    _edge_weight,
    bfs_canonical_order,
    refine_keys,
    weighted_edge_list,
)
from repro.utils.graphs import ensure_graph

__all__ = [
    "FINGERPRINT_SCHEMA",
    "CanonicalInstance",
    "JobResult",
    "JobSpec",
    "canonical_graph",
    "canonical_graph_form",
    "canonical_problem_form",
    "run_job",
]

# Bump when the fingerprint payload layout changes; old fingerprints (and
# any results stored under them) then simply stop matching.
FINGERPRINT_SCHEMA = 1


# -- canonical forms -----------------------------------------------------------


def _structural_keys(graph: nx.Graph) -> dict:
    """Refined label-independent node keys: (degree, weight multiset) + WL."""
    return refine_keys(
        graph,
        {
            node: (
                graph.degree(node),
                tuple(
                    sorted(_edge_weight(graph, node, nbr) for nbr in graph.neighbors(node))
                ),
            )
            for node in graph.nodes()
        },
    )


def _order_from(graph: nx.Graph, key: dict, start) -> dict:
    """Canonical BFS numbering of the whole graph, component by component.

    The start node's component is numbered first; remaining components
    follow, each entered at its minimal-key node, until every node is
    numbered.
    """
    order = bfs_canonical_order(graph, key, [start])
    while len(order) < graph.number_of_nodes():
        rest = sorted(
            sorted(node for node in graph.nodes() if node not in order),
            key=lambda x: key[x],
        )
        component = bfs_canonical_order(graph, key, [rest[0]])
        for node, _ in sorted(component.items(), key=lambda kv: kv[1]):
            if node not in order:
                order[node] = len(order)
    return order


def _edges_under(graph: nx.Graph, order: dict) -> tuple:
    """The weighted edge list in canonical labels: sorted (u, v, w), u <= v."""
    edges = []
    for a, b in graph.edges():
        u, v = order[a], order[b]
        if u > v:
            u, v = v, u
        edges.append((u, v, _edge_weight(graph, a, b)))
    return tuple(sorted(edges))


def canonical_graph_form(graph: nx.Graph) -> tuple[list, tuple]:
    """Canonical ``(ordering, edges)`` of a weighted graph.

    ``ordering[i]`` is the original label of canonical node ``i``;
    ``edges`` is the weighted edge list under that numbering (self-loops
    included, so problem coupling graphs with field loops canonicalize
    too).  The numbering minimizes the edge list over BFS runs started at
    every minimal-key node, so any relabeling of ``graph`` yields the same
    ``edges`` -- exactly (not just with high probability) whenever the
    refined keys separate all non-automorphic nodes, which distinct edge
    weights guarantee.  Cost is one BFS + edge-list sort per minimal-key
    node: ~O(m log m) on key-diverse graphs, O(n * m log m) in the worst
    case (unweighted regular graphs, where every node is a candidate
    start) -- fine at batch-job sizes, so no early-abort machinery.
    """
    ensure_graph(graph)
    key = _structural_keys(graph)
    min_key = min(key.values())
    best_edges: tuple | None = None
    best_order: dict | None = None
    for start in sorted(node for node in graph.nodes() if key[node] == min_key):
        order = _order_from(graph, key, start)
        edges = _edges_under(graph, order)
        if best_edges is None or edges < best_edges:
            best_edges, best_order = edges, order
    assert best_order is not None
    ordering = [node for node, _ in sorted(best_order.items(), key=lambda kv: kv[1])]
    return ordering, best_edges


def canonical_graph(graph: nx.Graph) -> tuple[list, nx.Graph]:
    """Canonical ``(ordering, relabeled graph)`` pair for execution.

    The returned graph has nodes ``0..n-1`` in canonical order with the
    original edge weights (the ``weight`` attribute is only set where it
    differs from 1, like generator output).
    """
    ordering, edges = canonical_graph_form(graph)
    relabeled = nx.Graph()
    relabeled.add_nodes_from(range(len(ordering)))
    for u, v, w in edges:
        if w == 1.0:
            relabeled.add_edge(u, v)
        else:
            relabeled.add_edge(u, v, weight=w)
    return ordering, relabeled


def canonical_problem_form(problem: DiagonalProblem) -> tuple[list, DiagonalProblem]:
    """Canonical ``(ordering, permuted problem)`` of a diagonal problem.

    The canonical numbering comes from the field-aware coupling graph
    (fields enter as self-loops, so they shape the structural keys exactly
    as they shape reduction); the returned problem is the input with its
    qubits permuted into that numbering -- same diagonal up to the basis
    relabeling, same name and constant.
    """
    graph = problem.coupling_graph(include_fields=True)
    ordering, _ = canonical_graph_form(graph)
    position = {label: index for index, label in enumerate(ordering)}
    permuted = DiagonalProblem(
        problem.num_qubits,
        {(position[u], position[v]): j for (u, v), j in problem.couplings.items()},
        {position[u]: h for u, h in problem.fields.items()},
        constant=problem.constant,
        name=problem.name,
    )
    return ordering, permuted


# -- the job spec --------------------------------------------------------------


@dataclass(frozen=True)
class CanonicalInstance:
    """Cached canonicalization of one job's workload.

    ``ordering[i]`` is the job's own label behind canonical qubit ``i``;
    ``instance`` is the canonically relabeled graph or problem the
    pipeline actually executes.
    """

    ordering: list
    instance: Any
    payload: dict


def _digest(payload: dict) -> str:
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def _seed_from(fingerprint: str, stream: str) -> int:
    """A 64-bit RNG seed bound to one fingerprint and stream name.

    Reduction and optimization draw from *separate* derived streams so a
    shared (skipped) reduction cannot shift the optimizer's draws -- the
    keystone of batched/sequential bit-identity.
    """
    digest = hashlib.sha256(f"{fingerprint}/{stream}".encode("utf-8")).hexdigest()
    return int(digest[:16], 16)


@dataclass(frozen=True, eq=False)
class JobSpec:
    """One batch job: a workload instance plus the pipeline configuration.

    Exactly one of ``graph`` (MaxCut on a weighted graph, the paper's
    workload) and ``problem`` (any diagonal Ising/QUBO problem) must be
    set.  ``seed`` distinguishes deliberate re-runs of the same instance;
    ``label`` is free-form reporting text and never enters the
    fingerprint.  Config fields mirror :class:`~repro.core.pipeline.RedQAOA`
    (``and_ratio_threshold`` configures the reducer).

    Frozen: fingerprints and the canonical form are cached on first
    access, so a mutable spec could silently dedup under a stale
    fingerprint after a config edit -- build a new spec instead.
    """

    graph: nx.Graph | None = None
    problem: DiagonalProblem | None = None
    p: int = 1
    restarts: int = 3
    maxiter: int = 40
    finetune_maxiter: int = 0
    shots: int = 1024
    warm_start: bool = False
    and_ratio_threshold: float = DEFAULT_AND_RATIO_THRESHOLD
    seed: int = 0
    label: str = ""
    _canonical: CanonicalInstance | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _instance_fingerprint: str | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _fingerprint: str | None = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if (self.graph is None) == (self.problem is None):
            raise ValueError("pass exactly one of graph= or problem=")
        if self.graph is not None:
            ensure_graph(self.graph)

    # -- identity ------------------------------------------------------------

    @property
    def kind(self) -> str:
        return "graph" if self.graph is not None else "problem"

    @property
    def num_qubits(self) -> int:
        if self.graph is not None:
            return self.graph.number_of_nodes()
        return self.problem.num_qubits

    def canonical(self) -> CanonicalInstance:
        """The canonicalized workload (computed once, then cached)."""
        if self._canonical is None:
            if self.graph is not None:
                ordering, instance = canonical_graph(self.graph)
                payload = {
                    "kind": "graph",
                    "n": len(ordering),
                    "edges": [list(edge) for edge in _edges_under_identity(instance)],
                }
            else:
                ordering, instance = canonical_problem_form(self.problem)
                payload = {
                    "kind": "problem",
                    "n": instance.num_qubits,
                    "couplings": [
                        [u, v, j] for (u, v), j in instance.couplings.items()
                    ],
                    "fields": [[u, h] for u, h in instance.fields.items()],
                    "constant": instance.constant,
                }
            object.__setattr__(self, "_canonical", CanonicalInstance(ordering, instance, payload))
        return self._canonical

    @property
    def instance_fingerprint(self) -> str:
        """Content hash of the canonical instance plus the reduction config.

        Jobs sharing it reduce identically (same canonical coupling
        structure, same threshold, same derived reduction seed), so the
        scheduler computes their reduction once.
        """
        if self._instance_fingerprint is None:
            payload = {
                "schema": FINGERPRINT_SCHEMA,
                "instance": self.canonical().payload,
                "reduction": {"and_ratio_threshold": self.and_ratio_threshold},
                "seed": self.seed,
            }
            object.__setattr__(self, "_instance_fingerprint", _digest(payload))
        return self._instance_fingerprint

    @property
    def fingerprint(self) -> str:
        """Content hash identifying the full job (instance + QAOA config)."""
        if self._fingerprint is None:
            payload = {
                "schema": FINGERPRINT_SCHEMA,
                "instance_fingerprint": self.instance_fingerprint,
                "config": {
                    "p": self.p,
                    "restarts": self.restarts,
                    "maxiter": self.maxiter,
                    "finetune_maxiter": self.finetune_maxiter,
                    "shots": self.shots,
                    "warm_start": self.warm_start,
                },
            }
            object.__setattr__(self, "_fingerprint", _digest(payload))
        return self._fingerprint

    @property
    def reduction_seed(self) -> int:
        return _seed_from(self.instance_fingerprint, "reduce")

    @property
    def optimize_seed(self) -> int:
        return _seed_from(self.fingerprint, "optimize")

    # -- execution helpers ---------------------------------------------------

    def make_reducer(self) -> GraphReducer:
        """A fresh reducer seeded from the instance fingerprint."""
        return GraphReducer(
            and_ratio_threshold=self.and_ratio_threshold, seed=self.reduction_seed
        )

    def compute_reduction(self):
        """The reduction a pipeline for this spec would compute internally."""
        instance = self.canonical().instance
        reducer = self.make_reducer()
        if self.graph is not None:
            return reducer.reduce(instance)
        return reducer.reduce_problem(instance)

    def pipeline(self, plan_cache=None) -> RedQAOA:
        """A configured pipeline with fingerprint-derived seeds."""
        return RedQAOA(
            p=self.p,
            reducer=self.make_reducer(),
            restarts=self.restarts,
            maxiter=self.maxiter,
            finetune_maxiter=self.finetune_maxiter,
            shots=self.shots,
            warm_start=self.warm_start,
            seed=self.optimize_seed,
            plan_cache=plan_cache,
        )

    def describe(self) -> dict:
        """Reporting summary (no workload data)."""
        info = {
            "label": self.label,
            "kind": self.kind,
            "n": self.num_qubits,
            "p": self.p,
            "restarts": self.restarts,
            "maxiter": self.maxiter,
            "finetune_maxiter": self.finetune_maxiter,
            "shots": self.shots,
            "seed": self.seed,
        }
        if self.problem is not None:
            info["problem"] = self.problem.name
        return info


def _edges_under_identity(graph: nx.Graph) -> tuple:
    """Weighted edge list of an already canonically labeled graph."""
    return weighted_edge_list(graph)


# -- job results ---------------------------------------------------------------


@dataclass
class JobResult:
    """The canonical outcome of one job, in store-portable form.

    ``bits[i]`` is the sampled bit of canonical qubit ``i`` (empty when
    readout was skipped, e.g. problems beyond the dense sampling cap);
    :meth:`assignment_for` maps it back onto a spec's own labels.  All
    floats survive the JSON store round trip exactly (``repr``-based
    encoding), so resumed results compare bit-identical to recomputed
    ones.
    """

    fingerprint: str
    instance_fingerprint: str
    gammas: list[float]
    betas: list[float]
    expectation: float
    best_value: float
    bits: list[int]
    reduced_qubits: int
    and_ratio: float
    reduced_evaluations: int
    original_evaluations: int
    source: str = "computed"

    @classmethod
    def from_run(cls, spec: JobSpec, result: RedQAOAResult) -> "JobResult":
        n = spec.num_qubits
        if result.assignment:
            bits = [int(result.assignment[index]) for index in range(n)]
        else:
            bits = []
        reduction = result.reduction
        if spec.graph is not None:
            reduced_qubits = reduction.reduced_graph.number_of_nodes()
        else:
            reduced_qubits = reduction.subproblem.num_qubits
        return cls(
            fingerprint=spec.fingerprint,
            instance_fingerprint=spec.instance_fingerprint,
            gammas=[float(g) for g in result.gammas],
            betas=[float(b) for b in result.betas],
            expectation=float(result.expectation),
            best_value=float(result.cut_value),
            bits=bits,
            reduced_qubits=reduced_qubits,
            and_ratio=float(reduction.and_ratio),
            reduced_evaluations=result.num_reduced_evaluations,
            original_evaluations=result.num_original_evaluations,
        )

    def assignment_for(self, spec: JobSpec) -> dict:
        """The sampled assignment in ``spec``'s own labels."""
        if not self.bits:
            return {}
        ordering = spec.canonical().ordering
        return {label: self.bits[index] for index, label in enumerate(ordering)}

    def to_payload(self) -> dict:
        """JSON-serializable body for the result store (NaN encoded as None)."""
        return {
            "gammas": self.gammas,
            "betas": self.betas,
            "expectation": self.expectation,
            "best_value": None if math.isnan(self.best_value) else self.best_value,
            "bits": self.bits,
            "reduced_qubits": self.reduced_qubits,
            "and_ratio": self.and_ratio,
            "reduced_evaluations": self.reduced_evaluations,
            "original_evaluations": self.original_evaluations,
        }

    @classmethod
    def from_payload(
        cls,
        fingerprint: str,
        instance_fingerprint: str,
        payload: dict,
        source: str = "store",
    ) -> "JobResult":
        best = payload["best_value"]
        return cls(
            fingerprint=fingerprint,
            instance_fingerprint=instance_fingerprint,
            gammas=[float(g) for g in payload["gammas"]],
            betas=[float(b) for b in payload["betas"]],
            expectation=float(payload["expectation"]),
            best_value=float("nan") if best is None else float(best),
            bits=[int(b) for b in payload["bits"]],
            reduced_qubits=int(payload["reduced_qubits"]),
            and_ratio=float(payload["and_ratio"]),
            reduced_evaluations=int(payload["reduced_evaluations"]),
            original_evaluations=int(payload["original_evaluations"]),
            source=source,
        )


def run_job(spec: JobSpec, *, reduction=None, plan_cache=None) -> JobResult:
    """Execute one job spec deterministically; the service's unit of work.

    Runs the full :class:`~repro.core.pipeline.RedQAOA` flow on the
    canonical instance with fingerprint-derived seeds.  ``reduction``
    optionally injects the (shared) reduction of this spec's instance --
    bit-identical to computing it here, see :meth:`JobSpec.compute_reduction`;
    ``plan_cache`` shares compiled lightcone plans across jobs.
    """
    pipeline = spec.pipeline(plan_cache=plan_cache)
    instance = spec.canonical().instance
    if spec.graph is not None:
        result = pipeline.run(instance, reduction=reduction)
    else:
        result = pipeline.run(problem=instance, reduction=reduction)
    return JobResult.from_run(spec, result)
