"""Persistent, append-only result store keyed by job fingerprint.

:class:`ResultStore` makes repeated jobs free across process restarts: one
JSONL file, one record per completed job, appended with an ``fsync`` so a
finished job survives a crash the moment :meth:`ResultStore.put` returns.
Records are schema-versioned; on load, records with an unknown schema are
skipped (counted, never fatal) and a truncated final line -- the footprint
of a process killed mid-append -- is tolerated, so a store written by a
killed campaign always resumes cleanly with every fully written result
intact.

Appends take an advisory ``flock`` on the store file (where the platform
provides one), so two processes sharing one store file -- a daemon and a
batch run, or two daemons -- serialize their appends instead of
interleaving partial JSONL lines.  The lock covers exactly one
write+fsync; readers never block.

Later records win on duplicate fingerprints (the file is append-only, so
"latest" is simply the last line), and all floats round-trip exactly
through JSON's ``repr``-based encoding -- a resumed result compares
bit-identical to the original computation.

Besides results, the store holds **dead-letter** records
(:meth:`ResultStore.park`): jobs that exhausted their retry budget in the
serve layer, recorded with the error and attempt count so a poison-pill
job is visible and auditable instead of wedging a queue.  A successful
result for the same fingerprint always wins over a dead letter -- results
are pure functions of the fingerprint, so once computed they are valid
forever.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

try:  # advisory locking is POSIX-only; the store degrades gracefully
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.obs.metrics import REGISTRY
from repro.service.jobs import JobResult

__all__ = ["STORE_SCHEMA", "ResultStore"]

STORE_SCHEMA = 1

_STORE_HITS = REGISTRY.counter(
    "redqaoa_store_hits_total", "result-store gets served from disk"
)
_STORE_MISSES = REGISTRY.counter(
    "redqaoa_store_misses_total", "result-store gets that found nothing"
)
_STORE_APPENDS = REGISTRY.counter(
    "redqaoa_store_appends_total", "records appended to the store file"
)
_STORE_DEAD = REGISTRY.counter(
    "redqaoa_store_dead_letters_total", "dead-letter records parked in the store"
)


class ResultStore:
    """On-disk fingerprint -> :class:`~repro.service.jobs.JobResult` map.

    Parameters
    ----------
    path:
        JSONL file; created (with parents) on first :meth:`put`.  An
        existing file is indexed on construction.
    fsync:
        Flush records to stable storage on every put (default).  Disable
        only for throwaway stores (tests); durability is the point.

    ``hits`` / ``misses`` count :meth:`get` outcomes -- the counters batch
    reports and the resume-verification CI job read.
    """

    def __init__(self, path: str | os.PathLike, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.hits = 0
        self.misses = 0
        self.skipped_schema = 0
        self.corrupt_lines = 0
        self._index: dict[str, dict] = {}
        self._dead: dict[str, dict] = {}
        self._load()

    # -- loading -------------------------------------------------------------

    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as handle:
            lines = handle.read().split("\n")
        for position, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A truncated final line is the normal crash footprint;
                # anything else undecodable is counted and skipped too --
                # the store must always come up.
                self.corrupt_lines += 1
                continue
            if not isinstance(record, dict) or record.get("schema") != STORE_SCHEMA:
                self.skipped_schema += 1
                continue
            fingerprint = record.get("fingerprint")
            if not fingerprint:
                self.corrupt_lines += 1
                continue
            if "dead_letter" in record:
                self._dead[fingerprint] = record
            else:
                self._index[fingerprint] = record
        # A computed result outranks any dead letter for the same job:
        # results are pure functions of the fingerprint, so one success
        # retires every recorded failure regardless of file order.
        for fingerprint in list(self._dead):
            if fingerprint in self._index:
                del self._dead[fingerprint]

    # -- queries -------------------------------------------------------------

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._index

    def __len__(self) -> int:
        return len(self._index)

    def fingerprints(self) -> list[str]:
        return list(self._index)

    def get(self, fingerprint: str) -> JobResult | None:
        """The stored result for ``fingerprint``, counting hits/misses."""
        record = self._index.get(fingerprint)
        if record is None:
            self.misses += 1
            _STORE_MISSES.inc()
            return None
        self.hits += 1
        _STORE_HITS.inc()
        return JobResult.from_payload(
            fingerprint,
            record.get("instance", ""),
            record["payload"],
            source="store",
        )

    def dead_letters(self) -> dict[str, dict]:
        """Parked jobs: fingerprint -> ``{"error", "attempts", "instance"}``."""
        return {
            fingerprint: dict(record["dead_letter"])
            for fingerprint, record in self._dead.items()
        }

    # -- writes --------------------------------------------------------------

    def put(self, result: JobResult) -> None:
        """Append one finished job; durable before this method returns."""
        record = {
            "schema": STORE_SCHEMA,
            "fingerprint": result.fingerprint,
            "instance": result.instance_fingerprint,
            "payload": result.to_payload(),
        }
        self._append(record)
        self._index[result.fingerprint] = record
        self._dead.pop(result.fingerprint, None)

    def park(self, fingerprint: str, instance: str, error: str, attempts: int) -> None:
        """Record a dead-lettered job: retries exhausted, queue moved on."""
        record = {
            "schema": STORE_SCHEMA,
            "fingerprint": fingerprint,
            "instance": instance,
            "dead_letter": {
                "error": str(error),
                "attempts": int(attempts),
                "instance": instance,
            },
        }
        self._append(record)
        _STORE_DEAD.inc()
        if fingerprint not in self._index:
            self._dead[fingerprint] = record

    def _append(self, record: dict) -> None:
        _STORE_APPENDS.inc()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self.path.open("a", encoding="utf-8") as handle:
            if fcntl is not None:
                # Advisory exclusive lock for the single write+fsync below:
                # concurrent writers sharing this file queue up instead of
                # interleaving partial lines.  Released with the handle.
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                handle.write(line + "\n")
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
