"""Batch serving: deterministic campaigns with a persistent result store.

The amortization layer the paper's economics call for: one cheap
reduced-graph landscape should serve many expensive evaluations, and one
batch of similar instances should share reductions, compiled lightcone
plans, and previously computed results.  The pieces:

``jobs``
    :class:`JobSpec` -- workload + config with a canonical,
    relabeling-invariant content fingerprint (built on the weighted
    signature machinery of :mod:`repro.qaoa.lightcone`) and
    fingerprint-derived execution seeds, so a job's result is a pure
    function of its fingerprint.
``store``
    :class:`ResultStore` -- append-only, fsync'd, schema-versioned JSONL
    keyed by fingerprint; repeated jobs are free across process restarts.
``scheduler``
    :class:`BatchScheduler` -- dedups exact/isomorphic duplicates, shares
    reductions per instance and compiled plans per structure, orders
    execution by a cost model, and streams bit-identical per-job results
    regardless of grouping.
``campaign``
    :class:`Campaign` -- YAML/JSON manifests (or generated dataset
    suites) run end-to-end with an aggregate report.
"""

from repro.service.campaign import Campaign, CampaignReport, load_manifest, manifest_specs
from repro.service.jobs import (
    JobResult,
    JobSpec,
    canonical_graph_form,
    canonical_problem_form,
    run_job,
)
from repro.service.scheduler import BatchReport, BatchScheduler, JobView
from repro.service.store import ResultStore

__all__ = [
    "BatchReport",
    "BatchScheduler",
    "Campaign",
    "CampaignReport",
    "JobResult",
    "JobSpec",
    "JobView",
    "ResultStore",
    "canonical_graph_form",
    "canonical_problem_form",
    "load_manifest",
    "manifest_specs",
    "run_job",
]
