"""Deterministic batch execution with cross-job reuse.

:class:`BatchScheduler` turns a manifest of N job specs into the minimum
amount of actual work:

1. **dedup** -- specs are grouped by fingerprint, so exact and isomorphic
   duplicates execute once (isomorphic jobs share a fingerprint because
   execution is canonical, see :mod:`repro.service.jobs`);
2. **store** -- fingerprints already in the persistent
   :class:`~repro.service.store.ResultStore` are served from disk, so a
   resumed campaign re-runs nothing;
3. **shared reductions** -- pending jobs are grouped by instance
   fingerprint and each instance is distilled once (jobs that scan
   optimizer configs over one instance share its SA reduction), in sorted
   instance-fingerprint order so any bank state is independent of manifest
   order;
4. **shared plans** -- one :class:`~repro.qaoa.lightcone.PlanCache` serves
   every pipeline, so structurally identical graphs compile one lightcone
   plan across the whole batch;
5. **cost-ordered pooled execution** -- remaining jobs run through the
   :mod:`repro.serve` worker pool (the same path the ``red-qaoa serve``
   daemon uses): fingerprint-sharded claims, cheapest-shard-first by the
   :func:`~repro.analysis.runtime.estimate_pipeline_cost` model,
   optionally on N worker processes -- streaming early results without
   affecting any of them.

Every form of sharing above is *result-neutral*: per-job results are a
pure function of the job fingerprint, so batched execution, N sequential
:func:`~repro.service.jobs.run_job` calls, and a store-resumed pass are
bit-identical per job -- regardless of grouping or execution order.  The
one exception is opt-in: ``reduction_reuse="cross-instance"`` additionally
serves *similar* (not identical) instances from an AND-bucketed
:class:`~repro.core.cache.ReductionCache` bank, the paper's Sec. 6.1
cross-instance transfer.  That trades bit-identity (the surrogate landscape
is close, not equal) for skipping the annealing search; it stays
deterministic for a fixed manifest *set* because reductions are processed
in sorted instance-fingerprint order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import networkx as nx

from repro.core.annealer import AnnealResult
from repro.core.cache import ReductionCache
from repro.core.reduction import ReductionResult
from repro.obs.trace import get_tracer, span, trace_job
from repro.qaoa.lightcone import PlanCache
from repro.serve.queue import ShardedJobQueue
from repro.serve.workers import drain, make_pool
from repro.service.jobs import JobResult, JobSpec
from repro.service.store import ResultStore
from repro.utils.graphs import average_node_strength

__all__ = ["BatchReport", "BatchScheduler", "JobView"]


@dataclass
class JobView:
    """One manifest entry's slice of a batch outcome.

    Views are emitted in manifest order; duplicates of an earlier entry
    carry ``source="dedup"`` and the shared canonical result, with the
    ``assignment`` mapped through their own instance labels.
    """

    index: int
    label: str
    kind: str
    fingerprint: str
    instance_fingerprint: str
    source: str
    result: JobResult
    assignment: dict

    def to_dict(self) -> dict:
        best = self.result.best_value
        return {
            "index": self.index,
            "label": self.label,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "source": self.source,
            "expectation": self.result.expectation,
            "best_value": None if best != best else best,  # NaN -> None
            "gammas": self.result.gammas,
            "betas": self.result.betas,
            "reduced_qubits": self.result.reduced_qubits,
            "and_ratio": self.result.and_ratio,
            "assignment": {str(k): v for k, v in self.assignment.items()},
        }


@dataclass
class BatchReport:
    """Counters plus per-job views for one :meth:`BatchScheduler.run`."""

    num_jobs: int
    num_unique: int
    num_instances: int
    store_hits: int
    computed: int
    reduction_reuses: int
    reduction_cross_hits: int
    plan_hits: int
    plan_misses: int
    seconds: float
    store_misses: int = 0
    results: list[JobView] = field(default_factory=list)

    @property
    def deduped(self) -> int:
        """Manifest entries served by another entry's execution."""
        return self.num_jobs - self.num_unique

    def to_dict(self) -> dict:
        return {
            "jobs": self.num_jobs,
            "unique_jobs": self.num_unique,
            "instances": self.num_instances,
            "deduped": self.deduped,
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "computed": self.computed,
            "reduction_reuses": self.reduction_reuses,
            "reduction_cross_hits": self.reduction_cross_hits,
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "seconds": self.seconds,
            "per_job": [view.to_dict() for view in self.results],
        }


class BatchScheduler:
    """Runs many :class:`~repro.service.jobs.JobSpec` with maximal reuse.

    Parameters
    ----------
    store:
        Optional :class:`~repro.service.store.ResultStore`; completed jobs
        are written through it and found jobs skip execution entirely.
    plan_cache:
        Shared compiled-plan bank; a private one is created when omitted.
    reduction_reuse:
        ``"exact"`` (default) shares reductions only between jobs whose
        instance fingerprints match -- bit-identity preserved.
        ``"cross-instance"`` additionally consults ``reduction_cache``
        (AND-bucket matching, graph jobs only) for *similar* instances --
        approximate but deterministic for a fixed manifest set.
    reduction_cache:
        The bank for cross-instance mode; created on demand.  Its
        reducer's ``and_ratio_threshold`` defines bank-hit acceptance.
    workers / pool:
        Execution runs through the :mod:`repro.serve` worker pool -- the
        same path the daemon uses.  The default (one inline worker) keeps
        everything in-process with the shared plan cache; ``workers=N``
        with the ``"process"`` pool executes shards on N processes,
        bit-identical by the purity contract (process workers keep
        per-process plan caches, so ``plan_hits`` then only counts
        parent-side compilations).
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        plan_cache: PlanCache | None = None,
        reduction_reuse: str = "exact",
        reduction_cache: ReductionCache | None = None,
        workers: int = 1,
        pool: str | None = None,
    ) -> None:
        if reduction_reuse not in ("exact", "cross-instance"):
            raise ValueError(
                f"reduction_reuse must be 'exact' or 'cross-instance', "
                f"got {reduction_reuse!r}"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.store = store
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self.reduction_reuse = reduction_reuse
        if reduction_cache is None and reduction_reuse == "cross-instance":
            reduction_cache = ReductionCache()
        self.reduction_cache = reduction_cache
        self.workers = workers
        self.pool = pool

    def run(self, specs, on_result=None) -> BatchReport:
        """Execute ``specs``; per-job views stream in manifest order.

        ``on_result(spec, result)`` fires as each *computed* job finishes
        (cost order); the returned report lists every manifest entry.
        """
        specs = list(specs)
        start = time.perf_counter()
        plan_hits0, plan_misses0 = self.plan_cache.hits, self.plan_cache.misses

        unique: dict[str, JobSpec] = {}
        occurrences: dict[str, list[int]] = {}
        for index, spec in enumerate(specs):
            fingerprint = spec.fingerprint
            unique.setdefault(fingerprint, spec)
            occurrences.setdefault(fingerprint, []).append(index)

        results: dict[str, JobResult] = {}
        store_hits = 0
        if self.store is not None:
            for fingerprint in unique:
                found = self.store.get(fingerprint)
                if found is not None:
                    results[fingerprint] = found
                    store_hits += 1
        pending = [fp for fp in unique if fp not in results]

        # Phase 1: one reduction per pending instance, in sorted
        # instance-fingerprint order (bank state independent of manifest
        # order; irrelevant in exact mode, where reductions are per-spec
        # pure functions anyway).
        by_instance: dict[str, list[str]] = {}
        for fingerprint in pending:
            key = unique[fingerprint].instance_fingerprint
            by_instance.setdefault(key, []).append(fingerprint)
        reductions: dict[str, object] = {}
        reduction_reuses = 0
        cross_hits = 0
        for instance_fp in sorted(by_instance):
            spec = unique[by_instance[instance_fp][0]]
            reduction = None
            if (
                self.reduction_reuse == "cross-instance"
                and spec.graph is not None
            ):
                banked = self.reduction_cache.lookup(spec.canonical().instance)
                if banked is not None:
                    reduction = _reduction_from_bank(spec, banked)
                    cross_hits += 1
            if reduction is None:
                # Phase-1 reductions get their own mini span trees (root
                # named "job" like every tree, so one validator covers
                # both): they run before any queue exists, so there is no
                # enqueue/claim timeline to stitch them into.
                with trace_job(f"phase1:{instance_fp[:12]}", stage="reduction"):
                    with span("reduce", instance=instance_fp[:12]):
                        reduction = spec.compute_reduction()
                if self.reduction_reuse == "cross-instance" and spec.graph is not None:
                    self.reduction_cache.bank(reduction)
            reductions[instance_fp] = reduction
            reduction_reuses += len(by_instance[instance_fp]) - 1

        # Phase 2: execution through the serve worker pool -- the same
        # sharded-claim path the daemon runs.  Shards are claimed
        # cheapest-first by estimate_pipeline_cost (results stream early);
        # neither sharding nor worker count can affect any result, only
        # when each one appears.  A failed job surfaces as an exception,
        # as the pre-pool sequential loop surfaced it.
        queue = ShardedJobQueue(
            high_water=max(1, len(pending)),
            max_attempts=1,
            reductions=reductions,
        )
        for fingerprint in pending:
            outcome = queue.submit(unique[fingerprint])
            assert outcome.accepted  # high_water covers the whole batch

        def landed(spec, result):
            results[result.fingerprint] = result
            if self.store is not None:
                self.store.put(result)
            if on_result is not None:
                on_result(spec, result)

        def dead(spec, error):
            raise RuntimeError(f"job {spec.label or spec.fingerprint} failed: {error}")

        tracer = get_tracer()
        pool = make_pool(
            self.pool,
            self.workers,
            plan_cache=self.plan_cache,
            trace=tracer is not None,
        )
        try:
            drain(queue, pool, on_result=landed, on_dead=dead, tracer=tracer)
        finally:
            pool.close()

        views = []
        first = {fp: positions[0] for fp, positions in occurrences.items()}
        for index, spec in enumerate(specs):
            fingerprint = spec.fingerprint
            result = results[fingerprint]
            views.append(
                JobView(
                    index=index,
                    label=spec.label,
                    kind=spec.kind,
                    fingerprint=fingerprint,
                    instance_fingerprint=spec.instance_fingerprint,
                    source=result.source if index == first[fingerprint] else "dedup",
                    result=result,
                    assignment=result.assignment_for(spec),
                )
            )
        return BatchReport(
            num_jobs=len(specs),
            num_unique=len(unique),
            num_instances=len({spec.instance_fingerprint for spec in unique.values()}),
            store_hits=store_hits,
            store_misses=len(pending) if self.store is not None else 0,
            computed=len(pending),
            reduction_reuses=reduction_reuses,
            reduction_cross_hits=cross_hits,
            plan_hits=self.plan_cache.hits - plan_hits0,
            plan_misses=self.plan_cache.misses - plan_misses0,
            seconds=time.perf_counter() - start,
            results=views,
        )


def _reduction_from_bank(spec: JobSpec, banked) -> ReductionResult:
    """Wrap a banked distilled graph as a reduction for ``spec``'s instance.

    The banked graph is not a subgraph of the instance (the paper's
    cross-instance transfer: only the landscape needs to match); the
    synthetic :class:`~repro.core.reduction.ReductionResult` carries it
    into the optimization step while solution finding still runs on the
    instance itself.
    """
    graph = spec.canonical().instance
    distilled = nx.Graph(banked.graph)
    original = average_node_strength(graph)
    reduced = average_node_strength(distilled) if distilled.number_of_nodes() else 0.0
    if original == 0.0 or reduced == 0.0:
        ratio = 0.0
    else:
        ratio = reduced / original
        ratio = ratio if ratio <= 1.0 else 1.0 / ratio
    return ReductionResult(
        original_graph=graph,
        nodes=set(distilled.nodes()),
        reduced_graph=distilled,
        node_mapping={node: node for node in distilled.nodes()},
        and_ratio=ratio,
        anneal_result=AnnealResult(
            nodes=set(distilled.nodes()),
            subgraph=nx.Graph(distilled),
            objective=0.0,
            steps=0,
            history=[0.0],
        ),
    )
