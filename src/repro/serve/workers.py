"""Deterministic worker pools: N workers, bit-for-bit one worker's answers.

A worker executes whole :class:`~repro.serve.queue.ShardClaim` batches.
Within a claim, jobs run in fingerprint order with one reduction per
instance fingerprint (computed in sorted instance order unless the claim
carries precomputed ones); each job is
:func:`~repro.service.jobs.run_job` -- a pure function of its fingerprint.
Consequently *every* pool below satisfies the purity contract: for any
worker count, any shard assignment, any interleaving, and any number of
crash-requeues, the per-job results are bit-identical to one worker and
to N sequential ``run_job`` calls.  Parallelism can only change *when* a
result lands, never *what* it is.

Two pools, one interface (``idle_workers`` / ``dispatch`` / ``poll`` /
``close``):

:class:`InlineWorkerPool`
    Executes claims synchronously in the calling process, sharing one
    compiled-plan cache.  The ``workers=1`` path of both batch and serve
    modes -- zero IPC, zero pickling.
:class:`ProcessWorkerPool`
    N persistent ``multiprocessing`` workers fed over pipes, each with a
    process-local plan cache, streaming per-job messages back as they
    finish.  A worker that dies mid-claim (killed, segfaulted, or a
    deliberate :class:`CrashPoint`) surfaces as a ``worker_crashed``
    event; the driver requeues its unfinished jobs and the pool respawns
    a replacement, so a kill costs at most the jobs that were in flight
    -- never a completed result, never a duplicate.

:func:`pump` is the one scheduling step shared by ``red-qaoa batch`` and
the serve daemon: claim shards for idle workers, collect events, resolve
them against the queue.  :func:`drain` loops it until the queue is empty.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import signal
import time
from collections import deque
from dataclasses import dataclass

from repro.obs.log import NullLog
from repro.obs.metrics import JOB_BUCKETS, REGISTRY, STAGE_BUCKETS, snapshot_delta
from repro.obs.trace import Tracer, get_tracer, install_tracer, span, using_tracer
from repro.qaoa.lightcone import PlanCache
from repro.serve.queue import ShardClaim, ShardedJobQueue
from repro.service.jobs import JobResult, run_job

_RESPAWNS = REGISTRY.counter(
    "redqaoa_worker_respawns_total", "replacement workers spawned after a crash"
)
_JOB_SECONDS = REGISTRY.histogram(
    "redqaoa_job_seconds",
    "submit-to-durable latency per completed job",
    buckets=JOB_BUCKETS,
)
_QUEUE_WAIT_SECONDS = REGISTRY.histogram(
    "redqaoa_queue_wait_seconds",
    "submit-to-claim wait per completed job",
    buckets=STAGE_BUCKETS,
)

_NULL_LOG = NullLog()

__all__ = [
    "CrashPoint",
    "InlineWorkerPool",
    "ProcessWorkerPool",
    "WorkerEvent",
    "drain",
    "execute_shard",
    "make_pool",
    "pump",
]


@dataclass(frozen=True)
class CrashPoint:
    """Deterministic crash-once fault injection (tests and the CI smoke job).

    A process worker about to execute a fingerprint in ``fingerprints``
    first tries to delete ``token``; whichever worker wins the atomic
    unlink dies on the spot with ``os._exit``.  The token can only be
    deleted once, so the crash happens exactly once no matter how often
    the job is requeued -- which is what lets a test assert the recovery
    path converges.  Honored only inside process workers; the inline pool
    never sees faults.
    """

    fingerprints: frozenset
    token: str

    def trip(self, fingerprint: str) -> None:
        if fingerprint in self.fingerprints:
            try:
                os.unlink(self.token)
            except FileNotFoundError:
                return  # already tripped on an earlier attempt
            os._exit(17)


@dataclass(frozen=True)
class WorkerEvent:
    """One message out of a pool.

    ``kind`` is ``"result"`` (with ``result``), ``"job_failed"`` (with
    ``error``), ``"shard_done"``, or ``"worker_crashed"``.  ``spans``
    carries the worker-side span records of a traced result and
    ``metrics`` the worker's metrics delta on ``shard_done`` -- both pure
    observability side channels, never consulted by scheduling.
    """

    kind: str
    claim_id: int
    fingerprint: str | None = None
    result: JobResult | None = None
    error: str | None = None
    spans: list | None = None
    metrics: dict | None = None


def _run_one(spec, shared: dict, plan_cache) -> JobResult:
    """Execute one spec, computing its reduction if the shard lacks it."""
    instance_fp = spec.instance_fingerprint
    if instance_fp not in shared:
        with span("reduce", instance=instance_fp[:12]):
            shared[instance_fp] = spec.compute_reduction()
    return run_job(spec, reduction=shared[instance_fp], plan_cache=plan_cache)


def execute_shard(specs, plan_cache=None, reductions=None, fault=None, collect_spans=False):
    """Run one claim's specs in fingerprint order; yield per-job outcomes.

    Yields ``("result", fingerprint, JobResult, spans)`` for each success
    and ``("failed", fingerprint, error_text, None)`` for each job whose
    execution raised -- a failure never stops the rest of the shard.
    Reductions are shared per instance fingerprint within the shard (or
    taken from ``reductions`` when the claim carries precomputed ones);
    both paths are pure functions of the instance fingerprint, hence
    bit-identical.

    With ``collect_spans`` each job runs under a fresh collector
    :class:`~repro.obs.trace.Tracer` whose drained spans ride along with
    the result (root span: ``execute``).  Spans of a *failed* attempt are
    discarded -- only the attempt that lands ships a tree, so retries
    never leave orphans.  The tracer swap is confined to the work between
    yields, never held across one.
    """
    specs = sorted(specs, key=lambda spec: spec.fingerprint)
    shared = dict(reductions) if reductions else {}
    for spec in specs:
        if fault is not None:
            fault.trip(spec.fingerprint)
        collector = Tracer(None) if collect_spans else None
        try:
            if collector is not None:
                with using_tracer(collector), collector.bind(spec.fingerprint):
                    with collector.span("execute"):
                        result = _run_one(spec, shared, plan_cache)
            else:
                result = _run_one(spec, shared, plan_cache)
        except Exception as exc:  # noqa: BLE001 - reported, never wedges the shard
            yield "failed", spec.fingerprint, f"{type(exc).__name__}: {exc}", None
            continue
        spans = collector.drain() if collector is not None else None
        yield "result", spec.fingerprint, result, spans


class InlineWorkerPool:
    """Synchronous single-worker pool running in the calling process.

    Shares ``plan_cache`` across every claim (the batch scheduler passes
    its own, so compiled lightcone plans keep amortizing exactly as in
    the pre-pool code path).
    """

    workers = 1

    def __init__(self, plan_cache: PlanCache | None = None, trace: bool = False) -> None:
        self.plan_cache = plan_cache if plan_cache is not None else PlanCache()
        self.trace = trace
        self._events: deque[WorkerEvent] = deque()

    def idle_workers(self) -> int:
        return 1

    def worker_pids(self) -> list[int]:
        return [os.getpid()]

    def worker_states(self) -> list[dict]:
        return [{"id": 0, "pid": os.getpid(), "alive": True, "claim": None}]

    def kick(self, claim_id: int) -> bool:
        """Inline execution is synchronous; there is never a worker to kick."""
        return False

    def dispatch(self, claim: ShardClaim) -> None:
        # Collect spans whenever tracing is on so the pump stitches inline
        # jobs exactly like process-worker jobs.  Metrics need no delta:
        # inline execution increments the daemon's own registry directly.
        collect = self.trace or get_tracer() is not None
        for kind, fingerprint, payload, spans in execute_shard(
            claim.specs,
            plan_cache=self.plan_cache,
            reductions=claim.reductions,
            collect_spans=collect,
        ):
            if kind == "result":
                self._events.append(
                    WorkerEvent(
                        "result", claim.id, fingerprint, result=payload, spans=spans
                    )
                )
            else:
                self._events.append(
                    WorkerEvent("job_failed", claim.id, fingerprint, error=payload)
                )
        self._events.append(WorkerEvent("shard_done", claim.id))

    def poll(self, timeout: float = 0.0) -> list[WorkerEvent]:
        events = list(self._events)
        self._events.clear()
        return events

    def close(self) -> None:
        self._events.clear()


def _process_worker_main(conn, fault: CrashPoint | None, trace: bool) -> None:
    """Worker loop: receive claims, stream per-job messages back."""
    # The daemon's Ctrl-C must not tear workers down mid-job; orderly
    # shutdown arrives as a "stop" message (or EOF when the parent died).
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # Fork inherits the daemon's global file tracer; a worker must never
    # write the trace file directly (interleaved appends, duplicate
    # trees) -- its spans ship over the pipe instead.
    install_tracer(None)
    plan_cache = PlanCache()
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        if message[0] == "stop":
            break
        _, claim_id, specs, reductions = message
        baseline = REGISTRY.snapshot()
        for kind, fingerprint, payload, spans in execute_shard(
            specs,
            plan_cache=plan_cache,
            reductions=reductions,
            fault=fault,
            collect_spans=trace,
        ):
            conn.send((kind, claim_id, fingerprint, payload, spans))
        # Ship this claim's metrics as a delta against the pre-claim
        # snapshot, so the pump can merge without double counting (the
        # fork-inherited baseline values cancel out).  Gauges are dropped:
        # a worker's fork-time gauge values are stale copies of the
        # daemon's own and must never clobber them.
        delta = snapshot_delta(REGISTRY.snapshot(), baseline)
        delta["gauges"] = {}
        conn.send(("done", claim_id, None, None, delta))
    conn.close()


class _Worker:
    def __init__(self, worker_id: int, fault: CrashPoint | None, trace: bool) -> None:
        self.id = worker_id
        self.claim_id: int | None = None
        parent_conn, child_conn = multiprocessing.Pipe()
        self.conn = parent_conn
        self.process = multiprocessing.Process(
            target=_process_worker_main,
            args=(child_conn, fault, trace),
            name=f"repro-serve-worker-{worker_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()


class ProcessWorkerPool:
    """N persistent worker processes with crash detection and respawn.

    ``trace`` makes workers collect per-job spans (shipped back with each
    result); ``log`` receives respawn events.  Neither affects results.
    """

    def __init__(
        self,
        workers: int,
        fault: CrashPoint | None = None,
        trace: bool = False,
        log=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.fault = fault
        self.trace = trace
        self.log = log if log is not None else _NULL_LOG
        self.respawns = 0
        self._ids = iter(range(1, 1_000_000))
        self._pool: list[_Worker] = [
            _Worker(next(self._ids), fault, trace) for _ in range(workers)
        ]
        self._pending: list[WorkerEvent] = []  # crashes detected at dispatch
        self._closed = False

    def idle_workers(self) -> int:
        return sum(1 for worker in self._pool if worker.claim_id is None)

    def worker_pids(self) -> list[int]:
        return [worker.process.pid for worker in self._pool]

    def worker_states(self) -> list[dict]:
        """Liveness and claim per worker (the health monitor's view)."""
        return [
            {
                "id": worker.id,
                "pid": worker.process.pid,
                "alive": worker.process.is_alive(),
                "claim": worker.claim_id,
            }
            for worker in self._pool
        ]

    def kick(self, claim_id: int) -> bool:
        """Kill the worker holding ``claim_id`` (the stuck-shard watchdog).

        The kill is deliberately the same signal a crash test sends: the
        very next :meth:`poll` sees the pipe EOF, surfaces one
        ``worker_crashed`` event, the queue requeues the claim's
        unfinished jobs through the normal attempt accounting, and the
        pool respawns a replacement.  No new recovery path to maintain --
        a stuck worker is handled exactly like a dead one.
        """
        for worker in self._pool:
            if worker.claim_id == claim_id and worker.process.is_alive():
                worker.process.kill()
                return True
        return False

    def dispatch(self, claim: ShardClaim) -> None:
        worker = min(
            (w for w in self._pool if w.claim_id is None), key=lambda w: w.id
        )
        worker.claim_id = claim.id
        try:
            worker.conn.send(("run", claim.id, claim.specs, claim.reductions))
        except (BrokenPipeError, OSError):
            # The worker died while idle (killed between claims): surface
            # it as a crash at the next poll and respawn, exactly as a
            # mid-claim death would -- the claim requeues, nothing is lost.
            self._pending.append(WorkerEvent("worker_crashed", claim.id))
            self._replace(worker)

    def poll(self, timeout: float = 0.05) -> list[WorkerEvent]:
        """Collect every available worker message; detect crashes.

        A worker whose pipe hits EOF (or whose process died) while holding
        a claim yields one ``worker_crashed`` event and is replaced, so
        the pool always converges back to its configured size.
        """
        events: list[WorkerEvent] = list(self._pending)
        self._pending.clear()
        busy = [worker for worker in self._pool if worker.claim_id is not None]
        if not busy:
            return events
        ready = multiprocessing.connection.wait(
            [worker.conn for worker in busy], timeout
        )
        for worker in busy:
            if worker.conn not in ready:
                continue
            try:
                while worker.conn.poll():
                    kind, claim_id, fingerprint, payload, extra = worker.conn.recv()
                    if kind == "result":
                        events.append(
                            WorkerEvent(
                                "result",
                                claim_id,
                                fingerprint,
                                result=payload,
                                spans=extra,
                            )
                        )
                    elif kind == "failed":
                        events.append(
                            WorkerEvent(
                                "job_failed", claim_id, fingerprint, error=payload
                            )
                        )
                    elif kind == "done":
                        events.append(
                            WorkerEvent("shard_done", claim_id, metrics=extra)
                        )
                        worker.claim_id = None
            except (EOFError, OSError):
                events.append(WorkerEvent("worker_crashed", worker.claim_id))
                self._replace(worker)
        return events

    def _replace(self, worker: _Worker) -> None:
        worker.conn.close()
        if worker.process.is_alive():  # pragma: no cover - EOF implies death
            worker.process.terminate()
        worker.process.join(timeout=5)
        self._pool.remove(worker)
        if not self._closed:
            self._pool.append(_Worker(next(self._ids), self.fault, self.trace))
            self.respawns += 1
            _RESPAWNS.inc()
            self.log.info(
                "worker_respawned", dead_worker=worker.id, pool_size=len(self._pool)
            )

    def close(self) -> None:
        self._closed = True
        for worker in self._pool:
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._pool:
            worker.process.join(timeout=5)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=5)
            worker.conn.close()
        self._pool.clear()


def make_pool(
    kind: str | None,
    workers: int,
    plan_cache: PlanCache | None = None,
    fault: CrashPoint | None = None,
    trace: bool = False,
    log=None,
):
    """Build a pool: ``kind`` is ``"inline"``, ``"process"``, or ``None``
    to pick inline for one worker and processes otherwise.

    ``trace`` turns on per-job span collection in either pool kind (the
    inline pool also follows the process-global tracer); ``log`` receives
    the process pool's respawn events.
    """
    if kind is None:
        kind = "inline" if workers <= 1 else "process"
    if kind == "inline":
        if workers > 1:
            raise ValueError("the inline pool is single-worker; use pool='process'")
        return InlineWorkerPool(plan_cache=plan_cache, trace=trace)
    if kind == "process":
        return ProcessWorkerPool(workers, fault=fault, trace=trace, log=log)
    raise ValueError(f"pool must be 'inline' or 'process', got {kind!r}")


class _NullLock:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_LOCK = _NullLock()


def _record_dead_tree(tracer, job) -> None:
    """Synthesize a (degenerate) span tree for a dead-lettered job.

    A job that never completed still closed -- the invariant "every
    submitted job yields exactly one closed tree" holds for dead letters
    too, with ``source="dead"`` and a zero-length store phase.
    """
    now = time.perf_counter_ns()
    tracer.record_job(
        job.fingerprint,
        None,
        enqueued_ns=job.enqueued_ns or None,
        claimed_ns=job.claimed_ns or None,
        store_t0=now,
        store_t1=now,
        attempts=job.attempts,
        source="dead",
    )


def pump(
    queue: ShardedJobQueue,
    pool,
    claims: dict[int, ShardClaim],
    on_result=None,
    on_dead=None,
    timeout: float = 0.05,
    lock=None,
    landed=None,
    tracer=None,
    log=None,
) -> bool:
    """One scheduling step: dispatch ready shards, resolve worker events.

    The single execution path under both ``red-qaoa batch`` and the serve
    daemon.  ``claims`` is the caller-owned map of outstanding claim ids;
    ``on_result(spec, result)`` fires per completed job (after the result
    is durable in the queue/store) and ``on_dead(spec, error)`` per
    dead-lettered job.  Returns whether anything happened, so callers can
    idle politely.

    ``lock`` (when given) guards every queue access -- the daemon shares
    its queue with connection threads; execution itself (``dispatch`` for
    the inline pool, ``poll`` always) runs outside it.  ``landed`` is an
    optional condition variable notified after events resolve, waking
    result streamers.

    ``tracer`` (a file-mode :class:`~repro.obs.trace.Tracer`) makes the
    pump stitch every landed job into a complete span tree -- worker
    spans plus synthesized queue/dispatch/drain gaps -- and ``log`` (an
    :class:`~repro.obs.log.EventLog`) receives claim/failure/crash
    events.  Both are pure side channels.
    """
    guard = lock if lock is not None else _NULL_LOCK
    log = log if log is not None else _NULL_LOG
    progressed = False
    while True:
        with guard:
            claim = queue.claim_next() if pool.idle_workers() > 0 else None
            if claim is not None:
                claims[claim.id] = claim
        if claim is None:
            break
        log.debug(
            "shard_claimed", claim=claim.id, shard=claim.shard, jobs=len(claim.jobs)
        )
        pool.dispatch(claim)
        progressed = True
    if not claims:
        return progressed
    events = pool.poll(timeout)
    if not events:
        return progressed
    with guard:
        for event in events:
            claim = claims.get(event.claim_id)
            if claim is None:  # stale message from a finished claim
                continue
            progressed = True
            if event.kind == "result":
                store_t0 = time.perf_counter_ns()
                queue.complete(claim, event.fingerprint, event.result)
                store_t1 = time.perf_counter_ns()
                job = claim.job_of(event.fingerprint)
                if job.enqueued_ns:
                    _JOB_SECONDS.observe((store_t1 - job.enqueued_ns) / 1e9)
                    if job.claimed_ns:
                        _QUEUE_WAIT_SECONDS.observe(
                            (job.claimed_ns - job.enqueued_ns) / 1e9
                        )
                if tracer is not None:
                    tracer.record_job(
                        event.fingerprint,
                        event.spans,
                        enqueued_ns=job.enqueued_ns or None,
                        claimed_ns=job.claimed_ns or None,
                        store_t0=store_t0,
                        store_t1=store_t1,
                        attempts=job.attempts + 1,
                    )
                if on_result is not None:
                    on_result(job.spec, event.result)
            elif event.kind == "job_failed":
                outcome = queue.fail(claim, event.fingerprint, event.error)
                job = claim.job_of(event.fingerprint)
                log.warning(
                    "job_failed",
                    fingerprint=event.fingerprint,
                    attempts=job.attempts,
                    outcome=outcome,
                    error=event.error,
                )
                if outcome == "dead":
                    log.error(
                        "dead_letter",
                        fingerprint=event.fingerprint,
                        attempts=job.attempts,
                        error=event.error,
                    )
                    if tracer is not None:
                        _record_dead_tree(tracer, job)
                    if on_dead is not None:
                        on_dead(job.spec, event.error)
            elif event.kind == "shard_done":
                if event.metrics:
                    REGISTRY.merge(event.metrics)
                queue.finish_claim(claim)
                del claims[event.claim_id]
            elif event.kind == "worker_crashed":
                log.error(
                    "worker_crashed",
                    claim=claim.id,
                    shard=claim.shard,
                    unresolved=len(claim.unresolved()),
                )
                requeued = queue.release_crashed(claim)
                del claims[event.claim_id]
                for job in claim.unresolved():
                    if job not in requeued and job.fingerprint in queue.dead:
                        log.error(
                            "dead_letter",
                            fingerprint=job.fingerprint,
                            attempts=job.attempts,
                            error="worker crashed while executing this shard",
                        )
                        if tracer is not None:
                            _record_dead_tree(tracer, job)
                        if on_dead is not None:
                            on_dead(
                                job.spec,
                                "worker crashed while executing this shard",
                            )
        if landed is not None:
            landed.notify_all()
    return progressed


def drain(
    queue: ShardedJobQueue, pool, on_result=None, on_dead=None, tracer=None, log=None
) -> dict:
    """Pump until the queue is idle; returns ``queue.completed``."""
    claims: dict[int, ShardClaim] = {}
    while not queue.is_idle():
        pump(
            queue,
            pool,
            claims,
            on_result=on_result,
            on_dead=on_dead,
            tracer=tracer,
            log=log,
        )
    return queue.completed
