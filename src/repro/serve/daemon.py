"""The ``red-qaoa serve`` daemon: a long-running sharded job server.

One process, three kinds of threads:

- the **pump** (main thread) runs the same
  :func:`repro.serve.workers.pump` step as ``red-qaoa batch``: claim
  shards for idle workers, resolve the events they stream back, write
  completed results through the store (fsync'd before they are
  acknowledged anywhere);
- the **accept loop** takes unix-socket connections;
- one **connection thread** per client speaks the newline-delimited JSON
  protocol of :mod:`repro.serve.protocol` (submit / poll / stream /
  status / drain / shutdown).

All shared state -- the :class:`~repro.serve.queue.ShardedJobQueue`,
tickets, drain flags -- sits behind one lock; a condition variable wakes
streaming connections whenever a result lands.

Determinism: a submitted job's result is a pure function of its content
fingerprint (:mod:`repro.service.jobs`), shard assignment is a pure
function of the fingerprint, and workers merge per-shard results in
fingerprint order -- so the daemon's answers are bit-identical across
worker counts, submission orders, restarts, and worker crashes.  The
daemon can only change *when* an answer arrives.

Lifecycle: ``SIGTERM``/``SIGINT`` (or the ``shutdown`` op) starts a clean
drain -- new submissions are rejected, in-flight shards finish, every
completed result is already durable in the store, then the daemon exits
and removes its socket.  A ``kill -9`` mid-run loses only unacknowledged
in-flight work: on the next start, the store still holds every completed
result, and resubmitting the same manifest re-runs only what is missing.
"""

from __future__ import annotations

import itertools
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.health import HealthMonitor
from repro.obs.history import FlightRecorder
from repro.obs.log import NullLog
from repro.obs.metrics import REGISTRY
from repro.obs.trace import Tracer
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode,
    error_reply,
    ok_reply,
)
from repro.serve.queue import (
    CACHED,
    DEFAULT_HIGH_WATER,
    DEFAULT_MAX_ATTEMPTS,
    DEFAULT_SHARD_PREFIX,
    ShardedJobQueue,
)
from repro.serve.workers import make_pool, pump
from repro.service.jobs import JobResult, JobSpec
from repro.service.store import ResultStore

__all__ = ["ServeDaemon", "Ticket"]


@dataclass
class Ticket:
    """One submission: manifest entries pinned to fingerprints."""

    id: str
    specs: list[JobSpec]
    cached: dict[str, JobResult] = field(default_factory=dict)
    created: float = field(default_factory=time.monotonic)

    def entry(self, index: int) -> dict:
        spec = self.specs[index]
        return {
            "index": index,
            "label": spec.label,
            "kind": spec.kind,
            "fingerprint": spec.fingerprint,
        }


def _result_fields(spec: JobSpec, result: JobResult) -> dict:
    best = result.best_value
    return {
        "source": result.source,
        "expectation": result.expectation,
        "best_value": None if best != best else best,  # NaN -> None
        "gammas": result.gammas,
        "betas": result.betas,
        "bits": result.bits,
        "reduced_qubits": result.reduced_qubits,
        "and_ratio": result.and_ratio,
        "assignment": {str(k): v for k, v in result.assignment_for(spec).items()},
    }


class ServeDaemon:
    """A persistent, crash-tolerant job server over a unix socket.

    Parameters mirror the queue and pool they configure; ``fault`` is the
    test-only :class:`~repro.serve.workers.CrashPoint` injection.  Use
    :meth:`serve_forever` to run (blocks until shutdown), or drive
    :meth:`submit_manifest` / :meth:`poll_ticket` directly in tests.
    """

    def __init__(
        self,
        socket_path: str | Path,
        store_path: str | Path | None = None,
        workers: int = 1,
        pool: str | None = None,
        shard_prefix: int = DEFAULT_SHARD_PREFIX,
        high_water: int = DEFAULT_HIGH_WATER,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        fault=None,
        poll_interval: float = 0.02,
        trace_path: str | Path | None = None,
        log=None,
        history_path: str | Path | None = None,
        history_interval: float = 5.0,
        stuck_after: float = 300.0,
        health_window: float = 60.0,
        stuck_requeue: bool = False,
    ) -> None:
        self.socket_path = Path(socket_path)
        self.store = ResultStore(store_path) if store_path is not None else None
        self.queue = ShardedJobQueue(
            store=self.store,
            shard_prefix=shard_prefix,
            high_water=high_water,
            max_attempts=max_attempts,
        )
        # Observability side channels: a file tracer (workers collect
        # spans, the pump stitches trees) and an event log.  Neither can
        # change a result -- only record how it came to be.
        self.tracer = Tracer(trace_path) if trace_path is not None else None
        self.log = log if log is not None else NullLog()
        self.pool = make_pool(
            pool, workers, fault=fault, trace=self.tracer is not None, log=self.log
        )
        self.poll_interval = poll_interval
        self.tickets: dict[str, Ticket] = {}
        self._ticket_ids = itertools.count(1)
        self._claims: dict = {}
        self._lock = threading.RLock()
        self._landed = threading.Condition(self._lock)
        self._draining = False
        self._shutdown = False
        self._stopped = False
        self.started = time.monotonic()
        self.started_unix = time.time()
        self.pid = os.getpid()
        # Layer-two observability: the flight recorder (periodic registry
        # snapshots into a rotating ring) and the health monitor (live
        # verdicts over queue/pool/claim state).  Both pure side channels.
        self.recorder = (
            FlightRecorder(
                history_path,
                interval=history_interval,
                meta={"pid": self.pid, "started_unix": self.started_unix},
            )
            if history_path is not None
            else None
        )
        self.monitor = HealthMonitor(
            self.queue,
            self.pool,
            self._claims,
            stuck_after=stuck_after,
            incident_window=health_window,
            requeue_stuck=stuck_requeue,
            log=self.log,
        )
        self._last_health_check = 0.0

    # -- operations (connection threads call these under no lock) ------------

    def submit_manifest(self, manifest: dict) -> dict:
        """Admit one manifest atomically: a ticket, or one rejection.

        Backpressure is all-or-nothing -- either every job of the manifest
        fits under the high-water mark (after dedup) or none is enqueued,
        so a retrying client never has to reason about half-admitted
        manifests.
        """
        # Imported here: campaign imports the scheduler, which imports the
        # serve package -- a module-level import would close that cycle.
        from repro.service.campaign import manifest_specs

        try:
            specs = manifest_specs(manifest)
        except (ValueError, TypeError) as exc:
            return error_reply(f"bad manifest: {exc}")
        with self._lock:
            if self._draining:
                return error_reply(
                    "draining: daemon no longer accepts submissions",
                    retry_after=None,
                )
            new = {
                spec.fingerprint
                for spec in specs
                if self.queue.state_of(spec.fingerprint) == "unknown"
                and self.queue.lookup(spec.fingerprint) is None
            }
            if self.queue.depth + len(new) > self.queue.high_water:
                return error_reply(
                    "backpressure: queue past its high-water mark",
                    retry_after=self.queue.retry_after(),
                )
            ticket = Ticket(id=f"t-{next(self._ticket_ids):06d}", specs=specs)
            statuses = []
            for spec in specs:
                outcome = self.queue.submit(spec)
                statuses.append(outcome.status)
                if outcome.status == CACHED:
                    ticket.cached[outcome.fingerprint] = outcome.result
            self.tickets[ticket.id] = ticket
            self._landed.notify_all()
            return ok_reply(
                ticket=ticket.id,
                jobs=[
                    {**ticket.entry(index), "status": status}
                    for index, status in enumerate(statuses)
                ],
            )

    def poll_ticket(self, ticket_id: str) -> dict:
        with self._lock:
            ticket = self.tickets.get(ticket_id)
            if ticket is None:
                return error_reply(f"unknown ticket {ticket_id!r}")
            jobs = [
                self._entry_status(ticket, index) for index in range(len(ticket.specs))
            ]
            done = all(job["status"] in ("done", "dead") for job in jobs)
            counts: dict[str, int] = {}
            for job in jobs:
                counts[job["status"]] = counts.get(job["status"], 0) + 1
            return ok_reply(ticket=ticket_id, done=done, counts=counts, jobs=jobs)

    def status(self) -> dict:
        from repro import __version__

        with self._lock:
            info = {
                "version": __version__,
                "protocol": PROTOCOL_VERSION,
                "pid": self.pid,
                "started_unix": self.started_unix,
                "draining": self._draining,
                "uptime": time.monotonic() - self.started,
                "queue": self.queue.stats(),
                "workers": {
                    "count": self.pool.workers,
                    "pids": self.pool.worker_pids(),
                    "respawns": getattr(self.pool, "respawns", 0),
                    "states": self.pool.worker_states(),
                },
                "tickets": len(self.tickets),
            }
            if self.store is not None:
                info["store"] = {
                    "path": str(self.store.path),
                    "results": len(self.store),
                    "dead_letters": len(self.store.dead_letters()),
                }
            info["metrics"] = REGISTRY.snapshot()
            return ok_reply(**info)

    def metrics(self) -> dict:
        """The ``metrics`` op: a snapshot plus its Prometheus rendering."""
        return ok_reply(
            metrics=REGISTRY.snapshot(), prometheus=REGISTRY.render_prometheus()
        )

    def health(self) -> dict:
        """The ``health`` op: a fresh verdict plus recent events."""
        with self._lock:
            report = self.monitor.check()
            return ok_reply(
                health=report.to_dict(), events=self.log.recent(20)
            )

    def request_drain(self) -> dict:
        with self._lock:
            self._draining = True
            self.log.info("drain_requested", backlog=self.queue.depth + self.queue.num_running)
            return ok_reply(draining=True, backlog=self.queue.depth + self.queue.num_running)

    def request_shutdown(self) -> dict:
        with self._landed:
            self._draining = True
            self._shutdown = True
            self.log.info(
                "shutdown_requested", backlog=self.queue.depth + self.queue.num_running
            )
            self._landed.notify_all()
            return ok_reply(
                draining=True,
                shutting_down=True,
                backlog=self.queue.depth + self.queue.num_running,
            )

    # -- per-entry resolution (lock held) ------------------------------------

    def _entry_status(self, ticket: Ticket, index: int) -> dict:
        spec = ticket.specs[index]
        fingerprint = spec.fingerprint
        entry = ticket.entry(index)
        result = ticket.cached.get(fingerprint) or self.queue.completed.get(fingerprint)
        if result is not None:
            entry["status"] = "done"
            entry["result"] = _result_fields(spec, result)
            return entry
        dead = self.queue.dead.get(fingerprint)
        if dead is not None:
            entry["status"] = "dead"
            entry["error"] = dead["error"]
            entry["attempts"] = dead["attempts"]
            return entry
        state = self.queue.state_of(fingerprint)
        entry["status"] = "running" if state == "running" else "queued"
        return entry

    # -- the pump (main thread) ----------------------------------------------

    def run_pump_once(self) -> bool:
        """One scheduling step; the daemon's heartbeat (exposed for tests)."""
        progressed = pump(
            self.queue,
            self.pool,
            self._claims,
            timeout=self.poll_interval,
            lock=self._lock,
            landed=self._landed,
            tracer=self.tracer,
            log=self.log,
        )
        self._tick()
        return progressed

    def _tick(self) -> None:
        """Periodic side-channel work riding the pump: snapshots + health."""
        now = time.monotonic()
        if now - self._last_health_check >= 1.0:
            self._last_health_check = now
            with self._lock:
                self.monitor.check()
        if self.recorder is not None and self.recorder.due():
            with self._lock:
                extra = {"queue": self.queue.stats()}
            self.recorder.record(extra)

    def _finished(self) -> bool:
        with self._lock:
            return self._shutdown and self.queue.is_idle()

    # -- sockets -------------------------------------------------------------

    def serve_forever(self, install_signal_handlers: bool = True) -> None:
        """Bind the socket and run until shutdown; removes the socket on exit."""
        if install_signal_handlers and threading.current_thread() is threading.main_thread():
            import signal

            signal.signal(signal.SIGTERM, lambda *_: self.request_shutdown())
            signal.signal(signal.SIGINT, lambda *_: self.request_shutdown())
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        self.socket_path.unlink(missing_ok=True)
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.log.info(
            "daemon_started",
            socket=str(self.socket_path),
            workers=self.pool.workers,
            traced=self.tracer is not None,
        )
        try:
            server.bind(str(self.socket_path))
            server.listen(64)
            server.settimeout(0.2)
            acceptor = threading.Thread(
                target=self._accept_loop, args=(server,), daemon=True
            )
            acceptor.start()
            while not self._finished():
                self.run_pump_once()
            # Drained: every completed result is already fsync'd in the
            # store (queue.complete writes through), nothing is in flight.
        finally:
            self._stopped = True
            with self._landed:
                self._landed.notify_all()
            self.pool.close()
            server.close()
            self.socket_path.unlink(missing_ok=True)
            if self.tracer is not None:
                # A final metrics record makes the trace self-contained:
                # `red-qaoa trace summarize` derives its cache table here.
                self.tracer.write_metrics(REGISTRY.snapshot())
            if self.recorder is not None:
                # One last snapshot so the history ends at shutdown, not at
                # the last interval boundary before it.
                self.recorder.record({"queue": self.queue.stats(), "final": True})
            self.log.info("daemon_stopped", completed=len(self.queue.completed))

    def _accept_loop(self, server: socket.socket) -> None:
        while not self._stopped:
            try:
                conn, _ = server.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        stream = conn.makefile("rwb")
        try:
            for raw in stream:
                if not raw.strip():
                    continue
                try:
                    message = decode_line(raw)
                except ProtocolError as exc:
                    self._write(stream, error_reply(str(exc)))
                    continue
                op = message["op"]
                if op == "submit":
                    self._write(stream, self.submit_manifest(message["manifest"]))
                elif op == "poll":
                    self._write(stream, self.poll_ticket(message["ticket"]))
                elif op == "status":
                    self._write(stream, self.status())
                elif op == "metrics":
                    self._write(stream, self.metrics())
                elif op == "health":
                    self._write(stream, self.health())
                elif op == "drain":
                    self._write(stream, self.request_drain())
                elif op == "shutdown":
                    self._write(stream, self.request_shutdown())
                elif op == "stream":
                    self._stream_ticket(stream, message["ticket"])
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass  # client went away; nothing to unwind
        finally:
            try:
                stream.close()
                conn.close()
            except OSError:
                pass

    def _write(self, stream, message: dict) -> None:
        stream.write(encode(message))
        stream.flush()

    def _stream_ticket(self, stream, ticket_id: str) -> None:
        """Push each of the ticket's results the moment it lands."""
        with self._lock:
            ticket = self.tickets.get(ticket_id)
        if ticket is None:
            self._write(stream, error_reply(f"unknown ticket {ticket_id!r}"))
            return
        sent: set[int] = set()
        while True:
            with self._landed:
                fresh = []
                pending = False
                for index in range(len(ticket.specs)):
                    if index in sent:
                        continue
                    entry = self._entry_status(ticket, index)
                    if entry["status"] in ("done", "dead"):
                        fresh.append(entry)
                        sent.add(index)
                    else:
                        pending = True
                finished = not pending
                if not fresh and not finished and not self._stopped:
                    self._landed.wait(timeout=0.5)
                    continue
            for entry in fresh:
                self._write(stream, {"event": "result", "ticket": ticket_id, **entry})
            if finished:
                counts: dict[str, int] = {}
                with self._lock:
                    for index in range(len(ticket.specs)):
                        status = self._entry_status(ticket, index)["status"]
                        counts[status] = counts.get(status, 0) + 1
                self._write(
                    stream,
                    {"event": "done", "ticket": ticket_id, "counts": counts},
                )
                return
            if self._stopped:  # daemon exiting with the ticket unfinished
                self._write(
                    stream,
                    {"event": "aborted", "ticket": ticket_id},
                )
                return
