"""Thin client for the serve daemon (used by ``red-qaoa submit``).

One request per connection keeps the client stateless and trivially
retry-safe; ``stream`` holds its connection open and yields events as the
daemon pushes them.  Everything returns the daemon's reply mapping
verbatim -- the two failure modes a caller must handle get exceptions:

- :class:`Backpressure`: the queue is past its high-water mark; the
  exception carries the daemon's ``retry_after`` hint in seconds;
- :class:`ServeError`: any other refused request (bad manifest, unknown
  ticket, draining daemon, ...).
"""

from __future__ import annotations

import socket
import time
from pathlib import Path

from repro.serve.protocol import ProtocolError, decode_line, encode

__all__ = ["Backpressure", "ServeClient", "ServeError", "wait_for_socket"]


class ServeError(RuntimeError):
    """The daemon refused a request."""

    def __init__(self, reply: dict) -> None:
        super().__init__(reply.get("error", "request refused"))
        self.reply = reply


class Backpressure(ServeError):
    """Submission rejected past the high-water mark; back off and retry."""

    def __init__(self, reply: dict) -> None:
        super().__init__(reply)
        self.retry_after = float(reply.get("retry_after") or 1.0)


def wait_for_socket(path: str | Path, timeout: float = 10.0) -> None:
    """Block until a daemon listens on ``path`` (startup synchronization)."""
    deadline = time.monotonic() + timeout
    path = str(path)
    while True:
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            probe.connect(path)
            return
        except OSError:
            if time.monotonic() >= deadline:
                raise TimeoutError(f"no daemon listening on {path} after {timeout}s")
            time.sleep(0.05)
        finally:
            probe.close()


class ServeClient:
    """Speak the :mod:`repro.serve.protocol` to a daemon socket."""

    def __init__(self, socket_path: str | Path, timeout: float = 60.0) -> None:
        self.socket_path = str(socket_path)
        self.timeout = timeout

    def _connect(self) -> socket.socket:
        conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        conn.settimeout(self.timeout)
        conn.connect(self.socket_path)
        return conn

    def request(self, message: dict) -> dict:
        """One request line, one reply line, connection closed."""
        conn = self._connect()
        try:
            stream = conn.makefile("rwb")
            stream.write(encode(message))
            stream.flush()
            line = stream.readline()
            if not line:
                raise ServeError({"error": "daemon closed the connection"})
            return decode_reply(line)
        finally:
            conn.close()

    # -- operations ----------------------------------------------------------

    def submit(self, manifest: dict) -> dict:
        """Submit a manifest; returns the ticket reply.

        Raises :class:`Backpressure` on a high-water rejection (carrying
        ``retry_after``) and :class:`ServeError` on any other refusal.
        """
        reply = self.request({"op": "submit", "manifest": manifest})
        if not reply.get("ok"):
            if reply.get("retry_after") is not None:
                raise Backpressure(reply)
            raise ServeError(reply)
        return reply

    def submit_with_retry(
        self, manifest: dict, attempts: int = 8, max_wait: float = 30.0
    ) -> dict:
        """Submit, honoring backpressure: sleep ``retry_after`` and retry."""
        for attempt in range(attempts):
            try:
                return self.submit(manifest)
            except Backpressure as exc:
                if attempt == attempts - 1:
                    raise
                time.sleep(min(exc.retry_after, max_wait))
        raise AssertionError("unreachable")

    def poll(self, ticket: str) -> dict:
        reply = self.request({"op": "poll", "ticket": ticket})
        if not reply.get("ok"):
            raise ServeError(reply)
        return reply

    def stream(self, ticket: str):
        """Yield the ticket's per-job events as the daemon pushes them.

        Ends after the ``{"event": "done"}`` (or ``"aborted"``) summary,
        which is yielded too.
        """
        conn = self._connect()
        try:
            stream = conn.makefile("rwb")
            stream.write(encode({"op": "stream", "ticket": ticket}))
            stream.flush()
            for line in stream:
                message = decode_reply(line)
                if message.get("ok") is False:
                    raise ServeError(message)
                yield message
                if message.get("event") in ("done", "aborted"):
                    return
        finally:
            conn.close()

    def wait(self, ticket: str, timeout: float | None = None, interval: float = 0.05) -> dict:
        """Poll until every job of the ticket is done or dead."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            reply = self.poll(ticket)
            if reply["done"]:
                return reply
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(f"ticket {ticket} unfinished after {timeout}s")
            time.sleep(interval)

    def status(self) -> dict:
        return self.request({"op": "status"})

    def metrics(self) -> dict:
        """Snapshot + Prometheus text from the daemon's ``metrics`` op."""
        reply = self.request({"op": "metrics"})
        if not reply.get("ok"):
            raise ServeError(reply)
        return reply

    def health(self) -> dict:
        """Verdict + reasons + recent events from the daemon's ``health`` op."""
        reply = self.request({"op": "health"})
        if not reply.get("ok"):
            raise ServeError(reply)
        return reply

    def drain(self) -> dict:
        return self.request({"op": "drain"})

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})


def decode_reply(line: bytes | str) -> dict:
    """Parse one reply line (replies have no ``op``, so skip that check)."""
    import json

    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"expected a JSON object, got {type(message).__name__}")
    return message
