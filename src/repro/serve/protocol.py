"""Wire protocol of the serve daemon: newline-delimited JSON over a socket.

One request per line, one (or, for ``stream``, many) response lines back.
Every message is a single JSON object with no embedded newlines, so the
framing is trivially incremental and any language with a JSON parser and
a unix-socket client can drive a daemon.

Requests (``{"op": ..., ...}``):

``submit``
    ``{"op": "submit", "manifest": {...}}`` -- a campaign manifest mapping
    (exactly the ``red-qaoa batch`` format, see
    :mod:`repro.service.campaign`).  Reply: a **ticket** with one entry
    per manifest job, or a backpressure rejection carrying
    ``retry_after`` seconds.
``poll``
    ``{"op": "poll", "ticket": "t-000001"}`` -- the ticket's current
    per-job status and any finished results.
``stream``
    ``{"op": "stream", "ticket": "t-000001"}`` -- the connection stays
    open; each completed job of the ticket is written as its own
    ``{"event": "result", ...}`` line the moment it lands, terminated by
    one ``{"event": "done", ...}`` summary line.
``status``
    Queue depth/backlog, worker pids, drain state, version, daemon
    identity (pid / start time), and a metrics snapshot.
``metrics``
    A full metrics snapshot plus its Prometheus text rendering -- point a
    scraper bridge here.
``health``
    The daemon's self-diagnosis (:mod:`repro.obs.health`): an
    ``ok`` / ``degraded`` / ``failing`` verdict with per-check statuses
    and machine-readable reasons, plus recent events.
``drain``
    Stop admitting new submissions; polls and streams keep working.
``shutdown``
    Drain, finish in-flight work, exit the daemon.

Responses carry ``"ok": true`` or ``"ok": false`` with ``"error"``.  The
protocol is versioned (``PROTOCOL_VERSION``; echoed by ``status``) and
intolerant of malformed input on purpose: a bad line gets an error reply,
never a partial effect.
"""

from __future__ import annotations

import json

__all__ = [
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "decode_line",
    "encode",
    "error_reply",
    "ok_reply",
]

PROTOCOL_VERSION = 2  # v2: +health op, daemon identity in status

OPS = (
    "submit",
    "poll",
    "stream",
    "status",
    "metrics",
    "health",
    "drain",
    "shutdown",
)


class ProtocolError(ValueError):
    """A malformed or unsupported protocol message."""


def encode(message: dict) -> bytes:
    """One message -> one JSON line (repr-exact floats, no embedded newlines)."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: str | bytes) -> dict:
    """One line -> one validated request mapping (raises :class:`ProtocolError`)."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"expected a JSON object, got {type(message).__name__}")
    op = message.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (supported: {', '.join(OPS)})")
    if op == "submit" and not isinstance(message.get("manifest"), dict):
        raise ProtocolError("submit requires a 'manifest' mapping")
    if op in ("poll", "stream") and not isinstance(message.get("ticket"), str):
        raise ProtocolError(f"{op} requires a 'ticket' string")
    return message


def ok_reply(**fields) -> dict:
    return {"ok": True, **fields}


def error_reply(error: str, **fields) -> dict:
    return {"ok": False, "error": error, **fields}
