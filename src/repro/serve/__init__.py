"""Serving: a long-running sharded job daemon over the batch engine.

Where :mod:`repro.service` executes one manifest per process,
``repro.serve`` keeps a daemon alive: clients submit manifests over a
unix socket and poll (or stream) results while a deterministic worker
pool executes fingerprint-sharded jobs behind a persistent store.  The
pieces:

``queue``
    :class:`ShardedJobQueue` -- fingerprint-prefix shards, cheapest-first
    priority, dedup-on-enqueue against in-flight work and the store,
    bounded depth with retry-after backpressure, bounded retries with
    dead-letter parking.
``workers``
    :class:`InlineWorkerPool` / :class:`ProcessWorkerPool` plus the
    :func:`pump`/:func:`drain` driver shared with ``red-qaoa batch`` --
    N workers are bit-for-bit identical to 1 (jobs are pure functions of
    their fingerprints; shards merge in fingerprint order), and a killed
    worker costs only its in-flight jobs, which requeue.
``protocol`` / ``daemon`` / ``client``
    Newline-delimited JSON over a unix socket: submit -> ticket, poll,
    stream, status, drain, shutdown (``red-qaoa serve`` and
    ``red-qaoa submit``).
"""

from repro.serve.client import Backpressure, ServeClient, ServeError, wait_for_socket
from repro.serve.daemon import ServeDaemon
from repro.serve.protocol import PROTOCOL_VERSION, ProtocolError
from repro.serve.queue import ShardClaim, ShardedJobQueue, SubmitOutcome
from repro.serve.workers import (
    CrashPoint,
    InlineWorkerPool,
    ProcessWorkerPool,
    drain,
    execute_shard,
    make_pool,
    pump,
)

__all__ = [
    "PROTOCOL_VERSION",
    "Backpressure",
    "CrashPoint",
    "InlineWorkerPool",
    "ProcessWorkerPool",
    "ProtocolError",
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "ShardClaim",
    "ShardedJobQueue",
    "SubmitOutcome",
    "drain",
    "execute_shard",
    "make_pool",
    "pump",
    "wait_for_socket",
]
