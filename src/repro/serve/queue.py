"""Fingerprint-sharded job queue with dedup, priority, and backpressure.

The serve layer's scheduling heart.  Jobs land in **shards** keyed by a
fingerprint prefix (``shard_prefix`` hex characters, so 16^k shards):
fingerprints are uniform hashes, so shards balance without any placement
policy, and a job's shard is a pure function of its fingerprint -- the
same job always lands in the same shard, on any daemon, on any day.
Workers claim *whole shards* (see :mod:`repro.serve.workers`), which keeps
every scheduling decision coarse and auditable, and -- because each job's
result is a pure function of its fingerprint (the PR 5 contract in
:mod:`repro.service.jobs`) -- provably unable to change any answer.

Scheduling policy, all deterministic:

- **priority**: claims go cheapest-shard-first by the
  :func:`~repro.analysis.runtime.estimate_pipeline_cost` model (a shard's
  priority is its cheapest pending job; ties break on shard id), so small
  jobs stream results early no matter when they were submitted;
- **dedup-on-enqueue**: a submitted fingerprint already pending, running,
  completed this session, or present in the
  :class:`~repro.service.store.ResultStore` is never enqueued twice --
  the submitter is told which of those it was;
- **backpressure**: past ``high_water`` pending jobs, submissions are
  rejected with a ``retry_after`` hint instead of being buffered without
  bound -- the client backs off, the daemon never swells.

Failure handling is bounded and never wedges the queue: a failed or
crashed-out job is requeued until its attempt budget (``max_attempts``)
is spent, then **parked** as a dead-letter record (written through the
store when one is attached) and the shard moves on.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.analysis.runtime import estimate_pipeline_cost
from repro.obs.metrics import REGISTRY
from repro.service.jobs import JobResult, JobSpec
from repro.service.store import ResultStore

_SUBMITTED = REGISTRY.counter(
    "redqaoa_queue_submitted_total", "job submissions offered to the queue"
)
_DEDUPED = REGISTRY.counter(
    "redqaoa_queue_deduped_total", "submissions answered from cache or in-flight work"
)
_REJECTED = REGISTRY.counter(
    "redqaoa_queue_rejected_total", "submissions rejected by backpressure"
)
_COMPLETED = REGISTRY.counter("redqaoa_jobs_completed_total", "jobs completed")
_REQUEUED = REGISTRY.counter(
    "redqaoa_jobs_requeued_total", "failed or crashed-out jobs returned to a shard"
)
_DEAD = REGISTRY.counter(
    "redqaoa_jobs_dead_total", "jobs parked as dead letters"
)
_CRASHES = REGISTRY.counter(
    "redqaoa_worker_crashes_total", "worker deaths observed while holding a claim"
)
_DEPTH = REGISTRY.gauge("redqaoa_queue_depth", "pending jobs across all shards")
_RUNNING = REGISTRY.gauge("redqaoa_queue_running", "jobs in claimed shards")

__all__ = [
    "DEFAULT_HIGH_WATER",
    "DEFAULT_MAX_ATTEMPTS",
    "DEFAULT_SHARD_PREFIX",
    "QueuedJob",
    "ShardClaim",
    "ShardedJobQueue",
    "SubmitOutcome",
]

DEFAULT_SHARD_PREFIX = 1
DEFAULT_HIGH_WATER = 1024
DEFAULT_MAX_ATTEMPTS = 3

#: Submission outcomes (``SubmitOutcome.status``).
QUEUED = "queued"  # accepted; will execute
INFLIGHT = "inflight"  # same fingerprint already pending or running
CACHED = "cached"  # result already known (this session or the store)
REJECTED = "rejected"  # backpressure: retry after ``retry_after`` seconds


@dataclass(frozen=True)
class SubmitOutcome:
    """What happened to one submitted spec."""

    status: str
    fingerprint: str
    result: JobResult | None = None  # set when status == CACHED
    retry_after: float | None = None  # set when status == REJECTED

    @property
    def accepted(self) -> bool:
        return self.status != REJECTED


@dataclass
class QueuedJob:
    """One unique fingerprint waiting in (or crashed back into) a shard.

    ``enqueued_ns`` / ``claimed_ns`` are ``perf_counter_ns`` stamps for the
    observability layer (queue-wait spans and latency histograms); they
    never influence scheduling.
    """

    spec: JobSpec
    fingerprint: str
    shard: str
    cost: float
    attempts: int = 0
    enqueued_ns: int = 0
    claimed_ns: int = 0


@dataclass
class ShardClaim:
    """A whole shard's pending jobs, handed to one worker.

    ``jobs`` is sorted by fingerprint -- the worker executes and reports
    in that order, which is what makes N workers merge bit-for-bit like
    one.  ``reductions`` optionally carries precomputed per-instance
    reductions (the batch scheduler's phase 1); absent, workers compute
    them per shard -- identical either way, reductions are pure functions
    of the instance fingerprint.
    """

    id: int
    shard: str
    jobs: list[QueuedJob]
    reductions: dict | None = None
    done: set = field(default_factory=set)  # fingerprints resolved so far
    claimed_ns: int = 0  # perf_counter_ns at claim time
    progress_ns: int = 0  # last landed/failed result (the watchdog's heartbeat)

    @property
    def specs(self) -> list[JobSpec]:
        return [job.spec for job in self.jobs]

    def job_of(self, fingerprint: str) -> QueuedJob:
        return next(job for job in self.jobs if job.fingerprint == fingerprint)

    def spec_of(self, fingerprint: str) -> JobSpec:
        return self.job_of(fingerprint).spec

    def unresolved(self) -> list[QueuedJob]:
        return [job for job in self.jobs if job.fingerprint not in self.done]


class ShardedJobQueue:
    """Deterministic sharded queue over unique job fingerprints.

    Parameters
    ----------
    store:
        Optional :class:`~repro.service.store.ResultStore`.  Consulted for
        dedup-on-enqueue, written through on completion, and the home of
        dead-letter records.
    shard_prefix:
        Fingerprint hex characters that name a shard (1 -> 16 shards).
    high_water:
        Pending-job bound; submissions past it are rejected with a
        ``retry_after`` hint.
    max_attempts:
        Execution attempts (failures *or* worker crashes) before a job is
        parked as a dead letter.
    reductions:
        Optional ``{instance_fingerprint: ReductionResult}`` map attached
        to claims, so pool workers skip recomputing shared reductions.
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        shard_prefix: int = DEFAULT_SHARD_PREFIX,
        high_water: int = DEFAULT_HIGH_WATER,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        reductions: dict | None = None,
    ) -> None:
        if shard_prefix < 1:
            raise ValueError(f"shard_prefix must be >= 1, got {shard_prefix}")
        if high_water < 1:
            raise ValueError(f"high_water must be >= 1, got {high_water}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.store = store
        self.shard_prefix = shard_prefix
        self.high_water = high_water
        self.max_attempts = max_attempts
        self.reductions = reductions
        self.completed: dict[str, JobResult] = {}
        self.dead: dict[str, dict] = {}
        self.submitted = 0
        self.deduped = 0
        self.rejected = 0
        self.crashes = 0
        self.requeues = 0
        self._pending: dict[str, dict[str, QueuedJob]] = {}  # shard -> fp -> job
        self._running: dict[str, QueuedJob] = {}  # fp -> job (claimed)
        self._claimed_shards: set[str] = set()
        self._claim_ids = itertools.count(1)

    # -- shape ---------------------------------------------------------------

    def shard_of(self, fingerprint: str) -> str:
        return fingerprint[: self.shard_prefix]

    @property
    def depth(self) -> int:
        """Pending jobs across all shards (excludes running)."""
        return sum(len(jobs) for jobs in self._pending.values())

    @property
    def num_running(self) -> int:
        return len(self._running)

    def is_idle(self) -> bool:
        """Nothing pending and nothing claimed: safe to drain/stop."""
        return self.depth == 0 and not self._running

    def state_of(self, fingerprint: str) -> str:
        """``"completed"`` / ``"dead"`` / ``"running"`` / ``"pending"`` /
        ``"unknown"`` (never seen, or only known to the store)."""
        if fingerprint in self.completed:
            return "completed"
        if fingerprint in self.dead:
            return "dead"
        if fingerprint in self._running:
            return "running"
        if fingerprint in self._pending.get(self.shard_of(fingerprint), {}):
            return "pending"
        return "unknown"

    def retry_after(self) -> float:
        """Backoff hint for rejected submissions, monotone in the backlog."""
        backlog = self.depth + self.num_running
        return round(1.0 + 4.0 * backlog / self.high_water, 3)

    def stats(self) -> dict:
        return {
            "depth": self.depth,
            "running": self.num_running,
            "completed": len(self.completed),
            "dead": len(self.dead),
            "submitted": self.submitted,
            "deduped": self.deduped,
            "rejected": self.rejected,
            "crashes": self.crashes,
            "requeues": self.requeues,
            "shards": sorted(
                shard for shard, jobs in self._pending.items() if jobs
            ),
            "shard_depths": {
                shard: len(jobs)
                for shard, jobs in sorted(self._pending.items())
                if jobs
            },
            "high_water": self.high_water,
        }

    # -- submission ----------------------------------------------------------

    def lookup(self, fingerprint: str) -> JobResult | None:
        """A known result: this session's completions, then the store."""
        found = self.completed.get(fingerprint)
        if found is None and self.store is not None:
            found = self.store.get(fingerprint)
        return found

    def submit(self, spec: JobSpec) -> SubmitOutcome:
        """Admit one spec: dedup, then backpressure, then enqueue."""
        fingerprint = spec.fingerprint
        self.submitted += 1
        _SUBMITTED.inc()
        found = self.lookup(fingerprint)
        if found is not None:
            self.deduped += 1
            _DEDUPED.inc()
            return SubmitOutcome(CACHED, fingerprint, result=found)
        shard = self.shard_of(fingerprint)
        if fingerprint in self._running or fingerprint in self._pending.get(shard, {}):
            self.deduped += 1
            _DEDUPED.inc()
            return SubmitOutcome(INFLIGHT, fingerprint)
        if self.depth >= self.high_water:
            self.rejected += 1
            _REJECTED.inc()
            return SubmitOutcome(REJECTED, fingerprint, retry_after=self.retry_after())
        job = QueuedJob(
            spec=spec,
            fingerprint=fingerprint,
            shard=shard,
            cost=estimate_pipeline_cost(
                spec.num_qubits,
                p=spec.p,
                restarts=spec.restarts,
                maxiter=spec.maxiter,
                finetune_maxiter=spec.finetune_maxiter,
            ),
            enqueued_ns=time.perf_counter_ns(),
        )
        self._pending.setdefault(shard, {})[fingerprint] = job
        _DEPTH.set(self.depth)
        return SubmitOutcome(QUEUED, fingerprint)

    # -- claiming ------------------------------------------------------------

    def claim_next(self) -> ShardClaim | None:
        """Claim the best unclaimed shard, whole, for one worker.

        Cheapest-first by the shard's cheapest pending job (cost-ordered
        result streaming); a claimed shard accumulates new submissions for
        its *next* claim, so two workers never hold one shard at once.
        """
        candidates = [
            (min(job.cost for job in jobs.values()), shard)
            for shard, jobs in self._pending.items()
            if jobs and shard not in self._claimed_shards
        ]
        if not candidates:
            return None
        _, shard = min(candidates)
        jobs = sorted(self._pending[shard].values(), key=lambda job: job.fingerprint)
        self._pending[shard].clear()
        claimed_ns = time.perf_counter_ns()
        for job in jobs:
            job.claimed_ns = claimed_ns
            self._running[job.fingerprint] = job
        self._claimed_shards.add(shard)
        _DEPTH.set(self.depth)
        _RUNNING.set(self.num_running)
        reductions = None
        if self.reductions is not None:
            reductions = {
                key: self.reductions[key]
                for key in {job.spec.instance_fingerprint for job in jobs}
                if key in self.reductions
            }
        return ShardClaim(
            id=next(self._claim_ids),
            shard=shard,
            jobs=jobs,
            reductions=reductions,
            claimed_ns=claimed_ns,
            progress_ns=claimed_ns,
        )

    # -- resolution ----------------------------------------------------------

    def complete(self, claim: ShardClaim, fingerprint: str, result: JobResult) -> None:
        """One job of a claim finished; durable (when a store is attached)
        before this returns."""
        self._running.pop(fingerprint, None)
        claim.done.add(fingerprint)
        claim.progress_ns = time.perf_counter_ns()
        self.completed[fingerprint] = result
        _COMPLETED.inc()
        _RUNNING.set(self.num_running)
        if self.store is not None:
            self.store.put(result)

    def fail(self, claim: ShardClaim, fingerprint: str, error: str) -> str:
        """One job of a claim raised; requeue or park it.

        Returns ``"requeued"`` or ``"dead"``.
        """
        job = self._running.pop(fingerprint, None)
        claim.done.add(fingerprint)
        claim.progress_ns = time.perf_counter_ns()
        if job is None:  # unknown fingerprint: nothing to do
            return "dead"
        job.attempts += 1
        _RUNNING.set(self.num_running)
        if job.attempts >= self.max_attempts:
            self._park(job, error)
            return "dead"
        self._pending.setdefault(job.shard, {})[fingerprint] = job
        self.requeues += 1
        _REQUEUED.inc()
        _DEPTH.set(self.depth)
        return "requeued"

    def finish_claim(self, claim: ShardClaim) -> None:
        """The worker reported the whole shard done; make it claimable again."""
        self._claimed_shards.discard(claim.shard)

    def release_crashed(self, claim: ShardClaim) -> list[QueuedJob]:
        """The claiming worker died; requeue its unfinished jobs.

        Completed jobs stay completed (their results were already recorded
        when they streamed back) -- nothing is lost, nothing re-runs.  Each
        unfinished job is charged one attempt, so a poison pill that kills
        its worker every time still dead-letters after ``max_attempts``
        rather than crash-looping forever.  Returns the requeued jobs.
        """
        self.crashes += 1
        _CRASHES.inc()
        requeued = []
        for job in claim.unresolved():
            self._running.pop(job.fingerprint, None)
            job.attempts += 1
            if job.attempts >= self.max_attempts:
                self._park(job, "worker crashed while executing this shard")
            else:
                self._pending.setdefault(job.shard, {})[job.fingerprint] = job
                self.requeues += 1
                _REQUEUED.inc()
                requeued.append(job)
        self.finish_claim(claim)
        _DEPTH.set(self.depth)
        _RUNNING.set(self.num_running)
        return requeued

    def _park(self, job: QueuedJob, error: str) -> None:
        record = {
            "error": str(error),
            "attempts": job.attempts,
            "instance": job.spec.instance_fingerprint,
        }
        self.dead[job.fingerprint] = record
        _DEAD.inc()
        if self.store is not None:
            self.store.park(
                job.fingerprint, job.spec.instance_fingerprint, error, job.attempts
            )
