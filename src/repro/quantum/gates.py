"""Gate definitions: unitary matrices for the supported gate set.

Gates are identified by lowercase string names throughout the library.  The
set covers what QAOA-for-MaxCut circuits and their transpiled forms need:

- single-qubit: ``i, x, y, z, h, s, sdg, t, tdg, sx, rx, ry, rz, u3``
- two-qubit: ``cx, cz, swap, rzz``

:func:`gate_matrix` returns the unitary for a (name, params) pair.  Matrices
use the little-endian qubit convention that the simulators expect: for a
two-qubit gate acting on (q0, q1), the basis ordering is |q1 q0>.
"""

from __future__ import annotations

import cmath
import math
from collections.abc import Sequence

import numpy as np

__all__ = [
    "GATE_ARITY",
    "PARAM_COUNT",
    "gate_matrix",
    "is_diagonal_gate",
]

_SQ2 = 1.0 / math.sqrt(2.0)

_FIXED_1Q: dict[str, np.ndarray] = {
    "i": np.eye(2, dtype=complex),
    "x": np.array([[0, 1], [1, 0]], dtype=complex),
    "y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "z": np.array([[1, 0], [0, -1]], dtype=complex),
    "h": np.array([[_SQ2, _SQ2], [_SQ2, -_SQ2]], dtype=complex),
    "s": np.array([[1, 0], [0, 1j]], dtype=complex),
    "sdg": np.array([[1, 0], [0, -1j]], dtype=complex),
    "t": np.array([[1, 0], [0, cmath.exp(1j * math.pi / 4)]], dtype=complex),
    "tdg": np.array([[1, 0], [0, cmath.exp(-1j * math.pi / 4)]], dtype=complex),
    "sx": 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex),
}

_FIXED_2Q: dict[str, np.ndarray] = {
    # Control is the first qubit (q0), target the second (q1); basis |q1 q0>.
    "cx": np.array(
        [
            [1, 0, 0, 0],
            [0, 0, 0, 1],
            [0, 0, 1, 0],
            [0, 1, 0, 0],
        ],
        dtype=complex,
    ),
    "cz": np.diag([1, 1, 1, -1]).astype(complex),
    "swap": np.array(
        [
            [1, 0, 0, 0],
            [0, 0, 1, 0],
            [0, 1, 0, 0],
            [0, 0, 0, 1],
        ],
        dtype=complex,
    ),
}

GATE_ARITY: dict[str, int] = {
    **{name: 1 for name in _FIXED_1Q},
    **{name: 1 for name in ("rx", "ry", "rz", "u3")},
    **{name: 2 for name in _FIXED_2Q},
    "rzz": 2,
}

PARAM_COUNT: dict[str, int] = {
    **{name: 0 for name in _FIXED_1Q},
    **{name: 0 for name in _FIXED_2Q},
    "rx": 1,
    "ry": 1,
    "rz": 1,
    "rzz": 1,
    "u3": 3,
}

_DIAGONAL_GATES = frozenset({"i", "z", "s", "sdg", "t", "tdg", "rz", "cz", "rzz"})


def is_diagonal_gate(name: str) -> bool:
    """Whether ``name`` is diagonal in the computational basis."""
    return name in _DIAGONAL_GATES


def gate_matrix(name: str, params: Sequence[float] = ()) -> np.ndarray:
    """Unitary matrix for gate ``name`` with rotation ``params``.

    Raises ``KeyError`` for unknown gates and ``ValueError`` when the number
    of parameters does not match :data:`PARAM_COUNT`.
    """
    if name not in GATE_ARITY:
        raise KeyError(f"unknown gate: {name!r}")
    expected = PARAM_COUNT[name]
    if len(params) != expected:
        raise ValueError(f"gate {name!r} takes {expected} parameter(s), got {len(params)}")
    if name in _FIXED_1Q:
        return _FIXED_1Q[name].copy()
    if name in _FIXED_2Q:
        return _FIXED_2Q[name].copy()
    if name == "rx":
        (theta,) = params
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)
    if name == "ry":
        (theta,) = params
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        return np.array([[c, -s], [s, c]], dtype=complex)
    if name == "rz":
        (theta,) = params
        phase = cmath.exp(-0.5j * theta)
        return np.array([[phase, 0], [0, phase.conjugate()]], dtype=complex)
    if name == "u3":
        theta, phi, lam = params
        c, s = math.cos(theta / 2), math.sin(theta / 2)
        return np.array(
            [
                [c, -cmath.exp(1j * lam) * s],
                [cmath.exp(1j * phi) * s, cmath.exp(1j * (phi + lam)) * c],
            ],
            dtype=complex,
        )
    if name == "rzz":
        (theta,) = params
        phase = cmath.exp(-0.5j * theta)
        return np.diag([phase, phase.conjugate(), phase.conjugate(), phase]).astype(complex)
    raise KeyError(f"unknown gate: {name!r}")  # pragma: no cover - guarded above
