"""SABRE-style transpilation: layout, SWAP routing, basis decomposition.

The paper transpiles every circuit with Qiskit's SABRE pass and keeps the
minimum-depth result of 100 repetitions (Sec. 5.3).  This module implements
the same flow:

1. an initial layout (random per trial, as SABRE's outer loop does);
2. SABRE routing -- process the gate dependency front, insert the SWAP that
   minimizes a front + lookahead distance heuristic whenever the front is
   stuck [Li, Ding, Xie, ASPLOS 2019];
3. decomposition into the backend's basis gate set with a peephole pass that
   merges adjacent ``rz`` rotations;
4. best-of-N selection by circuit depth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.quantum.backends import FakeBackend
from repro.quantum.circuit import Instruction, QuantumCircuit
from repro.quantum.coupling import CouplingMap
from repro.utils.rng import as_generator

__all__ = ["TranspileResult", "transpile", "route_sabre", "decompose_to_basis"]

_LOOKAHEAD_WEIGHT = 0.5
_LOOKAHEAD_SIZE = 20


@dataclass
class TranspileResult:
    """Output of :func:`transpile`.

    ``circuit`` acts on physical qubit indices (compacted to the used ones
    when ``compact=True``).  ``initial_layout`` maps logical -> physical.
    """

    circuit: QuantumCircuit
    initial_layout: dict[int, int]
    final_layout: dict[int, int]
    swap_count: int
    depth: int


def transpile(
    circuit: QuantumCircuit,
    backend: FakeBackend | None = None,
    coupling_map: CouplingMap | None = None,
    basis_gates: tuple[str, ...] | None = None,
    trials: int = 20,
    seed: int | np.random.Generator | None = None,
    compact: bool = True,
) -> TranspileResult:
    """Map ``circuit`` onto hardware, keeping the best of ``trials`` runs.

    Either ``backend`` or ``coupling_map`` must be given.  When ``compact``
    is true the output circuit is re-indexed onto its used qubits so that it
    can be simulated without allocating the full device register.
    """
    if backend is not None:
        coupling_map = backend.coupling_map
        if basis_gates is None:
            basis_gates = backend.basis_gates
    if coupling_map is None:
        raise ValueError("either backend or coupling_map is required")
    if circuit.num_qubits > coupling_map.num_qubits:
        raise ValueError(
            f"circuit needs {circuit.num_qubits} qubits but device has "
            f"{coupling_map.num_qubits}"
        )
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    rng = as_generator(seed)
    best: TranspileResult | None = None
    for trial in range(trials):
        layout = _initial_layout(circuit, coupling_map, rng, trivial=(trial == 0))
        routed, final_layout, swaps = route_sabre(circuit, coupling_map, layout)
        if basis_gates is not None:
            routed = decompose_to_basis(routed, basis_gates)
        result = TranspileResult(
            circuit=routed,
            initial_layout=dict(layout),
            final_layout=final_layout,
            swap_count=swaps,
            depth=routed.depth(),
        )
        if best is None or result.depth < best.depth:
            best = result
    assert best is not None
    if compact:
        best = _compact(best)
    return best


def _initial_layout(
    circuit: QuantumCircuit,
    coupling_map: CouplingMap,
    rng: np.random.Generator,
    trivial: bool,
) -> dict[int, int]:
    """Logical -> physical assignment; trivial for trial 0, random after."""
    physical = list(range(coupling_map.num_qubits))
    if not trivial:
        physical = list(rng.permutation(coupling_map.num_qubits))
    return {logical: int(physical[logical]) for logical in range(circuit.num_qubits)}


def route_sabre(
    circuit: QuantumCircuit,
    coupling_map: CouplingMap,
    layout: dict[int, int],
) -> tuple[QuantumCircuit, dict[int, int], int]:
    """SABRE routing of ``circuit`` under ``layout``.

    Returns ``(routed_circuit_on_physical_qubits, final_layout, swap_count)``.
    """
    dist = coupling_map.distance_matrix
    # position[logical] = physical; mutable copy of the layout.
    position = dict(layout)
    routed = QuantumCircuit(coupling_map.num_qubits)
    remaining = list(circuit.instructions)
    pointer = 0
    swap_count = 0
    stall_guard = 0
    max_stall = 20 * (len(remaining) + coupling_map.num_qubits) + 200
    # Decay penalties on recently swapped physical qubits break the
    # back-and-forth oscillations the plain distance heuristic can enter
    # (Li, Ding, Xie 2019, Sec. 5.2).
    decay = np.ones(coupling_map.num_qubits)
    since_progress = 0
    force_after = 3 * coupling_map.num_qubits + 10

    def apply_swap(swap: tuple[int, int]) -> None:
        nonlocal swap_count
        routed.append("swap", swap)
        swap_count += 1
        decay[swap[0]] += 0.1
        decay[swap[1]] += 0.1
        inverse = {phys: logical for logical, phys in position.items()}
        la, lb = inverse.get(swap[0]), inverse.get(swap[1])
        if la is not None:
            position[la] = swap[1]
        if lb is not None:
            position[lb] = swap[0]

    while pointer < len(remaining):
        inst = remaining[pointer]
        if len(inst.qubits) == 1:
            routed.append(inst.name, (position[inst.qubits[0]],), inst.params)
            pointer += 1
            continue
        a, b = inst.qubits
        if coupling_map.are_adjacent(position[a], position[b]):
            routed.append(inst.name, (position[a], position[b]), inst.params)
            pointer += 1
            decay[:] = 1.0  # progress: reset the decay penalties
            since_progress = 0
            continue
        stall_guard += 1
        if stall_guard > max_stall:  # pragma: no cover - safety net
            raise RuntimeError("SABRE routing failed to make progress")
        since_progress += 1
        if since_progress > force_after:
            # Heuristic livelock (symmetric fronts can cycle): fall back to
            # greedily walking the stuck gate's control toward its target
            # along a shortest path, which guarantees progress.
            path = _shortest_physical_path(coupling_map, position[a], position[b])
            for step in range(len(path) - 2):
                apply_swap((path[step], path[step + 1]))
            since_progress = 0
            continue
        swap = _best_swap(remaining, pointer, position, coupling_map, dist, decay)
        apply_swap(swap)
    return routed, position, swap_count


def _shortest_physical_path(coupling_map: CouplingMap, start: int, goal: int) -> list[int]:
    """BFS shortest path between two physical qubits."""
    import networkx as nx

    return nx.shortest_path(coupling_map.graph, start, goal)


def _best_swap(
    remaining: list[Instruction],
    pointer: int,
    position: dict[int, int],
    coupling_map: CouplingMap,
    dist: np.ndarray,
    decay: np.ndarray,
) -> tuple[int, int]:
    """Pick the SWAP minimizing the SABRE front + lookahead heuristic."""
    front: list[tuple[int, int]] = []
    lookahead: list[tuple[int, int]] = []
    blocked: set[int] = set()
    for inst in remaining[pointer:]:
        if len(inst.qubits) != 2:
            continue
        a, b = inst.qubits
        if not front:
            front.append((a, b))
            blocked.update((a, b))
            continue
        if a in blocked or b in blocked:
            lookahead.append((a, b))
            blocked.update((a, b))
        else:
            front.append((a, b))
            blocked.update((a, b))
        if len(lookahead) >= _LOOKAHEAD_SIZE:
            break

    involved = {position[q] for pair in front for q in pair}
    candidates = {
        tuple(sorted((phys, nbr)))
        for phys in involved
        for nbr in coupling_map.neighbors(phys)
    }

    def score(swap: tuple[int, int]) -> float:
        trial = dict(position)
        inverse = {p: l for l, p in trial.items()}
        la, lb = inverse.get(swap[0]), inverse.get(swap[1])
        if la is not None:
            trial[la] = swap[1]
        if lb is not None:
            trial[lb] = swap[0]
        front_cost = sum(dist[trial[a], trial[b]] for a, b in front)
        ahead_cost = sum(dist[trial[a], trial[b]] for a, b in lookahead)
        if lookahead:
            ahead_cost /= len(lookahead)
        penalty = max(decay[swap[0]], decay[swap[1]])
        return penalty * (front_cost + _LOOKAHEAD_WEIGHT * ahead_cost)

    return min(sorted(candidates), key=score)


# -- basis decomposition ---------------------------------------------------

_PI = math.pi


def decompose_to_basis(
    circuit: QuantumCircuit, basis_gates: tuple[str, ...]
) -> QuantumCircuit:
    """Rewrite ``circuit`` using only ``basis_gates`` (up to global phase).

    Supports the IBM basis (``rz, sx, x, cx``) and the Rigetti basis
    (``rz, rx, cz``).  Unknown gates with no rule raise ``ValueError``.
    """
    basis = set(basis_gates)
    out = QuantumCircuit(circuit.num_qubits)
    for inst in circuit:
        _emit(out, inst, basis)
    return _merge_rz(out)


def _emit(out: QuantumCircuit, inst: Instruction, basis: set[str]) -> None:
    name, qubits, params = inst.name, inst.qubits, inst.params
    if name in basis:
        out.append(name, qubits, params)
        return
    q = qubits[0]
    if name == "i":
        return
    if name == "z":
        _emit(out, Instruction("rz", (q,), (_PI,)), basis)
        return
    if name == "s":
        _emit(out, Instruction("rz", (q,), (_PI / 2,)), basis)
        return
    if name == "sdg":
        _emit(out, Instruction("rz", (q,), (-_PI / 2,)), basis)
        return
    if name == "t":
        _emit(out, Instruction("rz", (q,), (_PI / 4,)), basis)
        return
    if name == "tdg":
        _emit(out, Instruction("rz", (q,), (-_PI / 4,)), basis)
        return
    if name == "x":
        _emit(out, Instruction("rx", (q,), (_PI,)), basis)
        return
    if name == "y":
        # Y = RZ(pi) RX(pi) up to phase.
        _emit(out, Instruction("rx", (q,), (_PI,)), basis)
        _emit(out, Instruction("rz", (q,), (_PI,)), basis)
        return
    if name == "sx":
        _emit(out, Instruction("rx", (q,), (_PI / 2,)), basis)
        return
    if name == "h":
        # H = RZ(pi/2) SX RZ(pi/2) up to phase.
        _emit(out, Instruction("rz", (q,), (_PI / 2,)), basis)
        _emit(out, Instruction("sx", (q,)), basis)
        _emit(out, Instruction("rz", (q,), (_PI / 2,)), basis)
        return
    if name == "rx":
        # RX(t) = RZ(pi/2) SX RZ(t + pi) SX RZ(pi/2) up to phase
        # (H RZ(t) H with H expanded).
        (theta,) = params
        _emit(out, Instruction("rz", (q,), (_PI / 2,)), basis)
        _emit(out, Instruction("sx", (q,)), basis)
        _emit(out, Instruction("rz", (q,), (theta + _PI,)), basis)
        _emit(out, Instruction("sx", (q,)), basis)
        _emit(out, Instruction("rz", (q,), (_PI / 2,)), basis)
        return
    if name == "ry":
        # RY(t) = RZ(pi/2) RX(t) RZ(-pi/2); rightmost acts first.
        (theta,) = params
        _emit(out, Instruction("rz", (q,), (-_PI / 2,)), basis)
        _emit(out, Instruction("rx", (q,), (theta,)), basis)
        _emit(out, Instruction("rz", (q,), (_PI / 2,)), basis)
        return
    if name == "u3":
        theta, phi, lam = params
        _emit(out, Instruction("rz", (q,), (lam,)), basis)
        _emit(out, Instruction("ry", (q,), (theta,)), basis)
        _emit(out, Instruction("rz", (q,), (phi,)), basis)
        return
    if name == "rzz":
        (theta,) = params
        a, b = qubits
        _emit(out, Instruction("cx", (a, b)), basis)
        _emit(out, Instruction("rz", (b,), (theta,)), basis)
        _emit(out, Instruction("cx", (a, b)), basis)
        return
    if name == "cx":
        # CX = (I x H) CZ (I x H).
        a, b = qubits
        _emit(out, Instruction("h", (b,)), basis)
        _emit(out, Instruction("cz", (a, b)), basis)
        _emit(out, Instruction("h", (b,)), basis)
        return
    if name == "cz":
        a, b = qubits
        _emit(out, Instruction("h", (b,)), basis)
        _emit(out, Instruction("cx", (a, b)), basis)
        _emit(out, Instruction("h", (b,)), basis)
        return
    if name == "swap":
        a, b = qubits
        _emit(out, Instruction("cx", (a, b)), basis)
        _emit(out, Instruction("cx", (b, a)), basis)
        _emit(out, Instruction("cx", (a, b)), basis)
        return
    raise ValueError(f"no decomposition rule for gate {name!r} into {sorted(basis)}")


def _merge_rz(circuit: QuantumCircuit) -> QuantumCircuit:
    """Peephole pass: fuse consecutive ``rz`` on a qubit, drop zero angles."""
    out = QuantumCircuit(circuit.num_qubits)
    pending: dict[int, float] = {}

    def flush(qubit: int) -> None:
        angle = pending.pop(qubit, 0.0)
        angle = math.remainder(angle, 2 * _PI)
        if abs(angle) > 1e-12:
            out.append("rz", (qubit,), (angle,))

    for inst in circuit:
        if inst.name == "rz":
            q = inst.qubits[0]
            pending[q] = pending.get(q, 0.0) + inst.params[0]
            continue
        for q in inst.qubits:
            if q in pending:
                flush(q)
        out.append(inst.name, inst.qubits, inst.params)
    for q in list(pending):
        flush(q)
    return out


def _compact(result: TranspileResult) -> TranspileResult:
    """Re-index the routed circuit onto its used physical qubits.

    Keeps simulation cost proportional to the logical width rather than the
    device width.  Layout dictionaries are rewritten consistently.
    """
    used = sorted(
        set(result.circuit.used_qubits())
        | set(result.initial_layout.values())
        | set(result.final_layout.values())
    )
    mapping = {phys: idx for idx, phys in enumerate(used)}
    compacted = QuantumCircuit(max(len(used), 1))
    for inst in result.circuit:
        compacted.append(inst.name, tuple(mapping[q] for q in inst.qubits), inst.params)
    return TranspileResult(
        circuit=compacted,
        initial_layout={l: mapping[p] for l, p in result.initial_layout.items()},
        final_layout={l: mapping[p] for l, p in result.final_layout.items()},
        swap_count=result.swap_count,
        depth=compacted.depth(),
    )
