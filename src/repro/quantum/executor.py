"""Gate-level device execution pipeline.

:class:`DeviceExecutor` is the offline analogue of Qiskit's
``execute(circuit, backend)``: it transpiles a circuit onto a fake device
(SABRE routing, basis decomposition, best-of-N depth selection), attaches
the device's noise model, simulates with the density-matrix engine when the
routed circuit is narrow enough and the Pauli-trajectory engine otherwise,
and evaluates observables through the routing permutation.

This is the slow-but-faithful path; the benchmark harness uses the fast
QAOA-layer noise path (:mod:`repro.qaoa.fast_sim`) for landscape-sized
workloads.  The test suite cross-checks the two.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.quantum.backends import FakeBackend
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.density_matrix import DensityMatrixSimulator
from repro.quantum.trajectories import TrajectorySimulator
from repro.quantum.transpiler import TranspileResult, transpile
from repro.utils.graphs import ensure_graph, relabel_to_range
from repro.utils.rng import as_generator

__all__ = ["DeviceExecutor", "ExecutionResult"]

_DM_LIMIT = 9


@dataclass
class ExecutionResult:
    """Outcome of one device execution."""

    probabilities: np.ndarray
    transpiled: TranspileResult
    simulator: str

    @property
    def depth(self) -> int:
        return self.transpiled.depth

    @property
    def swap_count(self) -> int:
        return self.transpiled.swap_count


class DeviceExecutor:
    """Execute circuits on a fake backend with its calibrated noise.

    Parameters
    ----------
    backend:
        The target device.
    noisy:
        Attach the backend noise model (True) or run ideally (False).
    transpile_trials:
        SABRE repetitions; the minimum-depth circuit is kept (paper
        Sec. 5.3 uses 100; the default here is laptop-friendly).
    trajectories:
        Trajectory count when the routed circuit exceeds the exact
        density-matrix width (:data:`_DM_LIMIT` qubits).
    """

    def __init__(
        self,
        backend: FakeBackend,
        noisy: bool = True,
        transpile_trials: int = 8,
        trajectories: int = 16,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if transpile_trials < 1:
            raise ValueError(f"transpile_trials must be >= 1, got {transpile_trials}")
        self.backend = backend
        self.noisy = noisy
        self.transpile_trials = transpile_trials
        self.trajectories = trajectories
        self._rng = as_generator(seed)

    def run(self, circuit: QuantumCircuit) -> ExecutionResult:
        """Transpile and simulate ``circuit``; returns probabilities over the
        compacted physical register."""
        transpiled = transpile(
            circuit,
            self.backend,
            trials=self.transpile_trials,
            seed=self._rng,
            compact=True,
        )
        noise_model = self.backend.build_noise_model() if self.noisy else None
        width = transpiled.circuit.num_qubits
        if width <= _DM_LIMIT:
            simulator = DensityMatrixSimulator(max_qubits=width)
            probs = simulator.probabilities(transpiled.circuit, noise_model)
            name = "density_matrix"
        else:
            simulator = TrajectorySimulator(trajectories=self.trajectories)
            probs = simulator.probabilities(
                transpiled.circuit, noise_model, seed=self._rng
            )
            name = "trajectories"
        return ExecutionResult(probabilities=probs, transpiled=transpiled, simulator=name)

    def maxcut_expectation(
        self,
        graph: nx.Graph,
        gammas: Sequence[float],
        betas: Sequence[float],
    ) -> float:
        """QAOA MaxCut expectation for ``graph`` executed on the device.

        Builds the QAOA circuit, routes it, simulates under the device
        noise, and evaluates the cut observable through the final layout.
        """
        # Imported here: repro.qaoa depends on repro.quantum, so a module-
        # level import would be circular.
        from repro.qaoa.circuit_builder import build_qaoa_circuit

        ensure_graph(graph)
        relabeled = relabel_to_range(graph)
        circuit = build_qaoa_circuit(
            relabeled, [float(g) for g in gammas], [float(b) for b in betas]
        )
        result = self.run(circuit)
        layout = result.transpiled.final_layout
        width = result.transpiled.circuit.num_qubits
        z = np.arange(2**width, dtype=np.uint64)
        diagonal = np.zeros(2**width)
        for u, v, data in relabeled.edges(data=True):
            pu, pv = layout[u], layout[v]
            cut = ((z >> np.uint64(pu)) ^ (z >> np.uint64(pv))) & np.uint64(1)
            diagonal += float(data.get("weight", 1.0)) * cut
        return float(result.probabilities @ diagonal)

    def sample_cuts(
        self,
        graph: nx.Graph,
        gammas: Sequence[float],
        betas: Sequence[float],
        shots: int = 1024,
    ) -> dict[int, int]:
        """Sample measurement outcomes mapped back to *logical* bitstrings.

        Returns ``{logical basis index: count}`` so downstream code can read
        cuts off the original node order.
        """
        from repro.qaoa.circuit_builder import build_qaoa_circuit

        if shots < 1:
            raise ValueError(f"shots must be >= 1, got {shots}")
        ensure_graph(graph)
        relabeled = relabel_to_range(graph)
        circuit = build_qaoa_circuit(
            relabeled, [float(g) for g in gammas], [float(b) for b in betas]
        )
        result = self.run(circuit)
        probs = result.probabilities / result.probabilities.sum()
        outcomes = self._rng.choice(probs.size, size=shots, p=probs)
        layout = result.transpiled.final_layout
        counts: dict[int, int] = {}
        for outcome in outcomes:
            logical = 0
            for q in range(relabeled.number_of_nodes()):
                bit = (int(outcome) >> layout[q]) & 1
                logical |= bit << q
            counts[logical] = counts.get(logical, 0) + 1
        return counts
