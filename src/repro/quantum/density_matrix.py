"""Exact noisy simulation with density matrices.

:class:`DensityMatrixSimulator` evolves ``rho`` through a circuit, applying
each gate as a unitary conjugation and each attached noise channel as a
Kraus map.  Memory is ``O(4**n)``, so the default qubit cap is low; larger
noisy circuits go through :class:`~repro.quantum.trajectories.
TrajectorySimulator` instead.
"""

from __future__ import annotations

import numpy as np

from repro.quantum._kernels import apply_matrix_rho
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.gates import gate_matrix
from repro.quantum.noise import NoiseModel, QuantumError

__all__ = ["DensityMatrixSimulator"]


class DensityMatrixSimulator:
    """Exact mixed-state simulator with optional gate-level noise."""

    def __init__(self, max_qubits: int = 10) -> None:
        self.max_qubits = max_qubits

    def run(
        self,
        circuit: QuantumCircuit,
        noise_model: NoiseModel | None = None,
    ) -> np.ndarray:
        """Final density matrix after ``circuit`` under ``noise_model``."""
        n = circuit.num_qubits
        if n > self.max_qubits:
            raise ValueError(
                f"circuit has {n} qubits, exceeding max_qubits={self.max_qubits}; "
                "use TrajectorySimulator for larger noisy circuits"
            )
        dim = 2**n
        rho = np.zeros((dim, dim), dtype=complex)
        rho[0, 0] = 1.0
        for inst in circuit:
            matrix = gate_matrix(inst.name, inst.params)
            rho = apply_matrix_rho(rho, matrix, inst.qubits, n)
            if noise_model is not None:
                for error in noise_model.errors_for(inst):
                    rho = self._apply_channel(rho, error, inst.qubits, n)
        return rho

    def probabilities(
        self,
        circuit: QuantumCircuit,
        noise_model: NoiseModel | None = None,
    ) -> np.ndarray:
        """Measurement probabilities, including readout error if modeled."""
        rho = self.run(circuit, noise_model)
        probs = np.real(np.diag(rho)).clip(min=0.0)
        probs = probs / probs.sum()
        if noise_model is not None:
            probs = noise_model.apply_readout_to_probs(probs, circuit.num_qubits)
        return probs

    def expectation_diagonal(
        self,
        circuit: QuantumCircuit,
        diagonal: np.ndarray,
        noise_model: NoiseModel | None = None,
    ) -> float:
        """Expectation of a diagonal observable under noisy evolution."""
        probs = self.probabilities(circuit, noise_model)
        diagonal = np.asarray(diagonal, dtype=float)
        if diagonal.shape != probs.shape:
            raise ValueError(f"diagonal shape {diagonal.shape} != {probs.shape}")
        return float(probs @ diagonal)

    @staticmethod
    def _apply_channel(
        rho: np.ndarray,
        error: QuantumError,
        qubits: tuple[int, ...],
        num_qubits: int,
    ) -> np.ndarray:
        """Apply a Kraus channel to ``rho`` on ``qubits``.

        Channels narrower than the gate (e.g. a 1-qubit channel attached to
        a 2-qubit gate) are applied independently to each gate qubit, which
        matches how per-qubit relaxation acts during a 2-qubit gate.
        """
        if error.num_qubits == len(qubits):
            targets: list[tuple[int, ...]] = [qubits]
        elif error.num_qubits == 1:
            targets = [(q,) for q in qubits]
        else:
            raise ValueError(
                f"cannot apply a {error.num_qubits}-qubit channel to gate "
                f"qubits {qubits}"
            )
        for target in targets:
            acc = np.zeros_like(rho)
            for k in error.kraus:
                term = apply_matrix_rho(rho, k, target, num_qubits)
                acc += term
            rho = acc
        return rho
