"""Quantum-circuit simulation substrate.

This subpackage replaces the Qiskit/Aer stack used by the paper with an
in-house implementation: a circuit IR (:mod:`repro.quantum.circuit`), ideal
statevector simulation (:mod:`repro.quantum.statevector`), exact noisy
simulation via density matrices (:mod:`repro.quantum.density_matrix`),
scalable noisy simulation via Pauli trajectories
(:mod:`repro.quantum.trajectories`), configurable noise models
(:mod:`repro.quantum.noise`), fake device backends with coupling maps and
calibration data (:mod:`repro.quantum.backends`), and a SABRE-style
transpiler (:mod:`repro.quantum.transpiler`).
"""

from repro.quantum.circuit import Instruction, QuantumCircuit
from repro.quantum.statevector import StatevectorSimulator
from repro.quantum.density_matrix import DensityMatrixSimulator
from repro.quantum.trajectories import TrajectorySimulator
from repro.quantum.noise import NoiseModel, ReadoutError
from repro.quantum.backends import FakeBackend, get_backend, list_backends
from repro.quantum.coupling import CouplingMap
from repro.quantum.executor import DeviceExecutor, ExecutionResult
from repro.quantum.transpiler import TranspileResult, transpile
from repro.quantum.visualization import draw

__all__ = [
    "CouplingMap",
    "DensityMatrixSimulator",
    "DeviceExecutor",
    "ExecutionResult",
    "FakeBackend",
    "Instruction",
    "NoiseModel",
    "QuantumCircuit",
    "ReadoutError",
    "StatevectorSimulator",
    "TrajectorySimulator",
    "TranspileResult",
    "draw",
    "get_backend",
    "list_backends",
    "transpile",
]
