"""Ideal statevector simulation.

:class:`StatevectorSimulator` walks a :class:`~repro.quantum.circuit.
QuantumCircuit` gate by gate.  It supports expectation values of diagonal
observables (all QAOA-for-MaxCut observables are diagonal) and shot
sampling.  Complexity is ``O(len(circuit) * 2**n)`` time, ``O(2**n)`` space.
"""

from __future__ import annotations

import numpy as np

from repro.quantum._kernels import apply_matrix
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.gates import gate_matrix
from repro.utils.rng import as_generator

__all__ = ["StatevectorSimulator"]


class StatevectorSimulator:
    """Exact pure-state simulator.

    Parameters
    ----------
    max_qubits:
        Safety limit; running a wider circuit raises ``ValueError`` instead
        of silently allocating ``2**n`` amplitudes.
    """

    def __init__(self, max_qubits: int = 24) -> None:
        self.max_qubits = max_qubits

    def run(self, circuit: QuantumCircuit, initial_state: np.ndarray | None = None) -> np.ndarray:
        """Final statevector after applying ``circuit``.

        ``initial_state`` defaults to ``|0...0>`` and must be a normalized
        flat complex array of length ``2**num_qubits`` when given.
        """
        n = circuit.num_qubits
        if n > self.max_qubits:
            raise ValueError(f"circuit has {n} qubits, exceeding max_qubits={self.max_qubits}")
        dim = 2**n
        if initial_state is None:
            state = np.zeros(dim, dtype=complex)
            state[0] = 1.0
        else:
            state = np.asarray(initial_state, dtype=complex)
            if state.shape != (dim,):
                raise ValueError(f"initial_state must have shape ({dim},), got {state.shape}")
            state = state.copy()
        for inst in circuit:
            matrix = gate_matrix(inst.name, inst.params)
            state = apply_matrix(state, matrix, inst.qubits, n)
        return state

    def probabilities(self, circuit: QuantumCircuit) -> np.ndarray:
        """Measurement probabilities over the computational basis."""
        state = self.run(circuit)
        return np.abs(state) ** 2

    def expectation_diagonal(self, circuit: QuantumCircuit, diagonal: np.ndarray) -> float:
        """Expectation of a diagonal observable ``diag(diagonal)``."""
        probs = self.probabilities(circuit)
        diagonal = np.asarray(diagonal, dtype=float)
        if diagonal.shape != probs.shape:
            raise ValueError(f"diagonal shape {diagonal.shape} != state dim {probs.shape}")
        return float(probs @ diagonal)

    def sample_counts(
        self,
        circuit: QuantumCircuit,
        shots: int,
        seed: int | np.random.Generator | None = None,
    ) -> dict[int, int]:
        """Sample ``shots`` basis-state outcomes; returns {basis index: count}."""
        if shots < 1:
            raise ValueError(f"shots must be >= 1, got {shots}")
        probs = self.probabilities(circuit)
        probs = probs / probs.sum()
        rng = as_generator(seed)
        outcomes = rng.choice(len(probs), size=shots, p=probs)
        values, counts = np.unique(outcomes, return_counts=True)
        return {int(v): int(c) for v, c in zip(values, counts)}
