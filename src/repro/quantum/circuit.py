"""Quantum circuit intermediate representation.

A :class:`QuantumCircuit` is an ordered list of :class:`Instruction` records
over ``num_qubits`` wires.  The IR is intentionally simple: gates append in
program order, depth is computed on demand, and simulators walk the list.

Example
-------
>>> qc = QuantumCircuit(2)
>>> qc.h(0)
>>> qc.cx(0, 1)
>>> qc.depth()
2
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from repro.quantum.gates import GATE_ARITY, PARAM_COUNT

__all__ = ["Instruction", "QuantumCircuit"]


@dataclass(frozen=True)
class Instruction:
    """One gate application: name, target qubits, and rotation parameters."""

    name: str
    qubits: tuple[int, ...]
    params: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if self.name not in GATE_ARITY:
            raise KeyError(f"unknown gate: {self.name!r}")
        if len(self.qubits) != GATE_ARITY[self.name]:
            raise ValueError(
                f"gate {self.name!r} acts on {GATE_ARITY[self.name]} qubit(s), "
                f"got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubits in {self.qubits}")
        if len(self.params) != PARAM_COUNT[self.name]:
            raise ValueError(
                f"gate {self.name!r} takes {PARAM_COUNT[self.name]} parameter(s), "
                f"got {len(self.params)}"
            )


@dataclass
class QuantumCircuit:
    """An ordered gate list over ``num_qubits`` qubits."""

    num_qubits: int
    instructions: list[Instruction] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_qubits < 1:
            raise ValueError(f"num_qubits must be >= 1, got {self.num_qubits}")
        for inst in self.instructions:
            self._check_qubits(inst.qubits)

    # -- building ---------------------------------------------------------

    def append(self, name: str, qubits: Sequence[int], params: Sequence[float] = ()) -> None:
        """Append gate ``name`` on ``qubits`` with ``params``."""
        qubits = tuple(int(q) for q in qubits)
        self._check_qubits(qubits)
        self.instructions.append(Instruction(name, qubits, tuple(float(p) for p in params)))

    def h(self, qubit: int) -> None:
        self.append("h", (qubit,))

    def x(self, qubit: int) -> None:
        self.append("x", (qubit,))

    def y(self, qubit: int) -> None:
        self.append("y", (qubit,))

    def z(self, qubit: int) -> None:
        self.append("z", (qubit,))

    def sx(self, qubit: int) -> None:
        self.append("sx", (qubit,))

    def rx(self, theta: float, qubit: int) -> None:
        self.append("rx", (qubit,), (theta,))

    def ry(self, theta: float, qubit: int) -> None:
        self.append("ry", (qubit,), (theta,))

    def rz(self, theta: float, qubit: int) -> None:
        self.append("rz", (qubit,), (theta,))

    def u3(self, theta: float, phi: float, lam: float, qubit: int) -> None:
        self.append("u3", (qubit,), (theta, phi, lam))

    def cx(self, control: int, target: int) -> None:
        self.append("cx", (control, target))

    def cz(self, a: int, b: int) -> None:
        self.append("cz", (a, b))

    def swap(self, a: int, b: int) -> None:
        self.append("swap", (a, b))

    def rzz(self, theta: float, a: int, b: int) -> None:
        self.append("rzz", (a, b), (theta,))

    def extend(self, other: "QuantumCircuit") -> None:
        """Append all instructions of ``other`` (same width required)."""
        if other.num_qubits > self.num_qubits:
            raise ValueError(
                f"cannot extend a {self.num_qubits}-qubit circuit with a "
                f"{other.num_qubits}-qubit circuit"
            )
        self.instructions.extend(other.instructions)

    # -- inspection -------------------------------------------------------

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def depth(self) -> int:
        """Circuit depth: the longest chain of dependent gates."""
        levels = [0] * self.num_qubits
        for inst in self.instructions:
            level = 1 + max(levels[q] for q in inst.qubits)
            for q in inst.qubits:
                levels[q] = level
        return max(levels, default=0)

    def count_ops(self) -> dict[str, int]:
        """Histogram of gate names."""
        counts: dict[str, int] = {}
        for inst in self.instructions:
            counts[inst.name] = counts.get(inst.name, 0) + 1
        return counts

    def two_qubit_gate_count(self) -> int:
        """Number of two-qubit gates (the dominant error source on NISQ)."""
        return sum(1 for inst in self.instructions if len(inst.qubits) == 2)

    def copy(self) -> "QuantumCircuit":
        """A deep-enough copy (instructions are immutable)."""
        return QuantumCircuit(self.num_qubits, list(self.instructions))

    def used_qubits(self) -> set[int]:
        """Qubits touched by at least one instruction."""
        used: set[int] = set()
        for inst in self.instructions:
            used.update(inst.qubits)
        return used

    # -- internals --------------------------------------------------------

    def _check_qubits(self, qubits: Iterable[int]) -> None:
        for q in qubits:
            if not 0 <= q < self.num_qubits:
                raise ValueError(f"qubit {q} out of range [0, {self.num_qubits})")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        ops = ", ".join(f"{k}:{v}" for k, v in sorted(self.count_ops().items()))
        return f"QuantumCircuit(num_qubits={self.num_qubits}, gates=[{ops}])"
