"""Low-level tensor kernels shared by the simulators.

States use the little-endian convention: basis index ``z`` encodes qubit
``q`` in bit ``q`` (``z >> q & 1``).  Viewed as a rank-``n`` tensor of shape
``(2,) * n``, qubit ``q`` therefore lives on axis ``n - 1 - q``.

Two-qubit gate matrices (see :mod:`repro.quantum.gates`) are written in the
basis ``|q1 q0>`` where ``q0`` is the *first* qubit argument, so the gate
tensor axes are ``(q1_out, q0_out, q1_in, q0_in)``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["apply_matrix", "apply_matrix_rho"]


def apply_matrix(
    state: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply ``matrix`` on ``qubits`` of a flat statevector.

    Returns a new flat array; the input is not modified.
    """
    k = len(qubits)
    if matrix.shape != (2**k, 2**k):
        raise ValueError(f"matrix shape {matrix.shape} does not act on {k} qubit(s)")
    tensor = state.reshape((2,) * num_qubits)
    # Gate tensor input axes are ordered most-significant-first, which for
    # our |q1 q0> convention means reversed(qubits).
    in_axes = [num_qubits - 1 - q for q in reversed(qubits)]
    gate = matrix.reshape((2,) * (2 * k))
    moved = np.tensordot(gate, tensor, axes=(list(range(k, 2 * k)), in_axes))
    # tensordot puts gate output axes first; restore them to in_axes.
    result = np.moveaxis(moved, range(k), in_axes)
    return np.ascontiguousarray(result).reshape(-1)


def apply_matrix_rho(
    rho: np.ndarray,
    matrix: np.ndarray,
    qubits: Sequence[int],
    num_qubits: int,
) -> np.ndarray:
    """Apply unitary conjugation ``U rho U^dagger`` on a density matrix.

    ``rho`` is the flat ``(2**n, 2**n)`` matrix.  Returns a new matrix.
    """
    k = len(qubits)
    dim = 2**num_qubits
    if rho.shape != (dim, dim):
        raise ValueError(f"rho shape {rho.shape} does not match {num_qubits} qubits")
    tensor = rho.reshape((2,) * (2 * num_qubits))
    row_axes = [num_qubits - 1 - q for q in reversed(qubits)]
    col_axes = [num_qubits + a for a in row_axes]
    gate = matrix.reshape((2,) * (2 * k))
    gate_conj = matrix.conj().reshape((2,) * (2 * k))
    # U rho: contract gate input axes with rho row axes.
    moved = np.tensordot(gate, tensor, axes=(list(range(k, 2 * k)), row_axes))
    tensor = np.moveaxis(moved, range(k), row_axes)
    # (U rho) U^dagger: contract conj(U) input axes with rho column axes.
    moved = np.tensordot(gate_conj, tensor, axes=(list(range(k, 2 * k)), col_axes))
    tensor = np.moveaxis(moved, range(k), col_axes)
    return np.ascontiguousarray(tensor).reshape(dim, dim)
