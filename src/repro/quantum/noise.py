"""Noise channels and device noise models.

The paper runs noisy simulations through Qiskit Aer noise models built from
IBM fake-backend calibration data.  This module provides the same pieces:

- :class:`QuantumError` — a CPTP channel in Kraus form, with an optional
  exact or twirled Pauli representation for trajectory sampling;
- constructors for the standard channels (depolarizing, amplitude/phase
  damping, thermal relaxation, Pauli);
- :class:`ReadoutError` — per-qubit assignment-error confusion matrices;
- :class:`NoiseModel` — maps gate names (and optionally qubit tuples) to the
  channels applied after each gate, plus readout errors.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.quantum.circuit import Instruction

__all__ = [
    "NoiseModel",
    "QuantumError",
    "ReadoutError",
    "amplitude_damping_error",
    "depolarizing_error",
    "pauli_error",
    "phase_damping_error",
    "thermal_relaxation_error",
]

_PAULI_1Q = {
    "I": np.eye(2, dtype=complex),
    "X": np.array([[0, 1], [1, 0]], dtype=complex),
    "Y": np.array([[0, -1j], [1j, 0]], dtype=complex),
    "Z": np.array([[1, 0], [0, -1]], dtype=complex),
}


def pauli_string_matrix(label: str) -> np.ndarray:
    """Kron-product matrix for a Pauli label like ``"XZ"``.

    The label is ordered most-significant qubit first, matching the two-qubit
    gate basis convention in :mod:`repro.quantum.gates`.
    """
    matrix = np.array([[1.0 + 0j]])
    for ch in label:
        matrix = np.kron(matrix, _PAULI_1Q[ch])
    return matrix


@dataclass
class QuantumError:
    """A noise channel on ``num_qubits`` qubits.

    ``kraus`` is always populated and is what the density-matrix simulator
    applies.  ``pauli_probs`` is populated when the channel is a Pauli
    channel (exactly or after twirling) and is what the trajectory simulator
    samples from: a dict mapping Pauli labels (e.g. ``"IX"``) to
    probabilities summing to 1 (the identity label carries the no-error
    weight).
    """

    kraus: list[np.ndarray]
    num_qubits: int
    pauli_probs: dict[str, float] | None = None

    def __post_init__(self) -> None:
        dim = 2**self.num_qubits
        total = np.zeros((dim, dim), dtype=complex)
        for k in self.kraus:
            if k.shape != (dim, dim):
                raise ValueError(f"Kraus operator shape {k.shape} != ({dim}, {dim})")
            total += k.conj().T @ k
        if not np.allclose(total, np.eye(dim), atol=1e-8):
            raise ValueError("Kraus operators do not satisfy the completeness relation")
        if self.pauli_probs is not None:
            s = sum(self.pauli_probs.values())
            if not math.isclose(s, 1.0, abs_tol=1e-8):
                raise ValueError(f"Pauli probabilities sum to {s}, expected 1")

    def to_pauli(self) -> dict[str, float]:
        """Pauli representation, twirling the channel if necessary.

        Pauli twirling replaces the channel ``E`` with the Pauli channel
        whose probabilities are ``p_P = sum_k |tr(P K_k)|^2 / d^2``.  For a
        channel that is already Pauli this is exact; for amplitude damping it
        is the standard approximation used in trajectory samplers.
        """
        if self.pauli_probs is not None:
            return dict(self.pauli_probs)
        dim = 2**self.num_qubits
        labels = ["".join(p) for p in itertools.product("IXYZ", repeat=self.num_qubits)]
        probs: dict[str, float] = {}
        for label in labels:
            pmat = pauli_string_matrix(label)
            weight = sum(abs(np.trace(pmat.conj().T @ k)) ** 2 for k in self.kraus)
            p = float(weight) / dim**2
            if p > 1e-15:
                probs[label] = p
        total = sum(probs.values())
        return {k: v / total for k, v in probs.items()}

    def compose(self, other: "QuantumError") -> "QuantumError":
        """Sequential composition ``other after self`` (same width)."""
        if other.num_qubits != self.num_qubits:
            raise ValueError("cannot compose errors of different widths")
        kraus = [b @ a for a in self.kraus for b in other.kraus]
        pauli = None
        if self.pauli_probs is not None and other.pauli_probs is not None:
            pauli = _compose_pauli(self.pauli_probs, other.pauli_probs)
        return QuantumError(kraus, self.num_qubits, pauli)


def _compose_pauli(a: dict[str, float], b: dict[str, float]) -> dict[str, float]:
    """Compose two Pauli channels (Pauli labels multiply up to phase)."""
    mult = {
        ("I", "I"): "I", ("I", "X"): "X", ("I", "Y"): "Y", ("I", "Z"): "Z",
        ("X", "I"): "X", ("X", "X"): "I", ("X", "Y"): "Z", ("X", "Z"): "Y",
        ("Y", "I"): "Y", ("Y", "X"): "Z", ("Y", "Y"): "I", ("Y", "Z"): "X",
        ("Z", "I"): "Z", ("Z", "X"): "Y", ("Z", "Y"): "X", ("Z", "Z"): "I",
    }
    out: dict[str, float] = {}
    for la, pa in a.items():
        for lb, pb in b.items():
            label = "".join(mult[(x, y)] for x, y in zip(la, lb))
            out[label] = out.get(label, 0.0) + pa * pb
    return out


def pauli_error(probs: dict[str, float]) -> QuantumError:
    """Pauli channel from ``{label: probability}`` (must sum to 1)."""
    if not probs:
        raise ValueError("probs must be non-empty")
    widths = {len(label) for label in probs}
    if len(widths) != 1:
        raise ValueError(f"inconsistent Pauli label widths: {widths}")
    num_qubits = widths.pop()
    total = sum(probs.values())
    if not math.isclose(total, 1.0, abs_tol=1e-8):
        raise ValueError(f"probabilities sum to {total}, expected 1")
    kraus = [
        math.sqrt(p) * pauli_string_matrix(label)
        for label, p in probs.items()
        if p > 0
    ]
    return QuantumError(kraus, num_qubits, dict(probs))


def depolarizing_error(param: float, num_qubits: int) -> QuantumError:
    """Depolarizing channel with error parameter ``param`` in [0, 1].

    With probability ``param`` the state is replaced by the maximally mixed
    state, implemented as the uniform non-identity Pauli channel.
    """
    if not 0.0 <= param <= 1.0:
        raise ValueError(f"param must be in [0, 1], got {param}")
    dim = 4**num_qubits
    labels = ["".join(p) for p in itertools.product("IXYZ", repeat=num_qubits)]
    p_each = param / dim
    probs = {label: p_each for label in labels}
    probs["I" * num_qubits] = 1.0 - param + p_each
    return pauli_error(probs)


def amplitude_damping_error(gamma: float) -> QuantumError:
    """Single-qubit amplitude damping (T1 decay) with rate ``gamma``."""
    if not 0.0 <= gamma <= 1.0:
        raise ValueError(f"gamma must be in [0, 1], got {gamma}")
    k0 = np.array([[1, 0], [0, math.sqrt(1 - gamma)]], dtype=complex)
    k1 = np.array([[0, math.sqrt(gamma)], [0, 0]], dtype=complex)
    return QuantumError([k0, k1], 1)


def phase_damping_error(lam: float) -> QuantumError:
    """Single-qubit phase damping (pure dephasing) with rate ``lam``."""
    if not 0.0 <= lam <= 1.0:
        raise ValueError(f"lambda must be in [0, 1], got {lam}")
    # Phase damping is the Pauli-Z channel with p_z = (1 - sqrt(1-lam)) / 2.
    p_z = (1.0 - math.sqrt(1.0 - lam)) / 2.0
    return pauli_error({"I": 1.0 - p_z, "Z": p_z})


def thermal_relaxation_error(t1: float, t2: float, gate_time: float) -> QuantumError:
    """Thermal relaxation during ``gate_time`` with times ``t1`` and ``t2``.

    Assumes excited-state population 0 (cold device).  ``t2 <= 2 * t1`` is
    required, as physically.  Returns amplitude damping composed with the
    residual pure dephasing.
    """
    if t1 <= 0 or t2 <= 0:
        raise ValueError("t1 and t2 must be positive")
    if t2 > 2 * t1 + 1e-12:
        raise ValueError(f"t2={t2} exceeds physical limit 2*t1={2 * t1}")
    if gate_time < 0:
        raise ValueError(f"gate_time must be non-negative, got {gate_time}")
    gamma = 1.0 - math.exp(-gate_time / t1)
    # Total dephasing exp(-t/T2) = exp(-t/(2 T1)) * sqrt(1 - lam_phi); the
    # exponents are combined before exponentiating to avoid underflow for
    # long gate times.
    ratio = math.exp(gate_time * (1.0 / (2.0 * t1) - 1.0 / t2))
    lam_phi = max(0.0, 1.0 - ratio**2)
    return amplitude_damping_error(gamma).compose(phase_damping_error(lam_phi))


@dataclass
class ReadoutError:
    """Measurement assignment error for one qubit.

    ``p01`` is P(read 1 | prepared 0); ``p10`` is P(read 0 | prepared 1).
    """

    p01: float
    p10: float

    def __post_init__(self) -> None:
        for name, p in (("p01", self.p01), ("p10", self.p10)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")

    @property
    def confusion_matrix(self) -> np.ndarray:
        """2x2 matrix ``M[observed, true]``."""
        return np.array(
            [[1 - self.p01, self.p10], [self.p01, 1 - self.p10]], dtype=float
        )


@dataclass
class NoiseModel:
    """Gate-level noise description.

    Errors attach by gate name (for all qubits) or by (name, qubits) pair;
    specific-qubit entries take precedence.  Readout errors attach per qubit.
    """

    _all_qubit_errors: dict[str, list[QuantumError]] = field(default_factory=dict)
    _local_errors: dict[tuple[str, tuple[int, ...]], list[QuantumError]] = field(
        default_factory=dict
    )
    _readout_errors: dict[int, ReadoutError] = field(default_factory=dict)

    def add_all_qubit_quantum_error(
        self, error: QuantumError, gate_names: str | Iterable[str]
    ) -> None:
        """Attach ``error`` after every occurrence of the named gates."""
        if isinstance(gate_names, str):
            gate_names = [gate_names]
        for name in gate_names:
            self._all_qubit_errors.setdefault(name, []).append(error)

    def add_quantum_error(
        self, error: QuantumError, gate_name: str, qubits: Sequence[int]
    ) -> None:
        """Attach ``error`` after ``gate_name`` on the specific ``qubits``."""
        key = (gate_name, tuple(int(q) for q in qubits))
        self._local_errors.setdefault(key, []).append(error)

    def add_readout_error(self, error: ReadoutError, qubit: int) -> None:
        self._readout_errors[int(qubit)] = error

    def errors_for(self, inst: Instruction) -> list[QuantumError]:
        """Channels to apply after ``inst`` (local entries override global)."""
        local = self._local_errors.get((inst.name, inst.qubits))
        if local is not None:
            return list(local)
        return list(self._all_qubit_errors.get(inst.name, []))

    def readout_error(self, qubit: int) -> ReadoutError | None:
        return self._readout_errors.get(qubit)

    @property
    def is_trivial(self) -> bool:
        """True when the model contains no errors at all."""
        return not (self._all_qubit_errors or self._local_errors or self._readout_errors)

    def noisy_gate_names(self) -> set[str]:
        names = set(self._all_qubit_errors)
        names.update(name for name, _ in self._local_errors)
        return names

    def apply_readout_to_probs(self, probs: np.ndarray, num_qubits: int) -> np.ndarray:
        """Push basis-state probabilities through the readout confusion maps.

        Applies each qubit's 2x2 confusion matrix as a stochastic map on the
        probability vector; qubits without readout error are untouched.
        """
        probs = np.asarray(probs, dtype=float)
        if probs.shape != (2**num_qubits,):
            raise ValueError(f"probs must have shape ({2**num_qubits},)")
        if not self._readout_errors:
            return probs.copy()
        tensor = probs.reshape((2,) * num_qubits)
        for qubit, error in self._readout_errors.items():
            if qubit >= num_qubits:
                continue
            axis = num_qubits - 1 - qubit
            tensor = np.moveaxis(
                np.tensordot(error.confusion_matrix, tensor, axes=([1], [axis])),
                0,
                axis,
            )
        return np.ascontiguousarray(tensor).reshape(-1)
