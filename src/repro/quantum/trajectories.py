"""Monte-Carlo Pauli-trajectory noisy simulation.

For circuits too wide for the density-matrix simulator, noise is sampled:
each trajectory runs the ideal statevector evolution with randomly injected
Pauli errors drawn from each gate's (possibly twirled) Pauli channel.  The
trajectory average converges to the twirled channel's density-matrix result;
for the depolarizing/dephasing noise dominating NISQ two-qubit gates the
twirl is exact.

Memory is ``O(2**n)`` per trajectory, so graphs in the paper's 7-20 node
range simulate comfortably on a laptop.
"""

from __future__ import annotations

import numpy as np

from repro.quantum._kernels import apply_matrix
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.gates import gate_matrix
from repro.quantum.noise import NoiseModel, QuantumError, pauli_string_matrix
from repro.utils.rng import as_generator

__all__ = ["TrajectorySimulator"]

_PAULI_CACHE: dict[str, np.ndarray] = {}


def _pauli_matrix(label: str) -> np.ndarray:
    if label not in _PAULI_CACHE:
        _PAULI_CACHE[label] = pauli_string_matrix(label)
    return _PAULI_CACHE[label]


class TrajectorySimulator:
    """Stochastic noisy simulator averaging over Pauli-error trajectories."""

    def __init__(self, trajectories: int = 16, max_qubits: int = 24) -> None:
        if trajectories < 1:
            raise ValueError(f"trajectories must be >= 1, got {trajectories}")
        self.trajectories = trajectories
        self.max_qubits = max_qubits

    def run_single(
        self,
        circuit: QuantumCircuit,
        noise_model: NoiseModel | None,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One noisy trajectory; returns the final statevector."""
        n = circuit.num_qubits
        if n > self.max_qubits:
            raise ValueError(f"circuit has {n} qubits, exceeding max_qubits={self.max_qubits}")
        state = np.zeros(2**n, dtype=complex)
        state[0] = 1.0
        pauli_cache: dict[int, list[tuple[list[str], np.ndarray]]] = {}
        for index, inst in enumerate(circuit):
            matrix = gate_matrix(inst.name, inst.params)
            state = apply_matrix(state, matrix, inst.qubits, n)
            if noise_model is None:
                continue
            errors = noise_model.errors_for(inst)
            if not errors:
                continue
            if index not in pauli_cache:
                pauli_cache[index] = [_pauli_table(e) for e in errors]
            for (labels, cum), error in zip(pauli_cache[index], errors):
                label = labels[int(np.searchsorted(cum, rng.random(), side="right"))]
                state = _inject_pauli(state, label, error, inst.qubits, n)
        return state

    def probabilities(
        self,
        circuit: QuantumCircuit,
        noise_model: NoiseModel | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> np.ndarray:
        """Trajectory-averaged measurement probabilities (with readout error)."""
        rng = as_generator(seed)
        n = circuit.num_qubits
        count = 1 if noise_model is None or noise_model.is_trivial else self.trajectories
        acc = np.zeros(2**n, dtype=float)
        for _ in range(count):
            state = self.run_single(circuit, noise_model, rng)
            acc += np.abs(state) ** 2
        probs = acc / count
        if noise_model is not None:
            probs = noise_model.apply_readout_to_probs(probs, n)
        return probs

    def expectation_diagonal(
        self,
        circuit: QuantumCircuit,
        diagonal: np.ndarray,
        noise_model: NoiseModel | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> float:
        """Trajectory-averaged expectation of a diagonal observable."""
        probs = self.probabilities(circuit, noise_model, seed)
        diagonal = np.asarray(diagonal, dtype=float)
        if diagonal.shape != probs.shape:
            raise ValueError(f"diagonal shape {diagonal.shape} != {probs.shape}")
        return float(probs @ diagonal)


def _pauli_table(error: QuantumError) -> tuple[list[str], np.ndarray]:
    """(labels, cumulative probabilities) for sampling from ``error``."""
    probs = error.to_pauli()
    labels = sorted(probs)
    cum = np.cumsum([probs[label] for label in labels])
    cum[-1] = 1.0 + 1e-12  # guard against float round-off in searchsorted
    return labels, cum


def _inject_pauli(
    state: np.ndarray,
    label: str,
    error: QuantumError,
    gate_qubits: tuple[int, ...],
    num_qubits: int,
) -> np.ndarray:
    """Apply a sampled Pauli ``label`` on the qubits the error acts on.

    A 1-qubit channel attached to a 2-qubit gate is applied to each gate
    qubit independently is NOT done here -- the sampled label's width always
    equals the error width; width-1 errors on 2-qubit gates target the first
    gate qubit, matching how such errors are registered by the backends
    (which attach one channel per gate qubit explicitly).
    """
    if set(label) == {"I"}:
        return state
    if error.num_qubits == len(gate_qubits):
        targets = gate_qubits
    elif error.num_qubits == 1:
        targets = (gate_qubits[0],)
    else:
        raise ValueError(
            f"cannot inject a {error.num_qubits}-qubit Pauli on gate qubits {gate_qubits}"
        )
    # Label is most-significant-first; matrix basis matches reversed targets.
    return apply_matrix(state, _pauli_matrix(label), targets, num_qubits)
