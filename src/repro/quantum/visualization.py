"""Plain-text circuit rendering.

:func:`draw` renders a :class:`~repro.quantum.circuit.QuantumCircuit` as an
ASCII diagram, one row per qubit, one column per dependency layer:

>>> from repro.quantum.circuit import QuantumCircuit
>>> qc = QuantumCircuit(2)
>>> qc.h(0)
>>> qc.cx(0, 1)
>>> print(draw(qc))
q0: -[H]----*---
q1: -------[X]--
"""

from __future__ import annotations

from repro.quantum.circuit import Instruction, QuantumCircuit

__all__ = ["draw"]

_MAX_COLUMNS = 80


def _cell(inst: Instruction, qubit: int) -> str:
    """The symbol drawn on ``qubit``'s wire for ``inst``."""
    name = inst.name
    if name == "cx":
        return "*" if qubit == inst.qubits[0] else "[X]"
    if name == "cz":
        return "*" if qubit == inst.qubits[0] else "[Z]"
    if name == "swap":
        return "x"
    if name == "rzz":
        return f"[ZZ({inst.params[0]:.2f})]"
    if inst.params:
        args = ",".join(f"{p:.2f}" for p in inst.params)
        return f"[{name.upper()}({args})]"
    return f"[{name.upper()}]"


def draw(circuit: QuantumCircuit, max_columns: int = _MAX_COLUMNS) -> str:
    """ASCII rendering of ``circuit``; long circuits wrap at ``max_columns``.

    Layers follow the same dependency rule as ``circuit.depth()``: gates
    sharing a qubit land in consecutive columns, independent gates share
    one.
    """
    n = circuit.num_qubits
    levels = [0] * n
    columns: list[dict[int, str]] = []
    for inst in circuit:
        level = max(levels[q] for q in inst.qubits)
        while len(columns) <= level:
            columns.append({})
        for q in inst.qubits:
            columns[level][q] = _cell(inst, q)
            levels[q] = level + 1

    if not columns:
        return "\n".join(f"q{q}: -" for q in range(n))

    widths = [max(len(text) for text in col.values()) for col in columns]
    rows = []
    for q in range(n):
        cells = [
            col.get(q, "").center(width, "-")
            for col, width in zip(columns, widths)
        ]
        rows.append(f"q{q}: -" + "--".join(cells) + "-")

    # Wrap wide diagrams into banks of columns.
    if all(len(row) <= max_columns for row in rows):
        return "\n".join(rows)
    banks: list[list[str]] = []
    start = 0
    while start < len(columns):
        stop = start
        width_budget = 6  # prefix allowance
        while stop < len(columns) and width_budget + widths[stop] + 2 <= max_columns:
            width_budget += widths[stop] + 2
            stop += 1
        stop = max(stop, start + 1)
        bank_rows = []
        for q in range(n):
            cells = [
                col.get(q, "").center(width, "-")
                for col, width in zip(columns[start:stop], widths[start:stop])
            ]
            bank_rows.append(f"q{q}: -" + "--".join(cells) + "-")
        banks.append(bank_rows)
        start = stop
    return "\n\n".join("\n".join(bank) for bank in banks)
