"""Device coupling maps and topology generators.

A :class:`CouplingMap` is an undirected connectivity graph over physical
qubits with an all-pairs shortest-path distance table (used by the SABRE
router).  Generators cover the topologies of the devices the paper touches:
IBM heavy-hex lattices (Falcon/Hummingbird/Eagle) and the Rigetti Aspen
octagonal lattice, plus simple line/ring/grid maps for tests.
"""

from __future__ import annotations

from collections.abc import Iterable

import networkx as nx
import numpy as np

__all__ = [
    "CouplingMap",
    "aspen_octagonal_map",
    "grid_map",
    "heavy_hex_map",
    "line_map",
    "ring_map",
]


class CouplingMap:
    """Undirected qubit connectivity with cached distances."""

    def __init__(self, edges: Iterable[tuple[int, int]], num_qubits: int | None = None):
        graph = nx.Graph()
        graph.add_edges_from((int(u), int(v)) for u, v in edges)
        if num_qubits is None:
            num_qubits = max(graph.nodes) + 1 if graph.nodes else 0
        graph.add_nodes_from(range(num_qubits))
        if graph.number_of_nodes() != num_qubits:
            raise ValueError("edge endpoints exceed num_qubits")
        if num_qubits > 1 and not nx.is_connected(graph):
            raise ValueError("coupling map must be connected")
        self.graph = graph
        self.num_qubits = num_qubits
        self._distance: np.ndarray | None = None

    @property
    def edges(self) -> list[tuple[int, int]]:
        return [(min(u, v), max(u, v)) for u, v in self.graph.edges()]

    def neighbors(self, qubit: int) -> list[int]:
        return sorted(self.graph.neighbors(qubit))

    def are_adjacent(self, a: int, b: int) -> bool:
        return self.graph.has_edge(a, b)

    @property
    def distance_matrix(self) -> np.ndarray:
        """All-pairs shortest-path distances, computed lazily once."""
        if self._distance is None:
            n = self.num_qubits
            dist = np.full((n, n), np.inf)
            for source, lengths in nx.all_pairs_shortest_path_length(self.graph):
                for target, d in lengths.items():
                    dist[source, target] = d
            self._distance = dist
        return self._distance

    def distance(self, a: int, b: int) -> int:
        return int(self.distance_matrix[a, b])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CouplingMap(num_qubits={self.num_qubits}, edges={len(self.edges)})"


def line_map(num_qubits: int) -> CouplingMap:
    """A 1-D chain of ``num_qubits`` qubits."""
    if num_qubits < 1:
        raise ValueError("num_qubits must be >= 1")
    return CouplingMap([(i, i + 1) for i in range(num_qubits - 1)], num_qubits)


def ring_map(num_qubits: int) -> CouplingMap:
    """A closed ring; requires at least 3 qubits."""
    if num_qubits < 3:
        raise ValueError("a ring needs at least 3 qubits")
    edges = [(i, (i + 1) % num_qubits) for i in range(num_qubits)]
    return CouplingMap(edges, num_qubits)


def grid_map(rows: int, cols: int) -> CouplingMap:
    """A rows x cols square lattice."""
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    edges = []
    for r in range(rows):
        for c in range(cols):
            q = r * cols + c
            if c + 1 < cols:
                edges.append((q, q + 1))
            if r + 1 < rows:
                edges.append((q, q + cols))
    return CouplingMap(edges, rows * cols)


def _trim_to_size(graph: nx.Graph, target: int) -> nx.Graph:
    """Remove non-cut vertices (highest label first) until ``target`` nodes.

    Every connected graph with >= 2 nodes has at least two non-articulation
    vertices, so this always terminates with a connected graph.
    """
    graph = nx.Graph(graph)
    while graph.number_of_nodes() > target:
        articulation = set(nx.articulation_points(graph))
        removable = [n for n in sorted(graph.nodes, reverse=True) if n not in articulation]
        graph.remove_node(removable[0])
    mapping = {node: index for index, node in enumerate(sorted(graph.nodes))}
    return nx.relabel_nodes(graph, mapping)


def heavy_hex_map(num_qubits: int) -> CouplingMap:
    """IBM-style heavy-hex lattice trimmed to exactly ``num_qubits``.

    The construction lays horizontal qubit chains and joins consecutive rows
    through bridge qubits every four columns (offset alternating per row),
    reproducing the degree <= 3 heavy-hex structure of Falcon (27),
    Hummingbird (65), and Eagle (127) processors.  The lattice is generated
    slightly oversized and trimmed by removing boundary qubits.
    """
    if num_qubits < 2:
        raise ValueError("num_qubits must be >= 2")
    # Pick a roughly square arrangement of rows/columns that overshoots.
    cols = max(4, int(round((num_qubits * 2) ** 0.5)))
    rows = 1
    while rows * cols + (rows - 1) * (cols // 4 + 1) < num_qubits:
        rows += 1
    graph = nx.Graph()
    index = 0
    row_ids: list[list[int]] = []
    for _ in range(rows):
        ids = list(range(index, index + cols))
        index += cols
        graph.add_nodes_from(ids)
        for a, b in zip(ids, ids[1:]):
            graph.add_edge(a, b)
        row_ids.append(ids)
    for r in range(rows - 1):
        offset = 0 if r % 2 == 0 else 2
        for c in range(offset, cols, 4):
            bridge = index
            index += 1
            graph.add_edge(row_ids[r][c], bridge)
            graph.add_edge(bridge, row_ids[r + 1][c])
    trimmed = _trim_to_size(graph, num_qubits)
    return CouplingMap(trimmed.edges, num_qubits)


def aspen_octagonal_map(num_qubits: int = 79, octagon_cols: int = 5, octagon_rows: int = 2) -> CouplingMap:
    """Rigetti Aspen-style lattice of linked octagons trimmed to size.

    Octagons are 8-qubit rings; horizontally adjacent rings connect at two
    points and vertically adjacent rings at two points, mirroring the
    Aspen-M family (Aspen-M-3 exposes 79 working qubits of an 80-qubit
    lattice).
    """
    total = 8 * octagon_cols * octagon_rows
    if num_qubits > total:
        raise ValueError(f"requested {num_qubits} qubits but lattice only has {total}")
    graph = nx.Graph()

    def qubit(row: int, col: int, pos: int) -> int:
        return 8 * (row * octagon_cols + col) + pos

    for row in range(octagon_rows):
        for col in range(octagon_cols):
            ring = [qubit(row, col, p) for p in range(8)]
            for a, b in zip(ring, ring[1:] + ring[:1]):
                graph.add_edge(a, b)
            if col + 1 < octagon_cols:
                graph.add_edge(qubit(row, col, 1), qubit(row, col + 1, 6))
                graph.add_edge(qubit(row, col, 2), qubit(row, col + 1, 5))
            if row + 1 < octagon_rows:
                graph.add_edge(qubit(row, col, 3), qubit(row + 1, col, 0))
                graph.add_edge(qubit(row, col, 4), qubit(row + 1, col, 7))
    trimmed = _trim_to_size(graph, num_qubits)
    return CouplingMap(trimmed.edges, num_qubits)


# The production 27-qubit IBM Falcon coupling map (Toronto/Kolkata/Mumbai/
# Cairo/Auckland all share it), transcribed from published device diagrams.
FALCON_27_EDGES: list[tuple[int, int]] = [
    (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8), (6, 7),
    (7, 10), (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15),
    (13, 14), (14, 16), (15, 18), (16, 19), (17, 18), (18, 21), (19, 20),
    (19, 22), (21, 23), (22, 25), (23, 24), (24, 25), (25, 26),
]

# The 16-qubit Falcon (Guadalupe) map.
GUADALUPE_16_EDGES: list[tuple[int, int]] = [
    (0, 1), (1, 2), (1, 4), (2, 3), (3, 5), (4, 7), (5, 8), (6, 7),
    (7, 10), (8, 9), (8, 11), (10, 12), (11, 14), (12, 13), (12, 15),
    (13, 14),
]

# The 14-qubit Melbourne (Canary) double-rail map.
MELBOURNE_14_EDGES: list[tuple[int, int]] = [
    (0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (8, 7), (9, 8),
    (10, 9), (11, 10), (12, 11), (13, 12), (1, 13), (2, 12), (3, 11),
    (4, 10), (5, 9), (6, 8),
]
