"""Fake device backends with coupling maps and calibration data.

The paper simulates against Qiskit fake backends (FakeToronto et al.) and
runs on real ibmq_kolkata / Rigetti Aspen-M-3 hardware.  Offline, we encode
each device as a :class:`FakeBackend`: topology, basis gates, gate times,
coherence times, and error rates in the ballpark of published calibrations.
``build_noise_model`` turns a backend into a
:class:`~repro.quantum.noise.NoiseModel` combining depolarizing gate error,
twirled thermal relaxation, and readout error.

Exact calibration values are irrelevant to the paper's claims -- what
matters is (a) realistic topology for the transpiler and (b) an error-rate
*ordering* across devices for the Fig. 24 sweep (Kolkata best ... Toronto /
Melbourne worst).  Both are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.quantum.coupling import (
    FALCON_27_EDGES,
    GUADALUPE_16_EDGES,
    MELBOURNE_14_EDGES,
    CouplingMap,
    aspen_octagonal_map,
    heavy_hex_map,
)
from repro.quantum.noise import (
    NoiseModel,
    ReadoutError,
    _compose_pauli,
    depolarizing_error,
    pauli_error,
    thermal_relaxation_error,
)

__all__ = ["FakeBackend", "get_backend", "list_backends"]

_SINGLE_QUBIT_GATES = ("x", "sx", "rz", "rx", "ry", "h", "u3")
_TWO_QUBIT_GATES = ("cx", "cz", "rzz", "swap")


@dataclass
class FakeBackend:
    """A quantum device description sufficient for noisy simulation.

    Times are in seconds; error rates are per-gate probabilities.
    """

    name: str
    coupling_map: CouplingMap
    error_1q: float
    error_2q: float
    error_readout: float
    t1: float = 110e-6
    t2: float = 90e-6
    time_1q: float = 35e-9
    time_2q: float = 350e-9
    time_readout: float = 700e-9
    basis_gates: tuple[str, ...] = ("rz", "sx", "x", "cx")
    description: str = ""
    _noise_model: NoiseModel | None = field(default=None, repr=False, compare=False)

    @property
    def num_qubits(self) -> int:
        return self.coupling_map.num_qubits

    def build_noise_model(self) -> NoiseModel:
        """Noise model: depolarizing + twirled relaxation + readout error.

        The result is cached; it contains only Pauli channels, so both the
        density-matrix and trajectory simulators handle it (for trajectories
        the Pauli form is exact for this model, no further twirl needed).
        """
        if self._noise_model is not None:
            return self._noise_model
        model = NoiseModel()
        relax_1q = thermal_relaxation_error(self.t1, self.t2, self.time_1q).to_pauli()
        relax_2q = thermal_relaxation_error(self.t1, self.t2, self.time_2q).to_pauli()

        probs_1q = _compose_pauli(depolarizing_error(self.error_1q, 1).to_pauli(), relax_1q)
        # rz is virtual (frame change) on IBM hardware: error-free.
        noisy_1q = tuple(g for g in _SINGLE_QUBIT_GATES if g != "rz")
        model.add_all_qubit_quantum_error(pauli_error(probs_1q), noisy_1q)

        relax_2q_pair = _tensor_pauli(relax_2q, relax_2q)
        probs_2q = _compose_pauli(depolarizing_error(self.error_2q, 2).to_pauli(), relax_2q_pair)
        model.add_all_qubit_quantum_error(pauli_error(probs_2q), _TWO_QUBIT_GATES)

        readout = ReadoutError(p01=self.error_readout, p10=self.error_readout)
        for qubit in range(self.num_qubits):
            model.add_readout_error(readout, qubit)
        self._noise_model = model
        return model

    def gate_time(self, gate_name: str) -> float:
        """Duration of one gate, used by the throughput model."""
        if gate_name in _TWO_QUBIT_GATES:
            return self.time_2q
        if gate_name in _SINGLE_QUBIT_GATES:
            return self.time_1q
        raise KeyError(f"unknown gate {gate_name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FakeBackend({self.name!r}, qubits={self.num_qubits})"


def _tensor_pauli(a: dict[str, float], b: dict[str, float]) -> dict[str, float]:
    """Tensor product of two Pauli channels (labels concatenate)."""
    out: dict[str, float] = {}
    for la, pa in a.items():
        for lb, pb in b.items():
            out[la + lb] = out.get(la + lb, 0.0) + pa * pb
    return out


def _falcon(name: str, e1: float, e2: float, ro: float, t1: float, t2: float,
            description: str) -> FakeBackend:
    return FakeBackend(
        name=name,
        coupling_map=CouplingMap(FALCON_27_EDGES, 27),
        error_1q=e1,
        error_2q=e2,
        error_readout=ro,
        t1=t1,
        t2=t2,
        description=description,
    )


def _registry() -> dict[str, FakeBackend]:
    backends = [
        _falcon("kolkata", 2.3e-4, 7.5e-3, 1.1e-2, 120e-6, 100e-6,
                "27-qubit IBM Falcon r5.11; among the lowest-error IBM devices"),
        _falcon("auckland", 2.6e-4, 8.5e-3, 1.3e-2, 115e-6, 95e-6,
                "27-qubit IBM Falcon r5.11"),
        _falcon("cairo", 3.0e-4, 9.5e-3, 1.6e-2, 105e-6, 85e-6,
                "27-qubit IBM Falcon r5.11"),
        _falcon("mumbai", 3.6e-4, 1.1e-2, 2.0e-2, 100e-6, 80e-6,
                "27-qubit IBM Falcon r5.10"),
        _falcon("toronto", 7.0e-4, 1.7e-2, 3.3e-2, 85e-6, 65e-6,
                "27-qubit IBM Falcon r4 (retired); substantially higher errors"),
        FakeBackend(
            name="guadalupe",
            coupling_map=CouplingMap(GUADALUPE_16_EDGES, 16),
            error_1q=4.0e-4, error_2q=1.2e-2, error_readout=2.3e-2,
            t1=95e-6, t2=80e-6,
            description="16-qubit IBM Falcon r4P",
        ),
        FakeBackend(
            name="melbourne",
            coupling_map=CouplingMap(MELBOURNE_14_EDGES, 14),
            error_1q=1.1e-3, error_2q=2.6e-2, error_readout=4.2e-2,
            t1=55e-6, t2=60e-6,
            description="14-qubit IBM Canary (retired); highest error rates",
        ),
        FakeBackend(
            name="eagle_33",
            coupling_map=heavy_hex_map(33),
            error_1q=2.8e-4, error_2q=9.0e-3, error_readout=1.4e-2,
            description="33-qubit Eagle-class heavy-hex device (Fig. 25)",
        ),
        FakeBackend(
            name="hummingbird_65",
            coupling_map=heavy_hex_map(65),
            error_1q=4.5e-4, error_2q=1.3e-2, error_readout=2.4e-2,
            description="65-qubit IBM Hummingbird r2 heavy-hex",
        ),
        FakeBackend(
            name="eagle_127",
            coupling_map=heavy_hex_map(127),
            error_1q=2.5e-4, error_2q=8.0e-3, error_readout=1.2e-2,
            description="127-qubit IBM Eagle r3 heavy-hex",
        ),
        FakeBackend(
            name="sherbrooke",
            coupling_map=heavy_hex_map(127),
            error_1q=2.2e-4, error_2q=7.4e-3, error_readout=1.1e-2,
            t1=260e-6, t2=180e-6,
            time_2q=533e-9,
            description="127-qubit IBM Eagle r3; used for the Fig. 18 runtime anchor",
        ),
        FakeBackend(
            name="aspen_m3",
            coupling_map=aspen_octagonal_map(79),
            error_1q=1.6e-3, error_2q=2.9e-2, error_readout=5.0e-2,
            t1=25e-6, t2=20e-6,
            time_1q=40e-9, time_2q=240e-9,
            basis_gates=("rz", "rx", "cz"),
            description="79-qubit Rigetti Aspen-M-3 octagonal lattice",
        ),
    ]
    return {b.name: b for b in backends}


_BACKENDS = _registry()


def list_backends() -> list[str]:
    """Names of all registered fake backends."""
    return sorted(_BACKENDS)


def get_backend(name: str) -> FakeBackend:
    """Look up a fake backend by name (see :func:`list_backends`)."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise KeyError(
            f"unknown backend {name!r}; available: {', '.join(list_backends())}"
        ) from None
