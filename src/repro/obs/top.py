"""``red-qaoa top``: a live terminal dashboard for a serve daemon.

Polls the daemon's ``status`` / ``health`` protocol verbs (one socket
round-trip each per frame) and renders a plain-ANSI dashboard:

- header: daemon version / pid / uptime / drain state and the current
  health verdict (with its reasons when not ok);
- throughput: jobs, annealing steps, and light-cone points per second,
  computed from counter deltas between consecutive frames;
- queue: depth / running / completed / dead plus a per-shard depth bar;
- workers: per-worker liveness and held claim, respawn count;
- latency: p50 / p90 / p99 estimates from the job and queue-wait
  histograms' bucket counts;
- events: the daemon's most recent log events.

``render_frame`` is a pure function of two samples (previous, current),
so tests drive it with canned replies and never need a TTY; the CLI loop
(:func:`run_top`) just clears the screen and reprints.  ``--once`` prints
a single frame and exits -- scripts and CI can grab a dashboard snapshot
without a terminal.

Reading ``status`` and ``health`` takes the daemon's lock exactly like
any client; the dashboard can change no result bit.
"""

from __future__ import annotations

import sys
import time

from repro.obs.metrics import quantile_from_buckets
from repro.serve.client import ServeClient

__all__ = ["Top", "render_frame", "run_top"]

_CLEAR = "\x1b[2J\x1b[H"  # clear screen + home
_BOLD = "\x1b[1m"
_DIM = "\x1b[2m"
_RED = "\x1b[31m"
_GREEN = "\x1b[32m"
_YELLOW = "\x1b[33m"
_RESET = "\x1b[0m"

_VERDICT_COLOR = {"ok": _GREEN, "degraded": _YELLOW, "failing": _RED}

#: Counters whose per-frame deltas become the throughput panel.
_RATES = (
    ("jobs/s", "redqaoa_jobs_completed_total"),
    ("SA steps/s", "redqaoa_sa_steps_total"),
    ("LC points/s", "redqaoa_lightcone_points_total"),
)

#: Histograms whose quantiles become the latency panel.
_LATENCIES = (
    ("job", "redqaoa_job_seconds"),
    ("queue wait", "redqaoa_queue_wait_seconds"),
)


class Top:
    """Sample a daemon and render dashboard frames."""

    def __init__(self, socket_path, color: bool = True, timeout: float = 10.0) -> None:
        self.client = ServeClient(socket_path, timeout=timeout)
        self.color = color
        self._previous: dict | None = None

    def sample(self) -> dict:
        """One poll: status + health replies plus a monotonic stamp."""
        return {
            "monotonic": time.monotonic(),
            "status": self.client.status(),
            "health": self.client.health(),
        }

    def frame(self) -> str:
        """Poll once and render against the previous poll."""
        current = self.sample()
        text = render_frame(current, self._previous, color=self.color)
        self._previous = current
        return text


def _paint(text: str, code: str, color: bool) -> str:
    return f"{code}{text}{_RESET}" if color else text


def _fmt_rate(value: float) -> str:
    if value >= 1000:
        return f"{value:,.0f}"
    if value >= 10:
        return f"{value:.1f}"
    return f"{value:.2f}"


def _fmt_seconds(value: float | None) -> str:
    if value is None:
        return "--"
    if value < 0.001:
        return f"{value * 1e6:.0f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.2f}s"


def _fmt_uptime(seconds: float) -> str:
    seconds = int(seconds)
    hours, rest = divmod(seconds, 3600)
    minutes, secs = divmod(rest, 60)
    if hours:
        return f"{hours}h{minutes:02d}m{secs:02d}s"
    if minutes:
        return f"{minutes}m{secs:02d}s"
    return f"{secs}s"


def render_frame(current: dict, previous: dict | None = None, color: bool = True) -> str:
    """One dashboard frame from a current (and optional previous) sample."""
    status = current["status"]
    health = current["health"].get("health", {})
    events = current["health"].get("events", [])
    queue = status.get("queue", {})
    workers = status.get("workers", {})
    metrics = status.get("metrics", {})
    counters = metrics.get("counters", {})
    histograms = metrics.get("histograms", {})

    lines: list[str] = []
    verdict = health.get("status", "unknown")
    verdict_text = _paint(
        verdict.upper(), _VERDICT_COLOR.get(verdict, _YELLOW) + _BOLD, color
    )
    draining = " draining" if status.get("draining") else ""
    lines.append(
        _paint("red-qaoa top", _BOLD, color)
        + f" -- v{status.get('version', '?')}"
        + f" pid {status.get('pid', '?')}"
        + f" up {_fmt_uptime(status.get('uptime', 0.0))}"
        + f"{draining} -- health {verdict_text}"
    )
    for reason in health.get("reasons", []):
        mark = _RED if reason.get("severity") == "failing" else _YELLOW
        lines.append("  " + _paint(f"! {reason.get('detail', '')}", mark, color))
    lines.append("")

    # -- throughput (needs two frames) ---------------------------------------
    parts = []
    if previous is not None:
        elapsed = current["monotonic"] - previous["monotonic"]
        before = previous["status"].get("metrics", {}).get("counters", {})
        if elapsed > 0:
            for label, name in _RATES:
                v0, v1 = before.get(name), counters.get(name)
                if v0 is not None and v1 is not None and v1 >= v0:
                    parts.append(f"{label} {_fmt_rate((v1 - v0) / elapsed)}")
    lines.append(
        _paint("throughput", _BOLD, color)
        + "  "
        + ("  ".join(parts) if parts else _paint("(one more frame...)", _DIM, color))
    )

    # -- queue ---------------------------------------------------------------
    lines.append(
        _paint("queue", _BOLD, color)
        + f"       depth {queue.get('depth', 0)}"
        + f"  running {queue.get('running', 0)}"
        + f"  completed {queue.get('completed', 0)}"
        + f"  dead {queue.get('dead', 0)}"
        + f"  requeues {queue.get('requeues', 0)}"
    )
    depths = queue.get("shard_depths", {})
    if depths:
        peak = max(depths.values())
        for shard, depth in sorted(depths.items()):
            bar = "#" * max(1, round(24 * depth / peak)) if peak else ""
            lines.append(f"  shard {shard}  {depth:>5}  {_paint(bar, _DIM, color)}")

    # -- workers -------------------------------------------------------------
    states = workers.get("states", [])
    alive = sum(1 for s in states if s.get("alive"))
    busy = sum(1 for s in states if s.get("claim") is not None)
    lines.append(
        _paint("workers", _BOLD, color)
        + f"     {alive}/{len(states) or workers.get('count', 0)} alive"
        + f"  {busy} busy"
        + f"  respawns {workers.get('respawns', 0)}"
    )
    for state in states:
        claim = state.get("claim")
        verb = f"claim {claim}" if claim is not None else "idle"
        health_mark = "" if state.get("alive") else _paint(" DEAD", _RED, color)
        lines.append(f"  w{state.get('id')}  pid {state.get('pid')}  {verb}{health_mark}")

    # -- latency -------------------------------------------------------------
    parts = []
    for label, name in _LATENCIES:
        data = histograms.get(name)
        if not data or not sum(data.get("counts", [])):
            continue
        quantiles = [
            _fmt_seconds(quantile_from_buckets(data["buckets"], data["counts"], q))
            for q in (0.5, 0.9, 0.99)
        ]
        parts.append(f"{label} p50/p90/p99 {'/'.join(quantiles)}")
    if parts:
        lines.append(_paint("latency", _BOLD, color) + "     " + "  ".join(parts))

    # -- events --------------------------------------------------------------
    if events:
        lines.append(_paint("events", _BOLD, color))
        for event in events[-6:]:
            extra = " ".join(
                f"{key}={value}"
                for key, value in sorted(event.items())
                if key not in ("level", "event", "uptime")
            )
            mark = _RED if event.get("level") == "error" else (
                _YELLOW if event.get("level") == "warning" else _DIM
            )
            lines.append(
                "  "
                + _paint(
                    f"[{event.get('uptime', 0.0):9.3f}] {event.get('event')}"
                    + (f" {extra}" if extra else ""),
                    mark,
                    color,
                )
            )
    return "\n".join(lines) + "\n"


def run_top(
    socket_path,
    interval: float = 2.0,
    once: bool = False,
    color: bool | None = None,
    stream=None,
) -> int:
    """The ``red-qaoa top`` loop; returns a process exit code."""
    stream = stream if stream is not None else sys.stdout
    if color is None:
        color = bool(getattr(stream, "isatty", lambda: False)())
    top = Top(socket_path, color=color)
    if once:
        stream.write(top.frame())
        stream.flush()
        return 0
    try:
        while True:
            frame = top.frame()
            stream.write(_CLEAR + frame)
            stream.flush()
            time.sleep(interval)
    except KeyboardInterrupt:
        stream.write("\n")
        return 0
