"""Health verdicts for the serve daemon: ok / degraded / failing, with reasons.

The daemon's counters say what happened; nothing said whether the daemon
is *well*.  :class:`HealthMonitor` evaluates live queue/pool/claim state
into one machine-readable verdict, in the spirit of assertion-based
monitors that derive health from counters rather than log archaeology:

- **stuck-shard watchdog**: a claimed shard with unresolved jobs and no
  landed (or failed) result for more than ``stuck_after`` seconds is
  *stuck* -- an event is logged, a counter increments, and (opt-in,
  ``requeue_stuck=True``) the holding worker is killed so the existing
  crash path requeues the shard under the normal attempt accounting;
- **worker liveness**: dead-but-not-yet-respawned workers degrade; a
  pool with zero live workers and queued work is failing;
- **incident memory**: crashes, requeues, and dead letters observed in
  the last ``incident_window`` seconds degrade -- the monitor remembers
  what just happened even after the pool recovered, so a scraper polling
  every few seconds cannot miss a crash that healed in milliseconds;
- **dead-letter / requeue rates**: lifetime ratios against completions
  past their thresholds degrade (a poison-pill-heavy workload is not
  healthy even when the queue keeps moving).

The verdict is the worst individual check: any failing check fails the
daemon, else any degraded check degrades it, else it is ok.  Every
reason is a dict with ``check`` / ``severity`` / ``detail`` so
dashboards and scripts can dispatch on it without parsing prose.

Evaluation only *reads* scheduling state (plus the opt-in watchdog kick,
which reuses the crash-recovery path); results remain bit-identical with
the monitor on, off, or kicking.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

from repro.obs.metrics import REGISTRY

__all__ = [
    "HEALTH_DEGRADED",
    "HEALTH_FAILING",
    "HEALTH_OK",
    "HealthMonitor",
    "HealthReport",
]

HEALTH_OK = "ok"
HEALTH_DEGRADED = "degraded"
HEALTH_FAILING = "failing"

_SEVERITY_RANK = {HEALTH_OK: 0, HEALTH_DEGRADED: 1, HEALTH_FAILING: 2}
_STATUS_VALUE = {HEALTH_OK: 0.0, HEALTH_DEGRADED: 1.0, HEALTH_FAILING: 2.0}

_CHECKS_TOTAL = REGISTRY.counter(
    "redqaoa_health_checks_total", "health evaluations performed"
)
_STUCK_TOTAL = REGISTRY.counter(
    "redqaoa_health_stuck_shards_total", "claims flagged stuck by the watchdog"
)
_WATCHDOG_KICKS = REGISTRY.counter(
    "redqaoa_health_watchdog_kicks_total",
    "workers killed by the stuck-shard watchdog to force a requeue",
)
_STATUS = REGISTRY.gauge(
    "redqaoa_health_status", "last health verdict (0 ok, 1 degraded, 2 failing)"
)


@dataclass
class HealthReport:
    """One evaluation: the verdict, per-check statuses, and the reasons."""

    status: str
    checks: dict[str, str]
    reasons: list[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == HEALTH_OK

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "checks": dict(self.checks),
            "reasons": [dict(reason) for reason in self.reasons],
        }


class HealthMonitor:
    """Evaluate queue + pool + claim state into a :class:`HealthReport`.

    Parameters
    ----------
    queue:
        The daemon's :class:`~repro.serve.queue.ShardedJobQueue`.
    pool:
        The worker pool (``worker_states()`` / optional ``kick()``).
    claims:
        The daemon-owned ``{claim_id: ShardClaim}`` map of outstanding
        claims (the same dict the pump resolves into).
    stuck_after:
        Watchdog deadline in seconds: a claim with unresolved jobs and no
        progress for this long is stuck.
    incident_window:
        How long a crash/requeue/dead-letter keeps the verdict degraded
        after the fact.
    requeue_stuck:
        Kill the worker holding a stuck claim so the crash path requeues
        it (bounded by the queue's normal attempt accounting).  Off by
        default: detection is always safe, intervention is a policy.
    dead_letter_threshold / requeue_threshold:
        Lifetime ``dead/(dead+completed)`` and
        ``requeues/(requeues+completed)`` ratios beyond which the
        workload itself is flagged.  Evaluated only once ``min_samples``
        jobs have resolved -- one early crash must not poison the
        lifetime rate of a daemon that then runs clean for hours (the
        incident check already covers the recent past).

    The caller is responsible for holding whatever lock guards ``queue``
    and ``claims`` during :meth:`check` -- the daemon evaluates under its
    own lock, exactly like ``status``.
    """

    def __init__(
        self,
        queue,
        pool,
        claims: dict,
        stuck_after: float = 300.0,
        incident_window: float = 60.0,
        requeue_stuck: bool = False,
        dead_letter_threshold: float = 0.05,
        requeue_threshold: float = 0.25,
        min_samples: int = 10,
        log=None,
    ) -> None:
        if stuck_after <= 0:
            raise ValueError(f"stuck_after must be > 0, got {stuck_after}")
        if incident_window <= 0:
            raise ValueError(f"incident_window must be > 0, got {incident_window}")
        self.queue = queue
        self.pool = pool
        self.claims = claims
        self.stuck_after = float(stuck_after)
        self.incident_window = float(incident_window)
        self.requeue_stuck = bool(requeue_stuck)
        self.dead_letter_threshold = float(dead_letter_threshold)
        self.requeue_threshold = float(requeue_threshold)
        self.min_samples = int(min_samples)
        self.log = log
        self._last_counts = {"crashes": 0, "requeues": 0, "dead": 0}
        self._incidents: deque = deque(maxlen=256)  # (monotonic, kind, amount)
        self._flagged_stuck: set[int] = set()  # claim ids already eventized

    # -- evaluation ----------------------------------------------------------

    def check(self) -> HealthReport:
        """One evaluation; cheap enough to run every pump tick."""
        _CHECKS_TOTAL.inc()
        now = time.monotonic()
        now_ns = time.perf_counter_ns()
        self._observe_incidents(now)

        checks: dict[str, str] = {}
        reasons: list[dict] = []

        def flag(check: str, severity: str, detail: str, **extra) -> None:
            checks[check] = _worse(checks.get(check, HEALTH_OK), severity)
            reasons.append(
                {"check": check, "severity": severity, "detail": detail, **extra}
            )

        # -- worker liveness -------------------------------------------------
        states = self.pool.worker_states()
        alive = sum(1 for state in states if state["alive"])
        checks["workers"] = HEALTH_OK
        if alive == 0 and (self.queue.depth or self.queue.num_running):
            flag(
                "workers",
                HEALTH_FAILING,
                f"no live workers with {self.queue.depth} queued and "
                f"{self.queue.num_running} running jobs",
                alive=0,
                configured=len(states),
            )
        elif alive < len(states):
            dead_pids = [s["pid"] for s in states if not s["alive"]]
            flag(
                "workers",
                HEALTH_DEGRADED,
                f"{len(states) - alive} of {len(states)} workers dead "
                "(respawn pending)",
                alive=alive,
                configured=len(states),
                dead_pids=dead_pids,
            )

        # -- stuck-shard watchdog --------------------------------------------
        checks.setdefault("stuck_shards", HEALTH_OK)
        live_claim_ids = set()
        for claim in list(self.claims.values()):
            live_claim_ids.add(claim.id)
            if not claim.unresolved():
                continue
            last_progress = max(claim.claimed_ns, claim.progress_ns)
            age = (now_ns - last_progress) / 1e9
            if age < self.stuck_after:
                continue
            severity = (
                HEALTH_FAILING if age >= 3.0 * self.stuck_after else HEALTH_DEGRADED
            )
            flag(
                "stuck_shards",
                severity,
                f"claim {claim.id} (shard {claim.shard!r}) has "
                f"{len(claim.unresolved())} unresolved jobs and no result "
                f"for {age:.1f}s (deadline {self.stuck_after:.1f}s)",
                claim=claim.id,
                shard=claim.shard,
                stalled_seconds=round(age, 3),
            )
            if claim.id not in self._flagged_stuck:
                self._flagged_stuck.add(claim.id)
                _STUCK_TOTAL.inc()
                if self.log is not None:
                    self.log.warning(
                        "stuck_shard",
                        claim=claim.id,
                        shard=claim.shard,
                        stalled_seconds=round(age, 3),
                        unresolved=len(claim.unresolved()),
                    )
                if self.requeue_stuck and self.pool.kick(claim.id):
                    _WATCHDOG_KICKS.inc()
                    if self.log is not None:
                        self.log.warning(
                            "watchdog_kick", claim=claim.id, shard=claim.shard
                        )
        self._flagged_stuck &= live_claim_ids  # resolved claims can re-trip later

        # -- recent incidents ------------------------------------------------
        checks.setdefault("incidents", HEALTH_OK)
        horizon = now - self.incident_window
        recent: dict[str, int] = {}
        for stamp, kind, amount in self._incidents:
            if stamp >= horizon:
                recent[kind] = recent.get(kind, 0) + amount
        if recent:
            detail = ", ".join(
                f"{count} {kind}" for kind, count in sorted(recent.items())
            )
            flag(
                "incidents",
                HEALTH_DEGRADED,
                f"recent incidents ({self.incident_window:.0f}s window): {detail}",
                **recent,
            )

        # -- lifetime failure rates ------------------------------------------
        completed = len(self.queue.completed)
        checks.setdefault("dead_letters", HEALTH_OK)
        dead = len(self.queue.dead)
        if dead and dead + completed >= self.min_samples:
            rate = dead / (dead + completed)
            if rate >= self.dead_letter_threshold:
                flag(
                    "dead_letters",
                    HEALTH_DEGRADED,
                    f"{dead} dead letters = {rate:.1%} of resolved jobs "
                    f"(threshold {self.dead_letter_threshold:.0%})",
                    dead=dead,
                    rate=round(rate, 4),
                )
        checks.setdefault("requeue_rate", HEALTH_OK)
        requeues = getattr(self.queue, "requeues", 0)
        if requeues and requeues + completed >= self.min_samples:
            rate = requeues / (requeues + completed)
            if rate >= self.requeue_threshold:
                flag(
                    "requeue_rate",
                    HEALTH_DEGRADED,
                    f"{requeues} requeues = {rate:.1%} of executions "
                    f"(threshold {self.requeue_threshold:.0%})",
                    requeues=requeues,
                    rate=round(rate, 4),
                )

        status = HEALTH_OK
        for value in checks.values():
            status = _worse(status, value)
        _STATUS.set(_STATUS_VALUE[status])
        return HealthReport(status=status, checks=checks, reasons=reasons)

    # -- incident memory -----------------------------------------------------

    def _observe_incidents(self, now: float) -> None:
        """Diff the queue's incident counters; remember when they moved."""
        current = {
            "crashes": self.queue.crashes,
            "requeues": getattr(self.queue, "requeues", 0),
            "dead": len(self.queue.dead),
        }
        for kind, value in current.items():
            delta = value - self._last_counts[kind]
            if delta > 0:
                self._incidents.append((now, kind, delta))
        self._last_counts = current


def _worse(a: str, b: str) -> str:
    return a if _SEVERITY_RANK[a] >= _SEVERITY_RANK[b] else b
