"""Noise-aware benchmark regression gating (``red-qaoa bench compare``).

The repo accumulated one ``BENCH_*.json`` per PR, each with its own
shape, and nothing ever *compared* them -- a 30% throughput cliff would
ship silently.  This module turns those artifacts into a gate:

- :func:`extract_metrics` recognises each recorded BENCH shape (PR 3
  micro-benchmarks, PR 4 quality ratios, PR 5 batch speedup, PR 6 serve
  throughput) and normalises it to named **metrics**, each with a value,
  a direction (``higher``/``lower`` is better), and a **kind**:

  ``rate``
      wall-clock-derived throughput/speedup -- noisy on shared CI
      hardware, gated with a wide default floor (25%);
  ``quality``
      deterministic algorithmic ratios (approximation/AND ratios) --
      tighter floor (5%);
  ``exact``
      booleans and exact counts (bit-identical flags) -- zero floor, any
      change is a regression.

- :func:`compare` walks records chronologically keeping a per-metric
  *last-seen baseline* (records carry disjoint metric sets -- a sparse
  trajectory, not a dense matrix) and flags direction-adjusted relative
  drops beyond the metric's **noise floor**.  Floors come from recorded
  run-to-run dispersion where history has it (``max(5%, 2 * cv)`` over a
  baseline's samples) and from the static per-kind defaults elsewhere.

- PR 6 daemon rows flagged ``oversubscribed`` (more workers than cores)
  are excluded from throughput gating entirely, as that BENCH records.

``red-qaoa bench compare`` exits nonzero on any regression (or zero with
``--advisory``); ``red-qaoa bench record`` appends a normalised record to
a trajectory JSONL so future runs compare against it.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path

__all__ = [
    "DEFAULT_FLOORS",
    "REGRESS_SCHEMA",
    "append_record",
    "compare",
    "extract_metrics",
    "load_records",
    "make_record",
    "metrics_from_history",
    "noise_floor",
]

REGRESS_SCHEMA = 1

#: Static relative noise floors by metric kind (fractions).
DEFAULT_FLOORS = {"rate": 0.25, "quality": 0.05, "exact": 0.0}


def _metric(value, kind: str, direction: str = "higher", samples=None) -> dict:
    metric = {"value": float(value), "kind": kind, "direction": direction}
    if samples:
        metric["samples"] = [float(sample) for sample in samples]
    return metric


# -- BENCH shape recognition --------------------------------------------------


def extract_metrics(payload: dict, source: str = "") -> dict[str, dict]:
    """Normalise one BENCH payload into named metrics; ``{}`` if unrecognised."""
    if not isinstance(payload, dict):
        return {}
    if "metrics" in payload and isinstance(payload["metrics"], dict):
        # Already-normalised trajectory record: pass its metrics through.
        return {
            name: dict(metric)
            for name, metric in payload["metrics"].items()
            if isinstance(metric, dict) and "value" in metric
        }
    metrics: dict[str, dict] = {}
    if "sa_reducer" in payload:  # PR 3 micro-benchmarks
        for size, row in payload["sa_reducer"].items():
            metrics[f"sa_steps_per_sec_n{size}"] = _metric(
                row["incremental_steps_per_sec"], "rate"
            )
        lightcone = payload.get("lightcone", {})
        if "plan_points_per_sec" in lightcone:
            metrics["lightcone_points_per_sec"] = _metric(
                lightcone["plan_points_per_sec"], "rate"
            )
    elif "daemon" in payload and isinstance(payload.get("daemon"), list):  # PR 6
        for row in payload["daemon"]:
            if row.get("oversubscribed"):
                continue  # recorded as meaningless for throughput gating
            metrics[f"serve_jobs_per_sec_w{row['workers']}"] = _metric(
                row["jobs_per_sec"], "rate"
            )
        flag = payload.get("bit_identical_all_worker_counts_vs_sequential")
        if flag is not None:
            metrics["serve_bit_identical"] = _metric(1.0 if flag else 0.0, "exact")
    elif "bit_identical_batched_vs_sequential" in payload:  # PR 5
        metrics["batch_speedup"] = _metric(payload["speedup"], "rate")
        for key in (
            "bit_identical_batched_vs_sequential",
            "bit_identical_resumed_vs_batched",
        ):
            metrics[key] = _metric(1.0 if payload.get(key) else 0.0, "exact")
    elif "mis" in payload and "sk" in payload:  # PR 4 quality ratios
        for kind in ("mis", "sk"):
            row = payload[kind]
            metrics[f"{kind}_and_ratio"] = _metric(row["and_ratio_sa"], "quality")
            depth1 = row.get("depths", {}).get("1", {})
            if "sampled_ratio" in depth1:
                metrics[f"{kind}_sampled_ratio_p1"] = _metric(
                    depth1["sampled_ratio"], "quality"
                )
    return metrics


def metrics_from_history(records: list[dict]) -> dict[str, dict]:
    """Serve throughput (with dispersion samples) from flight-recorder records."""
    from repro.obs.history import HistorySeries

    series = HistorySeries(records)
    points = series.counter_rate("redqaoa_jobs_completed_total")
    rates = [rate for _, rate in points if rate > 0]
    if not rates:
        return {}
    mean = sum(rates) / len(rates)
    return {"serve_jobs_per_sec": _metric(mean, "rate", samples=rates)}


# -- records ------------------------------------------------------------------


def make_record(label: str, paths, unix: float | None = None) -> dict:
    """One normalised trajectory record from one or more BENCH files."""
    metrics: dict[str, dict] = {}
    sources: list[str] = []
    for path in paths:
        path = Path(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        extracted = extract_metrics(payload, source=path.name)
        metrics.update(extracted)
        sources.append(path.name)
    record = {
        "schema": REGRESS_SCHEMA,
        "kind": "bench",
        "label": label,
        "sources": sources,
        "metrics": metrics,
    }
    if unix is not None:
        record["unix"] = unix
    return record


def append_record(path: str | os.PathLike, record: dict) -> None:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n")


def load_records(paths) -> list[dict]:
    """Normalised records from a mix of trajectory JSONL, flight-recorder
    history, and raw BENCH json files, in the given (chronological) order.

    A ``.jsonl`` file yields its ``kind: "bench"`` records in file order;
    flight-recorder ``kind: "snapshot"`` lines in the same file are
    aggregated into one throughput record.  A ``.json`` file is one BENCH
    payload, normalised through :func:`extract_metrics`.
    """
    records: list[dict] = []
    for path in paths:
        path = Path(path)
        if path.suffix == ".jsonl":
            snapshots: list[dict] = []
            for line in path.read_text(encoding="utf-8").splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except json.JSONDecodeError:
                    continue  # tolerate a truncated tail, like every reader here
                if not isinstance(payload, dict):
                    continue
                if payload.get("kind") == "bench":
                    records.append(
                        {
                            "label": payload.get("label", path.stem),
                            "metrics": extract_metrics(payload),
                        }
                    )
                elif payload.get("kind") == "snapshot":
                    snapshots.append(payload)
            if snapshots:
                metrics = metrics_from_history(snapshots)
                if metrics:
                    records.append({"label": path.stem, "metrics": metrics})
        else:
            payload = json.loads(path.read_text(encoding="utf-8"))
            records.append(
                {"label": path.stem, "metrics": extract_metrics(payload, path.name)}
            )
    return records


# -- comparison ---------------------------------------------------------------


def noise_floor(baseline: dict, default_floor: float | None = None) -> float:
    """The relative drop tolerated before a metric counts as regressed.

    ``exact`` metrics always gate at zero.  Otherwise: dispersion-derived
    ``max(5%, 2 * cv)`` when the baseline carries samples, else the static
    per-kind default -- widened to ``default_floor`` when the caller set a
    larger one.
    """
    kind = baseline.get("kind", "rate")
    if kind == "exact":
        return 0.0
    samples = baseline.get("samples") or []
    if len(samples) >= 3:
        mean = sum(samples) / len(samples)
        if mean > 0:
            variance = sum((s - mean) ** 2 for s in samples) / (len(samples) - 1)
            cv = math.sqrt(variance) / mean
            floor = max(0.05, 2.0 * cv)
        else:
            floor = DEFAULT_FLOORS.get(kind, 0.25)
    else:
        floor = DEFAULT_FLOORS.get(kind, 0.25)
    if default_floor is not None:
        floor = max(floor, float(default_floor))
    return floor


def compare(records: list[dict], default_floor: float | None = None) -> dict:
    """Gate a chronological record sequence against per-metric baselines.

    Records carry disjoint metric sets, so the baseline for each metric is
    the *last record that reported it* -- a sparse trajectory compares
    correctly without every record measuring everything.  Returns
    ``{"ok", "rows", "regressions"}``; a row regresses when its
    direction-adjusted relative change drops below ``-noise_floor``.
    """
    baselines: dict[str, tuple[str, dict]] = {}
    rows: list[dict] = []
    for record in records:
        label = record.get("label", "?")
        for name, metric in sorted(record.get("metrics", {}).items()):
            value = float(metric["value"])
            seen = baselines.get(name)
            if seen is not None:
                base_label, base_metric = seen
                base_value = float(base_metric["value"])
                floor = noise_floor(base_metric, default_floor)
                if base_value != 0:
                    change = (value - base_value) / abs(base_value)
                else:
                    change = 0.0 if value == base_value else math.copysign(1.0, value)
                if metric.get("direction", "higher") == "lower":
                    change = -change
                regressed = change < -floor
                rows.append(
                    {
                        "metric": name,
                        "label": label,
                        "baseline_label": base_label,
                        "baseline": base_value,
                        "value": value,
                        "change": change,
                        "floor": floor,
                        "kind": metric.get("kind", base_metric.get("kind", "rate")),
                        "regressed": regressed,
                    }
                )
            baselines[name] = (label, metric)
    regressions = [row for row in rows if row["regressed"]]
    return {"ok": not regressions, "rows": rows, "regressions": regressions}
