"""Process-local metrics registry: counters, gauges, histograms.

The instrument panel of the serving stack.  Every layer (annealer,
lightcone engine, plan/reduction caches, result store, sharded queue,
worker pool) increments named metrics on a process-local
:class:`MetricsRegistry`; the default registry (:data:`REGISTRY`) is what
all built-in instrumentation uses.

Three design constraints shape the API:

- **cheap**: a counter increment is one float add behind an attribute
  lookup -- hot paths (one increment per lightcone batch, per SA run, per
  store access) pay nanoseconds, and instrumented code holds metric
  handles at module level so nothing is looked up per call;
- **mergeable**: :meth:`MetricsRegistry.snapshot` produces a plain dict
  and :meth:`MetricsRegistry.merge` folds one snapshot into another
  registry.  Worker processes ship :func:`snapshot_delta` diffs back over
  their result pipes and the drain pump merges them, so daemon-side
  metrics cover the whole worker pool without shared memory;
- **exposable**: :meth:`MetricsRegistry.render_prometheus` emits the
  Prometheus text format (``# HELP`` / ``# TYPE`` / samples, cumulative
  histogram buckets), so a daemon's ``metrics`` protocol verb can feed a
  scraper without any new dependency.

Metrics are a pure side channel: nothing here touches RNG streams,
fingerprints, or results, so instrumented runs are bit-identical to
uninstrumented ones (asserted in the observability test suite).
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "JOB_BUCKETS",
    "KERNEL_BUCKETS",
    "MetricsRegistry",
    "REGISTRY",
    "STAGE_BUCKETS",
    "get_registry",
    "quantile_from_buckets",
    "snapshot_delta",
]

#: Default histogram bucket upper bounds, in seconds: spans the range from
#: sub-millisecond kernel calls to minute-scale jobs.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Per-metric bucket presets.  One shared default squeezes sub-millisecond
#: kernel calls and multi-second jobs into one bucket each, which makes
#: quantile estimates step functions; sizing buckets to the metric keeps
#: roughly geometric resolution across its real dynamic range.
KERNEL_BUCKETS = (  # sub-millisecond kernel work: plan builds, SA proposals
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 0.001, 0.0025,
    0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)
STAGE_BUCKETS = (  # pipeline stages and queue waits: ~ms to tens of seconds
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)
JOB_BUCKETS = (  # whole jobs: tens of ms to many minutes
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0,
)


class Counter:
    """A monotonically increasing value (events, totals)."""

    kind = "counter"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """A point-in-time value that can move both ways (depths, sizes)."""

    kind = "gauge"
    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A distribution over fixed buckets (latencies, durations).

    ``buckets`` holds ascending upper bounds; observations beyond the last
    bound land in the implicit ``+Inf`` bucket.  ``counts`` is per-bucket
    (not cumulative -- the Prometheus renderer accumulates on the way
    out, which keeps :func:`snapshot_delta` a plain elementwise subtract).
    """

    kind = "histogram"
    __slots__ = ("name", "help", "buckets", "counts", "sum", "count")

    def __init__(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram {name} needs strictly ascending buckets")
        self.name = name
        self.help = help
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # final slot = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1


class MetricsRegistry:
    """Named metrics with get-or-create registration.

    Thread-safe for registration and snapshot/merge (one lock); metric
    mutation itself is a single float/int operation and needs no lock
    under CPython for the accuracy class of a monitoring counter.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    # -- registration --------------------------------------------------------

    def _register(self, factory, name: str, help: str, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory(name, help, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, factory):
                raise TypeError(
                    f"metric {name!r} is a {metric.kind}, not a {factory.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(self, name: str, help: str = "", buckets=DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, buckets=buckets)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str):
        return self._metrics.get(name)

    def reset(self) -> None:
        """Zero every metric (tests); registrations are kept."""
        with self._lock:
            for metric in self._metrics.values():
                if isinstance(metric, Histogram):
                    metric.counts = [0] * (len(metric.buckets) + 1)
                    metric.sum = 0.0
                    metric.count = 0
                else:
                    metric.value = 0.0

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-dict view of every metric, mergeable and JSON-safe."""
        with self._lock:
            counters, gauges, histograms = {}, {}, {}
            for name, metric in self._metrics.items():
                if isinstance(metric, Counter):
                    counters[name] = metric.value
                elif isinstance(metric, Gauge):
                    gauges[name] = metric.value
                else:
                    histograms[name] = {
                        "buckets": list(metric.buckets),
                        "counts": list(metric.counts),
                        "sum": metric.sum,
                        "count": metric.count,
                    }
            return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge(self, snapshot: dict) -> None:
        """Fold one snapshot into this registry.

        Counters and histograms accumulate (the snapshot should therefore
        be a *delta* when the source keeps running, see
        :func:`snapshot_delta`); gauges take the incoming value, which is
        the freshest observation of a point-in-time quantity.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name, buckets=data["buckets"])
            if tuple(histogram.buckets) != tuple(data["buckets"]):
                continue  # incompatible shape: drop rather than corrupt
            for index, count in enumerate(data["counts"]):
                histogram.counts[index] += int(count)
            histogram.sum += float(data["sum"])
            histogram.count += int(data["count"])

    # -- exposition ----------------------------------------------------------

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format, one block per metric."""
        lines: list[str] = []
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                if metric.help:
                    lines.append(f"# HELP {name} {metric.help}")
                lines.append(f"# TYPE {name} {metric.kind}")
                if isinstance(metric, Histogram):
                    cumulative = 0
                    for bound, count in zip(metric.buckets, metric.counts):
                        cumulative += count
                        lines.append(f'{name}_bucket{{le="{_format(bound)}"}} {cumulative}')
                    cumulative += metric.counts[-1]
                    lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
                    lines.append(f"{name}_sum {_format(metric.sum)}")
                    lines.append(f"{name}_count {metric.count}")
                else:
                    lines.append(f"{name} {_format(metric.value)}")
        return "\n".join(lines) + "\n"


def _format(value: float) -> str:
    """Integral floats print as integers; everything else as repr."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def snapshot_delta(current: dict, previous: dict) -> dict:
    """The change from ``previous`` to ``current`` (both snapshots).

    Counters and histograms subtract elementwise; gauges pass the current
    value through (a gauge delta is meaningless).  The result is what a
    worker ships after each shard so the pump can ``merge`` it without
    double counting across shards.
    """
    counters = {}
    for name, value in current.get("counters", {}).items():
        change = value - previous.get("counters", {}).get(name, 0.0)
        if change:
            counters[name] = change
    gauges = dict(current.get("gauges", {}))
    histograms = {}
    for name, data in current.get("histograms", {}).items():
        prior = previous.get("histograms", {}).get(
            name, {"counts": [0] * len(data["counts"]), "sum": 0.0, "count": 0}
        )
        count = data["count"] - prior["count"]
        if not count:
            continue
        histograms[name] = {
            "buckets": list(data["buckets"]),
            "counts": [a - b for a, b in zip(data["counts"], prior["counts"])],
            "sum": data["sum"] - prior["sum"],
            "count": count,
        }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def quantile_from_buckets(buckets, counts, q: float) -> float | None:
    """Estimate the ``q`` quantile from per-bucket counts.

    Linear interpolation within the containing bucket (the Prometheus
    ``histogram_quantile`` convention); observations in the ``+Inf``
    bucket clamp to the last finite bound.  Returns ``None`` for an empty
    histogram.  Accepts per-bucket counts with or without the trailing
    ``+Inf`` slot.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    counts = list(counts)
    total = sum(counts)
    if total == 0:
        return None
    target = q * total
    cumulative = 0.0
    lower = 0.0
    for bound, count in zip(buckets, counts):
        if count and cumulative + count >= target:
            fraction = (target - cumulative) / count
            return lower + (float(bound) - lower) * fraction
        cumulative += count
        lower = float(bound)
    return float(buckets[-1])  # +Inf bucket: clamp to the last finite bound


#: The process-local default registry all built-in instrumentation uses.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
