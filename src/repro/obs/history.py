"""Flight recorder: periodic metrics snapshots in a rotating JSONL ring.

PR 9's registry answers "what is happening *now*"; nothing retained
history, so a slow drain, a respawn storm, or a throughput cliff left no
trail once the daemon moved on.  :class:`FlightRecorder` fixes that: the
daemon's drain pump appends one **snapshot record** -- the full registry
snapshot plus queue stats and daemon identity -- every ``interval``
seconds to a **size-bounded ring** of JSONL segments, so a long-running
daemon keeps a sliding window of its own recent past at a hard disk-space
ceiling.

Ring layout: the live file is ``path``; on overflow it rotates to
``path.1`` (older segments shift to ``.2``, ``.3``, ...) and the oldest
segment past ``segments`` falls off the end.  Total footprint is bounded
by ~``max_bytes`` no matter how long the daemon runs.

Reading back, :func:`load_history` walks the ring oldest-first and --
like :class:`~repro.service.store.ResultStore` -- tolerates a truncated
final line (the footprint of a daemon killed mid-append) and skips
undecodable lines rather than failing.  :class:`HistorySeries` then
reconstructs time series from the records:

- :meth:`HistorySeries.counter_rate`: per-interval **deltas** of a
  cumulative counter divided by elapsed wall time (events/sec);
- :meth:`HistorySeries.gauge_series`: the gauge's raw curve;
- :meth:`HistorySeries.histogram_quantile`: per-snapshot quantile
  estimates from the bucket counts.

Every snapshot carries the recording daemon's ``pid`` and
``started_unix``; the reader groups records into **lifetimes** on that
identity (and on counters jumping backwards) and never computes a delta
across a restart -- two daemon lives are two series, not one spliced
curve with a negative-rate glitch at the seam.

Like everything in :mod:`repro.obs`, the recorder is a pure side channel:
it reads the registry and the clock, and can change no result bit.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.obs.metrics import REGISTRY, quantile_from_buckets

__all__ = [
    "FlightRecorder",
    "HISTORY_SCHEMA",
    "HistorySeries",
    "history_files",
    "load_history",
]

HISTORY_SCHEMA = 1

_SNAPSHOTS = REGISTRY.counter(
    "redqaoa_history_snapshots_total", "flight-recorder snapshots appended"
)


class FlightRecorder:
    """Append registry snapshots to a rotating JSONL ring.

    Parameters
    ----------
    path:
        The live segment of the ring (rotated files live next to it).
    interval:
        Seconds between snapshots; :meth:`maybe_record` is cheap to call
        every pump iteration and only appends when this much time passed.
    max_bytes:
        Approximate total ring footprint across all segments.
    segments:
        Ring length (live file + rotated ``.1`` ... ``.N-1``).
    registry:
        The metrics registry to snapshot (default: the process registry).
    meta:
        Extra identity fields stamped into every record -- the daemon
        passes ``pid``/``started_unix`` so readers can detect restarts.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        interval: float = 5.0,
        max_bytes: int = 4_000_000,
        segments: int = 4,
        registry=None,
        meta: dict | None = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if segments < 1:
            raise ValueError(f"segments must be >= 1, got {segments}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.path = Path(path)
        self.interval = float(interval)
        self.max_bytes = int(max_bytes)
        self.segments = int(segments)
        self.registry = registry if registry is not None else REGISTRY
        self.meta = dict(meta or {})
        self.meta.setdefault("pid", os.getpid())
        self.meta.setdefault("started_unix", time.time())
        self._segment_bytes = max(1, self.max_bytes // self.segments)
        self._seq = 0
        self._last = 0.0  # monotonic stamp of the last append
        self._tail_checked = False
        self.path.parent.mkdir(parents=True, exist_ok=True)

    # -- recording -----------------------------------------------------------

    def due(self) -> bool:
        return time.monotonic() - self._last >= self.interval

    def maybe_record(self, extra: dict | None = None) -> bool:
        """Append a snapshot if ``interval`` elapsed; returns whether it did."""
        if not self.due():
            return False
        self.record(extra)
        return True

    def record(self, extra: dict | None = None) -> dict:
        """Append one snapshot record unconditionally; returns the record."""
        self._seq += 1
        self._last = time.monotonic()
        record = {
            "schema": HISTORY_SCHEMA,
            "kind": "snapshot",
            "seq": self._seq,
            "unix": time.time(),
            **self.meta,
            "snapshot": self.registry.snapshot(),
        }
        if extra:
            record.update(extra)
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        self._heal_torn_tail()
        self._rotate_if_needed(len(line))
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(line)
        _SNAPSHOTS.inc()
        return record

    def _heal_torn_tail(self) -> None:
        """Terminate an unfinished final line left by a killed writer.

        Without this, the first append after a ``kill -9`` mid-write would
        concatenate onto the torn line and lose *two* records instead of
        one.  Checked once per recorder: only a fresh daemon can inherit a
        torn file.
        """
        if self._tail_checked:
            return
        self._tail_checked = True
        try:
            with self.path.open("rb+") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() == 0:
                    return
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    handle.write(b"\n")
        except OSError:
            return

    def _rotate_if_needed(self, incoming: int) -> None:
        try:
            size = self.path.stat().st_size
        except OSError:
            return
        if size == 0 or size + incoming <= self._segment_bytes:
            return
        if self.segments == 1:
            self.path.unlink(missing_ok=True)  # degenerate ring: truncate
            return
        oldest = self._segment(self.segments - 1)
        oldest.unlink(missing_ok=True)
        for index in range(self.segments - 2, 0, -1):
            source = self._segment(index)
            if source.exists():
                source.replace(self._segment(index + 1))
        self.path.replace(self._segment(1))

    def _segment(self, index: int) -> Path:
        return self.path.with_name(f"{self.path.name}.{index}")


# -- reading ------------------------------------------------------------------


def history_files(path: str | os.PathLike) -> list[Path]:
    """The ring's segments, oldest first (rotated ``.N`` ... ``.1``, live)."""
    path = Path(path)
    rotated = []
    for sibling in path.parent.glob(f"{path.name}.*"):
        suffix = sibling.name[len(path.name) + 1 :]
        if suffix.isdigit():
            rotated.append((int(suffix), sibling))
    files = [sibling for _, sibling in sorted(rotated, reverse=True)]
    if path.exists():
        files.append(path)
    return files


def load_history(path: str | os.PathLike) -> list[dict]:
    """All snapshot records across the ring, oldest first.

    Skips undecodable lines (a truncated final line is the normal crash
    footprint) and records with an unknown schema -- the reader must
    always come up, exactly like the result store.
    """
    records: list[dict] = []
    for segment in history_files(path):
        with segment.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # truncated tail of a killed writer
                if (
                    isinstance(record, dict)
                    and record.get("schema") == HISTORY_SCHEMA
                    and record.get("kind") == "snapshot"
                ):
                    records.append(record)
    return records


class HistorySeries:
    """Time series reconstructed from flight-recorder snapshot records."""

    def __init__(self, records: list[dict]) -> None:
        self.records = [r for r in records if r.get("kind") == "snapshot"]
        self.lifetimes = self._split_lifetimes(self.records)

    @classmethod
    def load(cls, path: str | os.PathLike) -> HistorySeries:
        return cls(load_history(path))

    @staticmethod
    def _split_lifetimes(records: list[dict]) -> list[list[dict]]:
        """Group consecutive records by daemon identity.

        A new (pid, started_unix) pair -- or a seq counter jumping
        backwards, the footprint of a restart that reused a pid -- starts
        a new lifetime.  Deltas are only ever taken inside one lifetime.
        """
        lifetimes: list[list[dict]] = []
        identity = None
        last_seq = None
        for record in records:
            key = (record.get("pid"), record.get("started_unix"))
            seq = record.get("seq", 0)
            fresh = (
                identity is None
                or key != identity
                or (last_seq is not None and seq <= last_seq and seq == 1)
            )
            if fresh:
                lifetimes.append([])
                identity = key
            lifetimes[-1].append(record)
            last_seq = seq
        return lifetimes

    @property
    def restarts(self) -> int:
        return max(0, len(self.lifetimes) - 1)

    def counter_rate(self, name: str) -> list[tuple[float, float]]:
        """``(unix_midpoint, events_per_second)`` per snapshot interval.

        Rates come from deltas of consecutive snapshots within one
        lifetime; a counter absent from either end contributes nothing.
        Negative deltas (an undetected restart) are dropped rather than
        reported as negative rates.
        """
        points: list[tuple[float, float]] = []
        for lifetime in self.lifetimes:
            for before, after in zip(lifetime, lifetime[1:]):
                elapsed = after.get("unix", 0.0) - before.get("unix", 0.0)
                if elapsed <= 0:
                    continue
                v0 = before["snapshot"].get("counters", {}).get(name)
                v1 = after["snapshot"].get("counters", {}).get(name)
                if v0 is None or v1 is None or v1 < v0:
                    continue
                midpoint = (before["unix"] + after["unix"]) / 2.0
                points.append((midpoint, (v1 - v0) / elapsed))
        return points

    def gauge_series(self, name: str) -> list[tuple[float, float]]:
        """``(unix, value)`` for every snapshot that carries the gauge."""
        points: list[tuple[float, float]] = []
        for record in self.records:
            value = record["snapshot"].get("gauges", {}).get(name)
            if value is not None:
                points.append((record.get("unix", 0.0), float(value)))
        return points

    def histogram_quantile(self, name: str, q: float) -> list[tuple[float, float]]:
        """``(unix, estimate)`` of the cumulative ``q`` quantile per snapshot."""
        points: list[tuple[float, float]] = []
        for record in self.records:
            data = record["snapshot"].get("histograms", {}).get(name)
            if not data:
                continue
            estimate = quantile_from_buckets(data["buckets"], data["counts"], q)
            if estimate is not None:
                points.append((record.get("unix", 0.0), estimate))
        return points
