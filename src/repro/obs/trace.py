"""Lightweight span tracing for the solve/serve pipeline.

A **span** is one named, timed region -- ``with span("reduce",
fingerprint=fp):`` -- stamped with :func:`time.perf_counter_ns` on entry
and exit.  Spans nest via a thread-local stack and bind to the job being
executed, so a finished trace decomposes every job into the stages the
pipeline actually went through::

    job
    ├── queue_wait      submit -> shard claim
    ├── dispatch        claim -> worker pickup
    ├── execute         the worker's own clock
    │   ├── reduce      SA distillation (annealer)
    │   │   └── ...
    │   ├── optimize    COBYLA on the reduced graph
    │   │   └── plan_build / finetune / ...
    │   └── readout     sampling the final state
    ├── drain_wait      worker done -> pump resolution
    └── store_append    fsync'd result persistence

Two tracer modes cover the process topology of the serve stack:

- **file mode** (``Tracer(path)``): each closed span is appended to a
  JSONL trace file immediately -- the daemon/batch process writes this;
- **collector mode** (``Tracer(None)``): closed spans buffer in memory
  and are handed over via :meth:`Tracer.drain` -- worker processes run
  this and ship their spans back over the existing result pipes, where
  the drain pump stitches them into the job's tree
  (:meth:`Tracer.record_job`).

Timestamps are raw ``perf_counter_ns`` ticks.  On Linux that clock is
``CLOCK_MONOTONIC``, which shares its epoch across processes on one box,
so daemon-side and worker-side timestamps interleave correctly without
any clock handshake.  Traces are therefore per-host artifacts; only
durations and orderings are meaningful, never wall-clock dates.

Tracing is **off by default** and a disabled :func:`span` costs one
global read and a truth test.  It is a pure side channel: no RNG stream,
fingerprint, or result is touched, and the tier-1 suite asserts traced
runs are bit-identical to untraced ones.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "TRACE_SCHEMA",
    "Tracer",
    "configure_tracing",
    "disable_tracing",
    "format_summary",
    "get_tracer",
    "install_tracer",
    "load_trace",
    "span",
    "span_trees",
    "summarize_trace",
    "trace_job",
    "using_tracer",
    "validate_trace",
]

TRACE_SCHEMA = 1

#: Per-process tracer instance numbers: span ids embed pid AND tracer
#: instance, so a per-job collector's ids never collide with the file
#: tracer's when both live in one process (the inline pool's topology).
_TRACER_SEQ = itertools.count(1)


class Tracer:
    """Span recorder; file sink when ``path`` is given, collector otherwise.

    One tracer is safe to share across threads (per-thread span stacks and
    job bindings; one lock around the sink).  Span ids embed the pid, so
    ids from different processes never collide when merged into one file.
    """

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._buffer: list[dict] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._counter = 0
        self._pid = os.getpid()
        self._seq = next(_TRACER_SEQ)
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # Touch the file so an empty traced run still leaves a trace.
            self.path.touch()

    # -- identity ------------------------------------------------------------

    def _next_id(self) -> str:
        with self._lock:
            # A forked child inherits the parent's tracer object; detect the
            # new pid so its span ids stay globally unique.
            pid = os.getpid()
            if pid != self._pid:
                self._pid = pid
                self._counter = 0
            self._counter += 1
            return f"{pid:x}-{self._seq:x}-{self._counter:x}"

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current_job(self) -> str | None:
        return getattr(self._local, "job", None)

    # -- recording -----------------------------------------------------------

    def emit(self, record: dict) -> None:
        """Append one finished record to the sink (file or buffer)."""
        if self.path is not None:
            line = json.dumps(record, sort_keys=True, separators=(",", ":"))
            with self._lock:
                with self.path.open("a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
        else:
            with self._lock:
                self._buffer.append(record)

    def drain(self) -> list[dict]:
        """Hand over and clear the collector buffer (collector mode)."""
        with self._lock:
            spans, self._buffer = self._buffer, []
            return spans

    @contextmanager
    def bind(self, job: str):
        """Attach a job id to every span this thread opens inside the block."""
        previous = getattr(self._local, "job", None)
        self._local.job = job
        try:
            yield
        finally:
            self._local.job = previous

    @contextmanager
    def span(self, name: str, **attrs):
        """Record one nested, timed region."""
        span_id = self._next_id()
        stack = self._stack()
        parent = stack[-1] if stack else None
        stack.append(span_id)
        t0 = time.perf_counter_ns()
        try:
            yield
        finally:
            t1 = time.perf_counter_ns()
            stack.pop()
            self.emit(
                _span_record(
                    name,
                    span_id,
                    parent,
                    self.current_job,
                    t0,
                    t1,
                    attrs or None,
                )
            )

    def write_span(
        self,
        name: str,
        t0: int,
        t1: int,
        *,
        parent: str | None = None,
        job: str | None = None,
        attrs: dict | None = None,
    ) -> str:
        """Record a span from already-measured timestamps; returns its id."""
        span_id = self._next_id()
        self.emit(_span_record(name, span_id, parent, job, int(t0), int(t1), attrs))
        return span_id

    def write_metrics(self, snapshot: dict) -> None:
        """Append a metrics snapshot record (the summarizer's cache table)."""
        self.emit({"schema": TRACE_SCHEMA, "kind": "metrics", "snapshot": snapshot})

    # -- daemon-side tree assembly -------------------------------------------

    def record_job(
        self,
        fingerprint: str,
        worker_spans: list[dict] | None,
        *,
        enqueued_ns: int | None,
        claimed_ns: int | None,
        store_t0: int,
        store_t1: int,
        attempts: int = 1,
        source: str = "computed",
    ) -> None:
        """Stitch one finished job into a complete span tree.

        The pump calls this once per landed job with the spans the worker
        shipped back (or ``None`` for store hits).  The root ``job`` span
        runs submit -> store append; ``queue_wait``/``dispatch``/
        ``drain_wait`` gap spans are synthesized (clamped to zero length
        when clocks say the gap was negative-epsilon) so the direct
        children tile the root without holes -- that tiling is what makes
        the summarizer's >=95%% coverage criterion achievable by
        construction rather than by luck.
        """
        worker_spans = list(worker_spans or [])
        t_start = enqueued_ns if enqueued_ns is not None else store_t0
        root_id = self._next_id()
        cursor = t_start
        children: list[dict] = []

        def gap(name: str, until: int | None) -> None:
            nonlocal cursor
            if until is None:
                return
            until = max(int(until), cursor)
            if until > cursor:
                children.append(
                    _span_record(
                        name, self._next_id(), root_id, fingerprint, cursor, until, None
                    )
                )
            cursor = until

        gap("queue_wait", claimed_ns)
        execute = _worker_root(worker_spans)
        if execute is not None:
            gap("dispatch", execute["t0"])
            execute["parent"] = root_id
            cursor = max(cursor, execute["t1"])
        for record in worker_spans:
            record["job"] = fingerprint
        gap("drain_wait", store_t0)
        children.append(
            _span_record(
                "store_append",
                self._next_id(),
                root_id,
                fingerprint,
                cursor,
                max(int(store_t1), cursor),
                None,
            )
        )
        cursor = max(int(store_t1), cursor)

        attrs = {"attempts": int(attempts), "source": source}
        for record in children + worker_spans:
            self.emit(record)
        self.emit(
            _span_record("job", root_id, None, fingerprint, t_start, cursor, attrs)
        )


def _span_record(
    name: str,
    span_id: str,
    parent: str | None,
    job: str | None,
    t0: int,
    t1: int,
    attrs: dict | None,
) -> dict:
    record = {
        "schema": TRACE_SCHEMA,
        "kind": "span",
        "name": name,
        "span": span_id,
        "parent": parent,
        "job": job,
        "pid": os.getpid(),
        "t0": int(t0),
        "t1": int(t1),
    }
    if attrs:
        record["attrs"] = attrs
    return record


def _worker_root(worker_spans: list[dict]) -> dict | None:
    """The worker's parentless span (``execute``), if it shipped one."""
    ids = {record["span"] for record in worker_spans}
    for record in worker_spans:
        if record.get("parent") is None or record["parent"] not in ids:
            return record
    return None


# -- module-level tracer ------------------------------------------------------

_TRACER: Tracer | None = None


def get_tracer() -> Tracer | None:
    return _TRACER


def configure_tracing(path: str | os.PathLike) -> Tracer:
    """Enable tracing to a JSONL file; returns the installed tracer."""
    global _TRACER
    _TRACER = Tracer(path)
    return _TRACER


def disable_tracing() -> None:
    global _TRACER
    _TRACER = None


def install_tracer(tracer: Tracer | None) -> Tracer | None:
    """Swap the global tracer; returns the previous one."""
    global _TRACER
    previous, _TRACER = _TRACER, tracer
    return previous


@contextmanager
def using_tracer(tracer: Tracer | None):
    """Temporarily install ``tracer`` as the process-global tracer."""
    previous = install_tracer(tracer)
    try:
        yield tracer
    finally:
        install_tracer(previous)


@contextmanager
def span(name: str, **attrs):
    """Record a span on the global tracer; free when tracing is off."""
    tracer = _TRACER
    if tracer is None:
        yield
        return
    with tracer.span(name, **attrs):
        yield


@contextmanager
def trace_job(job: str, **attrs):
    """Bind a job id and open its root span (in-process pipelines)."""
    tracer = _TRACER
    if tracer is None:
        yield
        return
    with tracer.bind(job):
        with tracer.span("job", **attrs):
            yield


# -- trace files: loading, validation, summary --------------------------------


def load_trace(path: str | os.PathLike) -> tuple[list[dict], list[dict]]:
    """All span records and all metrics records from a trace file."""
    spans: list[dict] = []
    metrics: list[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # truncated tail of a killed process
            if record.get("kind") == "span":
                spans.append(record)
            elif record.get("kind") == "metrics":
                metrics.append(record)
    return spans, metrics


def span_trees(spans: list[dict]) -> dict[str, dict]:
    """Group spans by job: job -> ``{"root", "spans", "children"}``.

    ``children`` maps span id -> child records sorted by start time.
    Jobs with zero or multiple roots get ``root: None`` (validation
    reports them; the summarizer skips them).
    """
    by_job: dict[str, list[dict]] = {}
    for record in spans:
        by_job.setdefault(record.get("job") or "", []).append(record)
    trees: dict[str, dict] = {}
    for job, records in by_job.items():
        ids = {record["span"] for record in records}
        roots = [r for r in records if r.get("parent") is None]
        children: dict[str, list[dict]] = {}
        for record in records:
            parent = record.get("parent")
            if parent in ids:
                children.setdefault(parent, []).append(record)
        for siblings in children.values():
            siblings.sort(key=lambda r: r["t0"])
        trees[job] = {
            "root": roots[0] if len(roots) == 1 else None,
            "spans": records,
            "children": children,
        }
    return trees


def validate_trace(spans: list[dict]) -> list[str]:
    """Structural problems in a trace; empty list means every tree closed.

    Checks, per job: exactly one root span named ``job``; every
    ``parent`` id resolves within the same job; every span has
    ``t1 >= t0``; every span lies within its root's interval.
    """
    problems: list[str] = []
    for job, tree in span_trees(spans).items():
        records = tree["spans"]
        ids = {record["span"] for record in records}
        roots = [r for r in records if r.get("parent") is None]
        if len(roots) != 1:
            problems.append(f"job {job}: {len(roots)} root spans (want exactly 1)")
        elif roots[0]["name"] != "job":
            problems.append(f"job {job}: root span named {roots[0]['name']!r}")
        for record in records:
            parent = record.get("parent")
            if parent is not None and parent not in ids:
                problems.append(
                    f"job {job}: span {record['span']} ({record['name']}) "
                    f"orphaned under missing parent {parent}"
                )
            if record["t1"] < record["t0"]:
                problems.append(
                    f"job {job}: span {record['span']} ({record['name']}) "
                    "closes before it opens"
                )
        if len(roots) == 1:
            root = roots[0]
            for record in records:
                if record is root:
                    continue
                if record["t0"] < root["t0"] or record["t1"] > root["t1"]:
                    problems.append(
                        f"job {job}: span {record['span']} ({record['name']}) "
                        "escapes the root interval"
                    )
    return problems


def summarize_trace(path: str | os.PathLike) -> dict:
    """Per-stage breakdown, coverage, and critical path of one trace file.

    Returns a dict with:

    - ``jobs``: number of complete job trees;
    - ``wall_seconds``: total root-span time;
    - ``stages``: name -> ``{"seconds", "count", "share"}`` over the
      *direct children* of job roots (the tiling layer, so shares sum to
      coverage);
    - ``self_stages``: name -> seconds of *self time* (span minus its
      children) across all depths -- where the clock actually went;
    - ``coverage``: direct-children time / root time;
    - ``critical_path``: stage names along the longest child at each
      level of the slowest job;
    - ``cache``: hit/miss table from the trace's final metrics record,
      if one was written;
    - ``problems``: output of :func:`validate_trace`.
    """
    spans, metrics = load_trace(path)
    trees = span_trees(spans)
    problems = validate_trace(spans)

    wall_ns = 0
    covered_ns = 0
    stages: dict[str, dict] = {}
    self_stages: dict[str, float] = {}
    slowest: dict | None = None
    slowest_tree: dict | None = None
    jobs = 0

    for tree in trees.values():
        root = tree["root"]
        if root is None or root["name"] != "job":
            continue
        jobs += 1
        duration = root["t1"] - root["t0"]
        wall_ns += duration
        if slowest is None or duration > slowest["t1"] - slowest["t0"]:
            slowest, slowest_tree = root, tree
        for child in tree["children"].get(root["span"], []):
            child_ns = child["t1"] - child["t0"]
            covered_ns += child_ns
            entry = stages.setdefault(child["name"], {"seconds": 0.0, "count": 0})
            entry["seconds"] += child_ns / 1e9
            entry["count"] += 1
        for record in tree["spans"]:
            inner = sum(
                c["t1"] - c["t0"] for c in tree["children"].get(record["span"], [])
            )
            self_ns = max(0, (record["t1"] - record["t0"]) - inner)
            self_stages[record["name"]] = (
                self_stages.get(record["name"], 0.0) + self_ns / 1e9
            )

    for entry in stages.values():
        entry["share"] = entry["seconds"] * 1e9 / wall_ns if wall_ns else 0.0

    critical_path: list[str] = []
    if slowest is not None and slowest_tree is not None:
        node = slowest
        while True:
            kids = slowest_tree["children"].get(node["span"], [])
            if not kids:
                break
            node = max(kids, key=lambda r: r["t1"] - r["t0"])
            critical_path.append(node["name"])

    cache = _cache_table(metrics[-1]["snapshot"]) if metrics else {}

    return {
        "jobs": jobs,
        "spans": len(spans),
        "wall_seconds": wall_ns / 1e9,
        "stages": dict(sorted(stages.items(), key=lambda kv: -kv[1]["seconds"])),
        "self_stages": dict(sorted(self_stages.items(), key=lambda kv: -kv[1])),
        "coverage": covered_ns / wall_ns if wall_ns else 1.0,
        "critical_path": critical_path,
        "cache": cache,
        "problems": problems,
    }


def _cache_table(snapshot: dict) -> dict:
    """Hit-rate table from a metrics snapshot's ``*_hits``/``*_misses`` pairs."""
    counters = snapshot.get("counters", {})
    table: dict[str, dict] = {}
    for name, hits in counters.items():
        if not name.endswith("_hits_total"):
            continue
        base = name[: -len("_hits_total")]
        misses = counters.get(base + "_misses_total", 0.0)
        total = hits + misses
        table[base.removeprefix("redqaoa_")] = {
            "hits": int(hits),
            "misses": int(misses),
            "rate": hits / total if total else 0.0,
        }
    return table


def format_summary(summary: dict) -> str:
    """Human-readable rendering of :func:`summarize_trace` output."""
    lines = [
        f"jobs: {summary['jobs']}   spans: {summary['spans']}   "
        f"wall: {summary['wall_seconds']:.3f}s   "
        f"coverage: {summary['coverage'] * 100:.1f}%",
        "",
        "stage breakdown (direct children of job roots):",
    ]
    for name, entry in summary["stages"].items():
        lines.append(
            f"  {name:<14} {entry['seconds']:>10.3f}s  "
            f"{entry['share'] * 100:>5.1f}%  x{entry['count']}"
        )
    if summary["self_stages"]:
        lines.append("")
        lines.append("self time (all depths):")
        for name, seconds in summary["self_stages"].items():
            lines.append(f"  {name:<14} {seconds:>10.3f}s")
    if summary["critical_path"]:
        lines.append("")
        lines.append("critical path (slowest job): " + " -> ".join(summary["critical_path"]))
    if summary["cache"]:
        lines.append("")
        lines.append("cache efficacy:")
        for name, row in summary["cache"].items():
            lines.append(
                f"  {name:<20} hits {row['hits']:>6}  misses {row['misses']:>6}  "
                f"rate {row['rate'] * 100:>5.1f}%"
            )
    if summary["problems"]:
        lines.append("")
        lines.append(f"PROBLEMS ({len(summary['problems'])}):")
        lines.extend(f"  {p}" for p in summary["problems"])
    return "\n".join(lines) + "\n"
