"""repro.obs -- observability: span tracing, metrics, structured logging.

The instrument panel for the whole stack.  Three pieces:

- :mod:`repro.obs.trace` -- nested span tracing on ``perf_counter_ns``
  into append-only JSONL, with worker spans shipped over result pipes and
  stitched into one complete tree per job;
- :mod:`repro.obs.metrics` -- a process-local registry of
  counters/gauges/histograms with mergeable snapshots and Prometheus
  text exposition;
- :mod:`repro.obs.log` -- leveled NDJSON event logging for daemon
  incidents (crashes, requeues, dead letters).

Everything here is a pure side channel: enabling any of it changes no
fingerprint, seed, or result bit.
"""

from repro.obs.log import EventLog, NullLog
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    snapshot_delta,
)
from repro.obs.trace import (
    Tracer,
    configure_tracing,
    disable_tracing,
    format_summary,
    get_tracer,
    install_tracer,
    load_trace,
    span,
    span_trees,
    summarize_trace,
    trace_job,
    using_tracer,
    validate_trace,
)

__all__ = [
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullLog",
    "REGISTRY",
    "Tracer",
    "configure_tracing",
    "disable_tracing",
    "format_summary",
    "get_registry",
    "get_tracer",
    "install_tracer",
    "load_trace",
    "snapshot_delta",
    "span",
    "span_trees",
    "summarize_trace",
    "trace_job",
    "using_tracer",
    "validate_trace",
]
