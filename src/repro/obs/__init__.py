"""repro.obs -- observability: tracing, metrics, logging, history, health.

The instrument panel for the whole stack.  Layer one (PR 9):

- :mod:`repro.obs.trace` -- nested span tracing on ``perf_counter_ns``
  into append-only JSONL, with worker spans shipped over result pipes and
  stitched into one complete tree per job;
- :mod:`repro.obs.metrics` -- a process-local registry of
  counters/gauges/histograms with mergeable snapshots and Prometheus
  text exposition;
- :mod:`repro.obs.log` -- leveled NDJSON event logging for daemon
  incidents (crashes, requeues, dead letters), with a recent-events ring
  and an optional size-capped rotating file sink.

Layer two, built on those primitives:

- :mod:`repro.obs.history` -- the flight recorder: periodic registry
  snapshots in a rotating size-bounded JSONL ring, read back as time
  series (rates, gauge curves, quantile estimates) across restarts;
- :mod:`repro.obs.health` -- live ok/degraded/failing verdicts over
  queue/pool/claim state (stuck-shard watchdog, liveness, incident and
  failure-rate checks), served by the daemon's ``health`` protocol verb;
- :mod:`repro.obs.top` -- the ``red-qaoa top`` terminal dashboard over
  the ``status``/``health`` verbs;
- :mod:`repro.obs.regress` -- noise-aware benchmark regression gating
  (``red-qaoa bench compare``) over recorded BENCH/trajectory/history
  files.

Everything here is a pure side channel: enabling any of it changes no
fingerprint, seed, or result bit.
"""

from repro.obs.health import (
    HEALTH_DEGRADED,
    HEALTH_FAILING,
    HEALTH_OK,
    HealthMonitor,
    HealthReport,
)
from repro.obs.history import (
    FlightRecorder,
    HistorySeries,
    history_files,
    load_history,
)
from repro.obs.log import EventLog, NullLog
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    snapshot_delta,
)
from repro.obs.trace import (
    Tracer,
    configure_tracing,
    disable_tracing,
    format_summary,
    get_tracer,
    install_tracer,
    load_trace,
    span,
    span_trees,
    summarize_trace,
    trace_job,
    using_tracer,
    validate_trace,
)

__all__ = [
    "Counter",
    "EventLog",
    "FlightRecorder",
    "Gauge",
    "HEALTH_DEGRADED",
    "HEALTH_FAILING",
    "HEALTH_OK",
    "HealthMonitor",
    "HealthReport",
    "Histogram",
    "HistorySeries",
    "MetricsRegistry",
    "NullLog",
    "REGISTRY",
    "Tracer",
    "history_files",
    "load_history",
    "configure_tracing",
    "disable_tracing",
    "format_summary",
    "get_registry",
    "get_tracer",
    "install_tracer",
    "load_trace",
    "snapshot_delta",
    "span",
    "span_trees",
    "summarize_trace",
    "trace_job",
    "using_tracer",
    "validate_trace",
]
