"""Structured NDJSON event logging for the serve daemon.

Daemon incidents -- worker crashes, shard requeues, dead letters -- were
previously invisible without a debugger.  :class:`EventLog` writes one
JSON object per line to stderr (or any stream): machine-parseable, cheap,
and ordered.  ``red-qaoa serve --log-json --log-level debug`` turns it
on; the default is a quiet human-readable one-liner per event at
``warning`` and above, so a healthy daemon stays silent.

This is deliberately not the stdlib ``logging`` module: the daemon needs
exactly one sink, one format, and zero global configuration leakage into
library users' own logging setups.
"""

from __future__ import annotations

import json
import sys
import threading
import time

__all__ = ["LEVELS", "EventLog", "NullLog"]

LEVELS = ("debug", "info", "warning", "error")
_RANK = {name: rank for rank, name in enumerate(LEVELS)}


class EventLog:
    """Leveled event sink: NDJSON or plain text, one line per event."""

    def __init__(self, level: str = "warning", json_mode: bool = False, stream=None) -> None:
        if level not in _RANK:
            raise ValueError(f"unknown log level {level!r} (choose from {LEVELS})")
        self.level = level
        self.json_mode = json_mode
        self.stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()
        self._t0 = time.monotonic()

    def enabled(self, level: str) -> bool:
        return _RANK[level] >= _RANK[self.level]

    def event(self, level: str, event: str, **fields) -> None:
        """Record one event; dropped silently when below the threshold."""
        if not self.enabled(level):
            return
        uptime = round(time.monotonic() - self._t0, 3)
        if self.json_mode:
            record = {"level": level, "event": event, "uptime": uptime, **fields}
            line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        else:
            detail = " ".join(f"{key}={value}" for key, value in sorted(fields.items()))
            line = f"[{uptime:9.3f}] {level:<7} {event}" + (f" {detail}" if detail else "")
        with self._lock:
            print(line, file=self.stream, flush=True)

    def debug(self, event: str, **fields) -> None:
        self.event("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.event("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.event("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.event("error", event, **fields)


class NullLog(EventLog):
    """An EventLog that drops everything; the default for library callers."""

    def __init__(self) -> None:
        super().__init__(level="error", json_mode=False, stream=None)

    def enabled(self, level: str) -> bool:
        return False

    def event(self, level: str, event: str, **fields) -> None:
        return
