"""Structured NDJSON event logging for the serve daemon.

Daemon incidents -- worker crashes, shard requeues, dead letters -- were
previously invisible without a debugger.  :class:`EventLog` writes one
JSON object per line to stderr (or any stream): machine-parseable, cheap,
and ordered.  ``red-qaoa serve --log-json --log-level debug`` turns it
on; the default is a quiet human-readable one-liner per event at
``warning`` and above, so a healthy daemon stays silent.

Two additions over the PR 9 sink:

- a **recent-events ring**: the last ``ring`` events at ``info`` and
  above are kept in memory regardless of the emit threshold, so the
  ``health`` protocol verb and ``red-qaoa top`` can show what just
  happened even on a quietly-configured daemon (:meth:`EventLog.recent`);
- an optional **file sink with rotation** (``path`` / ``max_bytes`` /
  ``backups``): lines go to a file instead of a stream, and when the
  live file would exceed ``max_bytes`` it rotates to ``path.1`` (older
  files shift up, the oldest past ``backups`` is dropped) -- a
  long-running daemon's log is disk-bounded like its flight recorder.

This is deliberately not the stdlib ``logging`` module: the daemon needs
exactly one sink, one format, and zero global configuration leakage into
library users' own logging setups.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections import deque
from pathlib import Path

__all__ = ["LEVELS", "EventLog", "NullLog"]

LEVELS = ("debug", "info", "warning", "error")
_RANK = {name: rank for rank, name in enumerate(LEVELS)}


class EventLog:
    """Leveled event sink: NDJSON or plain text, one line per event."""

    def __init__(
        self,
        level: str = "warning",
        json_mode: bool = False,
        stream=None,
        path: str | Path | None = None,
        max_bytes: int = 10_000_000,
        backups: int = 1,
        ring: int = 256,
    ) -> None:
        if level not in _RANK:
            raise ValueError(f"unknown log level {level!r} (choose from {LEVELS})")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if backups < 0:
            raise ValueError(f"backups must be >= 0, got {backups}")
        self.level = level
        self.json_mode = json_mode
        self.stream = stream if stream is not None else sys.stderr
        self.path = Path(path) if path is not None else None
        self.max_bytes = int(max_bytes)
        self.backups = int(backups)
        self._lock = threading.Lock()
        self._t0 = time.monotonic()
        self._ring: deque = deque(maxlen=max(1, int(ring)))
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    def enabled(self, level: str) -> bool:
        return _RANK[level] >= _RANK[self.level]

    def event(self, level: str, event: str, **fields) -> None:
        """Record one event; dropped silently when below the threshold.

        Events at ``info`` and above land in the in-memory ring even when
        below the emit threshold -- recent history must survive a quiet
        configuration.
        """
        uptime = round(time.monotonic() - self._t0, 3)
        if _RANK[level] >= _RANK["info"]:
            with self._lock:
                self._ring.append(
                    {"level": level, "event": event, "uptime": uptime, **fields}
                )
        if not self.enabled(level):
            return
        if self.json_mode or self.path is not None:
            record = {"level": level, "event": event, "uptime": uptime, **fields}
            line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        else:
            detail = " ".join(f"{key}={value}" for key, value in sorted(fields.items()))
            line = f"[{uptime:9.3f}] {level:<7} {event}" + (f" {detail}" if detail else "")
        with self._lock:
            if self.path is not None:
                self._write_file(line)
            else:
                print(line, file=self.stream, flush=True)

    def recent(self, count: int = 20) -> list[dict]:
        """The newest ``count`` ring events, oldest first."""
        with self._lock:
            events = list(self._ring)
        return events[-count:] if count >= 0 else events

    # -- file sink (lock held) -----------------------------------------------

    def _write_file(self, line: str) -> None:
        encoded = line + "\n"
        try:
            size = self.path.stat().st_size
        except OSError:
            size = 0
        if size and size + len(encoded) > self.max_bytes:
            self._rotate()
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(encoded)

    def _rotate(self) -> None:
        if self.backups == 0:
            self.path.unlink(missing_ok=True)
            return
        oldest = self._backup(self.backups)
        oldest.unlink(missing_ok=True)
        for index in range(self.backups - 1, 0, -1):
            source = self._backup(index)
            if source.exists():
                source.replace(self._backup(index + 1))
        self.path.replace(self._backup(1))

    def _backup(self, index: int) -> Path:
        return self.path.with_name(f"{self.path.name}.{index}")

    def debug(self, event: str, **fields) -> None:
        self.event("debug", event, **fields)

    def info(self, event: str, **fields) -> None:
        self.event("info", event, **fields)

    def warning(self, event: str, **fields) -> None:
        self.event("warning", event, **fields)

    def error(self, event: str, **fields) -> None:
        self.event("error", event, **fields)


class NullLog(EventLog):
    """An EventLog that drops everything; the default for library callers."""

    def __init__(self) -> None:
        super().__init__(level="error", json_mode=False, stream=None)

    def enabled(self, level: str) -> bool:
        return False

    def event(self, level: str, event: str, **fields) -> None:
        return

    def recent(self, count: int = 20) -> list[dict]:
        return []
