"""The end-to-end Red-QAOA pipeline (paper Fig. 4).

:class:`RedQAOA` glues the pieces together:

1. **reduce** -- distill the input graph with the SA reducer;
2. **optimize** -- run the parameter search (COBYLA restarts or grid
   search) on the *distilled* graph, under whatever noise the caller
   specifies (a small circuit, so cheap and noise-tolerant);
3. **transfer** -- reuse the best parameters on the original graph;
4. **fine-tune** -- optionally continue optimization on the original graph
   from the transferred parameters (few iterations, as the start is already
   near-optimal);
5. **solve** -- sample the original graph's QAOA state at the final
   parameters to read out a cut.

Edge weights (the ``weight`` attribute) flow through every step: the SA
reducer matches weighted node strength, induced subgraphs and relabelings
preserve edge data, every expectation engine honors weights, and the cut
readout scores sampled states against the weighted diagonal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.core.reduction import GraphReducer, ReductionResult
from repro.qaoa.expectation import maxcut_expectation, noisy_maxcut_expectation
from repro.qaoa.fast_sim import FastNoiseSpec, noisy_qaoa_probabilities, qaoa_probabilities
from repro.qaoa.hamiltonian import MaxCutHamiltonian
from repro.qaoa.optimizer import OptimizationTrace, cobyla_optimize, multi_restart_optimize
from repro.utils.graphs import ensure_graph, relabel_to_range
from repro.utils.rng import as_generator

__all__ = ["RedQAOA", "RedQAOAResult"]


@dataclass
class RedQAOAResult:
    """Everything produced by one :meth:`RedQAOA.run`.

    ``expectation`` is the ideal expectation of the final parameters on the
    original graph; ``cut_value``/``assignment`` come from sampling the
    final state (solution-finding step).
    """

    reduction: ReductionResult
    gammas: np.ndarray
    betas: np.ndarray
    expectation: float
    cut_value: float
    assignment: dict
    reduced_traces: list[OptimizationTrace] = field(default_factory=list)
    finetune_trace: OptimizationTrace | None = None

    @property
    def num_reduced_evaluations(self) -> int:
        """Circuit evaluations spent on the small (cheap) graph."""
        return sum(t.num_evaluations for t in self.reduced_traces)

    @property
    def num_original_evaluations(self) -> int:
        """Circuit evaluations spent on the large (expensive) graph."""
        return self.finetune_trace.num_evaluations if self.finetune_trace else 0


class RedQAOA:
    """Red-QAOA driver: reduce, optimize small, transfer, fine-tune.

    Parameters
    ----------
    p:
        QAOA depth used throughout.
    reducer:
        A configured :class:`~repro.core.reduction.GraphReducer`; a default
        one (0.7 AND threshold, adaptive cooling) is built when omitted.
    noise:
        :class:`~repro.qaoa.fast_sim.FastNoiseSpec` applied during
        optimization, or ``None`` for ideal execution.  The *same* noise is
        applied to both the reduced and (scaled by size) the original
        circuit, mirroring execution on one device.
    restarts / maxiter:
        COBYLA restarts and per-run iteration budget on the reduced graph.
    finetune_maxiter:
        Iteration budget for the final optimization on the original graph
        (0 disables fine-tuning, i.e. pure parameter transfer).
    warm_start:
        When true, the first restart on the distilled graph initializes
        from the degree-indexed :class:`~repro.transfer.ParameterLookup`
        library instead of a random point (Sec. 7.2's complementary
        technique); remaining restarts stay random for exploration.
    """

    def __init__(
        self,
        p: int = 1,
        reducer: GraphReducer | None = None,
        noise: FastNoiseSpec | None = None,
        restarts: int = 5,
        maxiter: int = 60,
        finetune_maxiter: int = 20,
        trajectories: int = 8,
        shots: int | None = None,
        warm_start: bool = False,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
        if restarts < 1:
            raise ValueError(f"restarts must be >= 1, got {restarts}")
        if finetune_maxiter < 0:
            raise ValueError(f"finetune_maxiter must be >= 0, got {finetune_maxiter}")
        self.p = p
        self._rng = as_generator(seed)
        self.reducer = reducer if reducer is not None else GraphReducer(seed=self._rng)
        self.noise = noise
        self.restarts = restarts
        self.maxiter = maxiter
        self.finetune_maxiter = finetune_maxiter
        self.trajectories = trajectories
        self.shots = shots
        self.warm_start = warm_start
        self._lookup = None

    # -- steps ---------------------------------------------------------------

    def reduce(self, graph: nx.Graph) -> ReductionResult:
        """Step 1: distill the graph."""
        ensure_graph(graph)
        return self.reducer.reduce(graph)

    def optimize_reduced(self, reduction: ReductionResult) -> list[OptimizationTrace]:
        """Step 2: COBYLA restarts on the distilled graph."""
        objective = self._objective(reduction.reduced_graph)
        traces: list[OptimizationTrace] = []
        random_restarts = self.restarts
        if self.warm_start:
            initial = self._warm_start_vector(reduction.reduced_graph)
            traces.append(
                cobyla_optimize(
                    objective, self.p, initial=initial,
                    maxiter=self.maxiter, seed=self._rng,
                )
            )
            random_restarts -= 1
        if random_restarts > 0:
            traces.extend(
                multi_restart_optimize(
                    objective, self.p, restarts=random_restarts,
                    maxiter=self.maxiter, seed=self._rng,
                )
            )
        return traces

    def _warm_start_vector(self, graph: nx.Graph) -> np.ndarray:
        from repro.transfer.lookup import ParameterLookup

        if self._lookup is None:
            self._lookup = ParameterLookup(seed=self._rng)
        return self._lookup.warm_start_vector(graph, self.p)

    def finetune(
        self,
        graph: nx.Graph,
        gammas: np.ndarray,
        betas: np.ndarray,
    ) -> OptimizationTrace | None:
        """Step 4: short optimization on the original graph, if enabled."""
        if self.finetune_maxiter == 0:
            return None
        objective = self._objective(relabel_to_range(graph))
        initial = np.concatenate([gammas, betas])
        return cobyla_optimize(
            objective,
            self.p,
            initial=initial,
            maxiter=self.finetune_maxiter,
            rhobeg=0.1,  # small steps: the transferred start is near-optimal
            seed=self._rng,
        )

    def run(self, graph: nx.Graph) -> RedQAOAResult:
        """The full pipeline of Fig. 4 on ``graph``."""
        ensure_graph(graph)
        reduction = self.reduce(graph)
        traces = self.optimize_reduced(reduction)
        best_trace = max(traces, key=lambda t: t.best_value)
        gammas, betas = best_trace.best_parameters

        relabeled = relabel_to_range(graph)
        expectation = maxcut_expectation(relabeled, gammas, betas)
        finetune_trace = self.finetune(relabeled, gammas, betas)
        if finetune_trace is not None and finetune_trace.num_evaluations:
            # Keep the transferred parameters if fine-tuning failed to help
            # under its (possibly noisy) objective.
            ft_gammas, ft_betas = finetune_trace.best_parameters
            ft_expectation = maxcut_expectation(relabeled, ft_gammas, ft_betas)
            if ft_expectation >= expectation:
                gammas, betas = ft_gammas, ft_betas
                expectation = ft_expectation

        cut_value, assignment = self._solve(graph, relabeled, gammas, betas)
        return RedQAOAResult(
            reduction=reduction,
            gammas=np.asarray(gammas, dtype=float),
            betas=np.asarray(betas, dtype=float),
            expectation=expectation,
            cut_value=cut_value,
            assignment=assignment,
            reduced_traces=traces,
            finetune_trace=finetune_trace,
        )

    # -- internals -------------------------------------------------------------

    def _objective(self, graph: nx.Graph):
        """Energy function (to maximize) on ``graph`` under configured noise."""
        if self.noise is None:
            return lambda gammas, betas: maxcut_expectation(graph, gammas, betas)
        return lambda gammas, betas: noisy_maxcut_expectation(
            graph,
            gammas,
            betas,
            self.noise,
            trajectories=self.trajectories,
            shots=self.shots,
            seed=self._rng,
        )

    def _solve(
        self, graph: nx.Graph, relabeled: nx.Graph, gammas: np.ndarray, betas: np.ndarray
    ) -> tuple[float, dict]:
        """Step 5: sample the final state and return the best observed cut.

        ``relabeled`` is the caller's already-computed 0..n-1 relabeling of
        ``graph``; the original is still needed for assignment labels.
        """
        hamiltonian = MaxCutHamiltonian(relabeled)
        if self.noise is None:
            probs = qaoa_probabilities(hamiltonian, list(gammas), list(betas))
        else:
            probs = noisy_qaoa_probabilities(
                hamiltonian, list(gammas), list(betas), self.noise,
                trajectories=self.trajectories, seed=self._rng,
            )
        shots = self.shots if self.shots is not None else 1024
        outcomes = self._rng.choice(probs.size, size=shots, p=probs / probs.sum())
        values = hamiltonian.diagonal[outcomes]
        best_index = int(outcomes[int(np.argmax(values))])
        try:
            ordered = sorted(graph.nodes())
        except TypeError:
            ordered = list(graph.nodes())
        assignment = {
            node: (best_index >> position) & 1 for position, node in enumerate(ordered)
        }
        return float(values.max()), assignment
